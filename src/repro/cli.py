"""Command-line interface: ``python -m repro <command>``.

Subcommands:

* ``compile``  — compile a QASM file for a device, print stats + QASM.
* ``compile-search`` — predictor-guided beam-search compilation
  (:mod:`repro.compiler.search`), leaderboard-warmed.
* ``execute``  — compile + run on the noisy emulator, print counts.
* ``features`` — print the 30-dim feature vector of a compiled circuit.
* ``predict``  — batch-score QASM files with a trained estimator
  (the :class:`~repro.predictor.service.FomService` frontend).
* ``serve``    — run the long-lived serving daemon (dynamic request
  batching over a model registry; see :mod:`repro.serving`).
* ``client``   — talk to a running daemon
  (healthz/stats/reload/predict/foms).
* ``study``    — run the correlation study and print Table I / Fig. 3.
* ``drift-study`` — walk a device's true calibration away from its
  report and measure estimator staleness + refresh strategies
  (:mod:`repro.evaluation.drift`).
* ``devices``  — list the built-in devices and their calibration summary.
* ``zoo``      — list or inspect the parameterized device-zoo families.
* ``docs-cli`` — emit the generated CLI reference page (docs/cli.md).

Every ``--device`` option accepts the built-in names (``q20a``, ``q20b``)
or a zoo spec like ``zoo:heavy_hex:16:noisy:1`` (see ``zoo --list``).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from .circuits.qasm import from_qasm, to_qasm
from .compiler import compile_circuit
from .evaluation import StudyConfig, format_fig3, format_table_i, run_study
from .fom import FEATURE_NAMES, esp, expected_fidelity, feature_dict
from .hardware import (
    BUILTIN_DEVICES,
    ZOO_SPEC_GRAMMAR,
    ZOO_SPEC_HELP,
    Device,
    resolve_device,
    zoo_summary,
)
from .simulation import execute_and_label


def _load_device(name: str) -> Device:
    try:
        return resolve_device(name)
    except ValueError as exc:
        raise SystemExit(str(exc))


def _load_circuit(path: str):
    with open(path) as handle:
        return from_qasm(handle.read())


def _collect_qasm_paths(sources: Sequence[str]) -> List[Path]:
    """QASM files from a mix of file and directory arguments.

    Directories contribute their ``*.qasm`` entries (sorted); explicit
    files are taken as-is.  Missing paths and empty directories are
    errors — a batch scorer silently scoring nothing helps nobody.
    """
    paths: List[Path] = []
    for source in sources:
        path = Path(source)
        if path.is_dir():
            found = sorted(path.glob("*.qasm"))
            if not found:
                raise SystemExit(f"no .qasm files in directory {path}")
            paths.extend(found)
        elif path.is_file():
            paths.append(path)
        else:
            raise SystemExit(f"no such file or directory: {path}")
    return paths


def _cmd_compile(args: argparse.Namespace) -> int:
    device = _load_device(args.device)
    circuit = _load_circuit(args.qasm)
    result = compile_circuit(
        circuit, device, optimization_level=args.level, seed=args.seed
    )
    compiled = result.circuit
    print(f"# device: {device.name}  level: {args.level}", file=sys.stderr)
    print(
        f"# gates: {compiled.size()}  cz: {compiled.num_nonlocal_gates()}  "
        f"depth: {compiled.depth()}  "
        f"swaps: {result.properties.get('routing_swaps', 0)}",
        file=sys.stderr,
    )
    print(
        f"# expected fidelity: {expected_fidelity(compiled, device):.4f}  "
        f"ESP: {esp(compiled, device):.4f}",
        file=sys.stderr,
    )
    print(to_qasm(compiled), end="")
    return 0


def _cmd_compile_search(args: argparse.Namespace) -> int:
    from .compiler import compile_search, reset_search_stats, search_stats
    from .evaluation.persistence import PersistenceError, load_model

    device = _load_device(args.device)
    paths = _collect_qasm_paths(args.qasm)
    try:
        estimator = load_model(args.model)
    except PersistenceError as exc:
        raise SystemExit(str(exc))
    circuits = [_load_circuit(str(path)) for path in paths]
    reset_search_stats()
    kwargs = {}
    if args.beam_width is not None:
        kwargs["beam_width"] = args.beam_width
    if args.generations is not None:
        kwargs["generations"] = args.generations
    results = compile_search(
        circuits, device, estimator,
        seed=args.seed, store=args.store,
        max_workers=args.max_workers, workers_mode=args.workers_mode,
        **kwargs,
    )
    print(
        f"# device: {device.name}  model: {args.model}", file=sys.stderr
    )
    print(
        f"{'circuit':<24} {'source':<12} {'gates':>6} {'depth':>6} "
        f"{'predicted':>10} {'fidelity':>10}  config"
    )
    for path, result in zip(paths, results):
        info = result.properties["search"]
        config = info["config"]
        knobs = " ".join(f"{key}={config[key]}" for key in sorted(config))
        print(
            f"{path.stem:<24} {info['source']:<12} "
            f"{result.circuit.size():>6} {result.circuit.depth():>6} "
            f"{info['predicted_distance']:>10.4f} "
            f"{info['expected_fidelity']:>10.4f}  {knobs}"
        )
    stats = search_stats()
    print(
        "# " + "  ".join(f"{key}={stats[key]}" for key in sorted(stats)),
        file=sys.stderr,
    )
    if args.emit_qasm:
        for result in results:
            print(to_qasm(result.circuit), end="")
    return 0


def _cmd_execute(args: argparse.Namespace) -> int:
    device = _load_device(args.device)
    circuit = _load_circuit(args.qasm)
    result = compile_circuit(
        circuit, device, optimization_level=args.level, seed=args.seed
    )
    distance, execution = execute_and_label(
        result.circuit, device, shots=args.shots, seed=args.seed
    )
    print(f"device: {device.name}  shots: {args.shots}")
    print(f"success probability: {execution.success_probability:.4f}")
    print(f"hellinger distance:  {distance:.4f}")
    print("counts:")
    for key, count in sorted(
        execution.counts.items(), key=lambda kv: -kv[1]
    )[: args.top]:
        print(f"  {key}  {count}")
    return 0


def _cmd_features(args: argparse.Namespace) -> int:
    device = _load_device(args.device)
    circuit = _load_circuit(args.qasm)
    result = compile_circuit(
        circuit, device, optimization_level=args.level, seed=args.seed
    )
    values = feature_dict(result.circuit)
    for name in FEATURE_NAMES:
        print(f"{name:<32} {values[name]:.6f}")
    return 0


def _cmd_predict(args: argparse.Namespace) -> int:
    from .evaluation.persistence import PersistenceError
    from .fom.metrics import FOM_ORDER, PROPOSED_LABEL
    from .predictor.service import FomService

    device = _load_device(args.device)
    paths = _collect_qasm_paths(args.qasm)
    level = "search" if args.search else args.level
    try:
        service = FomService.load(
            args.model, device,
            optimization_level=level, seed=args.seed,
            chunk_size=args.chunk_size,
            search_store=args.search_store,
            beam_width=args.beam_width,
            generations=args.generations,
        )
    except (PersistenceError, ValueError) as exc:
        raise SystemExit(str(exc))
    circuits = (_load_circuit(str(path)) for path in paths)
    if args.foms:
        panel = service.score_established_foms(
            circuits, max_workers=args.max_workers,
            workers_mode=args.workers_mode,
        )
        columns = FOM_ORDER + [PROPOSED_LABEL]
        header = f"{'circuit':<24}" + "".join(f"{name:>20}" for name in columns)
        print(f"# device: {device.name}  level: {level}  model: {args.model}")
        print(header)
        for index, path in enumerate(paths):
            row = f"{path.stem:<24}"
            for name in columns:
                row += f"{panel[name][index]:>20.4f}"
            print(row)
    else:
        print(f"# device: {device.name}  level: {level}  model: {args.model}")
        print(f"{'circuit':<24} {'predicted_hellinger':>20}")
        position = 0
        # Stream: predictions print as each chunk lands, so a large corpus
        # shows progress (and never lives in memory all at once).
        for chunk in service.predict_stream(
            circuits, max_workers=args.max_workers,
            workers_mode=args.workers_mode,
        ):
            for value in chunk:
                print(f"{paths[position].stem:<24} {value:>20.4f}")
                position += 1
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from .evaluation.persistence import PersistenceError
    from .serving import RegistrySpec, ServerConfig, ServingDaemon

    _load_device(args.device)  # fail fast on a bad device spec
    # A picklable spec rather than a built registry: sharded daemons
    # ship it to each spawn worker, which builds its own copy
    # (shared-nothing); unsharded daemons build it in-process.
    spec = RegistrySpec()
    service_kwargs = dict(
        optimization_level=args.level, seed=args.seed,
        num_trials=args.num_trials,
    )
    if args.model is not None:
        spec.add_model_file(args.model, args.device, **service_kwargs)
    else:
        spec.add_store(
            args.store, args.device,
            name=args.name, fingerprint=args.fingerprint,
            **service_kwargs,
        )
    config = ServerConfig(
        host=args.host,
        port=args.port,
        max_batch=args.max_batch,
        batch_deadline=args.batch_deadline_ms / 1000.0,
        queue_limit=args.queue_limit,
        request_timeout=args.request_timeout,
        max_workers=args.max_workers,
        workers_mode=args.workers_mode,
        reload_interval=args.reload_interval,
        shards=args.shards,
    )
    try:
        daemon = ServingDaemon(spec, config)
    except (PersistenceError, ValueError) as exc:
        raise SystemExit(str(exc))
    asyncio.run(daemon.serve_forever())
    return 0


def _format_latency(value) -> str:
    """One latency cell of the ``client stats`` table.

    Percentiles are ``null`` until the daemon has served at least one
    request — render those as ``n/a``, never crash on them.
    """
    return "n/a" if value is None else f"{value * 1000.0:.1f}ms"


def _render_stats(stats: dict) -> str:
    """Human-readable ``repro client stats`` rendering (``--json`` skips)."""

    def counters(mapping: dict) -> str:
        items = " ".join(
            f"{key}={value}" for key, value in sorted(mapping.items())
        )
        return items or "none"

    models = stats.get("models", {})
    queue = stats.get("queue", {})
    batches = stats.get("batches", {})
    latency = stats.get("latency", {})
    lines = [
        f"uptime: {stats.get('uptime_s', 0.0):.1f}s"
        + ("  (draining)" if stats.get("draining") else ""),
        "serving: " + (", ".join(models.get("serving", [])) or "none"),
        f"reload: checks={models.get('reload_checks', 0)} "
        f"refreshes={models.get('refreshes', 0)} "
        f"swaps={models.get('swaps', 0)}",
        "requests: " + counters(stats.get("requests", {})),
        "responses: " + counters(stats.get("responses", {})),
        f"queue: depth={queue.get('depth', 0)} "
        f"waiting={queue.get('requests_waiting', 0)} "
        f"in_flight={queue.get('in_flight', 0)} "
        f"limit={queue.get('limit', 0)} "
        f"rejected={queue.get('rejected_total', 0)}",
        f"batches: total={batches.get('total', 0)} "
        f"requests={batches.get('requests_total', 0)}",
        f"latency: p50={_format_latency(latency.get('request_p50_s'))} "
        f"p99={_format_latency(latency.get('request_p99_s'))} "
        f"max={_format_latency(latency.get('request_max_s'))} "
        f"samples={latency.get('samples', 0)}",
    ]
    return "\n".join(lines)


def _cmd_client(args: argparse.Namespace) -> int:
    import json

    from .serving import ServingClient, ServingError, StreamInterrupted

    if getattr(args, "stream", False) and args.action != "predict":
        raise SystemExit("--stream applies to the predict action only")
    client = ServingClient(args.host, args.port, timeout=args.timeout)
    try:
        if args.action == "healthz":
            status, payload = client.healthz()
            print(json.dumps(payload, indent=2))
            return 0 if status == 200 else 1
        if args.action == "stats":
            stats = client.stats()
            if args.json:
                print(json.dumps(stats, indent=2))
            else:
                print(_render_stats(stats))
            return 0
        if args.action == "reload":
            report = client.reload()
            if args.json:
                print(json.dumps(report, indent=2))
                return 0
            for swap in report.get("swapped", []):
                previous = swap.get("previous_fingerprint")
                print(
                    f"swapped: {swap['model']} -> v{swap['version']} "
                    f"@{swap['fingerprint']}"
                    + (f" (was @{previous})" if previous else " (new)")
                )
            if not report.get("swapped"):
                print("no model changes detected")
            for entry in report.get("serving", []):
                print(
                    f"serving: {entry['name']}@{entry['fingerprint']} "
                    f"v{entry['version']}"
                )
            return 0
        # predict / foms: batch-score QASM files through the daemon.
        if not args.qasm:
            raise SystemExit(f"client {args.action} needs QASM files/dirs")
        paths = _collect_qasm_paths(args.qasm)
        qasm = [path.read_text() for path in paths]
        if args.action == "foms":
            response = client.foms(
                qasm, model=args.model, fingerprint=args.fingerprint,
                optimization_level=args.level,
            )
            if args.json:
                print(json.dumps(response, indent=2))
                return 0
            panel = response["foms"]
            columns = list(panel)
            print(f"# model: {response['model']}@{response['fingerprint']}  "
                  f"level: {response['optimization_level']}")
            print(f"{'circuit':<24}"
                  + "".join(f"{name:>20}" for name in columns))
            for index, path in enumerate(paths):
                row = f"{path.stem:<24}"
                for name in columns:
                    row += f"{panel[name][index]:>20.4f}"
                print(row)
            return 0
        if args.stream:
            stream = client.predict_stream(
                qasm, model=args.model, fingerprint=args.fingerprint,
                optimization_level=args.level, chunk_size=args.chunk_size,
            )
            header = stream.header
            if args.json:
                # NDJSON passthrough: the announcement, then one line
                # per chunk as it arrives.
                print(json.dumps(header), flush=True)
                for chunk in stream:
                    print(json.dumps({"predictions": chunk}), flush=True)
                return 0
            print(f"# model: {header['model']}@{header['fingerprint']}  "
                  f"level: {header['optimization_level']}")
            print(f"{'circuit':<24} {'predicted_hellinger':>20}")
            position = 0
            for chunk in stream:
                for value in chunk:
                    print(
                        f"{paths[position].stem:<24} {value:>20.4f}",
                        flush=True,
                    )
                    position += 1
            return 0
        response = client.predict(
            qasm, model=args.model, fingerprint=args.fingerprint,
            optimization_level=args.level,
        )
        if args.json:
            print(json.dumps(response, indent=2))
            return 0
        print(f"# model: {response['model']}@{response['fingerprint']}  "
              f"level: {response['optimization_level']}")
        print(f"{'circuit':<24} {'predicted_hellinger':>20}")
        for path, value in zip(paths, response["predictions"]):
            print(f"{path.stem:<24} {value:>20.4f}")
        return 0
    except (ServingError, StreamInterrupted) as exc:
        raise SystemExit(str(exc))
    except (ConnectionError, OSError) as exc:
        raise SystemExit(
            f"cannot reach daemon at http://{args.host}:{args.port}: {exc}"
        )
    finally:
        client.close()


def _cmd_study(args: argparse.Namespace) -> int:
    if args.full:
        config = StudyConfig(shots=2000, seed=args.seed)
    else:
        config = StudyConfig(
            max_qubits=args.max_qubits,
            shots=args.shots,
            seed=args.seed,
            param_grid={
                "n_estimators": [50],
                "max_depth": [None, 10],
                "min_samples_leaf": [1, 2],
                "min_samples_split": [2],
            },
        )
    config.cache_dir = args.cache_dir
    config.max_workers = args.max_workers
    config.workers_mode = args.workers_mode
    devices = (
        [_load_device(spec) for spec in args.devices]
        if args.devices else None
    )
    result = run_study(devices=devices, config=config)
    print(format_table_i(result))
    print()
    print(
        format_fig3(
            {
                name: report.feature_importances
                for name, report in result.reports.items()
            }
        )
    )
    return 0


def _cmd_drift_study(args: argparse.Namespace) -> int:
    import json

    from .evaluation.drift import (
        DriftStudyConfig,
        _result_to_dict,
        default_drift_study_config,
        format_drift_table,
        run_drift_study,
    )

    study = default_drift_study_config(progress=args.progress)
    study.max_qubits = args.max_qubits
    study.shots = args.shots
    study.seed = args.seed
    study.max_workers = args.max_workers
    study.workers_mode = args.workers_mode
    config = DriftStudyConfig(
        device=args.device,
        steps=args.steps,
        drift_scale=args.drift_scale,
        duration_drift=args.duration_drift,
        drift_seed=args.drift_seed,
        refresh_trees=tuple(args.refresh_trees),
        replace=args.replace,
        study=study,
        cache_dir=args.cache_dir,
        progress=args.progress,
    )
    try:
        result = run_drift_study(config)
    except (ValueError, RuntimeError) as exc:
        raise SystemExit(str(exc))
    if args.json:
        payload = _result_to_dict(result)
        payload["from_cache"] = result.from_cache
        payload["elapsed_s"] = result.elapsed_s
        print(json.dumps(payload, indent=2))
    else:
        print(format_drift_table(result))
    return 0


def _cmd_devices(args: argparse.Namespace) -> int:
    for name, factory in sorted(BUILTIN_DEVICES.items()):
        device = factory()
        cal = device.reported_calibration
        print(
            f"{name}: {device.name}, {device.num_qubits} qubits, "
            f"{len(device.coupling.edges)} couplers, "
            f"mean CZ fidelity {cal.mean_two_qubit_fidelity():.4f}, "
            f"mean readout {cal.mean_readout_fidelity():.4f}"
        )
    print("(zoo families: `python -m repro zoo --list`)")
    return 0


def _cmd_zoo(args: argparse.Namespace) -> int:
    if args.list or args.spec is None:
        print(zoo_summary())
        return 0
    device = _load_device(
        args.spec if args.spec.lower().startswith("zoo:") else f"zoo:{args.spec}"
    )
    cal = device.reported_calibration
    degrees = [device.coupling.degree(q) for q in range(device.num_qubits)]
    print(f"{device.name}: {device.num_qubits} qubits, "
          f"{len(device.coupling.edges)} couplers")
    print(f"degree: min {min(degrees)}, max {max(degrees)}, "
          f"mean {sum(degrees) / len(degrees):.2f}")
    print(f"mean CZ fidelity {cal.mean_two_qubit_fidelity():.4f}, "
          f"mean readout {cal.mean_readout_fidelity():.4f}")
    print("edges:", " ".join(f"{a}-{b}" for a, b in device.coupling.edges))
    return 0


def render_cli_docs() -> str:
    """The generated CLI reference page (the ``docs/cli.md`` payload).

    Every subcommand's ``--help``, rendered at a pinned 80-column width
    (argparse reads ``COLUMNS``), so the page is byte-stable across
    terminals — the property the docs-sync check in CI relies on.
    """
    import os

    previous = os.environ.get("COLUMNS")
    os.environ["COLUMNS"] = "80"
    try:
        parser = build_parser()
        lines = [
            "<!-- Generated by `python -m repro docs-cli > docs/cli.md`.",
            "     Do not edit by hand: CI diffs this page against the live",
            "     --help output (`python -m repro docs-cli --check docs/cli.md`). -->",
            "",
            "# CLI reference",
            "",
            "Every command runs as `python -m repro <command>`.  This page is",
            "generated from the argparse tree; the per-command sections below",
            "are the exact `--help` texts.",
            "",
            "## repro",
            "",
            "```text",
            parser.format_help().rstrip("\n"),
            "```",
        ]
        for action in parser._actions:
            if not isinstance(action, argparse._SubParsersAction):
                continue
            for name, subparser in action.choices.items():
                lines += [
                    "",
                    f"## repro {name}",
                    "",
                    "```text",
                    subparser.format_help().rstrip("\n"),
                    "```",
                ]
        return "\n".join(lines) + "\n"
    finally:
        if previous is None:
            os.environ.pop("COLUMNS", None)
        else:
            os.environ["COLUMNS"] = previous


def _cmd_docs_cli(args: argparse.Namespace) -> int:
    page = render_cli_docs()
    if args.check is not None:
        path = Path(args.check)
        try:
            committed = path.read_text()
        except OSError as exc:
            raise SystemExit(f"cannot read {path}: {exc}")
        if committed != page:
            raise SystemExit(
                f"{path} is out of sync with the live --help output; "
                "regenerate it with `python -m repro docs-cli > docs/cli.md`"
            )
        print(f"{path} is in sync")
        return 0
    print(page, end="")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p, level: bool = True):
        p.add_argument("--device", default="q20a", help=ZOO_SPEC_HELP)
        if level:
            p.add_argument("--level", type=int, default=3, choices=range(4))
        p.add_argument("--seed", type=int, default=0)

    p_compile = sub.add_parser("compile", help="compile a QASM file")
    p_compile.add_argument("qasm")
    common(p_compile)
    p_compile.set_defaults(func=_cmd_compile)

    p_search = sub.add_parser(
        "compile-search",
        help="predictor-guided beam-search compilation",
        description=(
            "Compile QASM files with the beam search over pass "
            "configurations (optimization_level='search'): candidates are "
            "ranked by a trained estimator's predicted Hellinger distance, "
            "and only the surviving front is re-scored exactly — never "
            "worse than stock level 3 by construction.  With --store, "
            "winning configurations persist to a leaderboard and later "
            "runs warm-start from the incumbent."
        ),
    )
    p_search.add_argument(
        "qasm", nargs="+",
        help="QASM files and/or directories containing *.qasm",
    )
    common(p_search, level=False)
    p_search.add_argument(
        "--model", required=True,
        help="path to a trained estimator (.npz written by save_model)",
    )
    p_search.add_argument(
        "--beam-width", type=int, default=None,
        help="configurations surviving each generation (default: 4)",
    )
    p_search.add_argument(
        "--generations", type=int, default=None,
        help="neighbor-expansion rounds after the stock seeds (default: 2)",
    )
    p_search.add_argument(
        "--store", default=None,
        help="leaderboard directory: warm-start from incumbents, persist "
             "winners (default: search cold, keep nothing)",
    )
    p_search.add_argument(
        "--emit-qasm", action="store_true",
        help="print the compiled QASM of every circuit after the table",
    )
    p_search.add_argument(
        "--max-workers", type=int, default=None,
        help="worker-pool size for the batched search (default: one per CPU)",
    )
    p_search.add_argument(
        "--workers-mode", choices=("thread", "process"), default=None,
        help="pool flavor; default: REPRO_WORKERS_MODE env var, else process",
    )
    p_search.set_defaults(func=_cmd_compile_search)

    p_exec = sub.add_parser("execute", help="compile + noisy execution")
    p_exec.add_argument("qasm")
    common(p_exec)
    p_exec.add_argument("--shots", type=int, default=2000)
    p_exec.add_argument("--top", type=int, default=10,
                        help="show this many outcomes")
    p_exec.set_defaults(func=_cmd_execute)

    p_feat = sub.add_parser("features", help="30-dim feature vector")
    p_feat.add_argument("qasm")
    common(p_feat)
    p_feat.set_defaults(func=_cmd_features)

    p_pred = sub.add_parser(
        "predict",
        help="batch-score QASM files with a trained estimator",
        description=(
            "Load a persisted estimator (.npz from save_model / "
            "train_fom_estimator.py) and a device once, then compile, "
            "featurize, and score every given QASM file (or every *.qasm "
            "in given directories) in batches.  With --foms, print the "
            "paper's full metric panel instead of predictions only."
        ),
    )
    p_pred.add_argument(
        "qasm", nargs="+",
        help="QASM files and/or directories containing *.qasm",
    )
    common(p_pred)
    p_pred.add_argument(
        "--model", required=True,
        help="path to a trained estimator (.npz written by save_model)",
    )
    p_pred.add_argument(
        "--foms", action="store_true",
        help="also print the four established figures of merit",
    )
    p_pred.add_argument(
        "--max-workers", type=int, default=None,
        help="worker-pool size for the batched stages (default: one per CPU)",
    )
    p_pred.add_argument(
        "--workers-mode", choices=("thread", "process"), default=None,
        help=(
            "pool flavor for the GIL-bound stages (compile, featurize); "
            "default: REPRO_WORKERS_MODE env var, else process"
        ),
    )
    p_pred.add_argument(
        "--chunk-size", type=int, default=128,
        help="circuits scored per streamed chunk (memory ceiling)",
    )
    p_pred.add_argument(
        "--search", action="store_true",
        help="compile with the predictor-guided beam search instead of "
             "--level (the model doubles as the search cost model)",
    )
    p_pred.add_argument(
        "--search-store", default=None,
        help="with --search: leaderboard directory for warm starts",
    )
    p_pred.add_argument(
        "--beam-width", type=int, default=None,
        help="with --search: beam width (default: 4)",
    )
    p_pred.add_argument(
        "--generations", type=int, default=None,
        help="with --search: expansion generations (default: 2)",
    )
    p_pred.set_defaults(func=_cmd_predict)

    p_serve = sub.add_parser(
        "serve",
        help="run the long-lived serving daemon",
        description=(
            "Start an asyncio HTTP daemon that loads a model registry once "
            "(a save_model .npz via --model, or every estimator artifact in "
            "an ArtifactStore directory via --store) and coalesces "
            "concurrent predict requests into dynamic batches.  Endpoints: "
            "POST /predict, POST /foms, GET /healthz, GET /stats.  SIGTERM "
            "drains in-flight batches and exits 0."
        ),
    )
    source = p_serve.add_mutually_exclusive_group(required=True)
    source.add_argument(
        "--model", help="path to a trained estimator (.npz from save_model)"
    )
    source.add_argument(
        "--store",
        help="ArtifactStore directory; registers every estimator artifact",
    )
    p_serve.add_argument(
        "--name", default=None,
        help="with --store: register only artifacts with this name",
    )
    p_serve.add_argument(
        "--fingerprint", default=None,
        help="with --store: register only artifacts with this fingerprint",
    )
    common(p_serve)
    p_serve.add_argument("--num-trials", type=int, default=4)
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument(
        "--port", type=int, default=8377,
        help="TCP port (0 picks a free one; printed on startup)",
    )
    p_serve.add_argument(
        "--max-batch", type=int, default=64,
        help="circuits per dynamic batch (size trigger)",
    )
    p_serve.add_argument(
        "--batch-deadline-ms", type=float, default=10.0,
        help="max milliseconds a partial batch waits for more requests",
    )
    p_serve.add_argument(
        "--queue-limit", type=int, default=1024,
        help="circuits queued before new requests get 503 (backpressure)",
    )
    p_serve.add_argument(
        "--request-timeout", type=float, default=60.0,
        help="seconds before a queued request is answered 504",
    )
    p_serve.add_argument(
        "--max-workers", type=int, default=1,
        help="pipeline workers per batch (1 = predictable latency; raise "
             "on multi-core boxes)",
    )
    p_serve.add_argument(
        "--workers-mode", choices=("thread", "process"), default="thread",
        help="pool flavor for the per-batch pipeline (default: thread — "
             "per-batch process spawns cost more than small batches win)",
    )
    p_serve.add_argument(
        "--reload-interval", type=float, default=0.0,
        help="seconds between automatic model-source staleness checks and "
             "hot swaps (0 = only on explicit POST /reload)",
    )
    p_serve.add_argument(
        "--shards", type=int, default=1,
        help="worker processes, each with its own registry + batcher + "
             "GIL (1 = serve in-process; 0 = one per CPU).  Requests "
             "route by consistent hash of (model, fingerprint, level) "
             "with round-robin spill when a lane saturates; responses "
             "are byte-identical to --shards 1",
    )
    p_serve.set_defaults(func=_cmd_serve)

    p_client = sub.add_parser(
        "client",
        help="talk to a running serving daemon",
        description=(
            "Drive a daemon started with `repro serve`: check health, dump "
            "stats, or batch-score QASM files through POST /predict / "
            "POST /foms."
        ),
    )
    p_client.add_argument(
        "action", choices=("healthz", "stats", "reload", "predict", "foms"),
    )
    p_client.add_argument(
        "qasm", nargs="*",
        help="QASM files and/or directories (predict/foms only)",
    )
    p_client.add_argument("--host", default="127.0.0.1")
    p_client.add_argument("--port", type=int, default=8377)
    p_client.add_argument(
        "--model", default=None, help="registered model name to score with"
    )
    p_client.add_argument(
        "--fingerprint", default=None,
        help="registered model fingerprint to score with",
    )
    p_client.add_argument(
        "--level", type=int, default=None, choices=range(4),
        help="optimization level override (default: the model's)",
    )
    p_client.add_argument(
        "--timeout", type=float, default=120.0,
        help="client-side socket timeout in seconds",
    )
    p_client.add_argument(
        "--json", action="store_true",
        help="print the raw JSON response instead of the table",
    )
    p_client.add_argument(
        "--stream", action="store_true",
        help="predict only: request a chunked streaming response and "
             "print predictions as chunks arrive (identical values to a "
             "non-streamed predict)",
    )
    p_client.add_argument(
        "--chunk-size", type=int, default=None,
        help="with --stream: circuits per streamed chunk "
             "(default: the model's pipeline chunk size)",
    )
    p_client.set_defaults(func=_cmd_client)

    p_study = sub.add_parser("study", help="run the correlation study")
    p_study.add_argument("--full", action="store_true")
    p_study.add_argument("--max-qubits", type=int, default=10)
    p_study.add_argument("--shots", type=int, default=1000)
    p_study.add_argument("--seed", type=int, default=0)
    p_study.add_argument(
        "--devices", nargs="+", default=None, metavar="DEVICE",
        help="study these devices instead of the paper's Q20 pair; "
             f"each is {ZOO_SPEC_HELP}",
    )
    p_study.add_argument(
        "--cache-dir", default=None,
        help="checkpoint datasets/models here; reruns skip unchanged stages",
    )
    p_study.add_argument(
        "--max-workers", type=int, default=None,
        help="worker-pool size for batched stages (default: one per CPU)",
    )
    p_study.add_argument(
        "--workers-mode", choices=("thread", "process"), default=None,
        help=(
            "pool flavor for the GIL-bound stages (compile, grid search, "
            "forest fit); default: REPRO_WORKERS_MODE env var, else process"
        ),
    )
    p_study.set_defaults(func=_cmd_study)

    p_drift = sub.add_parser(
        "drift-study",
        help="measure estimator staleness under calibration drift",
        description=(
            "Walk a device's *true* calibration away from its frozen "
            "report with the zoo's drift map, then measure how the "
            "step-0 estimator decays on freshly-labelled circuits and "
            "how well two refresh strategies recover: a full grid-search "
            "retrain vs appending a few fresh trees to the stale forest "
            "(fine-tune).  Every stage caches through --cache-dir, so a "
            "rerun with unchanged inputs is a pure read."
        ),
    )
    p_drift.add_argument(
        "--device", default="zoo:grid:12:typical:0", help=ZOO_SPEC_HELP
    )
    p_drift.add_argument(
        "--steps", type=int, default=3,
        help="drifted snapshots after the training-time calibration",
    )
    p_drift.add_argument(
        "--drift-scale", type=float, default=1.0,
        help="multiplies the tier's per-step drift magnitudes",
    )
    p_drift.add_argument(
        "--duration-drift", type=float, default=0.0,
        help="also drift gate/readout durations by this magnitude "
             "(default 0: durations are control-stack settings)",
    )
    p_drift.add_argument("--drift-seed", type=int, default=0)
    p_drift.add_argument(
        "--refresh-trees", type=int, nargs="+", default=[4, 8, 16],
        metavar="N",
        help="fine-tune curve: fresh trees appended per refresh point",
    )
    p_drift.add_argument(
        "--replace", action="store_true",
        help="fresh trees replace the oldest (constant-size forest) "
             "instead of growing it",
    )
    p_drift.add_argument("--max-qubits", type=int, default=6)
    p_drift.add_argument("--shots", type=int, default=400)
    p_drift.add_argument("--seed", type=int, default=0)
    p_drift.add_argument(
        "--cache-dir", default=None,
        help="artifact store: datasets, reports, estimators, and the "
             "finished study are fingerprint-cached here",
    )
    p_drift.add_argument(
        "--max-workers", type=int, default=None,
        help="worker-pool size for batched stages (default: one per CPU)",
    )
    p_drift.add_argument(
        "--workers-mode", choices=("thread", "process"), default=None,
        help="pool flavor for the GIL-bound stages; default: "
             "REPRO_WORKERS_MODE env var, else process",
    )
    p_drift.add_argument(
        "--progress", action="store_true",
        help="print per-step progress lines while the study runs",
    )
    p_drift.add_argument(
        "--json", action="store_true",
        help="print the full result as JSON instead of the table",
    )
    p_drift.set_defaults(func=_cmd_drift_study)

    p_dev = sub.add_parser("devices", help="list built-in devices")
    p_dev.set_defaults(func=_cmd_devices)

    p_zoo = sub.add_parser(
        "zoo", help="list or inspect device-zoo families",
        description=(
            "With --list (or no spec): enumerate every topology family, "
            f"its sizing rules, and the noise tiers.  With a spec "
            f"({ZOO_SPEC_GRAMMAR}, the zoo: prefix optional here): print "
            "that device's topology and calibration summary."
        ),
    )
    p_zoo.add_argument("spec", nargs="?", default=None,
                       help="device spec, e.g. heavy_hex:16:noisy")
    p_zoo.add_argument("--list", action="store_true",
                       help="enumerate families and tiers")
    p_zoo.set_defaults(func=_cmd_zoo)

    p_docs = sub.add_parser(
        "docs-cli",
        help="emit the generated CLI reference (docs/cli.md)",
        description=(
            "Render every subcommand's --help as one markdown page at a "
            "pinned 80-column width.  Regenerate the committed page with "
            "`python -m repro docs-cli > docs/cli.md`; --check exits "
            "nonzero if that page has drifted from the live help (the CI "
            "docs job)."
        ),
    )
    p_docs.add_argument(
        "--check", default=None, metavar="PATH",
        help="compare PATH against the rendered page instead of printing",
    )
    p_docs.set_defaults(func=_cmd_docs_cli)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
