"""Shared worker-pool infrastructure for the batched stages.

Every batched stage in the repo (compilation, feature extraction,
noiseless simulation, noisy execution, forest training, and grid search)
funnels through :func:`parallel_map`, so worker-count invariance is
enforced in one place: results are always returned in input order, a
single worker degrades to a plain loop, and per-item work is required to
be deterministic.

Two execution modes are supported:

* ``"thread"`` — a :class:`~concurrent.futures.ThreadPoolExecutor`.
  Right for stages whose inner loops release the GIL (numpy-heavy
  simulation and noisy execution).
* ``"process"`` — a :class:`~concurrent.futures.ProcessPoolExecutor`
  over the ``spawn`` start method.  Right for the GIL-bound pure-Python
  stages (compilation, feature extraction, tree fitting).  ``fn``,
  ``initializer`` and every item/result must be picklable; per-process
  module state (e.g. the compile cache) starts fresh in each worker.

The mode is an explicit argument everywhere; batched entry points accept
``workers_mode=None`` meaning "the :envvar:`REPRO_WORKERS_MODE`
environment override if set, else this entry point's documented default"
(see :func:`resolve_mode`).

**Worker-default rule.**  ``max_workers=None`` always means one worker
per CPU (:func:`resolve_workers`); entry points that want a sequential
default say ``max_workers=1`` explicitly in their signature instead of
remapping ``None``.

**Callback/exception contract.**  ``on_result(index, result)`` fires in
the parent process/thread as each item completes (completion order, not
input order).  An exception raised *inside a callback* never corrupts
result ordering or hangs the pool: the batch drains fully, every
remaining item still completes and fires its callback, and the first
callback exception is re-raised once the pool has drained.  An exception
raised *by fn itself* takes precedence over callback exceptions, and the
one belonging to the lowest input index is the one propagated; pooled
modes drain the remaining items first (their callbacks still fire),
while the sequential path stops at the first failing item.

Historically these helpers lived in ``repro.simulation.executor``; they
moved here so the ML layer can reuse them without importing the
simulator.  The old import path still works (the executor re-exports the
names).
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import (
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    as_completed,
)
from typing import Callable, List, Optional, Sequence, Tuple, TypeVar

_T = TypeVar("_T")
_R = TypeVar("_R")

#: Environment variable overriding the default execution mode of every
#: batched entry point that is called with ``workers_mode=None``.
WORKERS_MODE_ENV = "REPRO_WORKERS_MODE"

#: The recognised execution modes.
WORKER_MODES = ("thread", "process")

#: Below this many items a requested process pool degrades to the plain
#: in-process loop: spawning interpreters costs more than the work buys.
#: Three keeps the paper's 3-fold cross-validation poolable while 1-2
#: item batches stay in-process.  (Results are bit-identical either way;
#: this is purely a perf guard.)
PROCESS_MIN_ITEMS = 3


def resolve_workers(max_workers: Optional[int], num_items: int) -> int:
    """Worker count for a batch: explicit value, else one per CPU.

    This is the single worker-default rule for the whole repo: ``None``
    maps to ``os.cpu_count()`` at every batched entry point, then the
    count is capped by the number of items (never below 1).
    """
    if max_workers is None:
        max_workers = os.cpu_count() or 1
    if max_workers < 1:
        raise ValueError("max_workers must be positive")
    return max(1, min(max_workers, num_items))


def resolve_mode(mode: Optional[str], default: str = "thread") -> str:
    """Execution mode for a batch.

    Precedence: an explicit ``mode`` argument, else the
    :envvar:`REPRO_WORKERS_MODE` environment override, else the calling
    entry point's ``default``.  Raises :class:`ValueError` for anything
    outside :data:`WORKER_MODES`.
    """
    if mode is None:
        mode = os.environ.get(WORKERS_MODE_ENV) or default
    if mode not in WORKER_MODES:
        raise ValueError(
            f"workers mode must be one of {WORKER_MODES}, got {mode!r}"
        )
    return mode


def parallel_map(
    fn: Callable[[_T], _R],
    items: Sequence[_T],
    max_workers: Optional[int] = None,
    on_result: Optional[Callable[[int, _R], None]] = None,
    mode: Optional[str] = "thread",
    initializer: Optional[Callable[..., None]] = None,
    initargs: Tuple = (),
) -> List[_R]:
    """Order-preserving map over a thread or process pool.

    Falls back to a plain in-process loop for a single worker, a single
    item, or a process-mode batch smaller than
    :data:`PROCESS_MIN_ITEMS`, so results are identical across worker
    counts and modes — the per-item work must itself be deterministic.
    In the degenerate case any ``initializer`` runs once in the parent.

    ``on_result(index, result)`` fires in the parent as each item
    completes (completion order), giving batch callers per-item liveness
    without waiting for the pool to drain.  Callbacks never affect the
    returned list, which is always in input order; see the module
    docstring for the full callback/exception contract.

    In ``"process"`` mode ``fn`` must be a picklable module-level
    callable and items/results must pickle; ``initializer(*initargs)``
    runs once per worker process (use it to ship large shared state once
    instead of per item).
    """
    items = list(items)
    workers = resolve_workers(max_workers, len(items))
    mode = resolve_mode(mode)
    pooled = workers > 1 and len(items) > 1
    if mode == "process" and len(items) < PROCESS_MIN_ITEMS:
        pooled = False
    if not pooled:
        if initializer is not None:
            initializer(*initargs)
        results = []
        callback_error: Optional[BaseException] = None
        for index, item in enumerate(items):
            result = fn(item)
            results.append(result)
            if on_result is not None:
                try:
                    on_result(index, result)
                except BaseException as exc:
                    if callback_error is None:
                        callback_error = exc
        if callback_error is not None:
            raise callback_error
        return results

    if mode == "process":
        pool = ProcessPoolExecutor(
            max_workers=workers,
            mp_context=multiprocessing.get_context("spawn"),
            initializer=initializer,
            initargs=initargs,
        )
    else:
        pool = ThreadPoolExecutor(
            max_workers=workers, initializer=initializer, initargs=initargs
        )
    results = [None] * len(items)  # type: ignore[list-item]
    fn_errors: dict = {}
    callback_error = None
    with pool:
        futures = {
            pool.submit(fn, item): index for index, item in enumerate(items)
        }
        for future in as_completed(futures):
            index = futures[future]
            try:
                results[index] = future.result()
            except BaseException as exc:
                fn_errors[index] = exc
                continue
            if on_result is not None:
                try:
                    on_result(index, results[index])
                except BaseException as exc:
                    if callback_error is None:
                        callback_error = exc
    if fn_errors:
        raise fn_errors[min(fn_errors)]
    if callback_error is not None:
        raise callback_error
    return results
