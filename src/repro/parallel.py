"""Shared worker-pool infrastructure for the batched stages.

Every batched stage in the repo (compilation, noiseless simulation, noisy
execution, and — since PR 3 — forest training and grid search) funnels
through :func:`parallel_map`, so worker-count invariance is enforced in one
place: results are always returned in input order, a single worker degrades
to a plain loop, and per-item work is required to be deterministic.

Historically these helpers lived in ``repro.simulation.executor``; they
moved here so the ML layer can reuse them without importing the simulator.
The old import path still works (the executor re-exports both names).
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, List, Optional, Sequence, Tuple, TypeVar

_T = TypeVar("_T")
_R = TypeVar("_R")


def resolve_workers(max_workers: Optional[int], num_items: int) -> int:
    """Worker count for a batch: explicit value, else one per CPU."""
    if max_workers is None:
        max_workers = os.cpu_count() or 1
    if max_workers < 1:
        raise ValueError("max_workers must be positive")
    return max(1, min(max_workers, num_items))


def parallel_map(
    fn: Callable[[_T], _R],
    items: Sequence[_T],
    max_workers: Optional[int] = None,
    on_result: Optional[Callable[[int, _R], None]] = None,
) -> List[_R]:
    """Order-preserving map over a thread pool.

    Falls back to a plain loop for a single worker or a single item, so
    results (and exceptions) are identical across worker counts — the
    per-item work must itself be deterministic.

    ``on_result(index, result)`` fires as each item finishes (from worker
    threads, in completion order), giving batch callers per-item liveness
    without waiting for the pool to drain.  Callbacks never affect the
    returned list, which is always in input order.
    """
    workers = resolve_workers(max_workers, len(items))
    if workers <= 1 or len(items) <= 1:
        results = []
        for index, item in enumerate(items):
            result = fn(item)
            if on_result is not None:
                on_result(index, result)
            results.append(result)
        return results
    with ThreadPoolExecutor(max_workers=workers) as pool:
        if on_result is None:
            return list(pool.map(fn, items))

        def job(indexed: Tuple[int, _T]) -> _R:
            index, item = indexed
            result = fn(item)
            on_result(index, result)
            return result

        return list(pool.map(job, enumerate(items)))
