"""The :class:`QuantumCircuit` intermediate representation.

A circuit is an ordered list of :class:`Instruction` objects over ``n``
qubits and ``m`` classical bits, plus a global phase.  The builder API
mirrors the common gate names (``circuit.h(0)``, ``circuit.cx(0, 1)``, ...)
so that algorithm generators and compiler passes read naturally.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Sequence, Tuple

import numpy as np

from .gates import NON_UNITARY, get_spec


@dataclass(frozen=True)
class Instruction:
    """One operation in a circuit.

    Attributes:
        name: gate name (must be registered in :data:`repro.circuits.gates.GATES`).
        qubits: qubit indices the operation acts on, in argument order.
        params: float gate parameters.
        clbits: classical bit indices (only used by ``measure``).
    """

    name: str
    qubits: Tuple[int, ...]
    params: Tuple[float, ...] = ()
    clbits: Tuple[int, ...] = ()

    def __post_init__(self) -> None:
        # Precomputed content hash: instructions are immutable and hashed
        # in bulk by the simulator's cache-revalidation fingerprints, so
        # paying the tuple hash once at construction keeps those hot.
        object.__setattr__(
            self,
            "_hash",
            hash((self.name, self.qubits, self.params, self.clbits)),
        )

    def __hash__(self) -> int:
        return self._hash

    @property
    def num_qubits(self) -> int:
        return len(self.qubits)

    @property
    def is_unitary(self) -> bool:
        return self.name not in NON_UNITARY

    def inverse(self) -> "Instruction":
        """The inverse instruction (same qubits)."""
        if not self.is_unitary:
            raise ValueError(f"cannot invert non-unitary instruction '{self.name}'")
        inv_name, inv_params = get_spec(self.name).inverse(self.params)
        return Instruction(inv_name, self.qubits, tuple(inv_params))

    def remap(self, mapping: Dict[int, int]) -> "Instruction":
        """Return a copy with qubits remapped through ``mapping``."""
        return Instruction(
            self.name,
            tuple(mapping[q] for q in self.qubits),
            self.params,
            self.clbits,
        )

    def __reduce__(self):
        # Rebuild through __init__ so the precomputed ``_hash`` is
        # recomputed in the destination interpreter: ``hash(str)`` is
        # salted per process, so a hash pickled from another process
        # would break equal-objects-equal-hash there.
        return (Instruction, (self.name, self.qubits, self.params, self.clbits))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        parts = [self.name, str(list(self.qubits))]
        if self.params:
            parts.append(f"params={list(self.params)}")
        if self.clbits:
            parts.append(f"clbits={list(self.clbits)}")
        return f"Instruction({', '.join(parts)})"


@dataclass
class QuantumCircuit:
    """A quantum circuit over ``num_qubits`` qubits and ``num_clbits`` classical bits."""

    num_qubits: int
    num_clbits: int = 0
    name: str = "circuit"
    global_phase: float = 0.0
    instructions: List[Instruction] = field(default_factory=list)
    metadata: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.num_qubits < 0:
            raise ValueError("num_qubits must be non-negative")
        if self.num_clbits < 0:
            raise ValueError("num_clbits must be non-negative")

    # ------------------------------------------------------------------
    # Core mutation
    # ------------------------------------------------------------------

    def append(
        self,
        name: str,
        qubits: Sequence[int],
        params: Sequence[float] = (),
        clbits: Sequence[int] = (),
    ) -> "QuantumCircuit":
        """Append an operation, validating arity and index bounds."""
        spec = get_spec(name)
        qubits = tuple(int(q) for q in qubits)
        params = tuple(float(p) for p in params)
        clbits = tuple(int(c) for c in clbits)
        if name != "barrier" and len(qubits) != spec.num_qubits:
            raise ValueError(
                f"gate '{name}' expects {spec.num_qubits} qubits, got {len(qubits)}"
            )
        if len(params) != spec.num_params:
            raise ValueError(
                f"gate '{name}' expects {spec.num_params} params, got {len(params)}"
            )
        for q in qubits:
            if not 0 <= q < self.num_qubits:
                raise ValueError(f"qubit index {q} out of range [0, {self.num_qubits})")
        if len(set(qubits)) != len(qubits):
            raise ValueError(f"duplicate qubit arguments in {name}{qubits}")
        for c in clbits:
            if not 0 <= c < self.num_clbits:
                raise ValueError(f"clbit index {c} out of range [0, {self.num_clbits})")
        self.instructions.append(Instruction(name, qubits, params, clbits))
        return self

    def append_instruction(self, instruction: Instruction) -> "QuantumCircuit":
        """Append an existing :class:`Instruction` (re-validated)."""
        return self.append(
            instruction.name, instruction.qubits, instruction.params, instruction.clbits
        )

    # ------------------------------------------------------------------
    # Builder API (one method per registered gate)
    # ------------------------------------------------------------------

    def i(self, qubit: int) -> "QuantumCircuit":
        return self.append("id", (qubit,))

    def x(self, qubit: int) -> "QuantumCircuit":
        return self.append("x", (qubit,))

    def y(self, qubit: int) -> "QuantumCircuit":
        return self.append("y", (qubit,))

    def z(self, qubit: int) -> "QuantumCircuit":
        return self.append("z", (qubit,))

    def h(self, qubit: int) -> "QuantumCircuit":
        return self.append("h", (qubit,))

    def s(self, qubit: int) -> "QuantumCircuit":
        return self.append("s", (qubit,))

    def sdg(self, qubit: int) -> "QuantumCircuit":
        return self.append("sdg", (qubit,))

    def t(self, qubit: int) -> "QuantumCircuit":
        return self.append("t", (qubit,))

    def tdg(self, qubit: int) -> "QuantumCircuit":
        return self.append("tdg", (qubit,))

    def sx(self, qubit: int) -> "QuantumCircuit":
        return self.append("sx", (qubit,))

    def sxdg(self, qubit: int) -> "QuantumCircuit":
        return self.append("sxdg", (qubit,))

    def rx(self, theta: float, qubit: int) -> "QuantumCircuit":
        return self.append("rx", (qubit,), (theta,))

    def ry(self, theta: float, qubit: int) -> "QuantumCircuit":
        return self.append("ry", (qubit,), (theta,))

    def rz(self, theta: float, qubit: int) -> "QuantumCircuit":
        return self.append("rz", (qubit,), (theta,))

    def p(self, lam: float, qubit: int) -> "QuantumCircuit":
        return self.append("p", (qubit,), (lam,))

    def u(self, theta: float, phi: float, lam: float, qubit: int) -> "QuantumCircuit":
        return self.append("u", (qubit,), (theta, phi, lam))

    def prx(self, theta: float, phi: float, qubit: int) -> "QuantumCircuit":
        return self.append("prx", (qubit,), (theta, phi))

    def cx(self, control: int, target: int) -> "QuantumCircuit":
        return self.append("cx", (control, target))

    def cy(self, control: int, target: int) -> "QuantumCircuit":
        return self.append("cy", (control, target))

    def cz(self, control: int, target: int) -> "QuantumCircuit":
        return self.append("cz", (control, target))

    def ch(self, control: int, target: int) -> "QuantumCircuit":
        return self.append("ch", (control, target))

    def swap(self, qubit_a: int, qubit_b: int) -> "QuantumCircuit":
        return self.append("swap", (qubit_a, qubit_b))

    def iswap(self, qubit_a: int, qubit_b: int) -> "QuantumCircuit":
        return self.append("iswap", (qubit_a, qubit_b))

    def cp(self, lam: float, control: int, target: int) -> "QuantumCircuit":
        return self.append("cp", (control, target), (lam,))

    def crx(self, theta: float, control: int, target: int) -> "QuantumCircuit":
        return self.append("crx", (control, target), (theta,))

    def cry(self, theta: float, control: int, target: int) -> "QuantumCircuit":
        return self.append("cry", (control, target), (theta,))

    def crz(self, theta: float, control: int, target: int) -> "QuantumCircuit":
        return self.append("crz", (control, target), (theta,))

    def rxx(self, theta: float, qubit_a: int, qubit_b: int) -> "QuantumCircuit":
        return self.append("rxx", (qubit_a, qubit_b), (theta,))

    def ryy(self, theta: float, qubit_a: int, qubit_b: int) -> "QuantumCircuit":
        return self.append("ryy", (qubit_a, qubit_b), (theta,))

    def rzz(self, theta: float, qubit_a: int, qubit_b: int) -> "QuantumCircuit":
        return self.append("rzz", (qubit_a, qubit_b), (theta,))

    def rzx(self, theta: float, qubit_a: int, qubit_b: int) -> "QuantumCircuit":
        return self.append("rzx", (qubit_a, qubit_b), (theta,))

    def ccx(self, control_a: int, control_b: int, target: int) -> "QuantumCircuit":
        return self.append("ccx", (control_a, control_b, target))

    def ccz(self, control_a: int, control_b: int, target: int) -> "QuantumCircuit":
        return self.append("ccz", (control_a, control_b, target))

    def cswap(self, control: int, target_a: int, target_b: int) -> "QuantumCircuit":
        return self.append("cswap", (control, target_a, target_b))

    def measure(self, qubit: int, clbit: int) -> "QuantumCircuit":
        return self.append("measure", (qubit,), clbits=(clbit,))

    def measure_all(self) -> "QuantumCircuit":
        """Measure every qubit into the classical bit of the same index.

        Grows the classical register to ``num_qubits`` if needed.
        """
        if self.num_clbits < self.num_qubits:
            self.num_clbits = self.num_qubits
        for q in range(self.num_qubits):
            self.measure(q, q)
        return self

    def barrier(self, *qubits: int) -> "QuantumCircuit":
        """A scheduling barrier on the given qubits (all qubits if none given)."""
        targets = tuple(qubits) if qubits else tuple(range(self.num_qubits))
        for q in targets:
            if not 0 <= q < self.num_qubits:
                raise ValueError(f"qubit index {q} out of range")
        self.instructions.append(Instruction("barrier", targets))
        return self

    # ------------------------------------------------------------------
    # Composite builders (decomposed into elementary gates)
    # ------------------------------------------------------------------

    def mcx(self, controls: Sequence[int], target: int) -> "QuantumCircuit":
        """Multi-controlled X without ancilla qubits.

        Uses ``MCX = H(target) . MCZ . H(target)`` with the Gray-code
        multi-controlled-phase network, costing ``O(2^k)`` two-qubit gates
        for ``k`` controls — the realistic ancilla-free scaling.
        """
        controls = list(controls)
        if target in controls:
            raise ValueError("target must not be a control")
        if len(controls) == 0:
            return self.x(target)
        if len(controls) == 1:
            return self.cx(controls[0], target)
        if len(controls) == 2:
            return self.ccx(controls[0], controls[1], target)
        self.h(target)
        self.mcp(math.pi, controls, target)
        self.h(target)
        return self

    def mcp(self, lam: float, controls: Sequence[int], target: int) -> "QuantumCircuit":
        """Multi-controlled phase gate via the Gray-code network (N&C 4.3).

        Walks the Gray code over the control register, applying
        ``cp(+/- lam / 2^(k-1))`` between the highest active control and the
        target, with CX gates folding parities between controls.  Exact for
        every control count; cost ``O(2^k)``.
        """
        controls = list(controls)
        if target in controls:
            raise ValueError("target must not be a control")
        if len(controls) == 0:
            return self.p(lam, target)
        if len(controls) == 1:
            return self.cp(lam, controls[0], target)
        k = len(controls)
        angle = lam / (1 << (k - 1))
        gray = [i ^ (i >> 1) for i in range(1 << k)]
        last_pattern = 0
        for pattern in gray[1:]:
            msb = pattern.bit_length() - 1
            changed = (pattern ^ last_pattern).bit_length() - 1
            if changed != msb:
                self.cx(controls[changed], controls[msb])
            else:
                # A new most-significant control activated: rebuild the
                # pattern's parity onto it from the other active controls.
                for idx in range(msb):
                    if (pattern >> idx) & 1:
                        self.cx(controls[idx], controls[msb])
            if bin(pattern).count("1") % 2 == 0:
                self.cp(-angle, controls[msb], target)
            else:
                self.cp(angle, controls[msb], target)
            last_pattern = pattern
        return self

    def mcz(self, controls: Sequence[int], target: int) -> "QuantumCircuit":
        """Multi-controlled Z via ``mcp(pi)``."""
        controls = list(controls)
        if len(controls) == 2:
            return self.ccz(controls[0], controls[1], target)
        return self.mcp(math.pi, controls, target)

    # ------------------------------------------------------------------
    # Structural operations
    # ------------------------------------------------------------------

    def copy(self, name: str | None = None) -> "QuantumCircuit":
        """A deep-enough copy (instructions are immutable)."""
        return QuantumCircuit(
            num_qubits=self.num_qubits,
            num_clbits=self.num_clbits,
            name=name or self.name,
            global_phase=self.global_phase,
            instructions=list(self.instructions),
            metadata=dict(self.metadata),
        )

    def to_arrays(self) -> Dict[str, object]:
        """Flat-array encoding of the circuit (cheap pickling support).

        Mirrors the flat-node idiom of
        :meth:`repro.ml.tree.DecisionTreeRegressor.to_arrays`: the
        instruction list flattens into a gate-name vocabulary plus
        parallel code/count/value arrays, so shipping a circuit to a
        worker process costs a handful of numpy buffers instead of one
        Python object per instruction.  Feed the result to
        :meth:`from_arrays` to reconstruct an identical circuit.
        """
        vocab: Dict[str, int] = {}
        codes: List[int] = []
        q_counts: List[int] = []
        p_counts: List[int] = []
        c_counts: List[int] = []
        q_flat: List[int] = []
        p_flat: List[float] = []
        c_flat: List[int] = []
        for instruction in self.instructions:
            codes.append(vocab.setdefault(instruction.name, len(vocab)))
            q_counts.append(len(instruction.qubits))
            q_flat.extend(instruction.qubits)
            p_counts.append(len(instruction.params))
            p_flat.extend(instruction.params)
            c_counts.append(len(instruction.clbits))
            c_flat.extend(instruction.clbits)
        return {
            "num_qubits": self.num_qubits,
            "num_clbits": self.num_clbits,
            "name": self.name,
            "global_phase": self.global_phase,
            "metadata": dict(self.metadata),
            "gate_names": tuple(vocab),
            "codes": np.asarray(codes, dtype=np.int32),
            "qubit_counts": np.asarray(q_counts, dtype=np.int32),
            "qubits": np.asarray(q_flat, dtype=np.int32),
            "param_counts": np.asarray(p_counts, dtype=np.int32),
            "params": np.asarray(p_flat, dtype=np.float64),
            "clbit_counts": np.asarray(c_counts, dtype=np.int32),
            "clbits": np.asarray(c_flat, dtype=np.int32),
        }

    @classmethod
    def from_arrays(cls, arrays: Dict[str, object]) -> "QuantumCircuit":
        """Rebuild a circuit from :meth:`to_arrays` output.

        The rebuilt instructions are bit-identical to the originals
        (names, integer indices, and float64 parameters all round-trip
        exactly); validation is skipped because the encoder only emits
        circuits that already passed it.
        """
        gate_names = arrays["gate_names"]
        codes = np.asarray(arrays["codes"]).tolist()
        q_counts = np.asarray(arrays["qubit_counts"]).tolist()
        p_counts = np.asarray(arrays["param_counts"]).tolist()
        c_counts = np.asarray(arrays["clbit_counts"]).tolist()
        q_flat = np.asarray(arrays["qubits"]).tolist()
        p_flat = np.asarray(arrays["params"]).tolist()
        c_flat = np.asarray(arrays["clbits"]).tolist()
        instructions: List[Instruction] = []
        qi = pi = ci = 0
        for code, nq, npar, nc in zip(codes, q_counts, p_counts, c_counts):
            instructions.append(
                Instruction(
                    gate_names[code],
                    tuple(q_flat[qi:qi + nq]),
                    tuple(p_flat[pi:pi + npar]),
                    tuple(c_flat[ci:ci + nc]),
                )
            )
            qi += nq
            pi += npar
            ci += nc
        return cls(
            num_qubits=int(arrays["num_qubits"]),
            num_clbits=int(arrays["num_clbits"]),
            name=str(arrays["name"]),
            global_phase=float(arrays["global_phase"]),
            instructions=instructions,
            metadata=dict(arrays["metadata"]),
        )

    def __reduce__(self):
        # Pickle through the flat-array encoding: process-pool payloads
        # (and anything else that pickles circuits) ship numpy buffers
        # instead of per-instruction objects, and instruction hashes are
        # recomputed under the destination interpreter's hash salt.
        return (_rebuild_circuit, (type(self), self.to_arrays()))

    def inverse(self) -> "QuantumCircuit":
        """The adjoint circuit (fails on measure; barriers are preserved)."""
        inv = QuantumCircuit(
            self.num_qubits, self.num_clbits,
            name=f"{self.name}_dg", global_phase=-self.global_phase,
        )
        for instruction in reversed(self.instructions):
            if instruction.name == "barrier":
                inv.instructions.append(instruction)
            else:
                inv.instructions.append(instruction.inverse())
        return inv

    def compose(
        self,
        other: "QuantumCircuit",
        qubits: Sequence[int] | None = None,
        clbits: Sequence[int] | None = None,
    ) -> "QuantumCircuit":
        """Append ``other`` onto ``self`` (in place), remapping its bits.

        Args:
            other: circuit to append.
            qubits: target qubits for ``other``'s qubits (defaults to identity).
            clbits: target clbits for ``other``'s clbits (defaults to identity).
        """
        if qubits is None:
            qubits = list(range(other.num_qubits))
        if clbits is None:
            clbits = list(range(other.num_clbits))
        if len(qubits) != other.num_qubits:
            raise ValueError("qubit mapping length mismatch")
        if len(clbits) != other.num_clbits:
            raise ValueError("clbit mapping length mismatch")
        qubit_map = {i: int(q) for i, q in enumerate(qubits)}
        clbit_map = {i: int(c) for i, c in enumerate(clbits)}
        for instruction in other.instructions:
            mapped = Instruction(
                instruction.name,
                tuple(qubit_map[q] for q in instruction.qubits),
                instruction.params,
                tuple(clbit_map[c] for c in instruction.clbits),
            )
            if instruction.name == "barrier":
                self.instructions.append(mapped)
            else:
                self.append_instruction(mapped)
        self.global_phase += other.global_phase
        return self

    def power(self, exponent: int) -> "QuantumCircuit":
        """Repeat the circuit ``exponent`` times (inverse if negative)."""
        base = self if exponent >= 0 else self.inverse()
        out = QuantumCircuit(self.num_qubits, self.num_clbits,
                             name=f"{self.name}^{exponent}")
        for _ in range(abs(exponent)):
            out.compose(base)
        return out

    def remap_qubits(self, mapping: Dict[int, int],
                     num_qubits: int | None = None) -> "QuantumCircuit":
        """Return a new circuit with qubit ``q`` relabelled ``mapping[q]``."""
        out = QuantumCircuit(
            num_qubits if num_qubits is not None else self.num_qubits,
            self.num_clbits,
            name=self.name,
            global_phase=self.global_phase,
            metadata=dict(self.metadata),
        )
        for instruction in self.instructions:
            out.instructions.append(instruction.remap(mapping))
        return out

    def without_directives(self) -> "QuantumCircuit":
        """A copy with measures and barriers stripped (for unitary checks)."""
        out = self.copy()
        out.instructions = [
            ins for ins in self.instructions if ins.is_unitary
        ]
        return out

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.instructions)

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self.instructions)

    def count_ops(self) -> Dict[str, int]:
        """Histogram of operation names."""
        counts: Dict[str, int] = {}
        for instruction in self.instructions:
            counts[instruction.name] = counts.get(instruction.name, 0) + 1
        return counts

    def size(self, include_directives: bool = False) -> int:
        """Number of gates (directives excluded by default)."""
        if include_directives:
            return len(self.instructions)
        return sum(1 for ins in self.instructions if ins.is_unitary)

    def num_nonlocal_gates(self) -> int:
        """Number of unitary gates acting on two or more qubits."""
        return sum(
            1 for ins in self.instructions
            if ins.is_unitary and ins.num_qubits >= 2
        )

    def depth(self, include_measure: bool = True) -> int:
        """Longest path length through the circuit (barriers excluded)."""
        frontier = [0] * max(self.num_qubits, 1)
        cl_frontier = [0] * max(self.num_clbits, 1)
        depth = 0
        for instruction in self.instructions:
            if instruction.name == "barrier":
                continue
            if instruction.name == "measure" and not include_measure:
                continue
            level = max(frontier[q] for q in instruction.qubits)
            if instruction.clbits:
                level = max(level, max(cl_frontier[c] for c in instruction.clbits))
            level += 1
            for q in instruction.qubits:
                frontier[q] = level
            for c in instruction.clbits:
                cl_frontier[c] = level
            depth = max(depth, level)
        return depth

    def active_qubits(self) -> Tuple[int, ...]:
        """Qubits touched by at least one non-barrier operation."""
        seen = set()
        for instruction in self.instructions:
            if instruction.name == "barrier":
                continue
            seen.update(instruction.qubits)
        return tuple(sorted(seen))

    def measured_qubits(self) -> Tuple[Tuple[int, int], ...]:
        """All ``(qubit, clbit)`` measurement pairs, in order."""
        return tuple(
            (ins.qubits[0], ins.clbits[0])
            for ins in self.instructions
            if ins.name == "measure"
        )

    def two_qubit_interactions(self) -> Dict[Tuple[int, int], int]:
        """Histogram of (sorted) qubit pairs coupled by multi-qubit gates."""
        pairs: Dict[Tuple[int, int], int] = {}
        for instruction in self.instructions:
            if not instruction.is_unitary or instruction.num_qubits < 2:
                continue
            qubits = instruction.qubits
            for i in range(len(qubits)):
                for j in range(i + 1, len(qubits)):
                    key = tuple(sorted((qubits[i], qubits[j])))
                    pairs[key] = pairs.get(key, 0) + 1
        return pairs

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"QuantumCircuit(name={self.name!r}, qubits={self.num_qubits}, "
            f"clbits={self.num_clbits}, size={self.size()}, depth={self.depth()})"
        )

    def draw(self) -> str:
        """ASCII rendering (delegates to :mod:`repro.circuits.text_drawer`)."""
        from .text_drawer import draw_circuit

        return draw_circuit(self)


def _rebuild_circuit(cls, arrays) -> "QuantumCircuit":
    """Pickle target for :meth:`QuantumCircuit.__reduce__`."""
    return cls.from_arrays(arrays)


def circuit_from_instructions(
    num_qubits: int,
    instructions: Iterable[Instruction],
    num_clbits: int = 0,
    name: str = "circuit",
    global_phase: float = 0.0,
) -> QuantumCircuit:
    """Build a circuit directly from an instruction iterable (validated)."""
    circuit = QuantumCircuit(num_qubits, num_clbits, name=name,
                             global_phase=global_phase)
    for instruction in instructions:
        if instruction.name == "barrier":
            circuit.instructions.append(instruction)
        else:
            circuit.append_instruction(instruction)
    return circuit
