"""Minimal OpenQASM 2.0 export/import.

Supports the gate vocabulary of :mod:`repro.circuits.gates` with a single
quantum register ``q`` and classical register ``c``.  This is enough to
round-trip every circuit the library produces and to interoperate with
external tools on simple circuits.
"""

from __future__ import annotations

import math
import re
from typing import List

from .circuit import QuantumCircuit
from .gates import GATES

# QASM spellings differing from our registry names.
_TO_QASM = {"p": "u1", "iswap_dg": "iswap_dg"}
_FROM_QASM = {
    "u1": ("p", 1),
    "u2": ("u2", 2),
    "u3": ("u", 3),
    "cnot": ("cx", 0),
    "toffoli": ("ccx", 0),
    "phase": ("p", 1),
}


def to_qasm(circuit: QuantumCircuit) -> str:
    """Serialize a circuit to OpenQASM 2.0 text."""
    lines = [
        "OPENQASM 2.0;",
        'include "qelib1.inc";',
        f"qreg q[{circuit.num_qubits}];",
    ]
    if circuit.num_clbits:
        lines.append(f"creg c[{circuit.num_clbits}];")
    for instruction in circuit.instructions:
        if instruction.name == "barrier":
            args = ",".join(f"q[{q}]" for q in instruction.qubits)
            lines.append(f"barrier {args};")
            continue
        if instruction.name == "measure":
            lines.append(
                f"measure q[{instruction.qubits[0]}] -> c[{instruction.clbits[0]}];"
            )
            continue
        name = _TO_QASM.get(instruction.name, instruction.name)
        if instruction.params:
            params = ",".join(_format_angle(p) for p in instruction.params)
            head = f"{name}({params})"
        else:
            head = name
        args = ",".join(f"q[{q}]" for q in instruction.qubits)
        lines.append(f"{head} {args};")
    return "\n".join(lines) + "\n"


def _format_angle(value: float) -> str:
    """Render an angle, preferring exact pi fractions for readability."""
    for denom in (1, 2, 3, 4, 6, 8, 16):
        for num in range(-16 * denom, 16 * denom + 1):
            if num == 0:
                continue
            if math.isclose(value, num * math.pi / denom, rel_tol=0, abs_tol=1e-12):
                frac = f"pi*{num}/{denom}" if denom != 1 else f"pi*{num}"
                return frac.replace("pi*1/", "pi/").replace("pi*1", "pi")
    if math.isclose(value, 0.0, abs_tol=1e-15):
        return "0"
    return repr(value)


_STATEMENT_RE = re.compile(
    r"^\s*(?P<name>[a-zA-Z_][\w]*)\s*"
    r"(\((?P<params>[^)]*)\))?\s*"
    r"(?P<args>[^;]*);\s*$"
)
_QREG_RE = re.compile(r"^\s*qreg\s+(\w+)\[(\d+)\]\s*;\s*$")
_CREG_RE = re.compile(r"^\s*creg\s+(\w+)\[(\d+)\]\s*;\s*$")
_MEASURE_RE = re.compile(
    r"^\s*measure\s+(\w+)\[(\d+)\]\s*->\s*(\w+)\[(\d+)\]\s*;\s*$"
)
_INDEX_RE = re.compile(r"(\w+)\[(\d+)\]")


def _eval_angle(expr: str) -> float:
    """Evaluate a restricted arithmetic expression with ``pi``."""
    expr = expr.strip().replace("pi", repr(math.pi))
    if not re.fullmatch(r"[\d\.\+\-\*/\(\)eE\s]+", expr):
        raise ValueError(f"unsupported angle expression: {expr!r}")
    return float(eval(expr, {"__builtins__": {}}, {}))  # noqa: S307 - sanitized


def from_qasm(text: str) -> QuantumCircuit:
    """Parse OpenQASM 2.0 text into a :class:`QuantumCircuit`."""
    num_qubits = 0
    num_clbits = 0
    body: List[str] = []
    for raw_line in text.splitlines():
        line = raw_line.split("//")[0].strip()
        if not line:
            continue
        if line.startswith(("OPENQASM", "include")):
            continue
        qreg = _QREG_RE.match(line)
        if qreg:
            num_qubits = int(qreg.group(2))
            continue
        creg = _CREG_RE.match(line)
        if creg:
            num_clbits = int(creg.group(2))
            continue
        body.append(line)

    circuit = QuantumCircuit(num_qubits, num_clbits, name="from_qasm")
    for line in body:
        measure = _MEASURE_RE.match(line)
        if measure:
            circuit.measure(int(measure.group(2)), int(measure.group(4)))
            continue
        match = _STATEMENT_RE.match(line)
        if not match:
            raise ValueError(f"cannot parse QASM statement: {line!r}")
        name = match.group("name").lower()
        params_text = match.group("params")
        args_text = match.group("args")
        qubits = [int(m.group(2)) for m in _INDEX_RE.finditer(args_text)]
        params = (
            [_eval_angle(p) for p in params_text.split(",")] if params_text else []
        )
        if name == "barrier":
            circuit.barrier(*qubits)
            continue
        name, params = _translate_gate(name, params)
        circuit.append(name, qubits, params)
    return circuit


def _translate_gate(name: str, params: List[float]):
    """Map a QASM gate spelling to the registry vocabulary."""
    if name in _FROM_QASM:
        target, arity = _FROM_QASM[name]
        if target == "u2":  # u2(phi, lam) = u(pi/2, phi, lam)
            return "u", [math.pi / 2, params[0], params[1]]
        if len(params) != arity:
            raise ValueError(f"gate {name} expects {arity} params")
        return target, params
    if name not in GATES:
        raise ValueError(f"unsupported QASM gate: {name}")
    return name, params


def qasm_roundtrip_equal(circuit: QuantumCircuit) -> bool:
    """Whether export->import preserves the instruction list exactly."""
    parsed = from_qasm(to_qasm(circuit))
    if parsed.num_qubits != circuit.num_qubits:
        return False
    if len(parsed.instructions) != len(circuit.instructions):
        return False
    for a, b in zip(parsed.instructions, circuit.instructions):
        if a.name != b.name or a.qubits != b.qubits or a.clbits != b.clbits:
            return False
        if len(a.params) != len(b.params):
            return False
        if any(abs(x - y) > 1e-9 for x, y in zip(a.params, b.params)):
            return False
    return True
