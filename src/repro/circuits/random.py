"""Random circuit generation for tests, benchmarks, and workloads."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .circuit import QuantumCircuit

_DEFAULT_ONE_QUBIT = ("h", "x", "y", "z", "s", "sdg", "t", "tdg", "sx")
_DEFAULT_ONE_QUBIT_PARAM = ("rx", "ry", "rz", "p")
_DEFAULT_TWO_QUBIT = ("cx", "cz", "swap")
_DEFAULT_TWO_QUBIT_PARAM = ("cp", "crx", "rzz", "rxx")


def random_circuit(
    num_qubits: int,
    depth: int,
    seed: int | np.random.Generator = 0,
    two_qubit_prob: float = 0.5,
    parametric_prob: float = 0.5,
    one_qubit_gates: Sequence[str] = _DEFAULT_ONE_QUBIT,
    one_qubit_param_gates: Sequence[str] = _DEFAULT_ONE_QUBIT_PARAM,
    two_qubit_gates: Sequence[str] = _DEFAULT_TWO_QUBIT,
    two_qubit_param_gates: Sequence[str] = _DEFAULT_TWO_QUBIT_PARAM,
    measure: bool = False,
) -> QuantumCircuit:
    """Generate a layered random circuit.

    Each of the ``depth`` layers packs random gates onto disjoint qubits:
    with probability ``two_qubit_prob`` a random two-qubit gate is placed on
    a random free pair, otherwise a single-qubit gate on a random free qubit.
    Parametric gates draw angles uniformly from ``[0, 2*pi)``.

    Args:
        num_qubits: circuit width (must be >= 1).
        depth: number of gate layers.
        seed: integer seed or an existing generator.
        two_qubit_prob: probability of placing a two-qubit gate per slot.
        parametric_prob: probability of choosing a parameterized gate.
        one_qubit_gates / one_qubit_param_gates: candidate pools.
        two_qubit_gates / two_qubit_param_gates: candidate pools.
        measure: append a full measurement layer at the end.
    """
    if num_qubits < 1:
        raise ValueError("num_qubits must be >= 1")
    rng = seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)
    circuit = QuantumCircuit(num_qubits, name=f"random_{num_qubits}x{depth}")
    for _ in range(depth):
        free = list(range(num_qubits))
        rng.shuffle(free)
        while free:
            place_two = (
                len(free) >= 2 and rng.random() < two_qubit_prob
            )
            parametric = rng.random() < parametric_prob
            if place_two:
                a, b = free.pop(), free.pop()
                if parametric and two_qubit_param_gates:
                    name = str(rng.choice(two_qubit_param_gates))
                    circuit.append(name, (a, b), (float(rng.uniform(0, 2 * np.pi)),))
                else:
                    name = str(rng.choice(two_qubit_gates))
                    circuit.append(name, (a, b))
            else:
                q = free.pop()
                if parametric and one_qubit_param_gates:
                    name = str(rng.choice(one_qubit_param_gates))
                    circuit.append(name, (q,), (float(rng.uniform(0, 2 * np.pi)),))
                else:
                    name = str(rng.choice(one_qubit_gates))
                    circuit.append(name, (q,))
    if measure:
        circuit.measure_all()
    return circuit


def random_clifford_circuit(
    num_qubits: int, depth: int, seed: int | np.random.Generator = 0,
    measure: bool = False,
) -> QuantumCircuit:
    """Random circuit restricted to Clifford gates (useful for mirror tests)."""
    return random_circuit(
        num_qubits,
        depth,
        seed=seed,
        parametric_prob=0.0,
        one_qubit_gates=("h", "s", "sdg", "x", "y", "z", "sx"),
        two_qubit_gates=("cx", "cz", "swap"),
        measure=measure,
    )
