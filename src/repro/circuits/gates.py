"""Gate definitions and the global gate registry.

Every gate used anywhere in the library is described by a :class:`GateSpec`
registered in :data:`GATES`.  A spec knows how many qubits and parameters the
gate takes, how to build its unitary matrix, and how to invert it.  The
matrix convention follows Qiskit: for a gate applied to qubits
``(q0, q1, ...)``, bit ``k`` of the matrix index corresponds to ``qk`` and
``q0`` is the least-significant bit.
"""

from __future__ import annotations

import cmath
import math
from dataclasses import dataclass
from functools import lru_cache
from typing import Callable, Dict, Sequence, Tuple

import numpy as np

Params = Tuple[float, ...]

_SQRT2_INV = 1.0 / math.sqrt(2.0)


def _mat(rows) -> np.ndarray:
    return np.array(rows, dtype=complex)


# ---------------------------------------------------------------------------
# Fixed single-qubit matrices
# ---------------------------------------------------------------------------

ID_MATRIX = _mat([[1, 0], [0, 1]])
X_MATRIX = _mat([[0, 1], [1, 0]])
Y_MATRIX = _mat([[0, -1j], [1j, 0]])
Z_MATRIX = _mat([[1, 0], [0, -1]])
H_MATRIX = _mat([[_SQRT2_INV, _SQRT2_INV], [_SQRT2_INV, -_SQRT2_INV]])
S_MATRIX = _mat([[1, 0], [0, 1j]])
SDG_MATRIX = _mat([[1, 0], [0, -1j]])
T_MATRIX = _mat([[1, 0], [0, cmath.exp(1j * math.pi / 4)]])
TDG_MATRIX = _mat([[1, 0], [0, cmath.exp(-1j * math.pi / 4)]])
SX_MATRIX = 0.5 * _mat([[1 + 1j, 1 - 1j], [1 - 1j, 1 + 1j]])
SXDG_MATRIX = 0.5 * _mat([[1 - 1j, 1 + 1j], [1 + 1j, 1 - 1j]])


# ---------------------------------------------------------------------------
# Parameterized single-qubit matrices
# ---------------------------------------------------------------------------

def rx_matrix(theta: float) -> np.ndarray:
    """Rotation about the X axis by ``theta``."""
    c, s = math.cos(theta / 2), math.sin(theta / 2)
    return _mat([[c, -1j * s], [-1j * s, c]])


def ry_matrix(theta: float) -> np.ndarray:
    """Rotation about the Y axis by ``theta``."""
    c, s = math.cos(theta / 2), math.sin(theta / 2)
    return _mat([[c, -s], [s, c]])


def rz_matrix(theta: float) -> np.ndarray:
    """Rotation about the Z axis by ``theta`` (traceless convention)."""
    e = cmath.exp(-1j * theta / 2)
    return _mat([[e, 0], [0, e.conjugate()]])


def p_matrix(lam: float) -> np.ndarray:
    """Phase gate: ``diag(1, exp(i*lam))``."""
    return _mat([[1, 0], [0, cmath.exp(1j * lam)]])


def u_matrix(theta: float, phi: float, lam: float) -> np.ndarray:
    """Generic single-qubit unitary ``U(theta, phi, lam)`` (Qiskit's ``u``)."""
    c, s = math.cos(theta / 2), math.sin(theta / 2)
    return _mat(
        [
            [c, -cmath.exp(1j * lam) * s],
            [cmath.exp(1j * phi) * s, cmath.exp(1j * (phi + lam)) * c],
        ]
    )


def prx_matrix(theta: float, phi: float) -> np.ndarray:
    """IQM's phased-RX gate: a rotation by ``theta`` about ``cos(phi) X + sin(phi) Y``.

    ``PRX(theta, phi) = RZ(phi) . RX(theta) . RZ(-phi)``.
    """
    c, s = math.cos(theta / 2), math.sin(theta / 2)
    return _mat(
        [
            [c, -1j * s * cmath.exp(-1j * phi)],
            [-1j * s * cmath.exp(1j * phi), c],
        ]
    )


# ---------------------------------------------------------------------------
# Two-qubit matrices.  Bit 0 of the index is the *first* qubit argument.
# ---------------------------------------------------------------------------

def _controlled(u: np.ndarray) -> np.ndarray:
    """Controlled-U with control = first qubit argument (bit 0), target = second."""
    out = np.eye(4, dtype=complex)
    # Control is bit 0 -> rows/cols where bit0 == 1 are indices 1 and 3.
    # Target is bit 1, so the embedded U acts on the subspace {1, 3}.
    out[1, 1], out[1, 3] = u[0, 0], u[0, 1]
    out[3, 1], out[3, 3] = u[1, 0], u[1, 1]
    return out


CX_MATRIX = _controlled(X_MATRIX)
CY_MATRIX = _controlled(Y_MATRIX)
CZ_MATRIX = _controlled(Z_MATRIX)
CH_MATRIX = _controlled(H_MATRIX)
SWAP_MATRIX = _mat(
    [[1, 0, 0, 0], [0, 0, 1, 0], [0, 1, 0, 0], [0, 0, 0, 1]]
)
ISWAP_MATRIX = _mat(
    [[1, 0, 0, 0], [0, 0, 1j, 0], [0, 1j, 0, 0], [0, 0, 0, 1]]
)


def cp_matrix(lam: float) -> np.ndarray:
    """Controlled-phase gate."""
    return _controlled(p_matrix(lam))


def crx_matrix(theta: float) -> np.ndarray:
    """Controlled-RX gate."""
    return _controlled(rx_matrix(theta))


def cry_matrix(theta: float) -> np.ndarray:
    """Controlled-RY gate."""
    return _controlled(ry_matrix(theta))


def crz_matrix(theta: float) -> np.ndarray:
    """Controlled-RZ gate."""
    return _controlled(rz_matrix(theta))


def _two_qubit_rotation(pauli_a: np.ndarray, pauli_b: np.ndarray, theta: float) -> np.ndarray:
    """``exp(-i theta/2 * (A tensor B))`` where A acts on bit1, B on bit0."""
    kron = np.kron(pauli_a, pauli_b)  # np.kron: first factor = most-significant bit
    c, s = math.cos(theta / 2), math.sin(theta / 2)
    return np.eye(4, dtype=complex) * c - 1j * s * kron


def rxx_matrix(theta: float) -> np.ndarray:
    """Two-qubit XX rotation."""
    return _two_qubit_rotation(X_MATRIX, X_MATRIX, theta)


def ryy_matrix(theta: float) -> np.ndarray:
    """Two-qubit YY rotation."""
    return _two_qubit_rotation(Y_MATRIX, Y_MATRIX, theta)


def rzz_matrix(theta: float) -> np.ndarray:
    """Two-qubit ZZ rotation."""
    return _two_qubit_rotation(Z_MATRIX, Z_MATRIX, theta)


def rzx_matrix(theta: float) -> np.ndarray:
    """Two-qubit ZX rotation (Z on the first argument qubit, X on the second)."""
    # First argument qubit is bit 0 -> second kron factor.
    return _two_qubit_rotation(X_MATRIX, Z_MATRIX, theta)


# ---------------------------------------------------------------------------
# Three-qubit matrices
# ---------------------------------------------------------------------------

def _ccx_matrix() -> np.ndarray:
    out = np.eye(8, dtype=complex)
    # controls = bits 0 and 1, target = bit 2: swap |011> (3) and |111> (7)
    out[3, 3] = out[7, 7] = 0
    out[3, 7] = out[7, 3] = 1
    return out


def _ccz_matrix() -> np.ndarray:
    out = np.eye(8, dtype=complex)
    out[7, 7] = -1
    return out


def _cswap_matrix() -> np.ndarray:
    out = np.eye(8, dtype=complex)
    # control = bit 0; swap targets bits 1, 2: exchange |011> (3) and |101> (5)
    out[3, 3] = out[5, 5] = 0
    out[3, 5] = out[5, 3] = 1
    return out


CCX_MATRIX = _ccx_matrix()
CCZ_MATRIX = _ccz_matrix()
CSWAP_MATRIX = _cswap_matrix()


# ---------------------------------------------------------------------------
# Gate registry
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class GateSpec:
    """Static description of a gate type.

    Attributes:
        name: canonical lowercase gate name.
        num_qubits: number of qubits the gate acts on.
        num_params: number of float parameters.
        matrix_fn: callable building the unitary from the parameters, or
            ``None`` for non-unitary directives (measure / barrier).
        inverse_name: name of the inverse gate type.
        inverse_params_fn: maps parameters to the inverse gate's parameters.
        self_inverse: convenience flag for parameter-free involutions.
    """

    name: str
    num_qubits: int
    num_params: int
    matrix_fn: Callable[..., np.ndarray] | None
    inverse_name: str
    inverse_params_fn: Callable[[Params], Params]
    self_inverse: bool = False

    def matrix(self, params: Sequence[float] = ()) -> np.ndarray:
        """Return the unitary matrix of this gate for the given parameters."""
        if self.matrix_fn is None:
            raise ValueError(f"gate '{self.name}' has no matrix")
        if len(params) != self.num_params:
            raise ValueError(
                f"gate '{self.name}' expects {self.num_params} parameters, "
                f"got {len(params)}"
            )
        return self.matrix_fn(*params)

    def inverse(self, params: Params) -> Tuple[str, Params]:
        """Return ``(name, params)`` of the inverse gate."""
        return self.inverse_name, self.inverse_params_fn(params)


GATES: Dict[str, GateSpec] = {}


def _register(
    name: str,
    num_qubits: int,
    num_params: int,
    matrix_fn,
    inverse_name: str | None = None,
    inverse_params_fn=None,
    self_inverse: bool = False,
) -> None:
    if inverse_name is None:
        inverse_name = name
    if inverse_params_fn is None:
        inverse_params_fn = lambda params: tuple(-p for p in params)  # noqa: E731
    GATES[name] = GateSpec(
        name=name,
        num_qubits=num_qubits,
        num_params=num_params,
        matrix_fn=matrix_fn,
        inverse_name=inverse_name,
        inverse_params_fn=inverse_params_fn,
        self_inverse=self_inverse,
    )


_IDENTITY_PARAMS = lambda params: params  # noqa: E731

# Fixed single-qubit gates.
_register("id", 1, 0, lambda: ID_MATRIX, self_inverse=True)
_register("x", 1, 0, lambda: X_MATRIX, self_inverse=True)
_register("y", 1, 0, lambda: Y_MATRIX, self_inverse=True)
_register("z", 1, 0, lambda: Z_MATRIX, self_inverse=True)
_register("h", 1, 0, lambda: H_MATRIX, self_inverse=True)
_register("s", 1, 0, lambda: S_MATRIX, "sdg", _IDENTITY_PARAMS)
_register("sdg", 1, 0, lambda: SDG_MATRIX, "s", _IDENTITY_PARAMS)
_register("t", 1, 0, lambda: T_MATRIX, "tdg", _IDENTITY_PARAMS)
_register("tdg", 1, 0, lambda: TDG_MATRIX, "t", _IDENTITY_PARAMS)
_register("sx", 1, 0, lambda: SX_MATRIX, "sxdg", _IDENTITY_PARAMS)
_register("sxdg", 1, 0, lambda: SXDG_MATRIX, "sx", _IDENTITY_PARAMS)

# Parameterized single-qubit gates.
_register("rx", 1, 1, rx_matrix)
_register("ry", 1, 1, ry_matrix)
_register("rz", 1, 1, rz_matrix)
_register("p", 1, 1, p_matrix)
_register(
    "u", 1, 3, u_matrix,
    inverse_params_fn=lambda params: (-params[0], -params[2], -params[1]),
)
_register(
    "prx", 1, 2, prx_matrix,
    inverse_params_fn=lambda params: (-params[0], params[1]),
)

# Two-qubit gates.
_register("cx", 2, 0, lambda: CX_MATRIX, self_inverse=True)
_register("cy", 2, 0, lambda: CY_MATRIX, self_inverse=True)
_register("cz", 2, 0, lambda: CZ_MATRIX, self_inverse=True)
_register("ch", 2, 0, lambda: CH_MATRIX, self_inverse=True)
_register("swap", 2, 0, lambda: SWAP_MATRIX, self_inverse=True)
_register(
    "iswap", 2, 0, lambda: ISWAP_MATRIX,
    inverse_name="iswap_dg",
)
_register(
    "iswap_dg", 2, 0, lambda: ISWAP_MATRIX.conj().T,
    inverse_name="iswap",
)
_register("cp", 2, 1, cp_matrix)
_register("crx", 2, 1, crx_matrix)
_register("cry", 2, 1, cry_matrix)
_register("crz", 2, 1, crz_matrix)
_register("rxx", 2, 1, rxx_matrix)
_register("ryy", 2, 1, ryy_matrix)
_register("rzz", 2, 1, rzz_matrix)
_register("rzx", 2, 1, rzx_matrix)

# Three-qubit gates.
_register("ccx", 3, 0, lambda: CCX_MATRIX, self_inverse=True)
_register("ccz", 3, 0, lambda: CCZ_MATRIX, self_inverse=True)
_register("cswap", 3, 0, lambda: CSWAP_MATRIX, self_inverse=True)

# Non-unitary directives.
_register("measure", 1, 0, None)
_register("barrier", 0, 0, None)  # variadic: may span any number of qubits

#: Gate names that describe directives rather than unitaries.
NON_UNITARY = frozenset({"measure", "barrier"})

#: Single-qubit unitary gate names.
ONE_QUBIT_GATES = frozenset(
    name for name, spec in GATES.items()
    if spec.num_qubits == 1 and name not in NON_UNITARY
)

#: Two-qubit unitary gate names.
TWO_QUBIT_GATES = frozenset(
    name for name, spec in GATES.items() if spec.num_qubits == 2
)

#: Three-qubit unitary gate names.
THREE_QUBIT_GATES = frozenset(
    name for name, spec in GATES.items() if spec.num_qubits == 3
)

#: Gates diagonal in the computational basis (commute with each other and CZ).
DIAGONAL_GATES = frozenset({"id", "z", "s", "sdg", "t", "tdg", "rz", "p",
                            "cz", "cp", "crz", "rzz", "ccz"})


def get_spec(name: str) -> GateSpec:
    """Look up a gate spec by name, raising ``KeyError`` with context."""
    try:
        return GATES[name]
    except KeyError:
        raise KeyError(
            f"unknown gate '{name}'; known gates: {sorted(GATES)}"
        ) from None


def gate_matrix(name: str, params: Sequence[float] = ()) -> np.ndarray:
    """Convenience wrapper: matrix of gate ``name`` with ``params``."""
    return get_spec(name).matrix(params)


@lru_cache(maxsize=16384)
def _cached_matrix(name: str, params: Tuple[float, ...]) -> np.ndarray:
    matrix = get_spec(name).matrix(params)
    matrix.setflags(write=False)
    return matrix


def cached_gate_matrix(name: str, params: Sequence[float] = ()) -> np.ndarray:
    """Memoized :func:`gate_matrix`.  The returned array is read-only.

    The single process-wide matrix memo, shared by the simulation kernels
    and the compiler's merge/synthesis passes (which look the same few
    matrices up hundreds of thousands of times per suite compilation).
    Callers must not write to the returned array.
    """
    return _cached_matrix(name, tuple(params))


def is_unitary_gate(name: str) -> bool:
    """Whether ``name`` denotes a unitary gate (not measure/barrier)."""
    return name in GATES and name not in NON_UNITARY
