"""ASCII circuit rendering.

A compact column-per-layer drawer used in examples, debugging, and the
README.  Each ASAP layer becomes one column; multi-qubit gates draw vertical
connectors between their qubits.
"""

from __future__ import annotations

from typing import List

from .circuit import Instruction, QuantumCircuit
from .dag import CircuitDag

_MAX_DRAW_COLUMNS = 120


def _gate_label(instruction: Instruction) -> str:
    if instruction.params:
        args = ",".join(f"{p:.2f}".rstrip("0").rstrip(".") for p in instruction.params)
        return f"{instruction.name}({args})"
    return instruction.name


def draw_circuit(circuit: QuantumCircuit) -> str:
    """Render ``circuit`` as an ASCII diagram, one row per qubit."""
    dag = CircuitDag(circuit)
    layers = _timed_layers(dag)
    if len(layers) > _MAX_DRAW_COLUMNS:
        layers = layers[:_MAX_DRAW_COLUMNS]
        truncated = True
    else:
        truncated = False

    n = circuit.num_qubits
    rows: List[List[str]] = [[f"q{q}: "] for q in range(n)]
    label_width = max(len(r[0]) for r in rows) if rows else 0
    for row in rows:
        row[0] = row[0].ljust(label_width)

    for layer in layers:
        cells = ["-"] * n
        marks = [" "] * n  # connector markers between rows (drawn inline)
        for instruction in layer:
            label = _gate_label(instruction)
            if instruction.name == "barrier":
                for q in instruction.qubits:
                    cells[q] = "|barrier|" if len(instruction.qubits) == n else "|"
                continue
            if instruction.name == "measure":
                cells[instruction.qubits[0]] = f"M->c{instruction.clbits[0]}"
                continue
            if instruction.num_qubits == 1:
                cells[instruction.qubits[0]] = label
            else:
                lo, hi = min(instruction.qubits), max(instruction.qubits)
                for q in instruction.qubits:
                    role = instruction.qubits.index(q)
                    cells[q] = f"{label}[{role}]"
                for q in range(lo + 1, hi):
                    if q not in instruction.qubits:
                        marks[q] = "|"
        width = max(len(c) for c in cells) if cells else 1
        for q in range(n):
            cell = cells[q]
            if cell == "-":
                body = "-" * (width + 2)
            elif marks[q] == "|" and cell == "-":
                body = ("|".center(width + 2, "-"))
            else:
                body = f"-{cell.center(width)}-"
            if marks[q] == "|" and cells[q] == "-":
                body = "|".center(width + 2, "-")
            rows[q].append(body)

    lines = ["".join(row) for row in rows]
    if truncated:
        lines.append(f"... (truncated at {_MAX_DRAW_COLUMNS} layers)")
    return "\n".join(lines)


def _timed_layers(dag: CircuitDag) -> List[List[Instruction]]:
    """ASAP layers including measures and barriers (barriers own a column)."""
    level = {}
    layers: List[List[Instruction]] = []
    for node in dag.nodes:
        pred_level = -1
        for p in node.predecessors:
            pred_level = max(pred_level, level[p])
        my_level = pred_level + 1
        level[node.index] = my_level
        while len(layers) <= my_level:
            layers.append([])
        layers[my_level].append(node.instruction)
    return layers
