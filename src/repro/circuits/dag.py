"""Dependency DAG over circuit instructions.

The DAG captures the partial order induced by shared qubits/clbits.  It is
the workhorse behind routing (front-layer iteration), scheduling (ASAP
levels), optimization passes (neighbour queries), and several circuit
features (critical path composition, layer parallelism).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Set, Tuple

from .circuit import Instruction, QuantumCircuit


@dataclass
class DagNode:
    """One instruction node plus its dependency links."""

    index: int
    instruction: Instruction
    predecessors: Set[int] = field(default_factory=set)
    successors: Set[int] = field(default_factory=set)


class CircuitDag:
    """Directed acyclic dependency graph of a circuit's instructions.

    Barriers participate as ordering constraints: a barrier depends on every
    prior operation on its qubits and blocks every later one.
    """

    def __init__(self, circuit: QuantumCircuit):
        self.circuit = circuit
        self.nodes: List[DagNode] = []
        last_on_qubit: Dict[int, int] = {}
        last_on_clbit: Dict[int, int] = {}
        for index, instruction in enumerate(circuit.instructions):
            node = DagNode(index, instruction)
            deps: Set[int] = set()
            for q in instruction.qubits:
                if q in last_on_qubit:
                    deps.add(last_on_qubit[q])
            for c in instruction.clbits:
                if c in last_on_clbit:
                    deps.add(last_on_clbit[c])
            node.predecessors = deps
            for d in deps:
                self.nodes[d].successors.add(index)
            self.nodes.append(node)
            for q in instruction.qubits:
                last_on_qubit[q] = index
            for c in instruction.clbits:
                last_on_clbit[c] = index

    def __len__(self) -> int:
        return len(self.nodes)

    def topological_order(self) -> Iterator[DagNode]:
        """Nodes in a topological order (original order is already one)."""
        return iter(self.nodes)

    def front_layer(self, done: Set[int]) -> List[DagNode]:
        """Nodes whose predecessors are all in ``done`` and not themselves done."""
        return [
            node for node in self.nodes
            if node.index not in done and node.predecessors <= done
        ]

    def layers(self, include_directives: bool = False) -> List[List[Instruction]]:
        """Greedy ASAP layering: each layer holds mutually independent ops.

        Returns a list of layers; the number of layers equals the circuit
        depth (when directives are excluded, barriers do not create layers
        but still order operations).
        """
        level: Dict[int, int] = {}
        layers: List[List[Instruction]] = []
        for node in self.nodes:
            instruction = node.instruction
            pred_level = -1
            for p in node.predecessors:
                pred_level = max(pred_level, level[p])
            is_directive = instruction.name == "barrier" or (
                not include_directives and instruction.name == "measure"
            )
            if instruction.name == "barrier":
                # Barriers constrain ordering but occupy no layer themselves.
                level[node.index] = pred_level
                continue
            if not include_directives and instruction.name == "measure":
                level[node.index] = pred_level
                continue
            my_level = pred_level + 1
            level[node.index] = my_level
            while len(layers) <= my_level:
                layers.append([])
            layers[my_level].append(instruction)
        return layers

    def asap_levels(self) -> Dict[int, int]:
        """ASAP level for every instruction index (barriers get level of deps)."""
        level: Dict[int, int] = {}
        for node in self.nodes:
            pred_level = -1
            for p in node.predecessors:
                pred_level = max(pred_level, level[p])
            if node.instruction.name == "barrier":
                level[node.index] = pred_level
            else:
                level[node.index] = pred_level + 1
        return level

    def critical_path(self) -> List[int]:
        """Indices of instructions along one longest dependency chain."""
        if not self.nodes:
            return []
        length: Dict[int, int] = {}
        parent: Dict[int, int] = {}
        best_end, best_len = -1, -1
        for node in self.nodes:
            if node.instruction.name == "barrier":
                continue
            node_len = 1
            node_parent = -1
            for p in node.predecessors:
                p_eff = p
                # Skip through barriers to the real predecessor chain length.
                if self.nodes[p].instruction.name == "barrier":
                    cand = length.get(p, 0)
                else:
                    cand = length.get(p_eff, 0)
                if cand + 1 > node_len:
                    node_len = cand + 1
                    node_parent = p_eff
            length[node.index] = node_len
            parent[node.index] = node_parent
            if node_len > best_len:
                best_len, best_end = node_len, node.index
        # Barriers need a length too, for chains crossing them.
        path: List[int] = []
        cursor = best_end
        while cursor != -1:
            if self.nodes[cursor].instruction.name != "barrier":
                path.append(cursor)
            cursor = parent.get(cursor, -1)
        return list(reversed(path))

    def qubit_dependencies(self) -> Dict[int, List[int]]:
        """For each qubit, the ordered list of instruction indices touching it."""
        per_qubit: Dict[int, List[int]] = {}
        for node in self.nodes:
            if node.instruction.name == "barrier":
                continue
            for q in node.instruction.qubits:
                per_qubit.setdefault(q, []).append(node.index)
        return per_qubit


def circuit_layers(circuit: QuantumCircuit) -> List[List[Instruction]]:
    """Convenience wrapper: ASAP layers of a circuit."""
    return CircuitDag(circuit).layers()


def parallel_groups(
    circuit: QuantumCircuit, include_measure: bool = True
) -> List[List[Instruction]]:
    """Groups of operations that execute simultaneously under ASAP layering.

    Unlike :meth:`CircuitDag.layers`, measurements occupy layers here because
    the executor models them as timed operations.
    """
    dag = CircuitDag(circuit)
    level: Dict[int, int] = {}
    groups: List[List[Instruction]] = []
    for node in dag.nodes:
        pred_level = -1
        for p in node.predecessors:
            pred_level = max(pred_level, level[p])
        if node.instruction.name == "barrier" or (
            node.instruction.name == "measure" and not include_measure
        ):
            level[node.index] = pred_level
            continue
        my_level = pred_level + 1
        level[node.index] = my_level
        while len(groups) <= my_level:
            groups.append([])
        groups[my_level].append(node.instruction)
    return groups


def interaction_pairs(circuit: QuantumCircuit) -> Set[Tuple[int, int]]:
    """Distinct (sorted) qubit pairs coupled by any multi-qubit gate."""
    return set(circuit.two_qubit_interactions())
