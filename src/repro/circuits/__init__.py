"""Circuit intermediate representation: gates, circuits, DAGs, QASM, drawing."""

from .circuit import Instruction, QuantumCircuit, circuit_from_instructions
from .dag import CircuitDag, circuit_layers, interaction_pairs, parallel_groups
from .gates import (
    GATES,
    GateSpec,
    NON_UNITARY,
    gate_matrix,
    get_spec,
    is_unitary_gate,
)
from .qasm import from_qasm, to_qasm
from .random import random_circuit, random_clifford_circuit
from .text_drawer import draw_circuit

__all__ = [
    "CircuitDag",
    "GATES",
    "GateSpec",
    "Instruction",
    "NON_UNITARY",
    "QuantumCircuit",
    "circuit_from_instructions",
    "circuit_layers",
    "draw_circuit",
    "from_qasm",
    "gate_matrix",
    "get_spec",
    "interaction_pairs",
    "is_unitary_gate",
    "parallel_groups",
    "random_circuit",
    "random_clifford_circuit",
    "to_qasm",
]
