"""Benchmark workloads: algorithm families and suite construction."""

from .algorithms import ALGORITHMS
from .suite import (
    DEPTH_LIMIT,
    BenchmarkCircuit,
    build_suite,
    compile_suite,
    filter_by_depth,
    ideal_distributions,
    suite_summary,
)

__all__ = [
    "ALGORITHMS",
    "BenchmarkCircuit",
    "DEPTH_LIMIT",
    "build_suite",
    "compile_suite",
    "filter_by_depth",
    "ideal_distributions",
    "suite_summary",
]
