"""Benchmark suite construction (Section V-A1).

The paper evaluates "all circuits provided by the MQT Bench collection ...
for any number between 2 and 20 qubits ... only considering circuits with a
compiled depth smaller than 1000 — leaving a total of 222 circuits".  The
suite builder sweeps every algorithm family over the qubit range; the
compiled-depth filter is applied by the evaluation study after compilation
(it depends on the target device).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from ..circuits.circuit import QuantumCircuit
from .algorithms import ALGORITHMS

#: The paper's depth cut-off for executable circuits.
DEPTH_LIMIT = 1000


@dataclass
class BenchmarkCircuit:
    """One suite entry: an algorithm instance at a specific width."""

    algorithm: str
    num_qubits: int
    circuit: QuantumCircuit

    @property
    def name(self) -> str:
        return f"{self.algorithm}_{self.num_qubits}"


def build_suite(
    algorithms: Optional[Sequence[str]] = None,
    min_qubits: int = 2,
    max_qubits: int = 20,
    step: int = 1,
) -> List[BenchmarkCircuit]:
    """Generate the benchmark suite.

    Args:
        algorithms: family names (default: all of :data:`ALGORITHMS`).
        min_qubits / max_qubits: inclusive qubit range (paper: 2-20).
        step: qubit-count stride (1 reproduces the paper; larger values give
            cheap subsets for tests).

    Returns:
        One :class:`BenchmarkCircuit` per (family, width) combination whose
        family supports that width.
    """
    if algorithms is None:
        names = sorted(ALGORITHMS)
    else:
        unknown = sorted(set(algorithms) - set(ALGORITHMS))
        if unknown:
            raise ValueError(f"unknown benchmark families: {unknown}")
        names = list(algorithms)
    if min_qubits < 2:
        raise ValueError("min_qubits must be >= 2")
    if max_qubits < min_qubits:
        raise ValueError("max_qubits must be >= min_qubits")

    suite: List[BenchmarkCircuit] = []
    for name in names:
        generator, minimum, maximum = ALGORITHMS[name]
        for width in range(
            max(min_qubits, minimum), min(max_qubits, maximum) + 1, step
        ):
            circuit = generator(width)
            suite.append(
                BenchmarkCircuit(
                    algorithm=name, num_qubits=width, circuit=circuit
                )
            )
    return suite


def ideal_distributions(
    suite: Sequence[BenchmarkCircuit],
    dtype=np.complex64,
    max_workers: Optional[int] = None,
    cache: Optional[Dict[str, Dict[str, float]]] = None,
    on_result=None,
) -> Dict[str, Dict[str, float]]:
    """Noiseless output distributions of every suite circuit, batched.

    The statevector simulations run on a worker pool (``max_workers``,
    default one per CPU) — this is the dataset-generation hot path shared
    across devices.  Entries already present in ``cache`` are not
    recomputed; the (possibly shared) cache dict is returned.
    ``on_result(position, distribution)`` fires per freshly simulated
    circuit (positions index the not-yet-cached subset, in suite order).
    """
    from ..simulation.executor import parallel_map
    from ..simulation.statevector import ideal_distribution

    cache = cache if cache is not None else {}
    missing = [entry for entry in suite if entry.name not in cache]
    # Statevector simulation is numpy-heavy (releases the GIL), so the
    # thread pool is the right mode — pinned explicitly because the
    # per-item lambda would not survive pickling anyway.
    fresh = parallel_map(
        lambda entry: ideal_distribution(entry.circuit, dtype=dtype),
        missing,
        max_workers=max_workers,
        mode="thread",
        on_result=on_result,
    )
    for entry, dist in zip(missing, fresh):
        cache[entry.name] = dist
    return cache


def compile_suite(
    suite: Sequence[BenchmarkCircuit],
    device,
    optimization_level: int = 3,
    seed: int = 0,
    max_workers: Optional[int] = None,
    workers_mode: Optional[str] = None,
    on_result=None,
):
    """Compile every suite circuit for ``device`` through the batch API.

    Thin wrapper over :func:`repro.compiler.compile.compile_batch` using
    the dataset convention for per-circuit seeds (``seed + index``), so a
    suite compiled here matches the circuits
    :func:`repro.predictor.dataset.build_dataset` would produce.

    Returns one :class:`~repro.compiler.compile.CompilationResult` per
    suite entry, in suite order.
    """
    from ..compiler.compile import compile_batch

    return compile_batch(
        [entry.circuit for entry in suite],
        device,
        optimization_level=optimization_level,
        seeds=[seed + index for index in range(len(suite))],
        max_workers=max_workers,
        workers_mode=workers_mode,
        on_result=on_result,
    )


def filter_by_depth(
    entries: Iterable, depths: Dict[str, int], limit: int = DEPTH_LIMIT
) -> List:
    """Keep entries whose recorded compiled depth is below ``limit``."""
    kept = []
    for entry in entries:
        depth = depths.get(entry.name)
        if depth is not None and depth < limit:
            kept.append(entry)
    return kept


def suite_to_qasm(suite: Sequence[BenchmarkCircuit], directory) -> List:
    """Write every suite circuit as ``<name>.qasm`` under ``directory``.

    The bridge between the suite builder and file-based surfaces like
    ``python -m repro predict``: returns the written paths in suite
    order.  The directory is created if needed.
    """
    from pathlib import Path

    from ..circuits.qasm import to_qasm

    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    paths = []
    for entry in suite:
        path = directory / f"{entry.name}.qasm"
        path.write_text(to_qasm(entry.circuit))
        paths.append(path)
    return paths


def suite_summary(suite: Sequence[BenchmarkCircuit]) -> str:
    """Human-readable table of the suite composition."""
    lines = [f"{'benchmark':<16} {'widths':<12} {'count':>5}"]
    by_family: Dict[str, List[int]] = {}
    for entry in suite:
        by_family.setdefault(entry.algorithm, []).append(entry.num_qubits)
    for family in sorted(by_family):
        widths = by_family[family]
        lines.append(
            f"{family:<16} {min(widths)}-{max(widths):<10} {len(widths):>5}"
        )
    lines.append(f"{'total':<16} {'':<12} {len(suite):>5}")
    return "\n".join(lines)
