"""Benchmark circuit generators (MQT Bench substitute, Section V-A1).

Eighteen parameterized algorithm families covering the variety the paper's
benchmark collection offers (VQE, QAOA, QFT, GHZ, W-state, Grover, etc.),
each scalable over a qubit range.  All generators are deterministic: any
randomness (graph structure, ansatz parameters, oracle secrets) derives from
a seed computed from the family name and qubit count, so the whole suite is
reproducible bit-for-bit.

Every generated circuit ends in a full measurement (``measure_all``), the
form in which the paper's benchmarks are executed.
"""

from __future__ import annotations

import hashlib
import math
from typing import Callable, Dict, List

import numpy as np

from ..circuits.circuit import QuantumCircuit
from ..circuits.random import random_circuit


def _family_rng(family: str, num_qubits: int) -> np.random.Generator:
    digest = hashlib.sha256(f"{family}:{num_qubits}".encode()).digest()
    return np.random.default_rng(int.from_bytes(digest[:8], "little"))


# ---------------------------------------------------------------------------
# Entanglement structure benchmarks
# ---------------------------------------------------------------------------

def ghz(num_qubits: int) -> QuantumCircuit:
    """GHZ state preparation: H plus a CX chain."""
    _require(num_qubits, 2)
    circuit = QuantumCircuit(num_qubits, name=f"ghz_{num_qubits}")
    circuit.h(0)
    for qubit in range(num_qubits - 1):
        circuit.cx(qubit, qubit + 1)
    return circuit.measure_all()


def wstate(num_qubits: int) -> QuantumCircuit:
    """W state preparation via the cascade of F gates."""
    _require(num_qubits, 2)
    circuit = QuantumCircuit(num_qubits, name=f"wstate_{num_qubits}")
    circuit.x(num_qubits - 1)
    for step in range(num_qubits - 1):
        control = num_qubits - 1 - step
        target = num_qubits - 2 - step
        theta = math.acos(math.sqrt(1.0 / (num_qubits - step)))
        circuit.ry(-theta, target)
        circuit.cz(control, target)
        circuit.ry(theta, target)
    for step in range(num_qubits - 1):
        circuit.cx(num_qubits - 2 - step, num_qubits - 1 - step)
    return circuit.measure_all()


def graphstate(num_qubits: int) -> QuantumCircuit:
    """Graph state on a random degree-3 graph: H everywhere + CZ per edge."""
    _require(num_qubits, 3)
    rng = _family_rng("graphstate", num_qubits)
    circuit = QuantumCircuit(num_qubits, name=f"graphstate_{num_qubits}")
    for qubit in range(num_qubits):
        circuit.h(qubit)
    edges = set()
    # Ring backbone guarantees connectivity, then random chords.
    for i in range(num_qubits):
        edges.add(tuple(sorted((i, (i + 1) % num_qubits))))
    extra = num_qubits // 2
    attempts = 0
    while extra > 0 and attempts < 20 * num_qubits:
        attempts += 1
        a, b = int(rng.integers(num_qubits)), int(rng.integers(num_qubits))
        if a != b and tuple(sorted((a, b))) not in edges:
            edges.add(tuple(sorted((a, b))))
            extra -= 1
    for a, b in sorted(edges):
        circuit.cz(a, b)
    return circuit.measure_all()


# ---------------------------------------------------------------------------
# Fourier-based benchmarks
# ---------------------------------------------------------------------------

def _append_qft(circuit: QuantumCircuit, qubits: List[int],
                with_swaps: bool = True) -> None:
    n = len(qubits)
    for i in reversed(range(n)):
        circuit.h(qubits[i])
        for j in reversed(range(i)):
            circuit.cp(math.pi / (1 << (i - j)), qubits[j], qubits[i])
    if with_swaps:
        for i in range(n // 2):
            circuit.swap(qubits[i], qubits[n - 1 - i])


def _append_iqft(circuit: QuantumCircuit, qubits: List[int]) -> None:
    """Exact inverse of :func:`_append_qft` (swaps first, then phases)."""
    n = len(qubits)
    for i in range(n // 2):
        circuit.swap(qubits[i], qubits[n - 1 - i])
    for i in range(n):
        for j in range(i):
            circuit.cp(-math.pi / (1 << (i - j)), qubits[j], qubits[i])
        circuit.h(qubits[i])


def qft(num_qubits: int) -> QuantumCircuit:
    """Quantum Fourier transform applied to ``|0...0>``."""
    _require(num_qubits, 2)
    circuit = QuantumCircuit(num_qubits, name=f"qft_{num_qubits}")
    _append_qft(circuit, list(range(num_qubits)))
    return circuit.measure_all()


def qftentangled(num_qubits: int) -> QuantumCircuit:
    """QFT applied to a GHZ state (MQT Bench's 'qftentangled')."""
    _require(num_qubits, 2)
    circuit = QuantumCircuit(num_qubits, name=f"qftentangled_{num_qubits}")
    circuit.h(0)
    for qubit in range(num_qubits - 1):
        circuit.cx(qubit, qubit + 1)
    _append_qft(circuit, list(range(num_qubits)))
    return circuit.measure_all()


def _qpe(num_qubits: int, exact: bool) -> QuantumCircuit:
    """Quantum phase estimation of a single-qubit phase gate.

    ``num_qubits - 1`` evaluation qubits estimate the phase of ``p(2*pi*f)``
    applied to the eigenstate ``|1>``.  With ``exact`` the fraction ``f`` is
    representable in the available bits (sharp single peak), otherwise it
    falls between grid points (spread distribution).
    """
    _require(num_qubits, 2)
    eval_qubits = list(range(num_qubits - 1))
    target = num_qubits - 1
    bits = len(eval_qubits)
    rng = _family_rng("qpeexact" if exact else "qpeinexact", num_qubits)
    if exact:
        numerator = int(rng.integers(1, 1 << bits))
        fraction = numerator / (1 << bits)
    else:
        numerator = int(rng.integers(1, (1 << bits))) + 0.5
        fraction = numerator / (1 << bits)
    name = f"qpeexact_{num_qubits}" if exact else f"qpeinexact_{num_qubits}"
    circuit = QuantumCircuit(num_qubits, name=name)
    circuit.x(target)
    for qubit in eval_qubits:
        circuit.h(qubit)
    for k, qubit in enumerate(eval_qubits):
        angle = 2.0 * math.pi * fraction * (1 << k)
        circuit.cp(angle, qubit, target)
    _append_iqft(circuit, eval_qubits)
    if circuit.num_clbits < num_qubits:
        circuit.num_clbits = num_qubits
    for qubit in eval_qubits:
        circuit.measure(qubit, qubit)
    circuit.measure(target, target)
    return circuit


def qpeexact(num_qubits: int) -> QuantumCircuit:
    """QPE with an exactly representable phase."""
    return _qpe(num_qubits, exact=True)


def qpeinexact(num_qubits: int) -> QuantumCircuit:
    """QPE with a phase between grid points."""
    return _qpe(num_qubits, exact=False)


# ---------------------------------------------------------------------------
# Oracle benchmarks
# ---------------------------------------------------------------------------

def dj(num_qubits: int) -> QuantumCircuit:
    """Deutsch-Jozsa with a random balanced (parity) oracle."""
    _require(num_qubits, 2)
    inputs = list(range(num_qubits - 1))
    ancilla = num_qubits - 1
    rng = _family_rng("dj", num_qubits)
    mask = [bool(rng.integers(2)) for _ in inputs]
    if not any(mask):
        mask[0] = True
    circuit = QuantumCircuit(num_qubits, name=f"dj_{num_qubits}")
    circuit.x(ancilla)
    for qubit in inputs:
        circuit.h(qubit)
    circuit.h(ancilla)
    for qubit, active in zip(inputs, mask):
        if active:
            circuit.cx(qubit, ancilla)
    for qubit in inputs:
        circuit.h(qubit)
    if circuit.num_clbits < len(inputs):
        circuit.num_clbits = len(inputs)
    for index, qubit in enumerate(inputs):
        circuit.measure(qubit, index)
    return circuit


def bv(num_qubits: int) -> QuantumCircuit:
    """Bernstein-Vazirani with a random secret string."""
    _require(num_qubits, 2)
    inputs = list(range(num_qubits - 1))
    ancilla = num_qubits - 1
    rng = _family_rng("bv", num_qubits)
    secret = [bool(rng.integers(2)) for _ in inputs]
    if not any(secret):
        secret[-1] = True
    circuit = QuantumCircuit(num_qubits, name=f"bv_{num_qubits}")
    circuit.x(ancilla)
    circuit.h(ancilla)
    for qubit in inputs:
        circuit.h(qubit)
    for qubit, active in zip(inputs, secret):
        if active:
            circuit.cx(qubit, ancilla)
    for qubit in inputs:
        circuit.h(qubit)
    if circuit.num_clbits < len(inputs):
        circuit.num_clbits = len(inputs)
    for index, qubit in enumerate(inputs):
        circuit.measure(qubit, index)
    return circuit


def grover(num_qubits: int) -> QuantumCircuit:
    """Grover search marking a random target state.

    ``num_qubits - 1`` search qubits plus one phase ancilla.  The iteration
    count follows ``round(pi/4 * sqrt(N))`` but is capped so that circuit
    construction stays tractable for wide registers; deep instances are
    filtered by the depth rule in the study, just as in the paper.
    """
    _require(num_qubits, 3)
    search = list(range(num_qubits - 1))
    flag = num_qubits - 1
    rng = _family_rng("grover", num_qubits)
    target = int(rng.integers(0, 1 << len(search)))
    optimal = max(1, round(math.pi / 4.0 * math.sqrt(2 ** len(search))))
    iterations = min(optimal, 4)
    circuit = QuantumCircuit(num_qubits, name=f"grover_{num_qubits}")
    circuit.x(flag)
    circuit.h(flag)
    for qubit in search:
        circuit.h(qubit)
    for _ in range(iterations):
        # Oracle: flip the flag when the register equals `target`.
        for bit, qubit in enumerate(search):
            if not (target >> bit) & 1:
                circuit.x(qubit)
        circuit.mcx(search, flag)
        for bit, qubit in enumerate(search):
            if not (target >> bit) & 1:
                circuit.x(qubit)
        # Diffusion operator.
        for qubit in search:
            circuit.h(qubit)
            circuit.x(qubit)
        circuit.h(search[-1])
        circuit.mcx(search[:-1], search[-1])
        circuit.h(search[-1])
        for qubit in search:
            circuit.x(qubit)
            circuit.h(qubit)
    if circuit.num_clbits < len(search):
        circuit.num_clbits = len(search)
    for index, qubit in enumerate(search):
        circuit.measure(qubit, index)
    return circuit


# ---------------------------------------------------------------------------
# Variational benchmarks
# ---------------------------------------------------------------------------

def qaoa(num_qubits: int) -> QuantumCircuit:
    """Two-layer MaxCut QAOA on a random 3-regular-ish graph."""
    _require(num_qubits, 3)
    rng = _family_rng("qaoa", num_qubits)
    edges = set()
    for i in range(num_qubits):
        edges.add(tuple(sorted((i, (i + 1) % num_qubits))))
    extra = num_qubits // 2
    attempts = 0
    while extra > 0 and attempts < 10 * num_qubits:
        attempts += 1
        a, b = int(rng.integers(num_qubits)), int(rng.integers(num_qubits))
        if a != b and tuple(sorted((a, b))) not in edges:
            edges.add(tuple(sorted((a, b))))
            extra -= 1
    circuit = QuantumCircuit(num_qubits, name=f"qaoa_{num_qubits}")
    for qubit in range(num_qubits):
        circuit.h(qubit)
    for _ in range(2):
        gamma = float(rng.uniform(0, math.pi))
        beta = float(rng.uniform(0, math.pi))
        for a, b in sorted(edges):
            circuit.rzz(gamma, a, b)
        for qubit in range(num_qubits):
            circuit.rx(2 * beta, qubit)
    return circuit.measure_all()


def vqe(num_qubits: int) -> QuantumCircuit:
    """TwoLocal VQE ansatz: RY layers with linear CX entanglement, 2 reps."""
    _require(num_qubits, 2)
    rng = _family_rng("vqe", num_qubits)
    circuit = QuantumCircuit(num_qubits, name=f"vqe_{num_qubits}")
    for _ in range(2):
        for qubit in range(num_qubits):
            circuit.ry(float(rng.uniform(-math.pi, math.pi)), qubit)
        for qubit in range(num_qubits - 1):
            circuit.cx(qubit, qubit + 1)
    for qubit in range(num_qubits):
        circuit.ry(float(rng.uniform(-math.pi, math.pi)), qubit)
    return circuit.measure_all()


def realamprandom(num_qubits: int) -> QuantumCircuit:
    """RealAmplitudes ansatz with full entanglement and random parameters."""
    _require(num_qubits, 2)
    rng = _family_rng("realamprandom", num_qubits)
    circuit = QuantumCircuit(num_qubits, name=f"realamprandom_{num_qubits}")
    for _ in range(2):
        for qubit in range(num_qubits):
            circuit.ry(float(rng.uniform(-math.pi, math.pi)), qubit)
        for a in range(num_qubits - 1):
            for b in range(a + 1, num_qubits):
                circuit.cx(a, b)
    for qubit in range(num_qubits):
        circuit.ry(float(rng.uniform(-math.pi, math.pi)), qubit)
    return circuit.measure_all()


def su2random(num_qubits: int) -> QuantumCircuit:
    """EfficientSU2 ansatz (RY+RZ, circular CX entanglement), random params."""
    _require(num_qubits, 2)
    rng = _family_rng("su2random", num_qubits)
    circuit = QuantumCircuit(num_qubits, name=f"su2random_{num_qubits}")
    for _ in range(2):
        for qubit in range(num_qubits):
            circuit.ry(float(rng.uniform(-math.pi, math.pi)), qubit)
            circuit.rz(float(rng.uniform(-math.pi, math.pi)), qubit)
        circuit.cx(num_qubits - 1, 0)
        for qubit in range(num_qubits - 1):
            circuit.cx(qubit, qubit + 1)
    for qubit in range(num_qubits):
        circuit.ry(float(rng.uniform(-math.pi, math.pi)), qubit)
        circuit.rz(float(rng.uniform(-math.pi, math.pi)), qubit)
    return circuit.measure_all()


def qnn(num_qubits: int) -> QuantumCircuit:
    """Quantum-neural-network style circuit: ZZ feature map + variational layer."""
    _require(num_qubits, 2)
    rng = _family_rng("qnn", num_qubits)
    data = rng.uniform(0, 2 * math.pi, size=num_qubits)
    circuit = QuantumCircuit(num_qubits, name=f"qnn_{num_qubits}")
    for repetition in range(2):
        for qubit in range(num_qubits):
            circuit.h(qubit)
            circuit.p(float(data[qubit]), qubit)
        for qubit in range(num_qubits - 1):
            angle = float(
                (math.pi - data[qubit]) * (math.pi - data[qubit + 1]) / math.pi
            )
            circuit.cx(qubit, qubit + 1)
            circuit.p(angle, qubit + 1)
            circuit.cx(qubit, qubit + 1)
    for qubit in range(num_qubits):
        circuit.ry(float(rng.uniform(-math.pi, math.pi)), qubit)
    return circuit.measure_all()


# ---------------------------------------------------------------------------
# Dynamics / estimation benchmarks
# ---------------------------------------------------------------------------

def hamsim(num_qubits: int) -> QuantumCircuit:
    """Two Trotter steps of a 1-D Heisenberg chain."""
    _require(num_qubits, 2)
    j_coupling = 0.35
    field = 0.2
    circuit = QuantumCircuit(num_qubits, name=f"hamsim_{num_qubits}")
    for qubit in range(num_qubits):
        circuit.h(qubit)
    for _ in range(2):
        for qubit in range(num_qubits):
            circuit.rz(2 * field, qubit)
        for parity in (0, 1):
            for a in range(parity, num_qubits - 1, 2):
                circuit.rxx(2 * j_coupling, a, a + 1)
                circuit.ryy(2 * j_coupling, a, a + 1)
                circuit.rzz(2 * j_coupling, a, a + 1)
    return circuit.measure_all()


def ae(num_qubits: int) -> QuantumCircuit:
    """Canonical amplitude estimation of a known amplitude.

    One state qubit carries ``sin^2(theta)``; ``num_qubits - 1`` evaluation
    qubits run phase estimation over powers of the Grover operator, which
    for this single-qubit ``A`` is a plain Y rotation.
    """
    _require(num_qubits, 2)
    eval_qubits = list(range(num_qubits - 1))
    state = num_qubits - 1
    probability = 0.2
    theta = 2.0 * math.asin(math.sqrt(probability))
    circuit = QuantumCircuit(num_qubits, name=f"ae_{num_qubits}")
    circuit.ry(theta, state)
    for qubit in eval_qubits:
        circuit.h(qubit)
    for k, qubit in enumerate(eval_qubits):
        circuit.cry(theta * (2 ** (k + 1)), qubit, state)
    _append_iqft(circuit, eval_qubits)
    return circuit.measure_all()


def qwalk(num_qubits: int) -> QuantumCircuit:
    """Discrete-time quantum walk on a cycle (coin + position register)."""
    _require(num_qubits, 3)
    coin = 0
    position = list(range(1, num_qubits))
    steps = 3
    circuit = QuantumCircuit(num_qubits, name=f"qwalk_{num_qubits}")
    for _ in range(steps):
        circuit.h(coin)
        # Increment position when coin = 1 (ripple-carry of MCX gates).
        for j in reversed(range(len(position))):
            controls = [coin] + position[:j]
            circuit.mcx(controls, position[j])
        # Decrement position when coin = 0.
        circuit.x(coin)
        for j in range(len(position)):
            controls = [coin] + position[:j]
            circuit.mcx(controls, position[j])
        circuit.x(coin)
    return circuit.measure_all()


def randomcircuit(num_qubits: int) -> QuantumCircuit:
    """Layered random circuit (depth = qubit count)."""
    _require(num_qubits, 2)
    rng = _family_rng("randomcircuit", num_qubits)
    circuit = random_circuit(
        num_qubits,
        depth=max(4, num_qubits),
        seed=rng,
        two_qubit_prob=0.4,
    )
    circuit.name = f"randomcircuit_{num_qubits}"
    return circuit.measure_all()


def _require(num_qubits: int, minimum: int) -> None:
    if num_qubits < minimum:
        raise ValueError(f"this benchmark needs at least {minimum} qubits")


#: All benchmark families: name -> (generator, min qubits, max qubits).
#: Grover and the quantum walk are capped: their ancilla-free
#: multi-controlled gates grow exponentially, so wider instances are not
#: constructible in reasonable time — and would be removed by the paper's
#: compiled-depth < 1000 filter anyway.
ALGORITHMS: Dict[str, tuple[Callable[[int], QuantumCircuit], int, int]] = {
    "ghz": (ghz, 2, 20),
    "wstate": (wstate, 2, 20),
    "graphstate": (graphstate, 3, 20),
    "qft": (qft, 2, 20),
    "qftentangled": (qftentangled, 2, 20),
    "qpeexact": (qpeexact, 2, 20),
    "qpeinexact": (qpeinexact, 2, 20),
    "dj": (dj, 2, 20),
    "bv": (bv, 2, 20),
    "grover": (grover, 3, 8),
    "qaoa": (qaoa, 3, 20),
    "vqe": (vqe, 2, 20),
    "realamprandom": (realamprandom, 2, 20),
    "su2random": (su2random, 2, 20),
    "qnn": (qnn, 2, 20),
    "hamsim": (hamsim, 2, 20),
    "ae": (ae, 2, 20),
    "qwalk": (qwalk, 3, 10),
    "randomcircuit": (randomcircuit, 2, 20),
}
