"""Quantum circuit compiler: passes, pipelines, optimization levels 0-3."""

from .cache import (
    CompileCache,
    clear_compile_cache,
    compile_cache_stats,
    configure_compile_cache,
    get_compile_cache,
)
from .compile import SEED_STRIDE, CompilationResult, compile_batch, compile_circuit
from .passes.base import Pass, PassManager, PropertySet
from .passes.decompose import Decompose, decompose_circuit
from .passes.layout import GreedySubgraphLayout, LineLayout, TrivialLayout, apply_layout
from .passes.optimization import (
    CancelInversePairs,
    Merge1QRuns,
    OptimizationLoop,
    RemoveIdentities,
)
from .passes.noise_aware import (
    NoiseAwareLayout,
    NoiseAwareRouting,
    compile_noise_aware,
    effective_distance_matrix,
)
from .passes.routing import PathRouting, SabreRouting, route_circuit
from .passes.scheduling import ASAPSchedule, Schedule, TimedInstruction, schedule_asap
from .passes.synthesis import NativeSynthesis, VirtualRZ
from .search import (
    LeaderboardSession,
    PassConfig,
    compile_search,
    leaderboard_fingerprint,
    leaderboard_name,
    model_fingerprint,
    reset_search_stats,
    search_circuit,
    search_stats,
    stock_configs,
)
from .unitary_math import (
    matrices_equal_up_to_phase,
    normalize_angle,
    u_params,
    zyz_decompose,
)

__all__ = [
    "ASAPSchedule",
    "CancelInversePairs",
    "CompilationResult",
    "CompileCache",
    "Decompose",
    "GreedySubgraphLayout",
    "LineLayout",
    "LeaderboardSession",
    "Merge1QRuns",
    "NativeSynthesis",
    "NoiseAwareLayout",
    "NoiseAwareRouting",
    "OptimizationLoop",
    "Pass",
    "PassConfig",
    "PassManager",
    "PathRouting",
    "PropertySet",
    "RemoveIdentities",
    "SEED_STRIDE",
    "SabreRouting",
    "Schedule",
    "TimedInstruction",
    "TrivialLayout",
    "VirtualRZ",
    "apply_layout",
    "clear_compile_cache",
    "compile_batch",
    "compile_cache_stats",
    "compile_circuit",
    "compile_noise_aware",
    "compile_search",
    "configure_compile_cache",
    "get_compile_cache",
    "effective_distance_matrix",
    "decompose_circuit",
    "leaderboard_fingerprint",
    "leaderboard_name",
    "matrices_equal_up_to_phase",
    "model_fingerprint",
    "normalize_angle",
    "reset_search_stats",
    "route_circuit",
    "schedule_asap",
    "search_circuit",
    "search_stats",
    "stock_configs",
    "u_params",
    "zyz_decompose",
]
