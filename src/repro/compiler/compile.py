"""Top-level compilation entry point with optimization levels 0-3.

Mirrors the Qiskit transpiler semantics the paper relies on ("optimization
level three"):

* **0** — decompose, trivial layout, naive shortest-path routing, native
  synthesis.  No optimization.
* **1** — light optimization (identity removal, 1q-run merging), SABRE
  routing without lookahead.
* **2** — full optimization loop, interaction-aware greedy layout, SABRE
  routing with lookahead, post-routing re-optimization.
* **3** — level 2 plus multiple layout/routing trials; the candidate with
  the best *expected fidelity* on the device's reported calibration wins
  (compilation steered by a figure of merit, exactly the workflow whose
  quality the paper investigates).

Measurements must be terminal.  They are stripped before the pipeline and
re-appended on the physical qubit that holds each measured program qubit
after routing, so the output counts keep their program-level meaning.

Throughput comes from three mechanisms.  Pass results that are pure
functions of ``(circuit, device, options)`` are memoized in the shared
:mod:`~repro.compiler.cache` (so warm recompiles and overlapping trials
skip entire passes).  Level-3 trials share their trial-invariant prefix —
the decompose + optimization-loop "body" runs once, not once per trial —
and candidates are scored with one vectorized
:func:`~repro.fom.metrics.expected_fidelity_batch` sweep over the
calibration arrays.  :func:`compile_batch` compiles many circuits through
a worker pool with deterministic per-circuit seed streams, mirroring
:meth:`repro.simulation.executor.QPUExecutor.run_batch` — and because
compilation is pure Python (GIL-bound), the batch defaults to a *process*
pool (:mod:`repro.parallel`), which scales with cores where threads
cannot.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..circuits.circuit import QuantumCircuit
from ..hardware.device import Device
from .cache import active_compile_cache
from .passes.base import Pass, PassManager, PropertySet
from .passes.decompose import Decompose
from .passes.layout import GreedySubgraphLayout, LineLayout, TrivialLayout
from .passes.optimization import Merge1QRuns, OptimizationLoop, RemoveIdentities
from .passes.routing import PathRouting, SabreRouting
from .passes.scheduling import Schedule, schedule_asap
from .passes.synthesis import NativeSynthesis, VirtualRZ

#: Stride between the default per-circuit seed streams of
#: :func:`compile_batch` (the same prime :mod:`repro.simulation.executor`
#: uses, so compile and execute streams decorrelate identically).
SEED_STRIDE = 7919


@dataclass
class CompilationResult:
    """Everything produced by one compilation run."""

    circuit: QuantumCircuit
    initial_layout: Dict[int, int]
    final_layout: Dict[int, int]
    device: Device
    optimization_level: int
    properties: PropertySet = field(default_factory=PropertySet)

    @property
    def schedule(self) -> Schedule:
        """ASAP schedule of the compiled circuit (computed lazily)."""
        if "schedule" not in self.properties:
            self.properties["schedule"] = schedule_asap(
                self.circuit, self.device.true_calibration.durations
            )
        return self.properties["schedule"]


def _split_measurements(
    circuit: QuantumCircuit,
) -> Tuple[QuantumCircuit, List[Tuple[int, int]]]:
    """Strip terminal measurements; raise if any measurement is not terminal."""
    measured: Dict[int, int] = {}
    body = QuantumCircuit(
        circuit.num_qubits, circuit.num_clbits,
        name=circuit.name, global_phase=circuit.global_phase,
        metadata=dict(circuit.metadata),
    )
    for instruction in circuit.instructions:
        if instruction.name == "measure":
            qubit = instruction.qubits[0]
            if qubit in measured:
                raise ValueError(f"qubit {qubit} measured twice")
            measured[qubit] = instruction.clbits[0]
            continue
        if any(q in measured for q in instruction.qubits):
            raise ValueError(
                "mid-circuit measurement is not supported by the compiler"
            )
        body.instructions.append(instruction)
    return body, sorted(measured.items())


def _pass_manager(passes: List[Pass]) -> PassManager:
    """A pipeline wired to the shared compile cache, history disabled."""
    return PassManager(
        passes, cache=active_compile_cache(), collect_history=False
    )


def _layout_pass(
    device: Device, optimization_level: int, seed: int, layout: str | None
) -> Pass:
    coupling = device.coupling
    if layout == "line":
        return LineLayout(coupling)
    if layout == "trivial" or (layout is None and optimization_level <= 1):
        return TrivialLayout(coupling)
    return GreedySubgraphLayout(coupling, seed=seed)


def _trial_suffix(
    device: Device, seed: int, keep_final_rz: bool,
    layout: str | None, routing_seed: int,
) -> List[Pass]:
    """The trial-varying tail of the level-2/3 pipeline (post-"body")."""
    return [
        _layout_pass(device, 2, seed, layout),
        SabreRouting(device.coupling, seed=routing_seed, lookahead=True),
        Decompose(),
        OptimizationLoop(),
        NativeSynthesis(),
        VirtualRZ(keep_final_rz=keep_final_rz),
    ]


def _build_pipeline(
    device: Device, optimization_level: int, seed: int,
    keep_final_rz: bool, layout: str | None = None, routing_seed: int | None = None,
) -> List[Pass]:
    coupling = device.coupling
    routing_seed = seed if routing_seed is None else routing_seed
    layout_pass = _layout_pass(device, optimization_level, seed, layout)

    if optimization_level == 0:
        return [
            Decompose(),
            layout_pass,
            PathRouting(coupling),
            Decompose(),
            NativeSynthesis(),
            VirtualRZ(keep_final_rz=keep_final_rz),
        ]
    if optimization_level == 1:
        return [
            Decompose(),
            RemoveIdentities(),
            Merge1QRuns(),
            layout_pass,
            SabreRouting(coupling, seed=routing_seed, lookahead=False),
            Decompose(),
            Merge1QRuns(),
            NativeSynthesis(),
            VirtualRZ(keep_final_rz=keep_final_rz),
        ]
    # Levels 2 and 3 share the heavy pipeline.
    return [Decompose(), OptimizationLoop()] + _trial_suffix(
        device, seed, keep_final_rz, layout, routing_seed
    )


def compile_circuit(
    circuit: QuantumCircuit,
    device: Device,
    optimization_level: "int | str" = 3,
    seed: int = 0,
    keep_final_rz: bool = False,
    num_trials: int = 4,
    estimator=None,
    search_opts: Optional[dict] = None,
) -> CompilationResult:
    """Compile ``circuit`` for ``device``.

    Args:
        circuit: program circuit (measurements must be terminal).
        device: compilation and execution target.
        optimization_level: 0-3 (see module docstring), or ``"search"``
            for the predictor-guided beam search of
            :mod:`repro.compiler.search` (requires ``estimator``).
        seed: seed for all stochastic pass decisions.
        keep_final_rz: keep trailing virtual-RZ gates so the compiled body is
            exactly unitarily equivalent (useful for verification; hardware
            execution does not need them).
        num_trials: number of layout/routing trials at level 3 (these
            also seed the ``"search"`` beam).
        estimator: fitted FoM estimator — the ``"search"`` cost model.
        search_opts: extra :func:`~repro.compiler.search.search_circuit`
            keywords (``beam_width``, ``generations``, ``incumbent``).

    Returns:
        A :class:`CompilationResult` whose circuit uses only the device's
        native gates on coupled qubit pairs.
    """
    if optimization_level == "search":
        from .search import search_circuit

        if estimator is None:
            raise ValueError(
                "optimization_level='search' needs an estimator cost model"
            )
        return search_circuit(
            circuit, device, estimator,
            seed=seed, keep_final_rz=keep_final_rz, num_trials=num_trials,
            **(search_opts or {}),
        )
    if not (
        isinstance(optimization_level, int) and 0 <= optimization_level <= 3
    ):
        raise ValueError("optimization_level must be in 0..3 or 'search'")
    if circuit.num_qubits > device.num_qubits:
        raise ValueError(
            f"circuit needs {circuit.num_qubits} qubits, device "
            f"{device.name} has {device.num_qubits}"
        )
    body, measurements = _split_measurements(circuit)

    if optimization_level < 3:
        result = _run_single(
            body, device, optimization_level, seed, keep_final_rz, None, None
        )
    else:
        result = _run_trials(
            body, device, seed, keep_final_rz, num_trials
        )

    compiled, properties = result
    initial_layout = properties.get(
        "initial_layout", {q: q for q in range(body.num_qubits)}
    )
    final_layout = properties.get("final_layout", dict(initial_layout))

    # Re-append measurements on the post-routing physical qubits.
    if measurements:
        if compiled.num_clbits < circuit.num_clbits:
            compiled.num_clbits = circuit.num_clbits
        for program_qubit, clbit in measurements:
            compiled.measure(final_layout[program_qubit], clbit)

    compiled.name = circuit.name
    compiled.metadata.update(circuit.metadata)
    compiled.metadata["optimization_level"] = optimization_level
    device.validate_circuit(compiled)
    return CompilationResult(
        circuit=compiled,
        initial_layout={q: initial_layout[q] for q in range(circuit.num_qubits)},
        final_layout={q: final_layout[q] for q in range(circuit.num_qubits)},
        device=device,
        optimization_level=optimization_level,
        properties=properties,
    )


#: Per-batch invariants installed in each pool worker by
#: :func:`_init_compile_worker` (``None`` outside a worker).
_WORKER_STATE: Optional[dict] = None


def _init_compile_worker(
    device: Device, optimization_level: int, keep_final_rz: bool, num_trials: int
) -> None:
    """Pool initializer: ship the batch invariants once per worker.

    The device pickles with its routing tables precomputed (see
    :meth:`~repro.hardware.coupling.CouplingMap.__getstate__`), so workers
    skip the O(n^2) BFS rebuild.  Each spawned worker starts with its own
    empty :class:`~repro.compiler.cache.CompileCache`; cached pass results
    are immutable snapshots, so per-worker caches stay coherent without
    any cross-process merging.
    """
    global _WORKER_STATE
    _WORKER_STATE = {
        "device": device,
        "optimization_level": optimization_level,
        "keep_final_rz": keep_final_rz,
        "num_trials": num_trials,
    }


def _compile_in_worker(task: Tuple[QuantumCircuit, int]) -> Tuple:
    """Compile one ``(circuit, seed)`` task against the worker state.

    Returns the result *without* the device: shipping the device back on
    every item would dominate the payload, and the parent re-attaches its
    own instance when decoding.
    """
    circuit, task_seed = task
    state = _WORKER_STATE
    result = compile_circuit(
        circuit,
        state["device"],
        optimization_level=state["optimization_level"],
        seed=task_seed,
        keep_final_rz=state["keep_final_rz"],
        num_trials=state["num_trials"],
    )
    return (
        result.circuit,
        result.initial_layout,
        result.final_layout,
        result.properties,
    )


def compile_batch(
    circuits: Sequence[QuantumCircuit],
    device: Device,
    optimization_level: "int | str" = 3,
    seed: int = 0,
    seeds: Optional[Sequence[int]] = None,
    keep_final_rz: bool = False,
    num_trials: int = 4,
    max_workers: Optional[int] = None,
    workers_mode: Optional[str] = None,
    on_result: Optional[Callable[[int, CompilationResult], None]] = None,
    estimator=None,
    search_opts: Optional[dict] = None,
) -> List[CompilationResult]:
    """Compile many circuits, in parallel, with per-circuit seed streams.

    Circuit ``i`` is compiled exactly as ``compile_circuit(circuits[i],
    device, optimization_level, seed=seeds[i], ...)`` would — results come
    back in input order and are bit-identical for every worker count *and*
    execution mode, because each circuit's stochastic pass decisions
    depend only on its own seed (pinned by the golden-digest and property
    tests).

    Compilation is pure Python, so threads cannot speed it up — the GIL
    serializes them.  The default mode is therefore ``"process"``: the
    batch fans out over spawned worker processes, each with its own
    :class:`~repro.compiler.cache.CompileCache` (cache entries are
    immutable snapshots, so per-worker caches need no merging; the
    parent's cache is not warmed by pooled compiles).  Circuits,
    :class:`~repro.hardware.coupling.RoutingTables` and results cross the
    process boundary through cheap flat-array encodings.  Batches smaller
    than :data:`~repro.parallel.PROCESS_MIN_ITEMS` (or a resolved worker
    count of 1) run in-process, where the shared cache still applies.

    Args:
        circuits: program circuits to compile.
        device: compilation target shared by the whole batch.
        optimization_level: 0-3, applied to every circuit.
        seed: base seed; circuit ``i`` defaults to the stream
            ``seed + SEED_STRIDE * i`` (the :meth:`run_batch` convention).
        seeds: optional explicit per-circuit seeds (overrides ``seed``).
        keep_final_rz: forwarded to :func:`compile_circuit`.
        num_trials: level-3 trial count per circuit.
        max_workers: worker-pool size (``None``: one worker per CPU, the
            repo-wide :func:`~repro.parallel.resolve_workers` rule).
        workers_mode: ``"process"``/``"thread"`` (``None``: the
            ``REPRO_WORKERS_MODE`` environment override if set, else
            ``"process"``).
        on_result: optional ``callback(index, result)`` fired in the
            parent as each circuit finishes (completion order); see
            :mod:`repro.parallel` for the exception contract.
        estimator: with ``optimization_level="search"``: the fitted FoM
            estimator steering the beam (required there, ignored
            otherwise).
        search_opts: with ``"search"``: extra
            :func:`~repro.compiler.search.compile_search` keywords
            (``beam_width``, ``generations``, ``store``, ``warm_start``,
            ``record``, ``session``).

    Returns:
        One :class:`CompilationResult` per circuit, in input order.
    """
    from ..parallel import (
        PROCESS_MIN_ITEMS,
        parallel_map,
        resolve_mode,
        resolve_workers,
    )

    if optimization_level == "search":
        from .search import compile_search

        if estimator is None:
            raise ValueError(
                "optimization_level='search' needs an estimator cost model"
            )
        return compile_search(
            circuits, device, estimator,
            seed=seed, seeds=seeds, keep_final_rz=keep_final_rz,
            num_trials=num_trials, max_workers=max_workers,
            workers_mode=workers_mode, on_result=on_result,
            **(search_opts or {}),
        )

    n = len(circuits)
    if seeds is None:
        seeds = [seed + SEED_STRIDE * i for i in range(n)]
    elif len(seeds) != n:
        raise ValueError("seeds must match circuits in length")

    workers = resolve_workers(max_workers, n)
    mode = resolve_mode(workers_mode, default="process")

    if mode == "process" and workers > 1 and n >= PROCESS_MIN_ITEMS:
        device.routing_tables  # precompute once so workers inherit them
        decoded: Dict[int, CompilationResult] = {}

        def _decode(index: int, payload: Tuple) -> None:
            compiled, initial_layout, final_layout, properties = payload
            result = CompilationResult(
                circuit=compiled,
                initial_layout=initial_layout,
                final_layout=final_layout,
                device=device,
                optimization_level=optimization_level,
                properties=properties,
            )
            decoded[index] = result
            if on_result is not None:
                on_result(index, result)

        parallel_map(
            _compile_in_worker,
            [(circuit, s) for circuit, s in zip(circuits, seeds)],
            max_workers=workers,
            mode="process",
            on_result=_decode,
            initializer=_init_compile_worker,
            initargs=(device, optimization_level, keep_final_rz, num_trials),
        )
        return [decoded[index] for index in range(n)]

    def job(index: int) -> CompilationResult:
        return compile_circuit(
            circuits[index],
            device,
            optimization_level=optimization_level,
            seed=seeds[index],
            keep_final_rz=keep_final_rz,
            num_trials=num_trials,
        )

    return parallel_map(
        job, range(n), max_workers=workers, on_result=on_result, mode="thread"
    )


def _run_single(
    body: QuantumCircuit,
    device: Device,
    optimization_level: int,
    seed: int,
    keep_final_rz: bool,
    layout: str | None,
    routing_seed: int | None,
) -> Tuple[QuantumCircuit, PropertySet]:
    pipeline = _build_pipeline(
        device, optimization_level, seed, keep_final_rz, layout, routing_seed
    )
    properties = PropertySet()
    compiled = _pass_manager(pipeline).run(body, properties)
    return compiled, properties


def _run_trials(
    body: QuantumCircuit,
    device: Device,
    seed: int,
    keep_final_rz: bool,
    num_trials: int,
) -> Tuple[QuantumCircuit, PropertySet]:
    """Level 3: several layout/routing trials, best expected fidelity wins.

    The trial-invariant prefix (decompose + optimization loop on the
    program body) runs once and every trial continues from its output;
    trials share the device's cached routing tables through their layout
    and routing passes, and all candidates are scored in one vectorized
    expected-fidelity sweep.
    """
    from ..fom.metrics import expected_fidelity_batch

    prepared = _pass_manager([Decompose(), OptimizationLoop()]).run(
        body, PropertySet()
    )

    layouts = ["greedy", "trivial", "line"] + ["greedy"] * max(0, num_trials - 3)
    candidates: List[Tuple[QuantumCircuit, PropertySet]] = []
    for trial in range(num_trials):
        layout = layouts[trial % len(layouts)]
        suffix = _trial_suffix(
            device, seed + trial, keep_final_rz,
            layout if layout != "greedy" else None,
            routing_seed=seed * 1000 + trial,
        )
        properties = PropertySet()
        compiled = _pass_manager(suffix).run(prepared, properties)
        candidates.append((compiled, properties))

    scores = expected_fidelity_batch(
        [compiled for compiled, _ in candidates],
        device,
        calibration=device.reported_calibration,
    )
    # First occurrence of the maximum mirrors the historical scan's
    # strict-greater-than update rule.
    best = int(scores.argmax())
    return candidates[best]
