"""Pass-level compilation cache.

Many compiler passes are pure functions of ``(circuit, pass configuration,
declared property reads)``: decomposition, the optimization loop, native
synthesis, layout selection, and routing (for a fixed seed).  The
:class:`CompileCache` memoizes their results so that repeated compilations
— level-3 trials re-running the shared pre-layout "body", warm dataset
rebuilds, seed sweeps over identical circuits — skip the pass entirely.

Keys combine three ingredients (assembled by
:class:`~repro.compiler.passes.base.PassManager`):

* the pass's :meth:`~repro.compiler.passes.base.Pass.cache_key` — its
  class plus every option that affects its output (seeds, tolerances, the
  coupling-map fingerprint),
* a content fingerprint of the input circuit (qubit/clbit counts, global
  phase, and a hash over the immutable instruction tuple — the same
  machinery the simulation caches use),
* the frozen values of the property-set keys the pass declares it reads
  (e.g. routing reads ``initial_layout``).

Cached entries store an immutable snapshot of the output instructions plus
the metadata/property *deltas* the pass produced, so a hit rebuilds a
fresh, independently mutable circuit.  The cache is a bounded LRU shared
process-wide; all operations take a lock, so concurrent
:func:`~repro.compiler.compile.compile_batch` workers share work safely.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Dict, Hashable, Optional, Tuple

#: Default number of cached pass results.  One level-3 compilation stores
#: roughly two dozen entries, so the default comfortably covers a full
#: benchmark-suite sweep (~335 circuits) without evictions.
DEFAULT_MAXSIZE = 32768


@dataclass
class CachedPassResult:
    """Immutable snapshot of one pass run.

    ``instructions`` is a tuple (instructions themselves are frozen), so a
    stored entry can never be corrupted by callers mutating the circuit a
    hit handed back.  ``metadata_delta`` / ``properties_delta`` hold only
    the keys the pass added or changed, letting a hit compose them onto
    inputs that differ in (output-irrelevant) metadata.
    """

    num_qubits: int
    num_clbits: int
    global_phase: float
    instructions: Tuple
    metadata_delta: Dict[str, Any] = field(default_factory=dict)
    properties_delta: Dict[str, Any] = field(default_factory=dict)


class CompileCache:
    """Bounded, thread-safe LRU cache of pass results with hit counters."""

    def __init__(self, maxsize: int = DEFAULT_MAXSIZE, enabled: bool = True):
        if maxsize < 1:
            raise ValueError("maxsize must be positive")
        self.maxsize = maxsize
        self.enabled = enabled
        self._data: "OrderedDict[Hashable, CachedPassResult]" = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0

    def get(self, key: Hashable) -> Optional[CachedPassResult]:
        if not self.enabled:
            return None
        with self._lock:
            entry = self._data.get(key)
            if entry is None:
                self._misses += 1
                return None
            self._data.move_to_end(key)
            self._hits += 1
            return entry

    def put(self, key: Hashable, entry: CachedPassResult) -> None:
        if not self.enabled:
            return
        with self._lock:
            self._data[key] = entry
            self._data.move_to_end(key)
            while len(self._data) > self.maxsize:
                self._data.popitem(last=False)

    def clear(self) -> None:
        with self._lock:
            self._data.clear()
            self._hits = 0
            self._misses = 0

    def stats(self) -> Dict[str, int]:
        """Snapshot of ``{hits, misses, size, maxsize}``."""
        with self._lock:
            return {
                "hits": self._hits,
                "misses": self._misses,
                "size": len(self._data),
                "maxsize": self.maxsize,
            }

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)


#: The process-wide cache used by :func:`repro.compiler.compile.compile_circuit`.
_GLOBAL_CACHE = CompileCache()


def get_compile_cache() -> CompileCache:
    """The shared pass-result cache (configure via the helpers below)."""
    return _GLOBAL_CACHE


def active_compile_cache() -> Optional[CompileCache]:
    """The shared cache, or ``None`` when caching is disabled."""
    return _GLOBAL_CACHE if _GLOBAL_CACHE.enabled else None


def configure_compile_cache(
    maxsize: Optional[int] = None, enabled: Optional[bool] = None
) -> CompileCache:
    """Adjust the shared cache knobs; returns the cache for chaining.

    ``configure_compile_cache(enabled=False)`` turns pass memoization off
    globally (every compilation runs cold); ``maxsize`` bounds the number
    of retained pass results.
    """
    if maxsize is not None:
        if maxsize < 1:
            raise ValueError("maxsize must be positive")
        _GLOBAL_CACHE.maxsize = maxsize
        with _GLOBAL_CACHE._lock:
            while len(_GLOBAL_CACHE._data) > maxsize:
                _GLOBAL_CACHE._data.popitem(last=False)
    if enabled is not None:
        _GLOBAL_CACHE.enabled = enabled
    return _GLOBAL_CACHE


def clear_compile_cache() -> None:
    """Drop every cached pass result and reset the hit/miss counters."""
    _GLOBAL_CACHE.clear()


def compile_cache_stats() -> Dict[str, int]:
    """Hit/miss/size counters of the shared compile cache."""
    return _GLOBAL_CACHE.stats()
