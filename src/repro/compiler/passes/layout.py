"""Initial qubit mapping (the "qubit mapping" task of Section II-A).

A layout is an injective dict ``program qubit -> physical qubit``.  The
pass embeds the program circuit into the device by relabelling qubits and
widening the register to the device size; routing later repairs any
remaining non-adjacent interactions.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional

import numpy as np

from ...circuits.circuit import QuantumCircuit
from ...hardware.coupling import CouplingMap
from .base import Pass, PropertySet


def apply_layout(
    circuit: QuantumCircuit, layout: Dict[int, int], num_physical: int
) -> QuantumCircuit:
    """Re-express ``circuit`` over physical qubits according to ``layout``."""
    if len(set(layout.values())) != len(layout):
        raise ValueError("layout is not injective")
    missing = [q for q in range(circuit.num_qubits) if q not in layout]
    if missing:
        raise ValueError(f"layout misses program qubits {missing}")
    out = circuit.remap_qubits(layout, num_qubits=num_physical)
    out.metadata = dict(circuit.metadata)
    return out


class TrivialLayout(Pass):
    """Map program qubit ``i`` to physical qubit ``i``."""

    def __init__(self, coupling: CouplingMap):
        self.coupling = coupling

    def cache_key(self) -> Optional[Hashable]:
        return ("TrivialLayout", self.coupling.fingerprint())

    def run(self, circuit: QuantumCircuit, properties: PropertySet) -> QuantumCircuit:
        layout = {q: q for q in range(circuit.num_qubits)}
        properties["initial_layout"] = layout
        return apply_layout(circuit, layout, self.coupling.num_qubits)


class GreedySubgraphLayout(Pass):
    """Map heavily interacting program qubits onto well-connected hardware.

    Greedy construction: program qubits are visited in decreasing
    interaction weight; each is placed on the free physical qubit that
    minimizes the distance-weighted cost to already-placed partners,
    breaking ties by hardware degree (denser regions first).  This is the
    classic interaction-graph heuristic used by practical compilers.
    """

    def __init__(self, coupling: CouplingMap, seed: int = 0):
        self.coupling = coupling
        self.seed = seed

    def cache_key(self) -> Optional[Hashable]:
        return ("GreedySubgraphLayout", self.coupling.fingerprint(), self.seed)

    def run(self, circuit: QuantumCircuit, properties: PropertySet) -> QuantumCircuit:
        layout = self.select_layout(circuit)
        properties["initial_layout"] = layout
        return apply_layout(circuit, layout, self.coupling.num_qubits)

    def select_layout(self, circuit: QuantumCircuit) -> Dict[int, int]:
        rng = np.random.default_rng(self.seed)
        interactions = circuit.two_qubit_interactions()
        weight: Dict[int, float] = {q: 0.0 for q in range(circuit.num_qubits)}
        for (a, b), count in interactions.items():
            weight[a] += count
            weight[b] += count

        program_order: List[int] = sorted(
            range(circuit.num_qubits), key=lambda q: (-weight[q], q)
        )
        distance = self.coupling.distance_matrix()
        degree = [self.coupling.degree(q) for q in range(self.coupling.num_qubits)]
        free = set(range(self.coupling.num_qubits))
        layout: Dict[int, int] = {}

        for program_qubit in program_order:
            partners = [
                (other, count)
                for (a, b), count in interactions.items()
                for other in ((b,) if a == program_qubit else (a,) if b == program_qubit else ())
                if other in layout
            ]
            best_phys, best_cost = -1, float("inf")
            candidates = sorted(free)
            rng.shuffle(candidates)
            for phys in candidates:
                if partners:
                    cost = sum(
                        count * distance[phys, layout[other]]
                        for other, count in partners
                    )
                else:
                    # No placed partners yet: prefer central, high-degree spots.
                    cost = -degree[phys] + 0.01 * float(np.median(distance[phys]))
                # Prefer denser neighbourhoods on ties.
                cost -= 1e-3 * degree[phys]
                if cost < best_cost:
                    best_cost, best_phys = cost, phys
            layout[program_qubit] = best_phys
            free.discard(best_phys)
        return layout


class LineLayout(Pass):
    """Map program qubits along a BFS path of the hardware graph.

    Useful for nearest-neighbour-friendly algorithms (e.g. linear-entangled
    ansatz circuits) and as a cheap deterministic alternative.
    """

    def __init__(self, coupling: CouplingMap):
        self.coupling = coupling

    def cache_key(self) -> Optional[Hashable]:
        return ("LineLayout", self.coupling.fingerprint())

    def run(self, circuit: QuantumCircuit, properties: PropertySet) -> QuantumCircuit:
        order = self._bfs_path()
        if circuit.num_qubits > len(order):
            raise ValueError("circuit wider than device")
        layout = {i: order[i] for i in range(circuit.num_qubits)}
        properties["initial_layout"] = layout
        return apply_layout(circuit, layout, self.coupling.num_qubits)

    def _bfs_path(self) -> List[int]:
        start = min(
            range(self.coupling.num_qubits),
            key=lambda q: (self.coupling.degree(q), q),
        )
        return self.coupling.bfs_order(start)
