"""ASAP scheduling and per-qubit idle-time accounting.

The schedule assigns each operation a start/end time using the device's
calibrated durations.  Idle times feed two consumers: the ESP figure of
merit (Section II-B) and the noisy executor's decoherence model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ...circuits.circuit import Instruction, QuantumCircuit
from ...hardware.calibration import GateDurations
from .base import Pass, PropertySet


@dataclass
class TimedInstruction:
    """An instruction with its scheduled time window (nanoseconds)."""

    instruction: Instruction
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class Schedule:
    """ASAP schedule of a circuit."""

    timed: List[TimedInstruction]
    total_duration: float
    qubit_busy: Dict[int, float]
    qubit_window_end: Dict[int, float]

    def idle_time(self, qubit: int) -> float:
        """Idle time of ``qubit`` from circuit start until its last operation.

        Qubits with no operations report zero idle time (they carry no
        program information, so their decoherence is irrelevant).
        """
        window = self.qubit_window_end.get(qubit, 0.0)
        busy = self.qubit_busy.get(qubit, 0.0)
        return max(0.0, window - busy)

    def idle_times(self) -> Dict[int, float]:
        return {q: self.idle_time(q) for q in self.qubit_window_end}

    def parallel_groups(self) -> List[List[TimedInstruction]]:
        """Operations grouped by overlapping execution windows.

        Two operations are grouped if their time intervals intersect; groups
        are built greedily by start time, which matches how crosstalk windows
        behave on fixed-frequency hardware.
        """
        ordered = sorted(self.timed, key=lambda t: (t.start, t.end))
        groups: List[List[TimedInstruction]] = []
        current: List[TimedInstruction] = []
        current_end = -1.0
        for timed in ordered:
            if timed.instruction.name == "barrier":
                continue
            if current and timed.start < current_end:
                current.append(timed)
                current_end = max(current_end, timed.end)
            else:
                if current:
                    groups.append(current)
                current = [timed]
                current_end = timed.end
        if current:
            groups.append(current)
        return groups


def schedule_asap(
    circuit: QuantumCircuit, durations: GateDurations
) -> Schedule:
    """Compute an as-soon-as-possible schedule for ``circuit``."""
    qubit_free = [0.0] * max(circuit.num_qubits, 1)
    clbit_free = [0.0] * max(circuit.num_clbits, 1)
    timed: List[TimedInstruction] = []
    busy: Dict[int, float] = {}
    window_end: Dict[int, float] = {}
    total = 0.0
    for instruction in circuit.instructions:
        if instruction.name == "barrier":
            qubits = instruction.qubits or tuple(range(circuit.num_qubits))
            barrier_time = max(qubit_free[q] for q in qubits) if qubits else 0.0
            for q in qubits:
                qubit_free[q] = barrier_time
            timed.append(TimedInstruction(instruction, barrier_time, barrier_time))
            continue
        duration = durations.of(
            instruction.num_qubits, instruction.name == "measure"
        )
        start = max(qubit_free[q] for q in instruction.qubits)
        for c in instruction.clbits:
            start = max(start, clbit_free[c])
        end = start + duration
        for q in instruction.qubits:
            qubit_free[q] = end
            busy[q] = busy.get(q, 0.0) + duration
            window_end[q] = end
        for c in instruction.clbits:
            clbit_free[c] = end
        timed.append(TimedInstruction(instruction, start, end))
        total = max(total, end)
    return Schedule(
        timed=timed,
        total_duration=total,
        qubit_busy=busy,
        qubit_window_end=window_end,
    )


class ASAPSchedule(Pass):
    """Pass wrapper storing the schedule in the property set."""

    def __init__(self, durations: GateDurations):
        self.durations = durations

    def run(self, circuit: QuantumCircuit, properties: PropertySet) -> QuantumCircuit:
        properties["schedule"] = schedule_asap(circuit, self.durations)
        return circuit
