"""Noise-aware routing and layout (error-aware compilation, Section III).

The paper's motivation cites error-aware compilation methods that consult
calibration data instead of plain gate counts [35].  This module provides
the calibration-aware counterparts of the geometric passes:

* :class:`NoiseAwareLayout` — place heavily interacting program qubits on
  the *highest-fidelity* connected region instead of merely the densest one.
* :class:`NoiseAwareRouting` — SABRE with an effective-distance matrix in
  which every hop is weighted by the negative log-fidelity of its edge, so
  routes prefer good links even when slightly longer.

Both consume the device's *reported* calibration — like any real compiler
would — which makes them exactly as vulnerable to stale calibration data as
the figures of merit the paper studies.
"""

from __future__ import annotations

import heapq
import itertools
import math
from typing import Dict, List, Tuple

import numpy as np

from ...circuits.circuit import QuantumCircuit
from ...hardware.calibration import Calibration
from ...hardware.coupling import CouplingMap
from .base import Pass, PropertySet
from .layout import apply_layout
from .routing import SabreRouting


def effective_distance_matrix(
    coupling: CouplingMap, calibration: Calibration
) -> np.ndarray:
    """All-pairs shortest *error-weighted* path lengths.

    Edge weight is ``1 - log(f_edge)`` (a unit hop plus the negative log
    fidelity), so the metric degenerates to plain hop distance on a perfect
    device and stretches low-fidelity links on a real one.

    The all-pairs sweep is a faithful port of networkx's Dijkstra (same
    heap discipline, same insertion-ordered neighbour expansion), so the
    float path sums — and with them any tie-sensitive routing decision
    downstream — are bit-identical to the networkx-backed original.
    """
    num_qubits = coupling.num_qubits
    adjacency: List[Dict[int, float]] = [{} for _ in range(num_qubits)]
    for a, b in coupling.edges:
        fidelity = calibration.edge_fidelity(a, b)
        weight = 1.0 - math.log(max(fidelity, 1e-6))
        adjacency[a][b] = weight
        adjacency[b][a] = weight
    dist = np.full((num_qubits, num_qubits), np.inf)
    for source in range(num_qubits):
        for target, length in _dijkstra_lengths(adjacency, source).items():
            dist[source, target] = length
    return dist


def _dijkstra_lengths(
    adjacency: "List[Dict[int, float]]", source: int
) -> Dict[int, float]:
    """Shortest weighted path lengths from ``source`` (networkx port)."""
    dist: Dict[int, float] = {}
    seen: Dict[int, float] = {source: 0}
    counter = itertools.count()
    fringe: List[Tuple[float, int, int]] = [(0, next(counter), source)]
    while fringe:
        d, _, node = heapq.heappop(fringe)
        if node in dist:
            continue
        dist[node] = d
        for nbr, weight in adjacency[node].items():
            nbr_dist = d + weight
            if nbr not in dist and (nbr not in seen or nbr_dist < seen[nbr]):
                seen[nbr] = nbr_dist
                heapq.heappush(fringe, (nbr_dist, next(counter), nbr))
    return dist


class NoiseAwareRouting(Pass):
    """SABRE routing over the error-weighted distance metric."""

    def __init__(
        self,
        coupling: CouplingMap,
        calibration: Calibration,
        seed: int = 0,
        lookahead: bool = True,
    ):
        self.coupling = coupling
        self.calibration = calibration
        self.seed = seed
        self.lookahead = lookahead

    def run(self, circuit: QuantumCircuit, properties: PropertySet) -> QuantumCircuit:
        # Reuse the SABRE machinery with a patched distance matrix: the
        # router reads coupling.distance_matrix(), so hand it a coupling
        # proxy whose cached matrix is the error-weighted one.
        weighted = _WeightedCouplingView(self.coupling, self.calibration)
        inner = SabreRouting(weighted, seed=self.seed, lookahead=self.lookahead)
        return inner.run(circuit, properties)


class _WeightedCouplingView(CouplingMap):
    """A coupling map whose distance matrix is error-weighted.

    Adjacency (edges, neighbours) is identical to the base map; only the
    metric the router scores swaps with changes.
    """

    def __init__(self, base: CouplingMap, calibration: Calibration):
        super().__init__(base.num_qubits, base.edges)
        self._distance = effective_distance_matrix(base, calibration)

    def fingerprint(self) -> int:
        # Include the weighted metric: this view must never share
        # compile-cache keys with the plain topology it wraps.
        if self._fingerprint is None:
            self._fingerprint = hash((
                self.num_qubits, tuple(self.edges), self._distance.tobytes(),
            ))
        return self._fingerprint


class NoiseAwareLayout(Pass):
    """Greedy layout maximizing the fidelity of the occupied region.

    Program qubits are visited in decreasing interaction weight; each is
    placed on the free physical qubit minimizing the interaction-weighted
    *error distance* to already-placed partners, with a tie-break towards
    qubits with good readout and single-qubit fidelities.
    """

    def __init__(self, coupling: CouplingMap, calibration: Calibration,
                 seed: int = 0):
        self.coupling = coupling
        self.calibration = calibration
        self.seed = seed

    def run(self, circuit: QuantumCircuit, properties: PropertySet) -> QuantumCircuit:
        layout = self.select_layout(circuit)
        properties["initial_layout"] = layout
        return apply_layout(circuit, layout, self.coupling.num_qubits)

    def select_layout(self, circuit: QuantumCircuit) -> Dict[int, int]:
        rng = np.random.default_rng(self.seed)
        interactions = circuit.two_qubit_interactions()
        weight: Dict[int, float] = {q: 0.0 for q in range(circuit.num_qubits)}
        for (a, b), count in interactions.items():
            weight[a] += count
            weight[b] += count
        order = sorted(range(circuit.num_qubits), key=lambda q: (-weight[q], q))

        distance = effective_distance_matrix(self.coupling, self.calibration)
        quality = {
            q: (
                self.calibration.one_qubit_fidelity[q]
                * self.calibration.readout_fidelity[q]
            )
            for q in range(self.coupling.num_qubits)
        }
        free = set(range(self.coupling.num_qubits))
        layout: Dict[int, int] = {}
        for program_qubit in order:
            partners = [
                (other, count)
                for (a, b), count in interactions.items()
                for other in (
                    (b,) if a == program_qubit
                    else (a,) if b == program_qubit
                    else ()
                )
                if other in layout
            ]
            candidates = sorted(free)
            rng.shuffle(candidates)
            best_phys, best_cost = -1, float("inf")
            for phys in candidates:
                if partners:
                    cost = sum(
                        count * distance[phys, layout[other]]
                        for other, count in partners
                    )
                else:
                    # Seed placement: prefer high-quality, well-connected spots.
                    mean_edge = np.mean([
                        1.0 - math.log(
                            max(self.calibration.edge_fidelity(phys, nbr), 1e-6)
                        )
                        for nbr in self.coupling.neighbors(phys)
                    ]) if self.coupling.neighbors(phys) else 10.0
                    cost = mean_edge - self.coupling.degree(phys)
                cost -= 0.5 * quality[phys]
                if cost < best_cost:
                    best_cost, best_phys = cost, phys
            layout[program_qubit] = best_phys
            free.discard(best_phys)
        return layout


def compile_noise_aware(
    circuit: QuantumCircuit,
    device,
    seed: int = 0,
    keep_final_rz: bool = False,
) -> QuantumCircuit:
    """Full noise-aware pipeline: error-aware layout + routing + synthesis.

    A convenience counterpart of ``compile_circuit`` for the error-aware
    ablation; uses the device's *reported* calibration throughout.
    """
    from ..compile import _split_measurements
    from .base import PassManager
    from .decompose import Decompose
    from .optimization import OptimizationLoop
    from .synthesis import NativeSynthesis, VirtualRZ

    body, measurements = _split_measurements(circuit)
    properties = PropertySet()
    pipeline = PassManager([
        Decompose(),
        OptimizationLoop(),
        NoiseAwareLayout(device.coupling, device.reported_calibration, seed=seed),
        NoiseAwareRouting(device.coupling, device.reported_calibration, seed=seed),
        Decompose(),
        OptimizationLoop(),
        NativeSynthesis(),
        VirtualRZ(keep_final_rz=keep_final_rz),
    ])
    compiled = pipeline.run(body, properties)
    final_layout = properties.get("final_layout", {})
    if measurements:
        if compiled.num_clbits < circuit.num_clbits:
            compiled.num_clbits = circuit.num_clbits
        for program_qubit, clbit in measurements:
            compiled.measure(final_layout[program_qubit], clbit)
    compiled.name = circuit.name
    device.validate_circuit(compiled)
    return compiled
