"""SWAP routing: make every two-qubit gate act on coupled qubits.

Implements a SABRE-style heuristic router [Li, Ding, Xie, ASPLOS'19] (the
paper's reference [9]): process the dependency DAG's front layer, emit
executable gates, and when stuck insert the SWAP that minimizes a
distance-based cost with a lookahead term and a decay factor that
discourages ping-ponging the same qubits.

The router operates on circuits already expressed over physical qubit
indices (after a layout pass).  It maintains ``tau``: the mapping from
*virtual* wires (the qubit labels in the incoming circuit) to *physical*
qubits, initialized to identity.  The final mapping is stored as
``final_layout`` so later stages (and result interpretation) can undo the
permutation.

Throughput notes: topology lookups (distance matrix, adjacency, neighbour
lists) come from the :class:`~repro.hardware.coupling.RoutingTables` cached
per coupling map, the virtual/physical permutation and its inverse are
maintained incrementally, and candidate SWAPs are scored in one vectorized
batch per decision (:func:`_select_swap`).  Distances are whole numbers, so
the vectorized sums are exact and the selected SWAP is bit-identical to the
scalar reference (:func:`_swap_score`, kept for verification).
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Hashable, List, Optional, Sequence, Set, Tuple

import numpy as np

from ...circuits.circuit import Instruction, QuantumCircuit
from ...circuits.dag import CircuitDag
from ...hardware.coupling import CouplingMap, RoutingTables
from .base import Pass, PropertySet

_DECAY_RESET_INTERVAL = 5
_DECAY_STEP = 0.001
_LOOKAHEAD_WEIGHT = 0.5
_LOOKAHEAD_SIZE = 20


class SabreRouting(Pass):
    """Heuristic SWAP insertion with lookahead (SABRE-style)."""

    reads = ("initial_layout",)

    def __init__(
        self,
        coupling: CouplingMap,
        seed: int = 0,
        lookahead: bool = True,
        swap_gate: str = "swap",
        lookahead_size: int = _LOOKAHEAD_SIZE,
    ):
        self.coupling = coupling
        self.seed = seed
        self.lookahead = lookahead
        if swap_gate not in ("swap", "cx"):
            raise ValueError("swap_gate must be 'swap' or 'cx'")
        self.swap_gate = swap_gate
        self.lookahead_size = int(lookahead_size)

    def cache_key(self) -> Optional[Hashable]:
        return (
            "SabreRouting",
            self.coupling.fingerprint(),
            self.seed,
            self.lookahead,
            self.swap_gate,
            self.lookahead_size,
        )

    def run(self, circuit: QuantumCircuit, properties: PropertySet) -> QuantumCircuit:
        routed, final_virtual_to_phys = route_circuit(
            circuit,
            self.coupling,
            seed=self.seed,
            lookahead=self.lookahead,
            swap_gate=self.swap_gate,
            lookahead_size=self.lookahead_size,
        )
        initial = properties.get("initial_layout")
        if initial is not None:
            # Compose: program qubit -> initial physical (= virtual wire)
            # -> final physical.
            properties["final_layout"] = {
                prog: final_virtual_to_phys[phys] for prog, phys in initial.items()
            }
        else:
            properties["final_layout"] = dict(final_virtual_to_phys)
        properties["routing_swaps"] = routed.metadata.get("routing_swaps", 0)
        return routed


def route_circuit(
    circuit: QuantumCircuit,
    coupling: CouplingMap,
    seed: int = 0,
    lookahead: bool = True,
    swap_gate: str = "swap",
    tables: Optional[RoutingTables] = None,
    lookahead_size: int = _LOOKAHEAD_SIZE,
) -> Tuple[QuantumCircuit, Dict[int, int]]:
    """Route ``circuit`` onto ``coupling``.

    Returns ``(routed_circuit, final_mapping)`` where ``final_mapping`` sends
    each virtual wire of the input circuit to the physical qubit holding it
    after all inserted SWAPs.  Measurements are emitted on the physical qubit
    currently holding the measured virtual wire, so counts keep their
    program-level meaning.

    ``lookahead_size`` bounds how many upcoming two-qubit gates feed the
    lookahead cost term; ``0`` (or ``lookahead=False``) disables it.
    """
    if circuit.num_qubits > coupling.num_qubits:
        raise ValueError("circuit wider than coupling map")
    if tables is None:
        tables = coupling.routing_tables()
    rng = np.random.default_rng(seed)
    dag = CircuitDag(circuit)
    distance = tables.distance
    adjacency = tables.adjacency
    neighbors = tables.neighbors
    num_qubits = coupling.num_qubits

    # tau: virtual wire -> physical qubit, with its inverse maintained
    # incrementally (a rebuilt inverse dict per SWAP dominated the old
    # router's profile).
    tau: List[int] = list(range(num_qubits))
    phys_to_virt: List[int] = list(range(num_qubits))
    out = QuantumCircuit(
        num_qubits, circuit.num_clbits,
        name=circuit.name, global_phase=circuit.global_phase,
        metadata=dict(circuit.metadata),
    )

    done: Set[int] = set()
    remaining_successors = {node.index: set(node.predecessors) for node in dag.nodes}
    swaps_inserted = 0
    decay = np.ones(num_qubits)
    steps_since_reset = 0

    def executable(instruction: Instruction) -> bool:
        if instruction.num_qubits < 2 or not instruction.is_unitary:
            return True
        return adjacency[
            tau[instruction.qubits[0]], tau[instruction.qubits[1]]
        ]

    # Measurements are deferred and emitted on the *final* mapping: a swap
    # inserted after an inline measure would otherwise re-use the measured
    # physical qubit and corrupt the counts' meaning.
    deferred_measures: List[Instruction] = []

    def emit(instruction: Instruction) -> None:
        if instruction.name == "measure":
            deferred_measures.append(instruction)
            return
        mapped_qubits = tuple(tau[q] for q in instruction.qubits)
        if mapped_qubits == instruction.qubits:
            # Identity-mapped (common before the first SWAP): reuse.
            out.instructions.append(instruction)
            return
        out.instructions.append(
            Instruction(
                instruction.name,
                mapped_qubits,
                instruction.params,
                instruction.clbits,
            )
        )

    front = [n.index for n in dag.nodes if not n.predecessors]

    while front:
        progressed = True
        while progressed:
            progressed = False
            next_front: List[int] = []
            for index in front:
                node = dag.nodes[index]
                if executable(node.instruction):
                    emit(node.instruction)
                    done.add(index)
                    progressed = True
                    for succ in node.successors:
                        remaining_successors[succ].discard(index)
                        if not remaining_successors[succ]:
                            next_front.append(succ)
                else:
                    next_front.append(index)
            front = next_front
        if not front:
            break

        # Stuck: every front gate is a non-adjacent 2q gate. Pick a SWAP.
        front_gates = [
            dag.nodes[i].instruction for i in front
            if dag.nodes[i].instruction.num_qubits == 2
        ]
        lookahead_gates = (
            _collect_lookahead(dag, front, done, size=lookahead_size)
            if lookahead and lookahead_size > 0
            else []
        )

        candidates = _candidate_swaps(front_gates, tau, neighbors)
        if not candidates:
            raise RuntimeError("router stuck with no candidate swaps")
        order = sorted(candidates)
        rng.shuffle(order)
        a, b = _select_swap(
            order, front_gates, lookahead_gates, tau, distance, decay
        )
        va, vb = phys_to_virt[a], phys_to_virt[b]
        tau[va], tau[vb] = b, a
        phys_to_virt[a], phys_to_virt[b] = vb, va
        if swap_gate == "swap":
            out.instructions.append(Instruction("swap", (a, b)))
        else:
            out.cx(a, b).cx(b, a).cx(a, b)
        swaps_inserted += 1
        decay[a] += _DECAY_STEP
        decay[b] += _DECAY_STEP
        steps_since_reset += 1
        if steps_since_reset >= _DECAY_RESET_INTERVAL:
            decay[:] = 1.0
            steps_since_reset = 0

    for instruction in deferred_measures:
        out.instructions.append(
            Instruction(
                "measure",
                (tau[instruction.qubits[0]],),
                (),
                instruction.clbits,
            )
        )
    out.metadata["routing_swaps"] = swaps_inserted
    final_mapping = {virt: tau[virt] for virt in range(num_qubits)}
    return out, final_mapping


def _apply_swap(tau: Dict[int, int], phys_a: int, phys_b: int) -> None:
    """Swap the virtual wires sitting on physical qubits ``a`` and ``b``."""
    inv = {p: v for v, p in tau.items()}
    va, vb = inv[phys_a], inv[phys_b]
    tau[va], tau[vb] = phys_b, phys_a


def _candidate_swaps(
    front_gates: Sequence[Instruction],
    tau: Sequence[int],
    neighbors: Sequence[Sequence[int]],
) -> Set[Tuple[int, int]]:
    """Hardware edges touching any qubit involved in a blocked front gate."""
    physical_qubits: Set[int] = set()
    for gate in front_gates:
        physical_qubits.update(tau[q] for q in gate.qubits)
    swaps: Set[Tuple[int, int]] = set()
    for phys in physical_qubits:
        for nbr in neighbors[phys]:
            swaps.add((phys, nbr) if phys < nbr else (nbr, phys))
    return swaps


def _collect_lookahead(
    dag: CircuitDag,
    front: Sequence[int],
    done: Set[int],
    size: int = _LOOKAHEAD_SIZE,
) -> List[Instruction]:
    """The next ``size`` two-qubit gates beyond the front layer."""
    seen: Set[int] = set(front)
    queue = deque(front)
    collected: List[Instruction] = []
    while queue and len(collected) < size:
        index = queue.popleft()
        for succ in sorted(dag.nodes[index].successors):
            if succ in seen or succ in done:
                continue
            seen.add(succ)
            queue.append(succ)
            instruction = dag.nodes[succ].instruction
            if instruction.is_unitary and instruction.num_qubits == 2:
                collected.append(instruction)
    return collected


def _select_swap(
    order: Sequence[Tuple[int, int]],
    front_gates: Sequence[Instruction],
    lookahead_gates: Sequence[Instruction],
    tau: Sequence[int],
    distance: np.ndarray,
    decay: np.ndarray,
) -> Tuple[int, int]:
    """Lowest-cost candidate SWAP, scored for all candidates in one batch.

    Scores every candidate against every front/lookahead gate with array
    arithmetic.  On hop-count metrics (every :func:`compile_circuit`
    level) the distance sums are over whole numbers — exact in float64 —
    so the scores, and therefore the selected SWAP, are bit-identical to
    scanning candidates with the scalar :func:`_swap_score`; ties resolve
    to the first candidate in ``order``, matching the scalar scan's
    strict-less-than update rule.  On real-valued metrics (the
    noise-aware router's error-weighted distances) numpy's pairwise
    summation may differ from the scalar fold in the last ulp; selection
    stays deterministic, but an exact-tie could resolve differently than
    the scalar scan.
    """
    cand = np.asarray(order, dtype=np.intp)
    a = cand[:, 0:1]
    b = cand[:, 1:2]

    def mapped_distance(gates: Sequence[Instruction]) -> np.ndarray:
        phys = np.array(
            [(tau[g.qubits[0]], tau[g.qubits[1]]) for g in gates], dtype=np.intp
        )
        pa, pb = phys[:, 0][None, :], phys[:, 1][None, :]
        # Under candidate swap (a, b): position a maps to b and vice versa.
        ma = np.where(pa == a, b, np.where(pa == b, a, pa))
        mb = np.where(pb == a, b, np.where(pb == b, a, pb))
        return distance[ma, mb].sum(axis=1)

    front_cost = mapped_distance(front_gates) / max(len(front_gates), 1)
    if lookahead_gates:
        look_cost = mapped_distance(lookahead_gates) * (
            _LOOKAHEAD_WEIGHT / len(lookahead_gates)
        )
    else:
        look_cost = 0.0
    scores = np.maximum(decay[cand[:, 0]], decay[cand[:, 1]]) * (
        front_cost + look_cost
    )
    return order[int(np.argmin(scores))]


def _swap_score(
    swap: Tuple[int, int],
    front_gates: Sequence[Instruction],
    lookahead_gates: Sequence[Instruction],
    tau: Dict[int, int],
    distance: np.ndarray,
    decay: np.ndarray,
) -> float:
    """SABRE cost of applying ``swap``: front distance + weighted lookahead.

    Scalar reference for :func:`_select_swap`; kept for the equivalence
    tests that pin the vectorized scorer to the historical behaviour.
    """
    a, b = swap
    # Build the trial mapping lazily: only qubits a/b change.
    inv = {p: v for v, p in tau.items()}
    va, vb = inv[a], inv[b]

    def phys(virtual: int) -> int:
        if virtual == va:
            return b
        if virtual == vb:
            return a
        return tau[virtual]

    front_cost = 0.0
    for gate in front_gates:
        qa, qb = gate.qubits
        front_cost += distance[phys(qa), phys(qb)]
    front_cost /= max(len(front_gates), 1)

    look_cost = 0.0
    if lookahead_gates:
        for gate in lookahead_gates:
            qa, qb = gate.qubits
            look_cost += distance[phys(qa), phys(qb)]
        look_cost *= _LOOKAHEAD_WEIGHT / len(lookahead_gates)

    return max(decay[a], decay[b]) * (front_cost + look_cost)


class PathRouting(Pass):
    """Naive router: swap along the shortest path for each blocked gate.

    Serves as the low-optimization-level baseline (and as a comparison point
    in the compiler benchmarks).
    """

    reads = ("initial_layout",)

    def __init__(self, coupling: CouplingMap):
        self.coupling = coupling

    def cache_key(self) -> Optional[Hashable]:
        return ("PathRouting", self.coupling.fingerprint())

    def run(self, circuit: QuantumCircuit, properties: PropertySet) -> QuantumCircuit:
        routed, final_mapping = self.route(circuit)
        initial = properties.get("initial_layout")
        if initial is not None:
            properties["final_layout"] = {
                prog: final_mapping[phys] for prog, phys in initial.items()
            }
        else:
            properties["final_layout"] = dict(final_mapping)
        properties["routing_swaps"] = routed.metadata.get("routing_swaps", 0)
        return routed

    def route(self, circuit: QuantumCircuit) -> Tuple[QuantumCircuit, Dict[int, int]]:
        coupling = self.coupling
        tau = {q: q for q in range(coupling.num_qubits)}
        out = QuantumCircuit(
            coupling.num_qubits, circuit.num_clbits,
            name=circuit.name, global_phase=circuit.global_phase,
            metadata=dict(circuit.metadata),
        )
        swaps = 0
        deferred_measures = []
        for instruction in circuit.instructions:
            if instruction.name == "measure":
                deferred_measures.append(instruction)
                continue
            if instruction.is_unitary and instruction.num_qubits == 2:
                a, b = tau[instruction.qubits[0]], tau[instruction.qubits[1]]
                if not coupling.has_edge(a, b):
                    path = coupling.shortest_path(a, b)
                    for step in range(len(path) - 2):
                        x, y = path[step], path[step + 1]
                        out.append("swap", (x, y))
                        _apply_swap(tau, x, y)
                        swaps += 1
            out.instructions.append(
                Instruction(
                    instruction.name,
                    tuple(tau[q] for q in instruction.qubits),
                    instruction.params,
                    instruction.clbits,
                )
            )
        for instruction in deferred_measures:
            out.instructions.append(
                Instruction(
                    "measure",
                    (tau[instruction.qubits[0]],),
                    (),
                    instruction.clbits,
                )
            )
        out.metadata["routing_swaps"] = swaps
        return out, dict(tau)
