"""Compiler passes: layout, routing, synthesis, optimization, scheduling."""
