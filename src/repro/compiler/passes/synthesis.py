"""Translation to the device's native gate set (Section II-A "gate synthesis").

For IQM-style targets the native set is ``{prx, rz, cz}`` where RZ is
*virtual*: the hardware implements Z rotations by adjusting the phase of
subsequent PRX pulses.  The :class:`VirtualRZ` pass performs exactly that
folding, so the emitted circuit consists of PRX and CZ pulses only (plus an
optional trailing RZ layer when exact unitary equivalence is required).

The emission path is throughput-tuned: every distinct 2x2 matrix maps to a
precomputed template (its ZYZ decomposition, angle normalizations, and
global-phase increments), so synthesizing the millionth Hadamard costs two
tuple appends instead of a fresh trigonometric decomposition.
"""

from __future__ import annotations

import math
from typing import Dict, Hashable, Optional, Tuple

import numpy as np

from ...circuits.circuit import Instruction, QuantumCircuit
from ...circuits.gates import H_MATRIX, cached_gate_matrix
from ..unitary_math import is_identity_angle, normalize_angle, u_params
from .base import Pass, PropertySet

#: Emission template per distinct matrix content: an ordered tuple of
#: ``(None, delta)`` phase events and ``(name, params, per_qubit)`` gate
#: events, where ``per_qubit`` lazily interns one immutable
#: :class:`Instruction` per target qubit (compiled circuits re-emit the
#: same few 1q unitaries hundreds of thousands of times).  Event order
#: reproduces the historical sequential emission exactly (global-phase
#: floating-point accumulation included).
_TEMPLATE_CACHE: Dict[bytes, Tuple] = {}
_TEMPLATE_CACHE_MAX = 16384


def _native_1q_template(matrix: np.ndarray) -> Tuple:
    """Ordered phase/gate events realizing a 2x2 unitary natively.

    Uses ``matrix = e^{i(phase + (phi+lam)/2)} RZ(phi) RY(theta) RZ(lam)``
    with ``RY(theta) = PRX(theta, pi/2)``.
    """
    key = matrix.tobytes()
    template = _TEMPLATE_CACHE.get(key)
    if template is not None:
        return template

    events = []

    def emit_rz(angle: float) -> None:
        # ``rz(a + 2*pi) = -rz(a)``: normalizing may flip the unitary's
        # sign, compensated on the global phase.
        norm = normalize_angle(angle)
        if round((angle - norm) / (2.0 * math.pi)) % 2:
            events.append((None, math.pi))
        if not is_identity_angle(norm):
            events.append(("rz", (norm,), {}))

    theta, phi, lam, phase = u_params(matrix)
    events.append((None, phase + (phi + lam) / 2.0))
    if is_identity_angle(theta):
        # Purely diagonal (theta = 0 mod 2pi; u_params yields theta in [0, pi]).
        emit_rz(phi + lam)
    else:
        emit_rz(lam)
        events.append(("prx", (normalize_angle(theta), math.pi / 2), {}))
        if round((theta - normalize_angle(theta)) / (2.0 * math.pi)) % 2:
            events.append((None, math.pi))
        emit_rz(phi)

    template = tuple(events)
    if len(_TEMPLATE_CACHE) >= _TEMPLATE_CACHE_MAX:
        _TEMPLATE_CACHE.clear()
    _TEMPLATE_CACHE[key] = template
    return template


def _append_native_1q(out: QuantumCircuit, matrix: np.ndarray, qubit: int) -> None:
    """Append the native realization of a 2x2 unitary on ``qubit``."""
    for event in _native_1q_template(matrix):
        name = event[0]
        if name is None:
            out.global_phase += event[1]
            continue
        per_qubit = event[2]
        instruction = per_qubit.get(qubit)
        if instruction is None:
            instruction = Instruction(name, (qubit,), event[1])
            per_qubit[qubit] = instruction
        out.instructions.append(instruction)


def _emit_rz(out: QuantumCircuit, angle: float, qubit: int) -> None:
    """Emit ``rz`` with a normalized angle, preserving the global phase.

    ``rz(a + 2*pi) = -rz(a)``, so normalizing the angle may flip the sign of
    the unitary; the flip is compensated on ``out.global_phase``.
    """
    norm = normalize_angle(angle)
    half_turns = round((angle - norm) / (2.0 * math.pi))
    if half_turns % 2:
        out.global_phase += math.pi
    if not is_identity_angle(norm):
        out.rz(norm, qubit)


class NativeSynthesis(Pass):
    """Rewrite a ``{1q, cx, cz, swap}`` circuit into ``{prx, rz, cz}``.

    Every single-qubit unitary ``U`` is expressed through its ZYZ form as
    ``rz(lam) . prx(theta, pi/2) . rz(phi)`` (circuit order), with the global
    phase tracked on the circuit so the translation is *exactly* unitary-
    preserving.  ``cx(c, t)`` becomes ``h(t) cz(c, t) h(t)`` with the
    Hadamards synthesized natively.
    """

    def cache_key(self) -> Optional[Hashable]:
        return ("NativeSynthesis",)

    def run(self, circuit: QuantumCircuit, properties: PropertySet) -> QuantumCircuit:
        out = QuantumCircuit(
            circuit.num_qubits, circuit.num_clbits,
            name=circuit.name, global_phase=circuit.global_phase,
            metadata=dict(circuit.metadata),
        )
        append = out.instructions.append
        for instruction in circuit.instructions:
            name = instruction.name
            if name in ("barrier", "measure", "cz", "prx", "rz"):
                append(instruction)
            elif name == "cx":
                control, target = instruction.qubits
                _append_native_1q(out, H_MATRIX, target)
                append(Instruction("cz", (control, target)))
                _append_native_1q(out, H_MATRIX, target)
            elif name == "swap":
                a, b = instruction.qubits
                for control, target in ((a, b), (b, a), (a, b)):
                    _append_native_1q(out, H_MATRIX, target)
                    append(Instruction("cz", (control, target)))
                    _append_native_1q(out, H_MATRIX, target)
            elif instruction.is_unitary and instruction.num_qubits == 1:
                matrix = cached_gate_matrix(name, instruction.params)
                _append_native_1q(out, matrix, instruction.qubits[0])
            else:
                raise ValueError(
                    f"NativeSynthesis cannot translate '{name}' "
                    "(run Decompose first)"
                )
        return out


class VirtualRZ(Pass):
    """Fold RZ gates into the phases of subsequent PRX pulses.

    Sweeps left to right accumulating a per-qubit phase ``z[q]``; using
    ``PRX(theta, phi) . RZ(a) = RZ(a) . PRX(theta, phi - a)`` (matrix order),
    each ``prx(theta, phi)`` preceded by accumulated phase ``z[q]`` becomes
    ``prx(theta, phi - z[q])``.  RZ commutes with CZ and does not affect
    Z-basis measurement, so accumulated phases can be dropped at the end of
    the circuit (``keep_final_rz=False``, the hardware behaviour) or emitted
    as trailing RZ gates when exact unitary equivalence is needed
    (``keep_final_rz=True``).
    """

    def __init__(self, keep_final_rz: bool = False):
        self.keep_final_rz = keep_final_rz

    def cache_key(self) -> Optional[Hashable]:
        return ("VirtualRZ", self.keep_final_rz)

    def run(self, circuit: QuantumCircuit, properties: PropertySet) -> QuantumCircuit:
        out = QuantumCircuit(
            circuit.num_qubits, circuit.num_clbits,
            name=circuit.name, global_phase=circuit.global_phase,
            metadata=dict(circuit.metadata),
        )
        append = out.instructions.append
        z: Dict[int, float] = {q: 0.0 for q in range(circuit.num_qubits)}
        for instruction in circuit.instructions:
            name = instruction.name
            if name == "rz":
                z[instruction.qubits[0]] += instruction.params[0]
            elif name == "prx":
                q = instruction.qubits[0]
                theta, phi = instruction.params
                # prx is exactly 2*pi-periodic in phi, so normalization is free.
                folded = normalize_angle(phi - z[q])
                if folded == phi:
                    # Identical content: reuse the immutable instruction.
                    append(instruction)
                else:
                    append(Instruction("prx", (q,), (theta, folded)))
            elif name in ("cz", "barrier", "measure"):
                append(instruction)
            else:
                raise ValueError(
                    f"VirtualRZ expects a native circuit, found '{name}'"
                )
        if self.keep_final_rz:
            for q in range(circuit.num_qubits):
                _emit_rz(out, z[q], q)
        return out
