"""Compiler pass infrastructure.

A :class:`Pass` transforms a circuit and may record results (layouts,
schedules, statistics) into a shared :class:`PropertySet`.  A
:class:`PassManager` runs a sequence of passes, mirroring the architecture
of production transpilers so that pass orderings can be studied (the paper's
Section II-A: "passes can be performed in any order and might be repeated").
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Dict, List

from ...circuits.circuit import QuantumCircuit


class PropertySet(dict):
    """Shared key-value store passed along the pipeline.

    Well-known keys:
        ``initial_layout``: dict program qubit -> physical qubit.
        ``final_layout``: dict program qubit -> physical qubit after routing.
        ``schedule``: :class:`repro.compiler.passes.scheduling.Schedule`.
    """

    def require(self, key: str) -> Any:
        if key not in self:
            raise KeyError(f"property '{key}' has not been produced by any pass")
        return self[key]


class Pass(ABC):
    """Base class for all compiler passes."""

    @property
    def name(self) -> str:
        return type(self).__name__

    @abstractmethod
    def run(self, circuit: QuantumCircuit, properties: PropertySet) -> QuantumCircuit:
        """Transform ``circuit``; may read/write ``properties``."""

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return self.name


class PassManager:
    """Runs passes in order, collecting per-pass statistics."""

    def __init__(self, passes: List[Pass] | None = None):
        self.passes: List[Pass] = list(passes or [])
        self.history: List[Dict[str, Any]] = []

    def append(self, pass_: Pass) -> "PassManager":
        self.passes.append(pass_)
        return self

    def run(
        self,
        circuit: QuantumCircuit,
        properties: PropertySet | None = None,
    ) -> QuantumCircuit:
        """Run every pass in order and return the final circuit."""
        properties = properties if properties is not None else PropertySet()
        self.properties = properties
        self.history = []
        current = circuit
        for pass_ in self.passes:
            before_size = current.size()
            before_depth = current.depth()
            current = pass_.run(current, properties)
            self.history.append(
                {
                    "pass": pass_.name,
                    "size_before": before_size,
                    "size_after": current.size(),
                    "depth_before": before_depth,
                    "depth_after": current.depth(),
                }
            )
        return current
