"""Compiler pass infrastructure.

A :class:`Pass` transforms a circuit and may record results (layouts,
schedules, statistics) into a shared :class:`PropertySet`.  A
:class:`PassManager` runs a sequence of passes, mirroring the architecture
of production transpilers so that pass orderings can be studied (the paper's
Section II-A: "passes can be performed in any order and might be repeated").

Passes that are pure functions of ``(circuit, configuration, declared
property reads)`` advertise a :meth:`Pass.cache_key`; a
:class:`PassManager` constructed with a
:class:`~repro.compiler.cache.CompileCache` memoizes their results, so
repeated compilations (level-3 trials, warm dataset rebuilds) skip the
pass bodies entirely.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Dict, Hashable, List, Optional, Tuple

from ...circuits.circuit import QuantumCircuit
from ..cache import CachedPassResult, CompileCache


class PropertySet(dict):
    """Shared key-value store passed along the pipeline.

    Well-known keys:
        ``initial_layout``: dict program qubit -> physical qubit.
        ``final_layout``: dict program qubit -> physical qubit after routing.
        ``schedule``: :class:`repro.compiler.passes.scheduling.Schedule`.
    """

    def require(self, key: str) -> Any:
        if key not in self:
            raise KeyError(f"property '{key}' has not been produced by any pass")
        return self[key]


class Pass(ABC):
    """Base class for all compiler passes."""

    #: Property-set keys whose values feed into this pass's output (beyond
    #: the circuit itself).  Only these keys are visible to a cached run,
    #: and their frozen values become part of the cache key.
    reads: Tuple[str, ...] = ()

    @property
    def name(self) -> str:
        return type(self).__name__

    @abstractmethod
    def run(self, circuit: QuantumCircuit, properties: PropertySet) -> QuantumCircuit:
        """Transform ``circuit``; may read/write ``properties``."""

    def cache_key(self) -> Optional[Hashable]:
        """Configuration signature for pass-result memoization.

        Return a hashable tuple covering *every* option that affects the
        pass output (seeds, tolerances, coupling fingerprints, ...), or
        ``None`` (the default) when the pass must not be cached.
        """
        return None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return self.name


def circuit_cache_fingerprint(circuit: QuantumCircuit) -> Tuple:
    """Content fingerprint of a circuit for compile-cache keys.

    Instructions are immutable and pre-hashed, so the tuple hash is cheap;
    length is included alongside to shrink the collision surface.
    """
    return (
        circuit.num_qubits,
        circuit.num_clbits,
        circuit.global_phase,
        len(circuit.instructions),
        hash(tuple(circuit.instructions)),
    )


def _freeze_property(value: Any) -> Hashable:
    """Hashable snapshot of a property value (layout dicts become tuples)."""
    if isinstance(value, dict):
        return tuple(sorted(value.items()))
    return value


def _copy_property(value: Any) -> Any:
    """Defensive copy of a property value handed out of the cache."""
    if isinstance(value, dict):
        return dict(value)
    return value


class PassManager:
    """Runs passes in order, optionally memoizing and collecting statistics.

    Args:
        passes: the pipeline.
        cache: a :class:`CompileCache`; when given, passes with a
            non-``None`` :meth:`Pass.cache_key` are memoized.
        collect_history: record per-pass size/depth statistics in
            :attr:`history`.  Depth is O(circuit), so the hot compile path
            disables this.
    """

    def __init__(
        self,
        passes: List[Pass] | None = None,
        cache: Optional[CompileCache] = None,
        collect_history: bool = True,
    ):
        self.passes: List[Pass] = list(passes or [])
        self.cache = cache
        self.collect_history = collect_history
        self.history: List[Dict[str, Any]] = []

    def append(self, pass_: Pass) -> "PassManager":
        self.passes.append(pass_)
        return self

    def run(
        self,
        circuit: QuantumCircuit,
        properties: PropertySet | None = None,
    ) -> QuantumCircuit:
        """Run every pass in order and return the final circuit."""
        properties = properties if properties is not None else PropertySet()
        self.properties = properties
        self.history = []
        current = circuit
        for pass_ in self.passes:
            if self.collect_history:
                before_size = current.size()
                before_depth = current.depth()
            current = self._run_pass(pass_, current, properties)
            if self.collect_history:
                self.history.append(
                    {
                        "pass": pass_.name,
                        "size_before": before_size,
                        "size_after": current.size(),
                        "depth_before": before_depth,
                        "depth_after": current.depth(),
                    }
                )
        return current

    # ------------------------------------------------------------------
    # Memoized execution
    # ------------------------------------------------------------------

    def _run_pass(
        self, pass_: Pass, circuit: QuantumCircuit, properties: PropertySet
    ) -> QuantumCircuit:
        cache = self.cache
        config_key = pass_.cache_key() if cache is not None else None
        if cache is None or config_key is None:
            return pass_.run(circuit, properties)

        read_state = tuple(
            (key, _freeze_property(properties.get(key))) for key in pass_.reads
        )
        key = (config_key, circuit_cache_fingerprint(circuit), read_state)
        entry = cache.get(key)
        if entry is None:
            entry, result = self._execute_and_snapshot(pass_, circuit, properties)
            cache.put(key, entry)
            for prop_key, value in entry.properties_delta.items():
                properties[prop_key] = _copy_property(value)
            return result
        # Hit: rebuild a fresh circuit from the immutable snapshot, carrying
        # the *input's* name/metadata plus the deltas the pass produced.
        metadata = dict(circuit.metadata)
        metadata.update(
            (k, _copy_property(v)) for k, v in entry.metadata_delta.items()
        )
        for prop_key, value in entry.properties_delta.items():
            properties[prop_key] = _copy_property(value)
        return QuantumCircuit(
            num_qubits=entry.num_qubits,
            num_clbits=entry.num_clbits,
            name=circuit.name,
            global_phase=entry.global_phase,
            instructions=list(entry.instructions),
            metadata=metadata,
        )

    @staticmethod
    def _execute_and_snapshot(
        pass_: Pass, circuit: QuantumCircuit, properties: PropertySet
    ) -> Tuple[CachedPassResult, QuantumCircuit]:
        """Run ``pass_`` against an overlay limited to its declared reads.

        The overlay guarantees cache-key completeness by construction: the
        pass can only observe properties listed in :attr:`Pass.reads`, and
        everything it wrote is captured as the delta stored with the entry.
        """
        overlay = PropertySet(
            {key: properties[key] for key in pass_.reads if key in properties}
        )
        result = pass_.run(circuit, overlay)
        properties_delta = {
            key: value
            for key, value in overlay.items()
            if key not in pass_.reads or properties.get(key) is not value
        }
        metadata_delta = {
            key: value
            for key, value in result.metadata.items()
            if key not in circuit.metadata or circuit.metadata[key] != value
        }
        entry = CachedPassResult(
            num_qubits=result.num_qubits,
            num_clbits=result.num_clbits,
            global_phase=result.global_phase,
            instructions=tuple(result.instructions),
            metadata_delta={
                k: _copy_property(v) for k, v in metadata_delta.items()
            },
            properties_delta={
                k: _copy_property(v) for k, v in properties_delta.items()
            },
        )
        return entry, result
