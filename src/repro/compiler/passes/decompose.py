"""Gate decomposition: lower every registry gate to ``{1q, cx, cz}``.

This implements the "gate synthesis" task of Section II-A at the
basis-lowering stage: exotic and multi-qubit gates are rewritten into
single-qubit gates plus CX/CZ.  Translation into the device's literal
native set (PRX + CZ for IQM) happens later in
:mod:`repro.compiler.passes.synthesis`.
"""

from __future__ import annotations

import math
from typing import Hashable, Optional

from ...circuits.circuit import Instruction, QuantumCircuit
from ...circuits.gates import gate_matrix
from ..unitary_math import zyz_decompose
from .base import Pass, PropertySet

#: Gates the decomposer leaves untouched.
_BASIS = frozenset({
    "id", "x", "y", "z", "h", "s", "sdg", "t", "tdg", "sx", "sxdg",
    "rx", "ry", "rz", "p", "u", "prx", "cx", "cz", "measure", "barrier",
})


class Decompose(Pass):
    """Rewrite all non-basis gates into ``{1q, cx, cz}`` equivalents."""

    def cache_key(self) -> Optional[Hashable]:
        return ("Decompose",)

    def run(self, circuit: QuantumCircuit, properties: PropertySet) -> QuantumCircuit:
        out = QuantumCircuit(
            circuit.num_qubits, circuit.num_clbits,
            name=circuit.name, global_phase=circuit.global_phase,
            metadata=dict(circuit.metadata),
        )
        append = out.instructions.append
        for instruction in circuit.instructions:
            # Instructions are immutable and were validated on construction,
            # so basis gates and directives pass through by reference.
            if instruction.name == "barrier" or instruction.name in _BASIS:
                append(instruction)
            else:
                _decompose_into(out, instruction)
        return out


def decompose_circuit(circuit: QuantumCircuit) -> QuantumCircuit:
    """Functional wrapper around the :class:`Decompose` pass."""
    return Decompose().run(circuit, PropertySet())


def _decompose_into(out: QuantumCircuit, instruction: Instruction) -> None:
    """Append the decomposition of one non-basis instruction to ``out``."""
    name = instruction.name
    qubits = instruction.qubits
    params = instruction.params

    if name == "swap":
        a, b = qubits
        out.cx(a, b).cx(b, a).cx(a, b)
    elif name == "cy":
        c, t = qubits
        out.sdg(t).cx(c, t).s(t)
    elif name == "ch":
        c, t = qubits
        _controlled_u(out, gate_matrix("h"), c, t)
    elif name == "cp":
        (lam,) = params
        c, t = qubits
        out.p(lam / 2, c).cx(c, t).p(-lam / 2, t).cx(c, t).p(lam / 2, t)
    elif name == "crz":
        (theta,) = params
        c, t = qubits
        out.rz(theta / 2, t).cx(c, t).rz(-theta / 2, t).cx(c, t)
    elif name == "crx":
        (theta,) = params
        c, t = qubits
        out.h(t)
        out.rz(theta / 2, t).cx(c, t).rz(-theta / 2, t).cx(c, t)
        out.h(t)
    elif name == "cry":
        (theta,) = params
        c, t = qubits
        out.ry(theta / 2, t).cx(c, t).ry(-theta / 2, t).cx(c, t)
    elif name == "rzz":
        (theta,) = params
        a, b = qubits
        out.cx(a, b).rz(theta, b).cx(a, b)
    elif name == "rxx":
        (theta,) = params
        a, b = qubits
        out.h(a).h(b).cx(a, b).rz(theta, b).cx(a, b).h(a).h(b)
    elif name == "ryy":
        (theta,) = params
        a, b = qubits
        out.rx(math.pi / 2, a).rx(math.pi / 2, b)
        out.cx(a, b).rz(theta, b).cx(a, b)
        out.rx(-math.pi / 2, a).rx(-math.pi / 2, b)
    elif name == "rzx":
        (theta,) = params
        a, b = qubits
        out.h(b).cx(a, b).rz(theta, b).cx(a, b).h(b)
    elif name == "iswap":
        a, b = qubits
        out.s(a).s(b).h(a).cx(a, b).cx(b, a).h(b)
    elif name == "iswap_dg":
        a, b = qubits
        out.h(b).cx(b, a).cx(a, b).h(a).sdg(b).sdg(a)
    elif name == "ccx":
        _ccx(out, *qubits)
    elif name == "ccz":
        a, b, t = qubits
        out.h(t)
        _ccx(out, a, b, t)
        out.h(t)
    elif name == "cswap":
        c, a, b = qubits
        out.cx(b, a)
        _ccx(out, c, a, b)
        out.cx(b, a)
    else:
        raise ValueError(f"no decomposition rule for gate '{name}'")


def _ccx(out: QuantumCircuit, a: int, b: int, t: int) -> None:
    """Standard 6-CX Toffoli decomposition."""
    out.h(t)
    out.cx(b, t).tdg(t)
    out.cx(a, t).t(t)
    out.cx(b, t).tdg(t)
    out.cx(a, t)
    out.t(b).t(t)
    out.h(t)
    out.cx(a, b)
    out.t(a).tdg(b)
    out.cx(a, b)


def _controlled_u(out: QuantumCircuit, matrix, control: int, target: int) -> None:
    """Generic controlled-U via the ZYZ / ABC construction (N&C 4.2).

    ``U = e^{i*alpha} A X B X C`` with ``A B C = I``; the controlled version
    is ``C(t), CX, B(t), CX, A(t)`` plus a phase ``p(alpha)`` on the control.
    """
    alpha, phi, theta, lam = zyz_decompose(matrix)
    # C = RZ((lam - phi)/2)
    _append_rz(out, (lam - phi) / 2, target)
    out.cx(control, target)
    # B = RY(-theta/2) RZ(-(phi+lam)/2): circuit order rz then ry.
    _append_rz(out, -(phi + lam) / 2, target)
    out.ry(-theta / 2, target)
    out.cx(control, target)
    # A = RZ(phi) RY(theta/2): circuit order ry then rz.
    out.ry(theta / 2, target)
    _append_rz(out, phi, target)
    if abs(alpha) > 1e-12:
        out.p(alpha, control)


def _append_rz(out: QuantumCircuit, angle: float, qubit: int) -> None:
    if abs(angle) > 1e-12:
        out.rz(angle, qubit)


#: Decomposition rules are exercised by tests comparing unitaries; the list
#: of decomposable gates is exported for those tests.
DECOMPOSABLE_GATES = (
    "swap", "cy", "ch", "cp", "crz", "crx", "cry",
    "rzz", "rxx", "ryy", "rzx", "iswap", "iswap_dg",
    "ccx", "ccz", "cswap",
)
