"""Circuit optimization passes (Section II-A "circuit optimization").

Three complementary passes:

* :class:`Merge1QRuns` — collapse every maximal run of single-qubit gates on
  a wire into one ``u`` gate (dropped entirely if it multiplies to identity).
* :class:`CancelInversePairs` — remove adjacent self-inverse two-qubit gate
  pairs (``cx cx``, ``cz cz``, ``swap swap``), looking through operations
  that commute on the connecting wires.
* :class:`RemoveIdentities` — drop ``id`` gates and zero-angle rotations.
"""

from __future__ import annotations

import cmath
import math
from typing import Dict, Hashable, List, Optional

import numpy as np

from ...circuits.circuit import Instruction, QuantumCircuit
from ...circuits.gates import DIAGONAL_GATES, cached_gate_matrix
from ..unitary_math import u_params_cached
from .base import Pass, PropertySet

_ZERO_ANGLE_GATES = frozenset({"rx", "ry", "rz", "p", "rxx", "ryy", "rzz",
                               "rzx", "cp", "crx", "cry", "crz"})


class RemoveIdentities(Pass):
    """Drop identity gates and rotations by (multiples of) zero."""

    def __init__(self, atol: float = 1e-10):
        self.atol = atol

    def cache_key(self) -> Optional[Hashable]:
        return ("RemoveIdentities", self.atol)

    def run(self, circuit: QuantumCircuit, properties: PropertySet) -> QuantumCircuit:
        out = circuit.copy()
        kept: List[Instruction] = []
        for instruction in circuit.instructions:
            if instruction.name == "id":
                continue
            if (
                instruction.name in _ZERO_ANGLE_GATES
                and abs(instruction.params[0]) < self.atol
            ):
                continue
            kept.append(instruction)
        out.instructions = kept
        return out


class Merge1QRuns(Pass):
    """Merge maximal single-qubit gate runs into one ``u`` gate per run.

    The merged matrix is decomposed back into a ``u`` (plus global phase);
    identity products vanish entirely.  ``prx``/``rz`` native gates also
    merge, so the pass can run both before and after synthesis.
    """

    def __init__(self, atol: float = 1e-10):
        self.atol = atol

    def cache_key(self) -> Optional[Hashable]:
        return ("Merge1QRuns", self.atol)

    def run(self, circuit: QuantumCircuit, properties: PropertySet) -> QuantumCircuit:
        out = QuantumCircuit(
            circuit.num_qubits, circuit.num_clbits,
            name=circuit.name, global_phase=circuit.global_phase,
            metadata=dict(circuit.metadata),
        )
        pending: Dict[int, Optional[np.ndarray]] = {
            q: None for q in range(circuit.num_qubits)
        }

        def flush(qubit: int) -> None:
            matrix = pending[qubit]
            pending[qubit] = None
            if matrix is None:
                return
            # Identity up to a global phase: absorb the phase and vanish.
            if abs(matrix[0, 1]) < self.atol and abs(matrix[1, 0]) < self.atol \
                    and abs(matrix[0, 0] - matrix[1, 1]) < self.atol:
                out.global_phase += cmath.phase(matrix[0, 0])
                return
            theta, phi, lam, phase = u_params_cached(matrix)
            out.global_phase += phase
            out.instructions.append(
                Instruction("u", (qubit,), (theta, phi, lam))
            )

        for instruction in circuit.instructions:
            if instruction.is_unitary and instruction.num_qubits == 1:
                matrix = cached_gate_matrix(instruction.name, instruction.params)
                q = instruction.qubits[0]
                pending[q] = (
                    matrix if pending[q] is None else matrix @ pending[q]
                )
                continue
            for q in instruction.qubits:
                flush(q)
            out.instructions.append(instruction)
        for q in range(circuit.num_qubits):
            flush(q)
        return out


def _wrap(angle: float) -> float:
    wrapped = math.fmod(angle + math.pi, 2.0 * math.pi)
    if wrapped <= 0.0:
        wrapped += 2.0 * math.pi
    return wrapped - math.pi


#: Per-wire commutation classes used by :class:`CancelInversePairs`.
#: A gate commutes "on a wire" if exchanging it with the candidate two-qubit
#: gate across that wire leaves the circuit's unitary unchanged.
_X_AXIS_GATES = frozenset({"x", "sx", "sxdg", "rx"})


def _commutes_on_wire(instruction: Instruction, wire: int, gate_name: str,
                      wire_role: str) -> bool:
    """Whether ``instruction`` commutes with ``gate_name`` across ``wire``.

    ``wire_role`` is "control", "target" (for cx) or "either" (for cz/swap).
    Only single-qubit bystanders are considered; anything else blocks.
    """
    if not instruction.is_unitary or instruction.num_qubits != 1:
        return False
    name = instruction.name
    if gate_name == "cz":
        return name in DIAGONAL_GATES
    if gate_name == "cx":
        if wire_role == "control":
            return name in DIAGONAL_GATES
        return name in _X_AXIS_GATES
    return False  # swap: nothing commutes wire-wise


class CancelInversePairs(Pass):
    """Cancel adjacent self-inverse two-qubit pairs (commutation-aware).

    For every ``cx``/``cz``/``swap``, look backwards along both wires.  If the
    previous blocking operation on *both* wires is an identical gate on the
    same qubits (in a compatible orientation), the pair annihilates.  Gates
    that commute across the relevant wire (diagonals on a CZ wire or a CX
    control, X-axis rotations on a CX target) are skipped during the search.
    """

    def cache_key(self) -> Optional[Hashable]:
        return ("CancelInversePairs",)

    def run(self, circuit: QuantumCircuit, properties: PropertySet) -> QuantumCircuit:
        instructions = list(circuit.instructions)
        alive = [True] * len(instructions)
        # last_index[q]: index of the most recent alive op touching qubit q.
        changed = True
        while changed:
            changed = False
            last_ops: Dict[int, List[int]] = {
                q: [] for q in range(circuit.num_qubits)
            }
            for index, instruction in enumerate(instructions):
                if not alive[index]:
                    continue
                if instruction.name in ("cx", "cz", "swap"):
                    partner = self._find_partner(
                        instructions, alive, last_ops, instruction, index
                    )
                    if partner is not None:
                        alive[index] = alive[partner] = False
                        changed = True
                        continue
                for q in instruction.qubits:
                    last_ops[q].append(index)
        out = circuit.copy()
        out.instructions = [
            ins for index, ins in enumerate(instructions) if alive[index]
        ]
        return out

    @staticmethod
    def _find_partner(
        instructions: List[Instruction],
        alive: List[bool],
        last_ops: Dict[int, List[int]],
        instruction: Instruction,
        index: int,
    ) -> Optional[int]:
        name = instruction.name
        qubits = instruction.qubits
        candidates: List[Optional[int]] = []
        for wire in qubits:
            if name == "cx":
                role = "control" if wire == qubits[0] else "target"
            else:
                role = "either"
            found: Optional[int] = None
            for prev in reversed(last_ops[wire]):
                if not alive[prev]:
                    continue
                prev_ins = instructions[prev]
                if prev_ins.name == name and _same_pair(prev_ins, instruction):
                    found = prev
                    break
                if _commutes_on_wire(prev_ins, wire, name, role):
                    continue
                break
            candidates.append(found)
        if candidates[0] is not None and all(
            c == candidates[0] for c in candidates
        ):
            return candidates[0]
        return None


def _same_pair(a: Instruction, b: Instruction) -> bool:
    """Whether two 2q gates cancel: cx needs same orientation, cz/swap not."""
    if a.name == "cx":
        return a.qubits == b.qubits
    return set(a.qubits) == set(b.qubits)


class OptimizationLoop(Pass):
    """Run {RemoveIdentities, Merge1QRuns, CancelInversePairs} to fixpoint."""

    def __init__(self, max_iterations: int = 8):
        self.max_iterations = max_iterations
        self._passes = [RemoveIdentities(), Merge1QRuns(), CancelInversePairs()]

    def cache_key(self) -> Optional[Hashable]:
        return ("OptimizationLoop", self.max_iterations)

    def run(self, circuit: QuantumCircuit, properties: PropertySet) -> QuantumCircuit:
        current = circuit
        for _ in range(self.max_iterations):
            size_before = current.size()
            for pass_ in self._passes:
                current = pass_.run(current, properties)
            if current.size() >= size_before:
                break
        return current
