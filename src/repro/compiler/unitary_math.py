"""Single-qubit unitary decomposition math shared by compiler passes."""

from __future__ import annotations

import cmath
import math
from typing import Tuple

import numpy as np

_ATOL = 1e-10


def zyz_decompose(matrix: np.ndarray) -> Tuple[float, float, float, float]:
    """Decompose a 2x2 unitary as ``exp(i*alpha) RZ(phi) RY(theta) RZ(lam)``.

    Returns ``(alpha, phi, theta, lam)`` using the traceless RZ/RY
    conventions of :mod:`repro.circuits.gates`.
    """
    matrix = np.asarray(matrix, dtype=complex)
    if matrix.shape != (2, 2):
        raise ValueError("expected a 2x2 matrix")
    det = matrix[0, 0] * matrix[1, 1] - matrix[0, 1] * matrix[1, 0]
    if abs(abs(det) - 1.0) > 1e-8:
        raise ValueError("matrix is not unitary (|det| != 1)")
    alpha = 0.5 * cmath.phase(det)
    v = matrix * cmath.exp(-1j * alpha)  # now in SU(2)

    # v = [[cos(t/2) e^{-i(phi+lam)/2}, -sin(t/2) e^{-i(phi-lam)/2}],
    #      [sin(t/2) e^{ i(phi-lam)/2},  cos(t/2) e^{ i(phi+lam)/2}]]
    cos_half = abs(v[0, 0])
    sin_half = abs(v[1, 0])
    theta = 2.0 * math.atan2(sin_half, cos_half)

    if sin_half < _ATOL:
        # Diagonal-ish: only phi + lam is defined.
        plus = 2.0 * cmath.phase(v[1, 1]) if abs(v[1, 1]) > _ATOL else 0.0
        phi, lam = plus, 0.0
    elif cos_half < _ATOL:
        # Anti-diagonal: only phi - lam is defined.
        minus = 2.0 * cmath.phase(v[1, 0])
        phi, lam = minus, 0.0
    else:
        plus = 2.0 * cmath.phase(v[1, 1])
        minus = 2.0 * cmath.phase(v[1, 0])
        phi = (plus + minus) / 2.0
        lam = (plus - minus) / 2.0
    return alpha, phi, theta, lam


def u_params(matrix: np.ndarray) -> Tuple[float, float, float, float]:
    """Parameters ``(theta, phi, lam, phase)`` with ``matrix = e^{i*phase} u(theta, phi, lam)``.

    ``u`` is Qiskit's generic single-qubit gate, which satisfies
    ``u(theta, phi, lam) = e^{i(phi+lam)/2} RZ(phi) RY(theta) RZ(lam)``.
    """
    alpha, phi, theta, lam = zyz_decompose(matrix)
    phase = alpha - (phi + lam) / 2.0
    return theta, phi, lam, phase


#: Memo for :func:`u_params_cached`, keyed by the matrix bytes.  Compiled
#: circuits contain a small set of distinct single-qubit matrices (H from
#: CX/SWAP synthesis dominates), so the decomposition trigonometry is paid
#: once per distinct matrix instead of once per gate.
_U_PARAMS_CACHE: dict = {}
_U_PARAMS_CACHE_MAX = 16384


def u_params_cached(matrix: np.ndarray) -> Tuple[float, float, float, float]:
    """Memoized :func:`u_params` (bit-identical results, keyed by content)."""
    key = matrix.tobytes()
    params = _U_PARAMS_CACHE.get(key)
    if params is None:
        params = u_params(matrix)
        if len(_U_PARAMS_CACHE) >= _U_PARAMS_CACHE_MAX:
            _U_PARAMS_CACHE.clear()
        _U_PARAMS_CACHE[key] = params
    return params


def normalize_angle(angle: float) -> float:
    """Wrap an angle into ``(-pi, pi]``."""
    wrapped = math.fmod(angle + math.pi, 2.0 * math.pi)
    if wrapped <= 0.0:
        wrapped += 2.0 * math.pi
    return wrapped - math.pi


def is_identity_angle(angle: float, atol: float = 1e-9) -> bool:
    """Whether a rotation by ``angle`` is the identity (mod 2*pi)."""
    return abs(normalize_angle(angle)) < atol


def matrices_equal_up_to_phase(
    a: np.ndarray, b: np.ndarray, atol: float = 1e-8
) -> bool:
    """Whether two unitaries are equal up to a global phase."""
    a = np.asarray(a, dtype=complex)
    b = np.asarray(b, dtype=complex)
    if a.shape != b.shape:
        return False
    # Find the largest-magnitude entry of b to fix the phase.
    index = np.unravel_index(np.argmax(np.abs(b)), b.shape)
    if abs(b[index]) < atol:
        return np.allclose(a, b, atol=atol)
    phase = a[index] / b[index]
    if abs(abs(phase) - 1.0) > 1e-6:
        return False
    return np.allclose(a, phase * b, atol=atol)
