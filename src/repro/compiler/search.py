"""Predictor-guided beam search over compiler pass configurations.

Level 3 sweeps a *fixed* set of layout/routing trials and keeps the best
exact expected fidelity.  This module closes the paper's loop: the trained
FoM estimator is fast enough (~ms per circuit) to act as the *cost model
inside the compiler*, so instead of four hard-coded trials we run a beam
search over the pass-configuration space — layout kinds and seeds, SABRE
lookahead depth, optimization-loop schedules — scoring every candidate
with one batched featurize + ``estimator.predict`` sweep per generation,
and re-scoring only the surviving front with the exact
:func:`~repro.fom.metrics.expected_fidelity_batch`.

**Parity is guaranteed by construction**: the exact re-score set always
contains the stock level-3 trial candidates (they seed generation 0), so
the search winner's expected fidelity is ``>=`` stock level 3's for every
circuit, for any beam knobs — when nothing beats stock, the output is
bit-identical to ``compile_circuit(..., optimization_level=3)``.

Winning configurations persist as ``leaderboard`` artifacts in the
:class:`~repro.evaluation.artifacts.ArtifactStore`, keyed by
``(device-family, width-bucket)`` and fingerprinted by the estimator and
search knobs.  Warm compiles consult the leaderboard first and compile
only the incumbent configuration (one pass suffix instead of the stock
four), which is where the search *wins compile time*; searches only run
for buckets with no incumbent.  Committed entries live under
``benchmarks/leaderboards/`` and are byte-identical reproducible
(canonical JSON, no timestamps).

Search activity is observable through :func:`search_stats` — the same
module-counter idiom as :func:`~repro.compiler.cache.compile_cache_stats`.
"""

from __future__ import annotations

import hashlib
import json
import threading
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..circuits.circuit import QuantumCircuit
from ..hardware.device import Device
from .passes.base import Pass, PropertySet
from .passes.decompose import Decompose
from .passes.optimization import OptimizationLoop
from .passes.routing import _LOOKAHEAD_SIZE, SabreRouting
from .passes.synthesis import NativeSynthesis, VirtualRZ

#: Default number of configurations surviving each generation.
DEFAULT_BEAM_WIDTH = 4
#: Default number of expansion generations after the seed population.
DEFAULT_GENERATIONS = 2

#: Knob ladders the neighbor expansion walks (stock values included).
LOOKAHEAD_LADDER = (0, 10, _LOOKAHEAD_SIZE, 40)
OPT_ITERATIONS_LADDER = (2, 4, 8, 12)
_LAYOUTS = ("greedy", "trivial", "line")

#: Stock level-3 knob values (``_trial_suffix`` defaults).
STOCK_LOOKAHEAD_SIZE = _LOOKAHEAD_SIZE
STOCK_OPT_ITERATIONS = OptimizationLoop().max_iterations


@dataclass(frozen=True)
class PassConfig:
    """One point in the pass-configuration search space.

    Seeds are stored as *offsets* relative to the per-circuit base seed
    (layout seed ``seed + layout_seed_offset``, routing seed
    ``seed * 1000 + routing_seed_offset`` — the level-3 trial convention),
    so a winning configuration generalizes across circuits and seed
    streams instead of memorizing one absolute seed.
    """

    layout: str = "greedy"
    layout_seed_offset: int = 0
    routing_seed_offset: int = 0
    lookahead_size: int = STOCK_LOOKAHEAD_SIZE
    opt_iterations: int = STOCK_OPT_ITERATIONS

    def __post_init__(self):
        if self.layout not in _LAYOUTS:
            raise ValueError(
                f"layout must be one of {_LAYOUTS}, got {self.layout!r}"
            )
        if self.lookahead_size < 0:
            raise ValueError("lookahead_size must be >= 0")
        if self.opt_iterations < 1:
            raise ValueError("opt_iterations must be >= 1")

    def passes(
        self, device: Device, seed: int, keep_final_rz: bool
    ) -> List[Pass]:
        """The trial suffix this configuration compiles with.

        Mirrors ``compile._trial_suffix``: with the stock knob values and
        offsets ``t`` this is *exactly* level-3 trial ``t`` — identical
        pass cache keys, so search and stock compiles share warm caches.
        """
        from .compile import _layout_pass

        return [
            _layout_pass(
                device, 2, seed + self.layout_seed_offset,
                None if self.layout == "greedy" else self.layout,
            ),
            SabreRouting(
                device.coupling,
                seed=seed * 1000 + self.routing_seed_offset,
                lookahead=self.lookahead_size > 0,
                lookahead_size=self.lookahead_size,
            ),
            Decompose(),
            OptimizationLoop(max_iterations=self.opt_iterations),
            NativeSynthesis(),
            VirtualRZ(keep_final_rz=keep_final_rz),
        ]

    def key(self) -> Tuple:
        return (
            self.layout, self.layout_seed_offset, self.routing_seed_offset,
            self.lookahead_size, self.opt_iterations,
        )

    def to_dict(self) -> Dict:
        return {
            "layout": self.layout,
            "layout_seed_offset": self.layout_seed_offset,
            "routing_seed_offset": self.routing_seed_offset,
            "lookahead_size": self.lookahead_size,
            "opt_iterations": self.opt_iterations,
        }

    @classmethod
    def from_dict(cls, payload: Dict) -> "PassConfig":
        return cls(
            layout=str(payload["layout"]),
            layout_seed_offset=int(payload["layout_seed_offset"]),
            routing_seed_offset=int(payload["routing_seed_offset"]),
            lookahead_size=int(payload["lookahead_size"]),
            opt_iterations=int(payload["opt_iterations"]),
        )

    def neighbors(self, num_trials: int) -> List["PassConfig"]:
        """Deterministic one-step mutations (the beam expansion moves)."""
        out: List[PassConfig] = []
        for layout in _LAYOUTS:
            if layout != self.layout:
                out.append(self._replace(layout=layout))
        if self.layout == "greedy":
            out.append(
                self._replace(
                    layout_seed_offset=self.layout_seed_offset + num_trials
                )
            )
        out.append(
            self._replace(
                routing_seed_offset=self.routing_seed_offset + num_trials
            )
        )
        for size in _ladder_steps(self.lookahead_size, LOOKAHEAD_LADDER):
            out.append(self._replace(lookahead_size=size))
        for iterations in _ladder_steps(
            self.opt_iterations, OPT_ITERATIONS_LADDER
        ):
            out.append(self._replace(opt_iterations=iterations))
        return out

    def _replace(self, **changes) -> "PassConfig":
        payload = self.to_dict()
        payload.update(changes)
        return PassConfig(**payload)


def _ladder_steps(value: int, ladder: Sequence[int]) -> List[int]:
    """The ladder values adjacent to ``value`` (one down, one up)."""
    below = [v for v in ladder if v < value]
    above = [v for v in ladder if v > value]
    steps: List[int] = []
    if below:
        steps.append(max(below))
    if above:
        steps.append(min(above))
    return steps


def stock_configs(num_trials: int = 4) -> List[PassConfig]:
    """The fixed level-3 trial sweep expressed as :class:`PassConfig` rows.

    ``stock_configs(n)[t]`` compiles bit-identically to level-3 trial
    ``t`` of ``compile_circuit(..., num_trials=n)``.
    """
    layouts = ["greedy", "trivial", "line"] + ["greedy"] * max(
        0, num_trials - 3
    )
    return [
        PassConfig(
            layout=layouts[trial % len(layouts)],
            layout_seed_offset=trial,
            routing_seed_offset=trial,
            lookahead_size=STOCK_LOOKAHEAD_SIZE,
            opt_iterations=STOCK_OPT_ITERATIONS,
        )
        for trial in range(num_trials)
    ]


# ----------------------------------------------------------------------
# Search statistics (the compile_cache_stats idiom).

_STATS_LOCK = threading.Lock()


def _zero_stats() -> Dict[str, int]:
    return {
        "searches": 0,          # full beam searches run
        "warm_starts": 0,       # compiles served from a leaderboard incumbent
        "generations": 0,       # expansion generations actually run
        "beam_survivors": 0,    # configs in the final fronts
        "configs_evaluated": 0,  # candidate compilations
        "predictor_calls": 0,   # batched estimator.predict invocations
        "exact_rescores": 0,    # candidates re-scored with expected_fidelity
        "leaderboard_writes": 0,
    }


_STATS = _zero_stats()


def search_stats() -> Dict[str, int]:
    """A snapshot of the process-wide search counters."""
    with _STATS_LOCK:
        return dict(_STATS)


def reset_search_stats() -> None:
    """Zero the counters (benchmarks and tests)."""
    with _STATS_LOCK:
        _STATS.update(_zero_stats())


def _bump_stats(delta: Dict[str, int]) -> None:
    with _STATS_LOCK:
        for key, value in delta.items():
            _STATS[key] = _STATS.get(key, 0) + value


# ----------------------------------------------------------------------
# Leaderboard addressing.


def device_family(device: Device) -> str:
    """The leaderboard grouping key of a device.

    Zoo devices (``zoo-<family><n>-<tier>-s<seed>``) collapse to
    ``zoo-<family>-<tier>`` — one leaderboard row serves every size and
    calibration seed of a family/tier; built-in devices use their name.
    """
    name = device.name.lower()
    if name.startswith("zoo-"):
        head, _, tail = name[4:].partition("-")
        family = head.rstrip("0123456789")
        tier = tail.partition("-")[0]
        return f"zoo-{family}-{tier}" if tier else f"zoo-{family}"
    return name


def width_bucket(num_qubits: int) -> str:
    """Four-qubit-wide width buckets: ``w01-04``, ``w05-08``, ..."""
    if num_qubits < 1:
        raise ValueError("num_qubits must be >= 1")
    lo = ((num_qubits - 1) // 4) * 4 + 1
    return f"w{lo:02d}-{lo + 3:02d}"


def leaderboard_name(device: Device, num_qubits: int) -> str:
    """The artifact ``name`` of a (device-family, width-bucket) row."""
    return f"{device_family(device)}-{width_bucket(num_qubits)}"


def model_fingerprint(estimator) -> str:
    """Content hash of a fitted estimator (leaderboard staleness key).

    Forest-backed estimators (:class:`HellingerEstimator`, a raw
    :class:`RandomForestRegressor`) hash their tree node arrays and
    hyper-parameters, so refitting — even to identical scores — rotates
    the fingerprint.  ``np.savez`` archives are *not* byte-stable, so the
    hash is over array contents, never file bytes.  Estimators exposing
    nothing introspectable fall back to a class-name hash.
    """
    from ..evaluation.persistence import config_fingerprint

    forest = getattr(estimator, "model", None)
    if forest is None and hasattr(estimator, "estimators_"):
        forest = estimator
    trees = getattr(forest, "estimators_", None)
    if not trees:
        return config_fingerprint(
            {"class": type(estimator).__qualname__, "kind": "opaque"}
        )
    digest = hashlib.sha256()
    meta = {
        "class": type(estimator).__qualname__,
        "params": forest.get_params(),
        "num_trees": len(trees),
    }
    digest.update(json.dumps(meta, sort_keys=True, default=str).encode())
    for tree in trees:
        for key in sorted(tree.to_arrays()):
            array = np.ascontiguousarray(tree.to_arrays()[key])
            digest.update(key.encode())
            digest.update(array.tobytes())
    return digest.hexdigest()[:16]


def leaderboard_fingerprint(
    estimator_fingerprint: str,
    beam_width: int,
    generations: int,
    num_trials: int,
) -> str:
    """The content fingerprint leaderboard entries are addressed by."""
    from ..evaluation.persistence import (
        LEADERBOARD_VERSION,
        config_fingerprint,
    )

    return config_fingerprint(
        {
            "estimator": estimator_fingerprint,
            "beam_width": int(beam_width),
            "generations": int(generations),
            "num_trials": int(num_trials),
            "version": LEADERBOARD_VERSION,
        }
    )


class LeaderboardSession:
    """Read-snapshot + deferred-write view of the leaderboard store.

    A batch (or a chunked :class:`~repro.predictor.service.FomService`
    call spanning several batches) must behave as if the leaderboard were
    frozen at call start: lookups go to the backing store, writes queue
    up in the session and only land on :meth:`flush`.  First write per
    row wins, so with in-input-order recording the lowest-index searched
    circuit crowns the row — deterministic for every worker count, pool
    mode, and chunk size.
    """

    def __init__(
        self,
        store,
        fingerprint: str,
        warm_start: bool = True,
        record: bool = True,
    ):
        from ..evaluation.artifacts import ArtifactStore

        self.store = ArtifactStore.coerce(store)
        self.fingerprint = fingerprint
        self.warm_start = warm_start
        self.record_enabled = record
        self.estimator_fingerprint: Optional[str] = None
        self._incumbents: Dict[str, Optional[Dict]] = {}
        self._pending: Dict[str, Dict] = {}

    @classmethod
    def for_search(
        cls,
        store,
        estimator,
        *,
        beam_width: int = DEFAULT_BEAM_WIDTH,
        generations: int = DEFAULT_GENERATIONS,
        num_trials: int = 4,
        warm_start: bool = True,
        record: bool = True,
    ) -> "LeaderboardSession":
        """A session addressed the way :func:`compile_search` addresses."""
        estimator_fingerprint = model_fingerprint(estimator)
        fingerprint = leaderboard_fingerprint(
            estimator_fingerprint, beam_width, generations, num_trials
        )
        session = cls(store, fingerprint, warm_start=warm_start, record=record)
        session.estimator_fingerprint = estimator_fingerprint
        return session

    def incumbent(self, name: str) -> Optional[PassConfig]:
        """The stored winning config of row ``name``, or ``None``.

        Any load problem (missing, corrupt, foreign, stale fingerprint)
        is a silent miss: the caller searches fresh, exactly the
        :class:`ArtifactStore` failure policy.
        """
        if self.store is None or not self.warm_start:
            return None
        if name not in self._incumbents:
            self._incumbents[name] = self.store.get(
                "leaderboard", name, self.fingerprint
            )
        entry = self._incumbents[name]
        if entry is None:
            return None
        return PassConfig.from_dict(entry["config"])

    def record(self, name: str, entry: Dict) -> None:
        """Queue a freshly searched winner for row ``name`` (first wins)."""
        if self.store is None or not self.record_enabled:
            return
        if name not in self._pending:
            self._pending[name] = entry

    def flush(self) -> int:
        """Write queued winners to the store; returns the write count."""
        if self.store is None:
            self._pending.clear()
            return 0
        written = 0
        for name in sorted(self._pending):
            self.store.put(
                "leaderboard", self._pending[name], name, self.fingerprint
            )
            written += 1
        self._pending.clear()
        if written:
            _bump_stats({"leaderboard_writes": written})
        return written


# ----------------------------------------------------------------------
# The per-circuit search.


def search_circuit(
    circuit: QuantumCircuit,
    device: Device,
    estimator,
    *,
    seed: int = 0,
    beam_width: int = DEFAULT_BEAM_WIDTH,
    generations: int = DEFAULT_GENERATIONS,
    num_trials: int = 4,
    keep_final_rz: bool = False,
    incumbent: Optional[PassConfig] = None,
):
    """Beam-search one circuit; returns a ``CompilationResult``.

    With ``incumbent`` (a leaderboard hit) the search is skipped and the
    incumbent configuration compiles alone — one pass suffix instead of
    the stock four, the warm fast path.  Otherwise generation 0 seeds the
    beam with the stock level-3 trials, each generation expands the
    surviving front through :meth:`PassConfig.neighbors`, candidates are
    ranked by one batched ``estimator.predict`` per generation, and the
    final front *plus the stock trials* are re-scored exactly —
    guaranteeing expected-fidelity parity-or-win vs level 3.

    ``result.properties["search"]`` holds the outcome: winning config,
    predicted distance, exact expected fidelity, and per-circuit counter
    deltas (also accumulated into :func:`search_stats`).
    """
    from ..fom.features import feature_vector
    from ..fom.metrics import expected_fidelity_batch
    from .compile import (
        CompilationResult,
        _pass_manager,
        _split_measurements,
    )

    if beam_width < 1:
        raise ValueError("beam_width must be >= 1")
    if generations < 0:
        raise ValueError("generations must be >= 0")
    if circuit.num_qubits > device.num_qubits:
        raise ValueError(
            f"circuit needs {circuit.num_qubits} qubits, device "
            f"{device.name} has {device.num_qubits}"
        )

    body, measurements = _split_measurements(circuit)
    prepared = _pass_manager([Decompose(), OptimizationLoop()]).run(
        body, PropertySet()
    )
    num_clbits = max(body.num_clbits, circuit.num_clbits)

    delta = {key: 0 for key in _zero_stats()}
    evaluated: Dict[Tuple, Dict] = {}
    order: List[Tuple] = []

    def measured_copy(compiled: QuantumCircuit, properties: PropertySet):
        """The candidate with measurements re-appended (predictor basis).

        The estimator was trained on features of fully compiled circuits
        *including* their measurements, so candidates are scored on the
        same footing; the exact re-score below uses the bare bodies, the
        level-3 scoring basis.
        """
        if not measurements:
            return compiled
        final_layout = properties.get(
            "final_layout", {q: q for q in range(body.num_qubits)}
        )
        scored = QuantumCircuit(
            compiled.num_qubits, max(compiled.num_clbits, num_clbits),
            name=compiled.name, global_phase=compiled.global_phase,
            metadata=dict(compiled.metadata),
        )
        scored.instructions = list(compiled.instructions)
        for program_qubit, clbit in measurements:
            scored.measure(final_layout[program_qubit], clbit)
        return scored

    def evaluate(configs: Sequence[PassConfig]) -> List[Tuple]:
        """Compile + predictor-score configs not seen yet; returns keys."""
        fresh: List[PassConfig] = []
        for config in configs:
            if config.key() not in evaluated and all(
                config.key() != other.key() for other in fresh
            ):
                fresh.append(config)
        if not fresh:
            return []
        rows = []
        for config in fresh:
            properties = PropertySet()
            compiled = _pass_manager(
                config.passes(device, seed, keep_final_rz)
            ).run(prepared, properties)
            rows.append((config, compiled, properties))
        features = np.stack(
            [
                feature_vector(measured_copy(compiled, properties))
                for _, compiled, properties in rows
            ]
        )
        predictions = np.asarray(estimator.predict(features), dtype=float)
        delta["configs_evaluated"] += len(rows)
        delta["predictor_calls"] += 1
        keys = []
        for (config, compiled, properties), predicted in zip(
            rows, predictions
        ):
            key = config.key()
            evaluated[key] = {
                "config": config,
                "compiled": compiled,
                "properties": properties,
                "predicted": float(predicted),
            }
            order.append(key)
            keys.append(key)
        return keys

    def front(width: int) -> List[Tuple]:
        """Top ``width`` keys by predicted distance (stable on ties)."""
        predicted = np.array([evaluated[key]["predicted"] for key in order])
        ranked = np.argsort(predicted, kind="stable")[:width]
        return [order[int(index)] for index in ranked]

    if incumbent is not None:
        evaluate([incumbent])
        rescore_keys = [incumbent.key()]
        delta["warm_starts"] += 1
        source = "leaderboard"
    else:
        stock = stock_configs(num_trials)
        stock_keys = [config.key() for config in stock]
        evaluate(stock)
        for _ in range(generations):
            beam = front(beam_width)
            expansions: List[PassConfig] = []
            for key in beam:
                expansions.extend(evaluated[key]["config"].neighbors(num_trials))
            if not evaluate(expansions):
                break
            delta["generations"] += 1
        beam = front(beam_width)
        delta["beam_survivors"] += len(beam)
        # Exact re-score: the surviving front *plus every stock trial*,
        # stock first.  The winner is the first occurrence of the max,
        # so when nothing beats stock the choice is exactly level 3's.
        rescore_keys = stock_keys + [
            key for key in beam if key not in stock_keys
        ]
        delta["searches"] += 1
        source = "search"

    bodies = [evaluated[key]["compiled"] for key in rescore_keys]
    fidelities = expected_fidelity_batch(
        bodies, device, calibration=device.reported_calibration
    )
    delta["exact_rescores"] += len(bodies)
    best = int(fidelities.argmax())
    winner = evaluated[rescore_keys[best]]
    _bump_stats({key: value for key, value in delta.items() if value})

    compiled = winner["compiled"]
    properties = winner["properties"]
    initial_layout = properties.get(
        "initial_layout", {q: q for q in range(body.num_qubits)}
    )
    final_layout = properties.get("final_layout", dict(initial_layout))
    if measurements:
        if compiled.num_clbits < circuit.num_clbits:
            compiled.num_clbits = circuit.num_clbits
        for program_qubit, clbit in measurements:
            compiled.measure(final_layout[program_qubit], clbit)
    compiled.name = circuit.name
    compiled.metadata.update(circuit.metadata)
    compiled.metadata["optimization_level"] = "search"
    device.validate_circuit(compiled)
    properties["search"] = {
        "config": winner["config"].to_dict(),
        "predicted_distance": winner["predicted"],
        "expected_fidelity": float(fidelities[best]),
        "source": source,
        "num_qubits": circuit.num_qubits,
        "circuit": circuit.name,
        "stats": {key: value for key, value in delta.items() if value},
    }
    return CompilationResult(
        circuit=compiled,
        initial_layout={
            q: initial_layout[q] for q in range(circuit.num_qubits)
        },
        final_layout={q: final_layout[q] for q in range(circuit.num_qubits)},
        device=device,
        optimization_level="search",
        properties=properties,
    )


# ----------------------------------------------------------------------
# Batch entry point (the compile_batch analogue).

#: Per-batch invariants installed in each pool worker (``None`` outside).
_SEARCH_WORKER_STATE: Optional[dict] = None


def _init_search_worker(device: Device, estimator, options: dict) -> None:
    global _SEARCH_WORKER_STATE
    _SEARCH_WORKER_STATE = {
        "device": device,
        "estimator": estimator,
        "options": options,
    }


def _search_in_worker(task: Tuple) -> Tuple:
    """Search one ``(circuit, seed, incumbent_dict)`` task.

    Stats land in the worker's counters; the parent re-aggregates from
    the returned per-circuit deltas (``properties["search"]["stats"]``),
    so :func:`search_stats` in the parent is pool-mode independent.
    """
    circuit, task_seed, incumbent = task
    state = _SEARCH_WORKER_STATE
    result = search_circuit(
        circuit,
        state["device"],
        state["estimator"],
        seed=task_seed,
        incumbent=(
            PassConfig.from_dict(incumbent) if incumbent is not None else None
        ),
        **state["options"],
    )
    return (
        result.circuit,
        result.initial_layout,
        result.final_layout,
        result.properties,
    )


def compile_search(
    circuits: Sequence[QuantumCircuit],
    device: Device,
    estimator,
    *,
    beam_width: int = DEFAULT_BEAM_WIDTH,
    generations: int = DEFAULT_GENERATIONS,
    seed: int = 0,
    seeds: Optional[Sequence[int]] = None,
    keep_final_rz: bool = False,
    num_trials: int = 4,
    store=None,
    warm_start: bool = True,
    record: bool = True,
    session: Optional[LeaderboardSession] = None,
    max_workers: Optional[int] = None,
    workers_mode: Optional[str] = None,
    on_result: Optional[Callable[[int, object], None]] = None,
):
    """Predictor-guided search compilation for a batch of circuits.

    The drop-in ``optimization_level="search"`` analogue of
    :func:`~repro.compiler.compile.compile_batch`: per-circuit seed
    streams (``seed + SEED_STRIDE * i``), input-order results, and
    bit-identical output for every ``max_workers`` / ``workers_mode``.

    ``store`` (an :class:`~repro.evaluation.artifacts.ArtifactStore` or a
    directory) enables the leaderboard: incumbents matching the estimator
    fingerprint and search knobs skip the search entirely (``warm_start``)
    and freshly searched winners are written back (``record``) — one
    entry per (device-family, width-bucket), crowned by the lowest-index
    searched circuit.  Callers spanning several batches (the chunked
    :class:`FomService`) pass a shared :class:`LeaderboardSession` instead
    and flush it once at the end.

    Returns one ``CompilationResult`` per circuit; each carries its
    search outcome in ``result.properties["search"]``.
    """
    from ..parallel import (
        PROCESS_MIN_ITEMS,
        parallel_map,
        resolve_mode,
        resolve_workers,
    )
    from .compile import SEED_STRIDE, CompilationResult

    n = len(circuits)
    if seeds is None:
        seeds = [seed + SEED_STRIDE * i for i in range(n)]
    elif len(seeds) != n:
        raise ValueError("seeds must match circuits in length")

    own_session = session is None
    if own_session:
        session = LeaderboardSession.for_search(
            store, estimator,
            beam_width=beam_width, generations=generations,
            num_trials=num_trials, warm_start=warm_start, record=record,
        )

    names = [leaderboard_name(device, c.num_qubits) for c in circuits]
    incumbents = [session.incumbent(name) for name in names]

    options = {
        "beam_width": beam_width,
        "generations": generations,
        "num_trials": num_trials,
        "keep_final_rz": keep_final_rz,
    }

    workers = resolve_workers(max_workers, n)
    mode = resolve_mode(workers_mode, default="process")
    results: List[CompilationResult]

    if mode == "process" and workers > 1 and n >= PROCESS_MIN_ITEMS:
        device.routing_tables  # precompute once so workers inherit them
        decoded: Dict[int, CompilationResult] = {}

        def _decode(index: int, payload: Tuple) -> None:
            compiled, initial_layout, final_layout, properties = payload
            result = CompilationResult(
                circuit=compiled,
                initial_layout=initial_layout,
                final_layout=final_layout,
                device=device,
                optimization_level="search",
                properties=properties,
            )
            # Worker processes kept their own counters; fold the
            # per-circuit deltas into this process's totals.
            _bump_stats(properties["search"].get("stats", {}))
            decoded[index] = result
            if on_result is not None:
                on_result(index, result)

        parallel_map(
            _search_in_worker,
            [
                (
                    circuit, s,
                    incumbent.to_dict() if incumbent is not None else None,
                )
                for circuit, s, incumbent in zip(circuits, seeds, incumbents)
            ],
            max_workers=workers,
            mode="process",
            on_result=_decode,
            initializer=_init_search_worker,
            initargs=(device, estimator, options),
        )
        results = [decoded[index] for index in range(n)]
    else:

        def job(index: int) -> CompilationResult:
            return search_circuit(
                circuits[index],
                device,
                estimator,
                seed=seeds[index],
                incumbent=incumbents[index],
                **options,
            )

        results = parallel_map(
            job, range(n), max_workers=workers, on_result=on_result,
            mode="thread",
        )

    # Deferred leaderboard writes, in input order: the lowest-index
    # circuit that ran a full search crowns its row.
    estimator_fingerprint = session.estimator_fingerprint
    if estimator_fingerprint is None:
        estimator_fingerprint = model_fingerprint(estimator)
    for name, result in zip(names, results):
        outcome = result.properties["search"]
        if outcome["source"] != "search":
            continue
        session.record(
            name,
            {
                "family": device_family(device),
                "width_bucket": width_bucket(outcome["num_qubits"]),
                "estimator_fingerprint": estimator_fingerprint,
                "beam_width": int(beam_width),
                "generations": int(generations),
                "num_trials": int(num_trials),
                "config": outcome["config"],
                "predicted_distance": outcome["predicted_distance"],
                "expected_fidelity": outcome["expected_fidelity"],
                "device": device.name,
                "circuit": outcome["circuit"],
            },
        )
    if own_session:
        session.flush()
    return results


__all__ = [
    "DEFAULT_BEAM_WIDTH",
    "DEFAULT_GENERATIONS",
    "LOOKAHEAD_LADDER",
    "OPT_ITERATIONS_LADDER",
    "LeaderboardSession",
    "PassConfig",
    "compile_search",
    "device_family",
    "leaderboard_fingerprint",
    "leaderboard_name",
    "model_fingerprint",
    "reset_search_stats",
    "search_circuit",
    "search_stats",
    "stock_configs",
    "width_bucket",
]
