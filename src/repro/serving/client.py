"""The matching stdlib HTTP client for the serving daemon.

:class:`ServingClient` wraps :mod:`http.client` with JSON encoding, a
persistent keep-alive connection (re-established transparently after the
server closes it), and typed errors — usable from scripts, the
``python -m repro client`` command, tests, and the many-client load
bench.  One client instance serves one thread; a load generator makes
one per worker thread.
"""

from __future__ import annotations

import http.client
import json
import socket
from typing import Any, Dict, List, Optional, Tuple

from ..circuits.qasm import to_qasm

__all__ = ["ServingClient", "ServingError"]


class ServingError(RuntimeError):
    """A non-2xx response from the daemon; carries status + server payload."""

    def __init__(self, status: int, payload: Dict[str, Any]):
        self.status = status
        self.payload = payload
        super().__init__(
            f"HTTP {status}: {payload.get('error', payload)}"
        )


def _as_qasm(circuits) -> List[str]:
    """Accept QASM strings or QuantumCircuit objects (or a mix)."""
    rendered = []
    for circuit in circuits:
        rendered.append(
            circuit if isinstance(circuit, str) else to_qasm(circuit)
        )
    if not rendered:
        raise ValueError("no circuits to score")
    return rendered


class ServingClient:
    """A keep-alive JSON client for one daemon endpoint.

    Args:
        host/port: where the daemon listens.
        timeout: socket timeout per request — should exceed the daemon's
            ``request_timeout`` so the server, not the client, decides
            when a queued request is abandoned.
    """

    def __init__(
        self, host: str = "127.0.0.1", port: int = 8377, timeout: float = 120.0
    ):
        self.host = host
        self.port = int(port)
        self.timeout = timeout
        self._connection: Optional[http.client.HTTPConnection] = None

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------

    def _connect(self) -> http.client.HTTPConnection:
        if self._connection is None:
            self._connection = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
        return self._connection

    def close(self) -> None:
        if self._connection is not None:
            self._connection.close()
            self._connection = None

    def request(
        self,
        method: str,
        path: str,
        payload: Optional[Dict[str, Any]] = None,
    ) -> Tuple[int, Dict[str, Any]]:
        """One round-trip; returns ``(status, decoded JSON body)``.

        A dead keep-alive connection (server restarted, connection
        closed between requests) is re-established once; errors on the
        retry propagate.
        """
        body = None if payload is None else json.dumps(payload).encode()
        headers = {"Content-Type": "application/json"} if body else {}
        for attempt in (0, 1):
            connection = self._connect()
            try:
                connection.request(method, path, body=body, headers=headers)
                response = connection.getresponse()
                raw = response.read()
                break
            except (
                http.client.HTTPException, ConnectionError, socket.timeout,
                OSError,
            ):
                self.close()
                if attempt:
                    raise
        if response.will_close:
            self.close()
        try:
            decoded = json.loads(raw.decode() or "null")
        except (json.JSONDecodeError, UnicodeDecodeError):
            decoded = {"error": f"non-JSON response: {raw[:200]!r}"}
        if not isinstance(decoded, dict):
            decoded = {"value": decoded}
        return response.status, decoded

    def _checked(
        self, method: str, path: str, payload: Optional[Dict[str, Any]] = None
    ) -> Dict[str, Any]:
        status, decoded = self.request(method, path, payload)
        if status != 200:
            raise ServingError(status, decoded)
        return decoded

    # ------------------------------------------------------------------
    # Endpoints
    # ------------------------------------------------------------------

    def healthz(self) -> Tuple[int, Dict[str, Any]]:
        """``(status, payload)`` — 200 serving, 503 draining (not raised)."""
        return self.request("GET", "/healthz")

    def stats(self) -> Dict[str, Any]:
        return self._checked("GET", "/stats")

    def reload(self) -> Dict[str, Any]:
        """Ask the daemon to re-check its model sources and hot-swap any
        changed estimator; returns the swap report (``"swapped"`` list +
        the entries now serving)."""
        return self._checked("POST", "/reload")

    def predict(
        self,
        circuits,
        *,
        model: Optional[str] = None,
        fingerprint: Optional[str] = None,
        optimization_level: Optional[int] = None,
    ) -> Dict[str, Any]:
        """Score circuits (QASM strings or QuantumCircuits); raises
        :class:`ServingError` on any non-200 (backpressure, draining,
        timeout, bad input)."""
        return self._checked(
            "POST", "/predict",
            self._payload(circuits, model, fingerprint, optimization_level),
        )

    def foms(
        self,
        circuits,
        *,
        model: Optional[str] = None,
        fingerprint: Optional[str] = None,
        optimization_level: Optional[int] = None,
    ) -> Dict[str, Any]:
        """The full Table-I panel for the given circuits."""
        return self._checked(
            "POST", "/foms",
            self._payload(circuits, model, fingerprint, optimization_level),
        )

    @staticmethod
    def _payload(
        circuits,
        model: Optional[str],
        fingerprint: Optional[str],
        optimization_level: Optional[int],
    ) -> Dict[str, Any]:
        payload: Dict[str, Any] = {"circuits": _as_qasm(circuits)}
        if model is not None:
            payload["model"] = model
        if fingerprint is not None:
            payload["fingerprint"] = fingerprint
        if optimization_level is not None:
            payload["optimization_level"] = optimization_level
        return payload

    def __enter__(self) -> "ServingClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"ServingClient(http://{self.host}:{self.port})"
