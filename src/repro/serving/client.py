"""The matching stdlib HTTP client for the serving daemon.

:class:`ServingClient` wraps :mod:`http.client` with JSON encoding, a
persistent keep-alive connection (re-established transparently after the
server closes it), and typed errors — usable from scripts, the
``python -m repro client`` command, tests, and the many-client load
bench.  One client instance serves one thread; a load generator makes
one per worker thread.

Streaming (:meth:`ServingClient.predict_stream`) decodes the daemon's
chunked-transfer NDJSON responses incrementally, yielding each
prediction chunk as it arrives.  The transparent-reconnect rule is
deliberately narrower for streams: a stale keep-alive connection is
retried once **only before any response bytes arrive** — a stream that
dies after its first line raises :class:`StreamInterrupted` instead of
being silently restarted (a replayed request would recompute everything
and the caller would double-consume the overlap).
"""

from __future__ import annotations

import http.client
import json
import socket
from typing import Any, Dict, Iterator, List, Optional, Tuple

from ..circuits.qasm import to_qasm

__all__ = [
    "PredictionStream",
    "ServingClient",
    "ServingError",
    "StreamInterrupted",
]


class ServingError(RuntimeError):
    """A non-2xx response from the daemon; carries status + server payload."""

    def __init__(self, status: int, payload: Dict[str, Any]):
        self.status = status
        self.payload = payload
        super().__init__(
            f"HTTP {status}: {payload.get('error', payload)}"
        )


class StreamInterrupted(RuntimeError):
    """A streamed response died after it started.

    Never retried transparently: the caller has already consumed part of
    the stream, and a silent replay would recompute the whole corpus and
    yield duplicate chunks.  Callers that want to resume should re-issue
    the request for the circuits they have not yet received.
    """


def _as_qasm(circuits) -> List[str]:
    """Accept QASM strings or QuantumCircuit objects (or a mix)."""
    rendered = []
    for circuit in circuits:
        rendered.append(
            circuit if isinstance(circuit, str) else to_qasm(circuit)
        )
    if not rendered:
        raise ValueError("no circuits to score")
    return rendered


class ServingClient:
    """A keep-alive JSON client for one daemon endpoint.

    Args:
        host/port: where the daemon listens.
        timeout: socket timeout per request — should exceed the daemon's
            ``request_timeout`` so the server, not the client, decides
            when a queued request is abandoned.
    """

    def __init__(
        self, host: str = "127.0.0.1", port: int = 8377, timeout: float = 120.0
    ):
        self.host = host
        self.port = int(port)
        self.timeout = timeout
        self._connection: Optional[http.client.HTTPConnection] = None

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------

    def _connect(self) -> http.client.HTTPConnection:
        if self._connection is None:
            self._connection = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
        return self._connection

    def close(self) -> None:
        if self._connection is not None:
            self._connection.close()
            self._connection = None

    def request(
        self,
        method: str,
        path: str,
        payload: Optional[Dict[str, Any]] = None,
    ) -> Tuple[int, Dict[str, Any]]:
        """One round-trip; returns ``(status, decoded JSON body)``.

        A dead keep-alive connection (server restarted, connection
        closed between requests) is re-established once; errors on the
        retry propagate.
        """
        body = None if payload is None else json.dumps(payload).encode()
        headers = {"Content-Type": "application/json"} if body else {}
        for attempt in (0, 1):
            connection = self._connect()
            try:
                connection.request(method, path, body=body, headers=headers)
                response = connection.getresponse()
                raw = response.read()
                break
            except (
                http.client.HTTPException, ConnectionError, socket.timeout,
                OSError,
            ):
                self.close()
                if attempt:
                    raise
        if response.will_close:
            self.close()
        try:
            decoded = json.loads(raw.decode() or "null")
        except (json.JSONDecodeError, UnicodeDecodeError):
            decoded = {"error": f"non-JSON response: {raw[:200]!r}"}
        if not isinstance(decoded, dict):
            decoded = {"value": decoded}
        return response.status, decoded

    def _checked(
        self, method: str, path: str, payload: Optional[Dict[str, Any]] = None
    ) -> Dict[str, Any]:
        status, decoded = self.request(method, path, payload)
        if status != 200:
            raise ServingError(status, decoded)
        return decoded

    # ------------------------------------------------------------------
    # Endpoints
    # ------------------------------------------------------------------

    def healthz(self) -> Tuple[int, Dict[str, Any]]:
        """``(status, payload)`` — 200 serving, 503 draining (not raised)."""
        return self.request("GET", "/healthz")

    def stats(self) -> Dict[str, Any]:
        return self._checked("GET", "/stats")

    def reload(self) -> Dict[str, Any]:
        """Ask the daemon to re-check its model sources and hot-swap any
        changed estimator; returns the swap report (``"swapped"`` list +
        the entries now serving)."""
        return self._checked("POST", "/reload")

    def predict(
        self,
        circuits,
        *,
        model: Optional[str] = None,
        fingerprint: Optional[str] = None,
        optimization_level: Optional[int] = None,
    ) -> Dict[str, Any]:
        """Score circuits (QASM strings or QuantumCircuits); raises
        :class:`ServingError` on any non-200 (backpressure, draining,
        timeout, bad input)."""
        return self._checked(
            "POST", "/predict",
            self._payload(circuits, model, fingerprint, optimization_level),
        )

    def foms(
        self,
        circuits,
        *,
        model: Optional[str] = None,
        fingerprint: Optional[str] = None,
        optimization_level: Optional[int] = None,
    ) -> Dict[str, Any]:
        """The full Table-I panel for the given circuits."""
        return self._checked(
            "POST", "/foms",
            self._payload(circuits, model, fingerprint, optimization_level),
        )

    def predict_stream(
        self,
        circuits,
        *,
        model: Optional[str] = None,
        fingerprint: Optional[str] = None,
        optimization_level: Optional[int] = None,
        chunk_size: Optional[int] = None,
    ) -> "PredictionStream":
        """Score circuits as a chunked stream; yields prediction chunks.

        Returns a :class:`PredictionStream` whose ``header`` (model,
        fingerprint, level, count) is already read; iterating yields one
        ``List[float]`` per server-side pipeline chunk.  The values are
        bit-identical to :meth:`predict` on the same inputs — streaming
        changes delivery, never math.

        A stale keep-alive connection is re-established once, but only
        before the response starts; once any bytes of the stream have
        arrived, a connection failure raises :class:`StreamInterrupted`
        (never a silent replay of a half-consumed stream).
        """
        payload = self._payload(
            circuits, model, fingerprint, optimization_level
        )
        payload["stream"] = True
        if chunk_size is not None:
            payload["chunk_size"] = int(chunk_size)
        body = json.dumps(payload).encode()
        headers = {"Content-Type": "application/json"}
        for attempt in (0, 1):
            connection = self._connect()
            try:
                connection.request("POST", "/predict", body=body, headers=headers)
                response = connection.getresponse()
                break
            except (
                http.client.HTTPException, ConnectionError, socket.timeout,
                OSError,
            ):
                # Reconnect window ends at getresponse(): no response
                # bytes were consumed, so a replay is safe exactly once.
                self.close()
                if attempt:
                    raise
        if response.status != 200:
            raw = response.read()
            if response.will_close:
                self.close()
            try:
                decoded = json.loads(raw.decode() or "null")
            except (json.JSONDecodeError, UnicodeDecodeError):
                decoded = {"error": f"non-JSON response: {raw[:200]!r}"}
            if not isinstance(decoded, dict):
                decoded = {"value": decoded}
            raise ServingError(response.status, decoded)
        header = self._read_stream_line(response)
        if not header.get("stream"):
            self.close()
            raise StreamInterrupted(
                f"expected a stream announcement line, got {header!r}"
            )
        return PredictionStream(self, response, header)

    def _read_stream_line(self, response) -> Dict[str, Any]:
        """One decoded NDJSON line from a chunked response.

        ``http.client`` de-chunks incrementally, so each ``readline()``
        blocks only until the server has written that line's chunk —
        nothing buffers the whole response.
        """
        try:
            raw = response.readline()
        except (
            http.client.HTTPException, ConnectionError, socket.timeout,
            OSError, ValueError,
        ) as exc:
            self.close()
            raise StreamInterrupted(
                f"stream died mid-response: {exc}"
            ) from exc
        if not raw:
            self.close()
            raise StreamInterrupted(
                "stream closed before its final 'done' line"
            )
        try:
            decoded = json.loads(raw.decode())
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            self.close()
            raise StreamInterrupted(
                f"bad stream line {raw[:120]!r}"
            ) from exc
        if not isinstance(decoded, dict):
            self.close()
            raise StreamInterrupted(f"bad stream line {raw[:120]!r}")
        return decoded

    def _finish_stream(self, response) -> None:
        """Drain the terminator so the keep-alive connection is reusable."""
        try:
            response.read()
        except (
            http.client.HTTPException, ConnectionError, socket.timeout,
            OSError, ValueError,
        ):
            self.close()
            return
        if response.will_close:
            self.close()

    @staticmethod
    def _payload(
        circuits,
        model: Optional[str],
        fingerprint: Optional[str],
        optimization_level: Optional[int],
    ) -> Dict[str, Any]:
        payload: Dict[str, Any] = {"circuits": _as_qasm(circuits)}
        if model is not None:
            payload["model"] = model
        if fingerprint is not None:
            payload["fingerprint"] = fingerprint
        if optimization_level is not None:
            payload["optimization_level"] = optimization_level
        return payload

    def __enter__(self) -> "ServingClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"ServingClient(http://{self.host}:{self.port})"


class PredictionStream:
    """An in-progress streamed prediction response.

    ``header`` carries the announcement line (model, fingerprint,
    optimization_level, count); iteration yields one ``List[float]`` of
    predictions per server chunk and stops cleanly on the ``done`` line.
    A connection failure mid-stream raises :class:`StreamInterrupted`;
    a server-reported failure raises :class:`ServingError`.
    """

    def __init__(self, client: ServingClient, response, header: Dict[str, Any]):
        self._client = client
        self._response = response
        self.header = header
        self.received = 0   # predictions yielded so far
        self._done = False

    def __iter__(self) -> Iterator[List[float]]:
        return self

    def __next__(self) -> List[float]:
        if self._done:
            raise StopIteration
        line = self._client._read_stream_line(self._response)
        if "predictions" in line:
            chunk = [float(value) for value in line["predictions"]]
            self.received += len(chunk)
            return chunk
        if line.get("done"):
            self._done = True
            self._client._finish_stream(self._response)
            raise StopIteration
        self._done = True
        if "error" in line:
            self._client.close()
            raise ServingError(500, line)
        self._client.close()
        raise StreamInterrupted(f"unexpected stream line {line!r}")
