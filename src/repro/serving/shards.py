"""Multi-process serving shards: spawn workers, routing, stats merging.

One Python process serves one GIL.  To use more cores, the daemon grows
a **shared-nothing** worker pool: ``--shards N`` spawn-based processes,
each running its *own* single-process :class:`~repro.serving.server.
ServingDaemon` (own :class:`~repro.serving.registry.ModelRegistry`, own
:class:`~repro.serving.batcher.DynamicBatcher`, own compile/pass
caches) on a loopback port.  The parent stays a thin asyncio front —
listener, request parsing, limits — and relays each request's bytes
verbatim over keep-alive loopback connections.  Because a worker *is*
the single-process daemon, the response bytes of a sharded daemon are
identical to the unsharded one by construction; the contract is pinned
in ``tests/serving/test_shards.py``.

Pieces:

* :class:`RegistrySpec` — a picklable description of what a registry
  serves (model files / artifact stores + device specs).  Spawned
  workers cannot cheaply inherit a built registry (forests are large,
  and ``spawn`` pickles everything), so each worker builds its own from
  the spec — the shared-nothing property falls out of that.
* :func:`shard_for` — consistent lane hashing: SHA-256 of the literal
  ``(model, fingerprint, level, panel?)`` request fields, so a lane's
  compile and pass caches stay hot on one worker across requests and
  across parent restarts (process-stable, unlike ``hash()``).
* :func:`choose_shard` — the spill rule: the hashed lane owner unless
  its outstanding circuits exceed the queue limit, then round-robin to
  the next live under-limit worker (a *dead* lane owner is a 503 while
  the respawn runs — values must never silently move lanes on crash).
* :class:`ShardManager` — parent-side lifecycle: spawn + ready
  handshake over a pipe, keep-alive connection pooling, crash detection
  via the process sentinel, respawn, broadcast (``/reload``, stats
  polls), and SIGTERM drain that reaps every worker before returning.
* :func:`merge_shard_stats` / :func:`merge_latency_reservoirs` — the
  ``/stats`` aggregation: counters and histograms sum; percentiles are
  nearest-rank over the **union** of per-shard latency reservoirs.
  (Averaging per-shard percentiles — the naive merge — is silently
  wrong whenever shards see different load; pinned by test.)

Worker lifecycle: the parent owns a ``spawn``-context pipe to each
worker.  The worker reports ``{host, port, pid, models}`` once its
daemon is listening (or ``{error}``), then blocks a daemon thread on
``conn.recv()`` — parent death closes the pipe, which triggers the same
graceful drain as SIGTERM, so workers never outlive their parent.
"""

from __future__ import annotations

import asyncio
import hashlib
import json
import multiprocessing
import os
import signal
import threading
from collections import deque
from pathlib import Path
from typing import Any, Deque, Dict, List, NamedTuple, Optional, Tuple

__all__ = [
    "RegistrySpec",
    "ShardDown",
    "ShardManager",
    "ShardReply",
    "choose_shard",
    "merge_latency_reservoirs",
    "merge_shard_stats",
    "resolve_shards",
    "shard_for",
]


def resolve_shards(shards: int) -> int:
    """``0`` = one shard per CPU; ``>= 1`` = exactly that many."""
    if shards < 0:
        raise ValueError("shards must be >= 0 (0 = one per CPU)")
    if shards == 0:
        return os.cpu_count() or 1
    return int(shards)


def shard_for(key: Tuple, count: int) -> int:
    """The lane owner for a request key, stable across processes.

    ``key`` is the literal request fields ``(model, fingerprint, level,
    panel?)`` — *not* the resolved entry (the parent holds no registry).
    SHA-256 rather than ``hash()``: Python's string hash is salted per
    process, and a lane that moves on every restart defeats the warm
    per-worker compile caches this routing exists for.
    """
    canonical = "\x1f".join(
        "\x00" if part is None else f"{type(part).__name__}:{part}"
        for part in key
    )
    digest = hashlib.sha256(canonical.encode("utf-8", "replace")).digest()
    return int.from_bytes(digest[:8], "big") % count


class ShardDown(RuntimeError):
    """The hashed lane owner is dead; answered 503 while respawn runs."""

    def __init__(self, index: int):
        self.index = index
        super().__init__(
            f"shard {index} is down (respawn in progress); retry shortly"
        )


def choose_shard(
    primary: int,
    outstanding: List[int],
    live: List[bool],
    weight: int,
    limit: int,
) -> int:
    """The spill rule, pure and unit-testable.

    The hashed lane owner wins unless it is saturated (its outstanding
    circuits plus this request would exceed ``limit``), in which case
    the next live under-limit shard (round-robin from the owner) takes
    the overflow.  If *every* live shard is saturated the owner keeps
    the request and its own bounded queue answers 503 — the parent must
    not invent a second backpressure policy.  A dead owner raises
    :class:`ShardDown`: crashes must never silently move a lane, or
    "which worker computed this" would depend on timing.
    """
    if not live[primary]:
        raise ShardDown(primary)
    if outstanding[primary] + weight <= limit:
        return primary
    count = len(outstanding)
    for step in range(1, count):
        candidate = (primary + step) % count
        if live[candidate] and outstanding[candidate] + weight <= limit:
            return candidate
    return primary


# ----------------------------------------------------------------------
# Registry specs (picklable registry descriptions)
# ----------------------------------------------------------------------


class _SourceSpec(NamedTuple):
    kind: str                      # "file" | "store"
    path: str                      # model file, or the store root
    device: Any                    # zoo spec string or a picklable Device
    name: Optional[str]
    fingerprint: Optional[str]
    service_kwargs: Dict[str, Any]


class RegistrySpec:
    """What a registry serves, as data — picklable into spawn workers.

    Mirrors the two :class:`~repro.serving.registry.ModelRegistry`
    loaders; :meth:`build` replays them in whatever process calls it.
    Devices are carried as their spec strings (or any picklable
    ``Device``) and resolved at build time, once per worker.
    """

    def __init__(self):
        self.sources: List[_SourceSpec] = []

    def add_model_file(
        self, path, device, *, name: Optional[str] = None, **service_kwargs
    ) -> "RegistrySpec":
        self.sources.append(
            _SourceSpec(
                "file", str(path), device, name, None, dict(service_kwargs)
            )
        )
        return self

    def add_store(
        self,
        store,
        device,
        *,
        name: Optional[str] = None,
        fingerprint: Optional[str] = None,
        **service_kwargs,
    ) -> "RegistrySpec":
        root = getattr(store, "root", store)
        self.sources.append(
            _SourceSpec(
                "store", str(root), device, name, fingerprint,
                dict(service_kwargs),
            )
        )
        return self

    def validate(self) -> None:
        """Fail fast in the parent, before any worker pays a boot."""
        if not self.sources:
            raise ValueError("registry spec has no model sources")
        for source in self.sources:
            if source.kind == "file":
                if not Path(source.path).is_file():
                    raise ValueError(f"no model file at {source.path}")
            else:
                from ..evaluation.artifacts import ArtifactStore

                store = ArtifactStore.coerce(source.path)
                if not store.find(
                    "estimator",
                    name=source.name,
                    fingerprint=source.fingerprint,
                ):
                    raise ValueError(
                        f"no estimator artifact matching "
                        f"name={source.name!r} "
                        f"fingerprint={source.fingerprint!r} in {source.path}"
                    )

    def build(self):
        """Replay the sources into a fresh, fully-booted registry."""
        from .registry import ModelRegistry

        registry = ModelRegistry()
        for source in self.sources:
            if source.kind == "file":
                registry.add_model_file(
                    source.path,
                    source.device,
                    name=source.name,
                    **source.service_kwargs,
                )
            else:
                registry.add_store(
                    source.path,
                    source.device,
                    name=source.name,
                    fingerprint=source.fingerprint,
                    **source.service_kwargs,
                )
        if len(registry) == 0:
            raise ValueError("cannot serve an empty model registry")
        return registry


# ----------------------------------------------------------------------
# Worker process main
# ----------------------------------------------------------------------


def _send_quietly(conn, payload: Dict[str, Any]) -> None:
    try:
        conn.send(payload)
    except (OSError, ValueError, BrokenPipeError):
        pass


def _shard_worker_main(index: int, spec, config_kwargs, conn) -> None:
    """Entry point of one spawn worker: a quiet single-process daemon.

    Module-level (spawn pickles the target by qualified name).  Reports
    ``{host, port, pid, models}`` through the pipe once listening, or
    ``{error}`` if boot fails; serves until SIGTERM/SIGINT or until the
    parent's end of the pipe closes (parent died — drain and exit, no
    orphans).
    """
    from .server import ServerConfig, ServingDaemon

    try:
        registry = spec.build()
        daemon = ServingDaemon(registry, ServerConfig(**config_kwargs))
    except BaseException as exc:  # noqa: BLE001 - report, then die
        _send_quietly(conn, {"error": f"{type(exc).__name__}: {exc}"})
        raise SystemExit(1)
    try:
        asyncio.run(_worker_serve(index, daemon, conn))
    except BaseException as exc:  # noqa: BLE001
        _send_quietly(conn, {"error": f"{type(exc).__name__}: {exc}"})
        raise SystemExit(1)


async def _worker_serve(index: int, daemon, conn) -> None:
    await daemon.start()
    loop = asyncio.get_running_loop()
    stop_signal = asyncio.Event()
    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(signum, stop_signal.set)
        except NotImplementedError:  # pragma: no cover - non-POSIX loops
            pass

    def watch_parent() -> None:
        # The parent never sends after the handshake; recv() returning /
        # raising means the parent's pipe end closed, i.e. it is gone.
        try:
            conn.recv()
        except (EOFError, OSError):
            pass
        loop.call_soon_threadsafe(stop_signal.set)

    threading.Thread(
        target=watch_parent,
        name=f"repro-shard-{index}-parent-watch",
        daemon=True,
    ).start()
    conn.send({
        "host": daemon.host,
        "port": daemon.port,
        "pid": os.getpid(),
        "models": [entry.describe() for entry in daemon.registry.entries()],
    })
    await stop_signal.wait()
    # Same exactly-once drain as the single-process daemon on SIGTERM.
    await daemon.stop()


# ----------------------------------------------------------------------
# Parent-side manager
# ----------------------------------------------------------------------


class ShardReply(NamedTuple):
    """One worker response head + body.

    ``body`` is the full payload for content-length responses (the
    connection is already pooled back).  For chunked responses ``body``
    is ``None`` and ``reader``/``writer`` carry the live connection —
    the caller must relay to the terminator (:meth:`ShardManager.
    relay_stream`) or close it.
    """

    status: int
    headers: Dict[str, str]
    body: Optional[bytes]
    reader: Optional[asyncio.StreamReader]
    writer: Optional[asyncio.StreamWriter]


class _Shard:
    """One worker process plus its pooled loopback connections."""

    __slots__ = (
        "index", "process", "conn", "host", "port", "pid", "models",
        "live", "idle", "outstanding",
    )

    def __init__(self, index: int, process, conn):
        self.index = index
        self.process = process
        self.conn = conn
        self.host: Optional[str] = None
        self.port: Optional[int] = None
        self.pid: Optional[int] = None
        self.models: List[Dict[str, Any]] = []
        self.live = False
        self.idle: Deque[Tuple[asyncio.StreamReader, asyncio.StreamWriter]]
        self.idle = deque()
        self.outstanding = 0   # circuits relayed and not yet answered


def _format_request(method: str, path: str, body: bytes) -> bytes:
    return (
        f"{method} {path} HTTP/1.1\r\n"
        f"Host: shard\r\n"
        f"Content-Type: application/json\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"Connection: keep-alive\r\n"
        f"\r\n"
    ).encode("latin-1") + body


async def _read_head(
    reader: asyncio.StreamReader,
) -> Tuple[int, Dict[str, str]]:
    line = await reader.readline()
    if not line:
        raise ConnectionError("shard closed the connection")
    parts = line.decode("latin-1", "replace").split(None, 2)
    if len(parts) < 2 or not parts[0].startswith("HTTP/"):
        raise ConnectionError(f"malformed shard status line: {line[:80]!r}")
    status = int(parts[1])
    headers: Dict[str, str] = {}
    for _ in range(200):
        raw = await reader.readline()
        if raw in (b"\r\n", b"\n"):
            break
        if not raw:
            raise ConnectionError("shard closed mid-headers")
        name, sep, value = raw.decode("latin-1", "replace").partition(":")
        if sep:
            headers[name.strip().lower()] = value.strip()
    else:
        raise ConnectionError("too many shard response headers")
    return status, headers


class ShardManager:
    """Spawns, routes to, aggregates over, and reaps the worker pool."""

    #: seconds a worker gets to build its registry and report ready
    READY_TIMEOUT = 300.0

    def __init__(self, spec: RegistrySpec, config, count: int):
        self.spec = spec
        self.config = config
        self.count = count
        self.shards: List[Optional[_Shard]] = [None] * count
        self.crashes = 0
        self.respawns = 0
        self.spills = 0
        self._draining = False
        self._ctx = multiprocessing.get_context("spawn")

    # -- lifecycle ------------------------------------------------------

    async def start(self) -> None:
        try:
            await asyncio.gather(
                *(self._boot(index) for index in range(self.count))
            )
        except BaseException:
            await self.stop()
            raise

    async def _boot(self, index: int) -> None:
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(None, self._launch, index)
        await self._await_ready(index)

    def _worker_config(self) -> Dict[str, Any]:
        from dataclasses import asdict

        kwargs = asdict(self.config)
        # Workers bind their own free loopback port, serve in-process,
        # and never self-poll for reloads — the parent broadcasts.
        kwargs.update(host="127.0.0.1", port=0, shards=1, reload_interval=0.0)
        return kwargs

    def _launch(self, index: int) -> None:
        parent_conn, child_conn = self._ctx.Pipe()
        process = self._ctx.Process(
            target=_shard_worker_main,
            args=(index, self.spec, self._worker_config(), child_conn),
            name=f"repro-serve-shard-{index}",
            daemon=True,
        )
        process.start()
        child_conn.close()
        self.shards[index] = _Shard(index, process, parent_conn)

    @staticmethod
    def _recv_report(shard: _Shard, timeout: float) -> Dict[str, Any]:
        if not shard.conn.poll(timeout):
            return {"error": f"no ready report within {timeout}s"}
        try:
            return shard.conn.recv()
        except (EOFError, OSError):
            return {"error": "worker exited before reporting ready"}

    async def _await_ready(self, index: int) -> None:
        shard = self.shards[index]
        loop = asyncio.get_running_loop()
        report = await loop.run_in_executor(
            None, self._recv_report, shard, self.READY_TIMEOUT
        )
        if "error" in report:
            raise RuntimeError(
                f"shard {index} failed to boot: {report['error']}"
            )
        shard.host = report["host"]
        shard.port = report["port"]
        shard.pid = report["pid"]
        shard.models = report["models"]
        shard.live = True
        loop.add_reader(shard.process.sentinel, self._on_exit, shard)

    def _on_exit(self, shard: _Shard) -> None:
        """Sentinel became readable: the worker process ended."""
        loop = asyncio.get_running_loop()
        # Remove the reader first or the loop spins re-firing this
        # callback on the permanently-readable sentinel.
        try:
            loop.remove_reader(shard.process.sentinel)
        except (ValueError, OSError):  # pragma: no cover - defensive
            pass
        if self.shards[shard.index] is not shard:
            return  # already superseded by a respawn
        shard.live = False
        self._discard_conns(shard)
        try:
            shard.conn.close()
        except OSError:  # pragma: no cover - defensive
            pass
        shard.process.join(timeout=0)
        if self._draining:
            return
        self.crashes += 1
        print(
            f"repro-serve shard {shard.index} (pid {shard.pid}) exited "
            f"unexpectedly; respawning",
            flush=True,
        )
        loop.create_task(self._respawn(shard.index))

    async def _respawn(self, index: int) -> None:
        loop = asyncio.get_running_loop()
        while not self._draining:
            try:
                await loop.run_in_executor(None, self._launch, index)
                await self._await_ready(index)
                self.respawns += 1
                return
            except Exception as exc:  # noqa: BLE001 - keep trying
                print(
                    f"repro-serve shard {index} respawn failed: {exc}",
                    flush=True,
                )
                await asyncio.sleep(1.0)

    async def stop(self) -> None:
        """SIGTERM every worker, reap them all; returns only when reaped."""
        self._draining = True
        loop = asyncio.get_running_loop()
        for shard in self.shards:
            if shard is None:
                continue
            try:
                loop.remove_reader(shard.process.sentinel)
            except (ValueError, OSError):
                pass
        for shard in self.shards:
            if shard is not None and shard.process.is_alive():
                # Each worker runs the exactly-once SIGTERM drain.
                shard.process.terminate()
        for shard in self.shards:
            if shard is None:
                continue
            await loop.run_in_executor(None, shard.process.join, 30)
            if shard.process.is_alive():  # pragma: no cover - stuck worker
                shard.process.kill()
                await loop.run_in_executor(None, shard.process.join, 10)
            shard.live = False
            self._discard_conns(shard)
            try:
                shard.conn.close()
            except OSError:  # pragma: no cover - defensive
                pass

    def model_summaries(self) -> List[str]:
        return sorted({
            f"{model['name']}@{model['fingerprint']}"
            for shard in self.shards
            if shard is not None
            for model in shard.models
        })

    # -- routing --------------------------------------------------------

    def pick(self, key: Tuple, weight: int) -> _Shard:
        """The shard this request relays to (lane hash + spill rule)."""
        primary = shard_for(key, self.count)
        live = [s is not None and s.live for s in self.shards]
        outstanding = [
            s.outstanding if s is not None else 0 for s in self.shards
        ]
        index = choose_shard(
            primary, outstanding, live, weight, self.config.queue_limit
        )
        if index != primary:
            self.spills += 1
        shard = self.shards[index]
        if shard is None or not shard.live:  # pragma: no cover - race guard
            raise ShardDown(index)
        return shard

    def begin(self, shard: _Shard, weight: int) -> None:
        shard.outstanding += weight

    def release(self, shard: _Shard, weight: int) -> None:
        shard.outstanding = max(0, shard.outstanding - weight)

    # -- connections ----------------------------------------------------

    def _discard_conns(self, shard: _Shard) -> None:
        while shard.idle:
            _, writer = shard.idle.popleft()
            writer.close()

    async def _borrow(
        self, shard: _Shard
    ) -> Tuple[asyncio.StreamReader, asyncio.StreamWriter, bool]:
        while shard.idle:
            reader, writer = shard.idle.popleft()
            if writer.is_closing():
                continue
            return reader, writer, True
        reader, writer = await asyncio.open_connection(shard.host, shard.port)
        return reader, writer, False

    def _give_back(
        self,
        shard: _Shard,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        if (
            self.shards[shard.index] is shard
            and shard.live
            and not writer.is_closing()
        ):
            shard.idle.append((reader, writer))
        else:
            writer.close()

    # -- request relay --------------------------------------------------

    async def exchange(
        self, shard: _Shard, method: str, path: str, body: bytes = b""
    ) -> ShardReply:
        """One request/response against a shard over a pooled connection.

        A send/head failure on a *pooled* connection retries once on a
        fresh one (the worker may have dropped an idle keep-alive);
        fresh-connection failures propagate — the caller answers 503.
        """
        for attempt in (0, 1):
            reader, writer, pooled = await self._borrow(shard)
            try:
                writer.write(_format_request(method, path, body))
                await writer.drain()
                status, headers = await _read_head(reader)
                break
            except (ConnectionError, asyncio.IncompleteReadError, OSError):
                writer.close()
                if not pooled or attempt:
                    raise
        if headers.get("transfer-encoding", "").lower() == "chunked":
            return ShardReply(status, headers, None, reader, writer)
        length = int(headers.get("content-length", "0") or 0)
        try:
            data = await reader.readexactly(length) if length else b""
        except (ConnectionError, asyncio.IncompleteReadError, OSError):
            writer.close()
            raise
        if headers.get("connection", "").lower() == "close":
            writer.close()
        else:
            self._give_back(shard, reader, writer)
        return ShardReply(status, headers, data, None, None)

    async def relay_stream(
        self,
        shard: _Shard,
        reply: ShardReply,
        writer: asyncio.StreamWriter,
        close: bool,
    ) -> None:
        """Relay a chunked worker response chunk-for-chunk to the client.

        The worker's chunk framing is forwarded verbatim — same sizes,
        same bytes as the single-process daemon would have written — so
        no chunk is ever buffered whole-response in the parent.  If the
        worker dies mid-stream the client gets a well-formed error
        chunk + terminator (a stream, once started, is never silently
        restarted — that contract belongs to the client).
        """
        from .server import CHUNK_TERMINATOR, STREAM_CONTENT_TYPE, http_head, json_chunk

        shard_reader, shard_writer = reply.reader, reply.writer
        writer.write(
            http_head(
                reply.status,
                close=close,
                chunked=True,
                content_type=reply.headers.get(
                    "content-type", STREAM_CONTENT_TYPE
                ),
            )
        )
        try:
            while True:
                size_line = await shard_reader.readline()
                if not size_line:
                    raise ConnectionError("shard closed mid-stream")
                size = int(size_line.strip(), 16)
                block = await shard_reader.readexactly(size + 2)
                writer.write(size_line + block)
                await writer.drain()
                if size == 0:
                    return self._give_back(shard, shard_reader, shard_writer)
        except (
            ConnectionError, asyncio.IncompleteReadError, OSError, ValueError,
        ):
            shard_writer.close()
            try:
                writer.write(
                    json_chunk(
                        {"error": f"shard {shard.index} died mid-stream"}
                    )
                    + CHUNK_TERMINATOR
                )
                await writer.drain()
            except (ConnectionError, OSError):
                pass  # the client is gone too

    # -- broadcast ------------------------------------------------------

    async def poll(
        self, method: str, path: str, body: bytes = b"", timeout: float = 60.0
    ) -> List[Dict[str, Any]]:
        """The same request against every shard, concurrently.

        Each report is ``{shard, alive, pid}`` plus, when the worker
        answered, ``{status, payload}``.  A shard that fails to answer
        is reported dead rather than failing the whole poll.
        """

        async def one(index: int) -> Dict[str, Any]:
            shard = self.shards[index]
            base = {
                "shard": index,
                "alive": False,
                "pid": shard.pid if shard is not None else None,
            }
            if shard is None or not shard.live:
                return base
            try:
                reply = await asyncio.wait_for(
                    self.exchange(shard, method, path, body), timeout
                )
            except (
                ConnectionError, OSError, asyncio.IncompleteReadError,
                asyncio.TimeoutError,
            ):
                return base
            if reply.body is None:  # pragma: no cover - never chunked here
                reply.writer.close()
                return base
            try:
                payload = json.loads(reply.body.decode() or "null")
            except (json.JSONDecodeError, UnicodeDecodeError):
                payload = None
            return {
                "shard": index,
                "alive": True,
                "pid": shard.pid,
                "status": reply.status,
                "payload": payload,
            }

        return list(
            await asyncio.gather(*(one(i) for i in range(self.count)))
        )


# ----------------------------------------------------------------------
# Stats merging
# ----------------------------------------------------------------------


def merge_latency_reservoirs(
    reservoirs: List[List[float]],
) -> Dict[str, Any]:
    """Percentiles over the union of per-shard latency reservoirs.

    The correct merge: pool every raw sample, sort once, take
    nearest-rank on the union.  Any scheme that combines per-shard
    *percentiles* (averaging, max, weighted means) is wrong the moment
    shards see different traffic — pinned against a flat single-sample
    computation in ``tests/serving/test_shards.py``.
    """
    from .server import nearest_rank

    union = sorted(
        float(sample) for reservoir in reservoirs for sample in reservoir
    )
    return {
        "request_p50_s": nearest_rank(union, 0.50),
        "request_p99_s": nearest_rank(union, 0.99),
        "request_max_s": union[-1] if union else None,
        "samples": len(union),
        "reservoir": union,
    }


def merge_shard_stats(reports: List[Dict[str, Any]]) -> Dict[str, Any]:
    """Merge per-worker ``/stats`` payloads into one daemon-wide view.

    Queue depths, batch counters, and size histograms sum; stage
    seconds sum; queue-wait max is the max; latency percentiles come
    from :func:`merge_latency_reservoirs` on the raw reservoirs.
    """
    queue = {
        "depth": 0, "requests_waiting": 0, "in_flight": 0,
        "rejected_total": 0,
    }
    batches = {"total": 0, "requests_total": 0}
    histogram: Dict[str, int] = {}
    stages: Dict[str, float] = {}
    reservoirs: List[List[float]] = []
    wait_total = 0.0
    wait_max = 0.0
    for report in reports:
        report_queue = report.get("queue", {})
        for field in queue:
            queue[field] += int(report_queue.get(field, 0))
        report_batches = report.get("batches", {})
        batches["total"] += int(report_batches.get("total", 0))
        batches["requests_total"] += int(
            report_batches.get("requests_total", 0)
        )
        for size, count in report_batches.get("size_histogram", {}).items():
            histogram[size] = histogram.get(size, 0) + int(count)
        latency = report.get("latency", {})
        reservoirs.append(latency.get("reservoir", []))
        wait_total += float(latency.get("queue_wait_s_total", 0.0))
        wait_max = max(wait_max, float(latency.get("queue_wait_s_max", 0.0)))
        for stage, seconds in latency.get("stages_s", {}).items():
            stages[stage] = stages.get(stage, 0.0) + float(seconds)
    merged_latency = merge_latency_reservoirs(reservoirs)
    merged_latency["queue_wait_s_total"] = wait_total
    merged_latency["queue_wait_s_max"] = wait_max
    merged_latency["stages_s"] = stages
    batches["size_histogram"] = {
        size: histogram[size]
        for size in sorted(histogram, key=int)
    }
    return {"queue": queue, "batches": batches, "latency": merged_latency}
