"""The serving daemon: a stdlib-only asyncio HTTP front end.

:class:`ServingDaemon` speaks a deliberately small slice of HTTP/1.1
over asyncio streams — no third-party web framework, per the repo's
numpy-only runtime rule — and runs in one of two modes:

* **In-process** (``ServerConfig.shards == 1``, the default): the daemon
  owns a :class:`~repro.serving.registry.ModelRegistry` (loaded once)
  and a :class:`~repro.serving.batcher.DynamicBatcher` and computes
  every batch itself, exactly as before.
* **Sharded** (``shards > 1``, or ``0`` = one per CPU): the daemon is a
  thin dispatcher.  It still owns the listener, request parsing, and
  limits, but every ``/predict`` / ``/foms`` request is routed over a
  keep-alive loopback socket to one of N spawn-based worker processes
  (:mod:`repro.serving.shards`), each hosting its *own* registry +
  :class:`~repro.predictor.service.FomService` + batcher — shared
  nothing, one GIL per shard.  Requests route by a consistent hash of
  ``(model, fingerprint, level, panel?)`` so a lane's compile/pass
  caches stay hot on one worker, with round-robin spill when the lane
  saturates.  Worker responses are relayed byte-for-byte, so sharded
  responses are identical to the single-process daemon's.

Endpoints (all JSON):

* ``POST /predict`` — ``{"circuits": [qasm, ...], "model"?, "fingerprint"?,
  "optimization_level"?}`` → ``{"predictions": [...], "model":,
  "fingerprint":}``.  Concurrent requests coalesce into dynamic batches;
  responses are bit-identical to a direct
  :meth:`~repro.predictor.service.FomService.predict` call on the same
  inputs (request-local compile-seed positions).  With ``"stream": true``
  (and optional ``"chunk_size"``) the response is HTTP/1.1 chunked
  transfer: one NDJSON line per pipeline chunk riding
  :meth:`~repro.predictor.service.FomService.predict_stream`, so
  corpus-sized requests never buffer a whole response in any process.
* ``POST /foms`` — same request shape → the paper's full Table-I panel
  (four established figures of merit + the proposed estimator) under
  ``"foms"``.  Streaming is ``/predict``-only.
* ``GET /healthz`` — 200 ``{"status": "serving", ...}`` while accepting
  work, 503 ``{"status": "draining"}`` once shutdown has begun.  Sharded
  daemons add a ``"shards"`` section (live/degraded, per-worker pids).
* ``GET /stats`` — queue depth, batch-size histogram, per-stage latency
  totals, request-latency percentiles, response counters, and the
  currently-serving model fingerprints + reload counters.  Sharded
  daemons merge the per-worker reports: counters and histograms sum,
  and percentiles are nearest-rank over the *union* of the per-shard
  latency reservoirs (averaging per-shard percentiles would be wrong).
* ``POST /reload`` — re-check every model source
  (:meth:`~repro.serving.registry.ModelRegistry.refresh`) and hot-swap
  changed estimators without dropping a request; sharded daemons
  broadcast to every worker.  With ``ServerConfig.reload_interval > 0``
  the daemon also polls on its own: a cheap ``(size, mtime_ns)`` /
  store-scan guard each tick, the full rehash+reload only when
  something moved.  In-flight batches finish on the model they
  resolved; post-swap responses are bit-identical to a freshly
  restarted daemon (see docs/drift.md for the contract).

Operational behavior:

* **Backpressure** — a bounded queue; when full, new work is rejected
  with 503 instead of queueing unbounded latency.
* **Per-request timeout** — a request that waits longer than
  ``request_timeout`` gets 504; the batch it joined still completes for
  everyone else.
* **Graceful shutdown** — on SIGTERM/SIGINT the daemon stops accepting
  (503), drains every in-flight and queued batch (each queued request
  is answered exactly once, streams run to their terminator), then —
  sharded — SIGTERMs every worker and reaps them all before the
  listener closes and the process exits 0.
"""

from __future__ import annotations

import asyncio
import json
import math
import os
import signal
import threading
from collections import deque
from dataclasses import dataclass
from typing import Any, Awaitable, Callable, Dict, List, NamedTuple, Optional, Tuple

from ..circuits.qasm import from_qasm
from ..fom.metrics import PROPOSED_LABEL
from .batcher import BacklogFull, BatcherClosed, DynamicBatcher
from .registry import ModelRegistry

__all__ = [
    "CHUNK_TERMINATOR",
    "DaemonThread",
    "ParsedPredict",
    "ServerConfig",
    "ServingDaemon",
    "STREAM_CONTENT_TYPE",
    "http_head",
    "json_chunk",
    "nearest_rank",
    "parse_predict_payload",
]

_MAX_REQUEST_LINE = 8192
_MAX_HEADERS = 100

#: Streamed responses are newline-delimited JSON riding chunked transfer.
STREAM_CONTENT_TYPE = "application/x-ndjson"

#: The zero-length chunk that ends an HTTP/1.1 chunked body.
CHUNK_TERMINATOR = b"0\r\n\r\n"

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    500: "Internal Server Error",
    502: "Bad Gateway",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


def http_head(
    status: int,
    *,
    close: bool,
    content_length: Optional[int] = None,
    chunked: bool = False,
    content_type: str = "application/json",
) -> bytes:
    """One response head, byte-identical across daemon modes.

    The shard relay builds its client-facing head through this same
    function, which is what makes a dispatcher's responses match the
    single-process daemon's down to header order.
    """
    reason = _REASONS.get(status, "Error")
    framing = (
        "Transfer-Encoding: chunked"
        if chunked
        else f"Content-Length: {content_length}"
    )
    return (
        f"HTTP/1.1 {status} {reason}\r\n"
        f"Content-Type: {content_type}\r\n"
        f"{framing}\r\n"
        f"Connection: {'close' if close else 'keep-alive'}\r\n"
        f"\r\n"
    ).encode("latin-1")


def json_chunk(payload: Dict[str, Any]) -> bytes:
    """One NDJSON line wrapped in HTTP chunk framing (size line + CRLF)."""
    data = (json.dumps(payload) + "\n").encode()
    return f"{len(data):x}\r\n".encode("latin-1") + data + b"\r\n"


def nearest_rank(ordered: List[float], fraction: float) -> Optional[float]:
    """Nearest-rank percentile of an ascending sample.

    The smallest sample with cumulative frequency >= ``fraction``, i.e.
    ``ordered[ceil(f * n) - 1]``.  (A plain ``int(f * n)`` indexes one
    rank high whenever ``f * n`` is an integer — with n=2 samples, p50
    would return the *larger* one.)  This is also the merge rule for
    sharded stats: nearest-rank over the union of per-shard reservoirs,
    never an average of per-shard percentiles.
    """
    if not ordered:
        return None
    rank = math.ceil(fraction * len(ordered))
    return ordered[max(0, rank - 1)]


@dataclass
class ServerConfig:
    """Network + batching knobs of one daemon."""

    host: str = "127.0.0.1"
    port: int = 8377                  # 0 = pick a free port (tests)
    max_batch: int = 64               # circuits per dynamic batch (size trigger)
    batch_deadline: float = 0.010     # seconds before a partial batch flushes
    queue_limit: int = 1024           # circuits waiting before 503
    request_timeout: float = 60.0     # seconds before a request gets 504
    max_body_bytes: int = 64 * 1024 * 1024
    max_workers: int = 1              # pipeline workers per batch
    workers_mode: Optional[str] = "thread"
    latency_window: int = 2048        # request-latency samples kept for /stats
    reload_interval: float = 0.0      # seconds between auto model-refresh
                                      # probes (0 = only explicit /reload)
    shards: int = 1                   # worker processes (1 = in-process,
                                      # 0 = one per CPU)


class ParsedPredict(NamedTuple):
    """A validated ``/predict`` / ``/foms`` body, before QASM parsing."""

    qasm: List[str]
    model: Optional[str]
    fingerprint: Optional[str]
    level: Optional[int]
    stream: bool
    chunk_size: Optional[int]


def parse_predict_payload(
    body: bytes, want_foms: bool
) -> Tuple[Optional[Tuple[int, Dict[str, Any]]], Optional[ParsedPredict]]:
    """Validate a predict body; returns ``(error_response, parsed)``.

    Shared by both daemon modes so a sharded dispatcher's 400s are
    byte-identical to the single-process daemon's.
    """
    try:
        payload = json.loads(body.decode() or "null")
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        return (400, {"error": f"request body is not valid JSON: {exc}"}), None
    if not isinstance(payload, dict):
        return (400, {"error": "request body must be a JSON object"}), None
    qasm_list = payload.get("circuits")
    if (
        not isinstance(qasm_list, list)
        or not qasm_list
        or not all(isinstance(entry, str) for entry in qasm_list)
    ):
        return (
            400,
            {"error": "'circuits' must be a non-empty list of QASM strings"},
        ), None
    level = payload.get("optimization_level")
    if level is not None and (
        not isinstance(level, int) or not 0 <= level <= 3
    ):
        return (400, {"error": "'optimization_level' must be 0..3"}), None
    stream = payload.get("stream", False)
    if not isinstance(stream, bool):
        return (400, {"error": "'stream' must be a boolean"}), None
    if stream and want_foms:
        return (
            400,
            {"error": "streaming is supported on /predict only, not /foms"},
        ), None
    chunk_size = payload.get("chunk_size")
    if chunk_size is not None:
        if not stream:
            return (
                400,
                {"error": "'chunk_size' applies only to streaming requests"},
            ), None
        if (
            isinstance(chunk_size, bool)
            or not isinstance(chunk_size, int)
            or chunk_size < 1
        ):
            return (
                400,
                {"error": "'chunk_size' must be a positive integer"},
            ), None
    model = payload.get("model")
    fingerprint = payload.get("fingerprint")
    return None, ParsedPredict(
        qasm_list, model, fingerprint, level, stream, chunk_size
    )


class _BadRequest(Exception):
    """Malformed HTTP framing; the connection is answered 400 and closed."""


class _RawResponse(NamedTuple):
    """A fully-formed body relayed verbatim (shard responses)."""

    status: int
    body: bytes
    content_type: str = "application/json"


class _StreamResponse(NamedTuple):
    """A chunked response written incrementally by ``write(writer, close)``."""

    status: int
    write: Callable[[asyncio.StreamWriter, bool], Awaitable[None]]


class ServingDaemon:
    """A long-lived predict server over a model registry.

    Construct with a loaded :class:`ModelRegistry` (in-process mode) or
    a picklable :class:`~repro.serving.shards.RegistrySpec` (required
    when ``config.shards > 1``, accepted either way), then either
    ``await start()`` / ``await stop()`` from an event loop (tests), use
    :class:`DaemonThread` from synchronous code, or call
    :meth:`serve_forever` as the process main (the CLI path — installs
    SIGTERM/SIGINT handlers for graceful drain).
    """

    def __init__(
        self, registry, config: Optional[ServerConfig] = None
    ):
        from .shards import RegistrySpec, ShardManager, resolve_shards

        self.config = config or ServerConfig()
        self.shard_count = resolve_shards(self.config.shards)
        self._sharded = self.shard_count > 1
        self._shards: Optional[ShardManager] = None
        self._batcher: Optional[DynamicBatcher] = None
        if self._sharded:
            if not isinstance(registry, RegistrySpec):
                raise ValueError(
                    "sharded serving (shards > 1) needs a RegistrySpec so "
                    "each worker process can build its own registry; got "
                    f"{type(registry).__name__}"
                )
            registry.validate()
            self.registry: Optional[ModelRegistry] = None
            self._shards = ShardManager(
                registry, self.config, self.shard_count
            )
        else:
            if isinstance(registry, RegistrySpec):
                registry = registry.build()
            if len(registry) == 0:
                raise ValueError("cannot serve an empty model registry")
            self.registry = registry
            self._batcher = DynamicBatcher(
                self._run_batch,
                max_batch=self.config.max_batch,
                max_delay=self.config.batch_deadline,
                max_queue=self.config.queue_limit,
            )
        self._server: Optional[asyncio.AbstractServer] = None
        self._connections: "set[asyncio.StreamWriter]" = set()
        self._handler_tasks: "set[asyncio.Task]" = set()
        self._draining = False
        self._active_requests = 0
        self._idle: Optional[asyncio.Event] = None   # created on the loop
        self._reload_lock: Optional[asyncio.Lock] = None
        self._reload_task: Optional[asyncio.Task] = None
        self._reload_checks = 0
        self._started_at: Optional[float] = None
        self.host: Optional[str] = None
        self.port: Optional[int] = None
        # Counters (event-loop-only mutation).
        self._requests: Dict[str, int] = {}
        self._responses: Dict[int, int] = {}
        self._latencies: "deque[float]" = deque(
            maxlen=self.config.latency_window
        )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    async def start(self) -> None:
        """Bind the listener and start the batcher or the worker shards."""
        if self._server is not None:
            return
        self._idle = asyncio.Event()
        self._idle.set()
        if self._sharded:
            await self._shards.start()
        else:
            await self._batcher.start()
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )
        sockname = self._server.sockets[0].getsockname()
        self.host, self.port = sockname[0], sockname[1]
        self._started_at = asyncio.get_running_loop().time()
        self._reload_lock = asyncio.Lock()
        if not self._sharded and self.config.reload_interval > 0:
            self._reload_task = asyncio.get_running_loop().create_task(
                self._reload_loop()
            )

    def begin_drain(self) -> None:
        """Stop accepting new work (503) while queued requests finish."""
        self._draining = True

    async def stop(self) -> None:
        """Graceful shutdown: drain, close listener + connections.

        Every request queued before the call is answered exactly once
        (streams run to their terminator); requests arriving after it
        get 503.  Sharded: workers are SIGTERMed only after in-flight
        relays finish, and the call returns only after every worker
        process is reaped.
        """
        self.begin_drain()
        if self._reload_task is not None:
            self._reload_task.cancel()
            try:
                await self._reload_task
            except asyncio.CancelledError:
                pass
            self._reload_task = None
        if self._sharded:
            # Let in-flight relays (including streams) finish against
            # live workers, then terminate and reap every shard.
            if self._idle is not None:
                await self._idle.wait()
            await self._shards.stop()
        else:
            await self._batcher.close()
            # Let in-flight handlers write their (already computed)
            # responses before tearing connections down — a drained
            # request that never reaches the wire is still dropped.
            if self._idle is not None:
                await self._idle.wait()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for writer in list(self._connections):
            writer.close()
        # Reap handler tasks (idle keep-alive readers wake on the close
        # above) so loop teardown never cancels a live task mid-read.
        pending = [
            task for task in self._handler_tasks if not task.done()
        ]
        if pending:
            done, still_pending = await asyncio.wait(pending, timeout=5)
            for task in still_pending:  # pragma: no cover - defensive
                task.cancel()
            if still_pending:  # pragma: no cover - defensive
                await asyncio.wait(still_pending, timeout=5)

    async def serve_forever(self) -> None:
        """Run as the process main: start, announce, drain on SIGTERM/SIGINT."""
        await self.start()
        loop = asyncio.get_running_loop()
        stop_signal = asyncio.Event()
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(signum, stop_signal.set)
            except NotImplementedError:  # pragma: no cover - non-POSIX loops
                pass
        if self._sharded:
            models = ", ".join(sorted(self._shards.model_summaries()))
            extra = f"; shards: {self.shard_count}"
        else:
            models = ", ".join(
                f"{entry.name}@{entry.fingerprint}"
                for entry in self.registry.entries()
            )
            extra = ""
        print(
            f"repro-serve listening on http://{self.host}:{self.port} "
            f"(pid {os.getpid()}; models: {models}{extra})",
            flush=True,
        )
        await stop_signal.wait()
        print("repro-serve draining (SIGTERM/SIGINT received)", flush=True)
        await self.stop()
        print("repro-serve drained; exiting", flush=True)

    # ------------------------------------------------------------------
    # The batch runner (worker thread; in-process mode only)
    # ------------------------------------------------------------------

    def _run_batch(
        self,
        key: Tuple[str, str, int, bool],
        payloads: List[List],
        timings: Dict[str, float],
    ) -> List[Dict[str, Any]]:
        """Run one coalesced batch through the FomService pipeline.

        ``key`` pins (model name, fingerprint, optimization level,
        panel?), so every payload in the batch is computed identically.
        Positions restart at 0 for each payload: that is what makes the
        merged batch bit-identical to serving each request alone.
        """
        name, fingerprint, level, want_foms = key
        entry = self.registry.resolve(name, fingerprint)
        circuits: List = []
        positions: List[int] = []
        for payload in payloads:
            circuits.extend(payload)
            positions.extend(range(len(payload)))
        predictions, foms = entry.service.predict_at(
            circuits,
            positions=positions,
            optimization_level=level,
            max_workers=self.config.max_workers,
            workers_mode=self.config.workers_mode,
            want_foms=want_foms,
            timings=timings,
        )
        results: List[Dict[str, Any]] = []
        offset = 0
        for payload in payloads:
            count = len(payload)
            result: Dict[str, Any] = {
                "predictions": predictions[offset:offset + count].tolist(),
            }
            if want_foms:
                result["foms"] = {
                    label: values[offset:offset + count].tolist()
                    for label, values in foms.items()
                }
            results.append(result)
            offset += count
        return results

    # ------------------------------------------------------------------
    # Hot model reload
    # ------------------------------------------------------------------

    async def _reload_loop(self) -> None:
        """Background poll: a cheap staleness probe each tick; the full
        rehash + reload runs only when a model source actually moved."""
        while True:
            await asyncio.sleep(self.config.reload_interval)
            if self._draining:
                continue
            self._reload_checks += 1
            try:
                if await asyncio.to_thread(self.registry.maybe_stale):
                    await self._refresh_models()
            except Exception as exc:  # noqa: BLE001 - keep serving on failure
                print(f"repro-serve model refresh failed: {exc}", flush=True)

    async def _refresh_models(self, force: bool = False):
        """Serialized registry refresh off the event loop (hash + model
        load happen in a worker thread; the install is atomic)."""
        assert self._reload_lock is not None
        async with self._reload_lock:
            return await asyncio.to_thread(self.registry.refresh, force)

    async def _reload(self) -> Tuple[int, Dict[str, Any]]:
        if self._draining:
            return 503, {"error": "draining; not accepting new work"}
        self._reload_checks += 1
        try:
            swapped = await self._refresh_models(force=True)
        except Exception as exc:  # noqa: BLE001 - bad file must not kill serving
            return 500, {"error": f"model refresh failed: {exc}"}
        return 200, {
            "swapped": [
                {
                    "model": successor.name,
                    "fingerprint": successor.fingerprint,
                    "version": successor.version,
                    "previous_fingerprint": (
                        superseded.fingerprint
                        if superseded is not None
                        else None
                    ),
                }
                for superseded, successor in swapped
            ],
            "serving": [
                entry.describe()
                for entry in self.registry.serving_entries()
            ],
        }

    async def _reload_sharded(self) -> Tuple[int, Dict[str, Any]]:
        """Broadcast ``POST /reload`` to every live shard; merge reports."""
        if self._draining:
            return 503, {"error": "draining; not accepting new work"}
        self._reload_checks += 1
        results = await self._shards.poll("POST", "/reload", timeout=300.0)
        swapped: List[Dict[str, Any]] = []
        serving: List[Dict[str, Any]] = []
        shard_reports: List[Dict[str, Any]] = []
        ok = True
        for report in results:
            payload = report.get("payload") or {}
            if not report.get("alive") or report.get("status") != 200:
                ok = False
                shard_reports.append({
                    "shard": report["shard"],
                    "ok": False,
                    "error": payload.get("error", "shard unavailable"),
                })
                continue
            shard_swaps = payload.get("swapped", [])
            shard_reports.append({
                "shard": report["shard"],
                "ok": True,
                "swapped": len(shard_swaps),
            })
            for swap in shard_swaps:
                swapped.append({**swap, "shard": report["shard"]})
            if not serving:
                serving = payload.get("serving", [])
        return (200 if ok else 500), {
            "swapped": swapped,
            "serving": serving,
            "shards": shard_reports,
        }

    # ------------------------------------------------------------------
    # HTTP plumbing
    # ------------------------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._handler_tasks.add(task)
        self._connections.add(writer)
        try:
            while True:
                try:
                    request = await self._read_request(reader)
                except _BadRequest as exc:
                    await self._write_response(
                        writer, 400, {"error": str(exc)}, close=True
                    )
                    break
                if request is None:
                    break
                method, target, headers, body = request
                keep_alive = (
                    headers.get("connection", "").lower() != "close"
                )
                self._active_requests += 1
                if self._idle is not None:
                    self._idle.clear()
                try:
                    result = await self._route(method, target, body)
                    if isinstance(result, _StreamResponse):
                        await result.write(writer, not keep_alive)
                    elif isinstance(result, _RawResponse):
                        await self._write_raw(
                            writer,
                            result.status,
                            result.body,
                            close=not keep_alive,
                            content_type=result.content_type,
                        )
                    else:
                        status, payload = result
                        await self._write_response(
                            writer, status, payload, close=not keep_alive
                        )
                finally:
                    self._active_requests -= 1
                    if self._active_requests == 0 and self._idle is not None:
                        self._idle.set()
                if not keep_alive:
                    break
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # client went away mid-exchange; nothing to answer
        except asyncio.CancelledError:  # pragma: no cover - teardown path
            pass  # loop teardown; the connection is closed below
        finally:
            if task is not None:
                self._handler_tasks.discard(task)
            self._connections.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> Optional[Tuple[str, str, Dict[str, str], bytes]]:
        """One HTTP/1.1 request, or ``None`` on a clean EOF between requests."""
        try:
            line = await reader.readline()
        except ValueError:
            raise _BadRequest("request line too long") from None
        if not line:
            return None
        line = line.strip().decode("latin-1", "replace")
        if len(line) > _MAX_REQUEST_LINE:
            raise _BadRequest("request line too long")
        parts = line.split()
        if len(parts) != 3 or not parts[2].startswith("HTTP/"):
            raise _BadRequest(f"malformed request line: {line[:80]!r}")
        method, target = parts[0].upper(), parts[1]
        headers: Dict[str, str] = {}
        for _ in range(_MAX_HEADERS):
            raw = await reader.readline()
            if raw in (b"\r\n", b"\n", b""):
                break
            name, sep, value = raw.decode("latin-1", "replace").partition(":")
            if not sep:
                raise _BadRequest(f"malformed header: {raw[:80]!r}")
            headers[name.strip().lower()] = value.strip()
        else:
            raise _BadRequest("too many headers")
        body = b""
        if "content-length" in headers:
            try:
                length = int(headers["content-length"])
            except ValueError:
                raise _BadRequest("bad content-length") from None
            if length < 0 or length > self.config.max_body_bytes:
                raise _BadRequest(
                    f"body too large ({length} > "
                    f"{self.config.max_body_bytes} bytes)"
                )
            body = await reader.readexactly(length)
        elif headers.get("transfer-encoding"):
            raise _BadRequest("chunked transfer encoding is not supported")
        return method, target, headers, body

    async def _write_response(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload: Dict[str, Any],
        close: bool,
    ) -> None:
        body = json.dumps(payload).encode()
        await self._write_raw(writer, status, body, close=close)

    async def _write_raw(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        body: bytes,
        close: bool,
        content_type: str = "application/json",
    ) -> None:
        self._responses[status] = self._responses.get(status, 0) + 1
        head = http_head(
            status,
            close=close,
            content_length=len(body),
            content_type=content_type,
        )
        writer.write(head + body)
        await writer.drain()

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------

    async def _route(self, method: str, target: str, body: bytes):
        path = target.split("?", 1)[0]
        self._requests[path] = self._requests.get(path, 0) + 1
        if path == "/healthz":
            if method != "GET":
                return 405, {"error": "healthz is GET-only"}
            if self._sharded:
                return await self._healthz_sharded()
            return self._healthz()
        if path == "/stats":
            if method != "GET":
                return 405, {"error": "stats is GET-only"}
            if self._sharded:
                return await self._stats_sharded()
            return 200, self._stats()
        if path == "/reload":
            if method != "POST":
                return 405, {"error": "reload is POST-only"}
            if self._sharded:
                return await self._reload_sharded()
            return await self._reload()
        if path in ("/predict", "/foms"):
            if method != "POST":
                return 405, {"error": f"{path} is POST-only"}
            want_foms = path == "/foms"
            if self._sharded:
                return await self._predict_sharded(path, body, want_foms)
            return await self._predict(body, want_foms=want_foms)
        return 404, {
            "error": f"unknown path {path!r}; "
            "endpoints: /predict /foms /healthz /stats /reload"
        }

    def _healthz(self) -> Tuple[int, Dict[str, Any]]:
        status = "draining" if self._draining else "serving"
        return (503 if self._draining else 200), {
            "status": status,
            "models": [entry.describe() for entry in self.registry.entries()],
            "reload": {
                "interval_s": self.config.reload_interval,
                "checks": self._reload_checks,
                "refreshes": self.registry.refreshes,
                "swaps": self.registry.swaps,
            },
            "batch": self._batch_summary(),
        }

    def _batch_summary(self) -> Dict[str, Any]:
        return {
            "max_batch": self.config.max_batch,
            "deadline_ms": self.config.batch_deadline * 1000.0,
            "queue_limit": self.config.queue_limit,
            "request_timeout_s": self.config.request_timeout,
        }

    async def _healthz_sharded(self) -> Tuple[int, Dict[str, Any]]:
        results = await self._shards.poll("GET", "/healthz")
        workers: List[Dict[str, Any]] = []
        models: List[Dict[str, Any]] = []
        live = 0
        reload_totals = {"checks": 0, "refreshes": 0, "swaps": 0}
        for report in results:
            alive = bool(report.get("alive"))
            worker = {
                "shard": report["shard"],
                "alive": alive,
                "pid": report.get("pid"),
            }
            payload = report.get("payload") or {}
            if alive:
                live += 1
                worker["status"] = payload.get("status")
                if not models:
                    models = payload.get("models", [])
                for field, value in payload.get("reload", {}).items():
                    if field in reload_totals:
                        reload_totals[field] += int(value)
            workers.append(worker)
        degraded = live < self.shard_count
        if self._draining:
            status, code = "draining", 503
        elif degraded:
            status, code = "degraded", 200
        else:
            status, code = "serving", 200
        return code, {
            "status": status,
            "models": models,
            "shards": {
                "count": self.shard_count,
                "live": live,
                "degraded": degraded,
                "crashes": self._shards.crashes,
                "respawns": self._shards.respawns,
                "workers": workers,
            },
            "reload": {
                "interval_s": self.config.reload_interval,
                **reload_totals,
            },
            "batch": self._batch_summary(),
        }

    def _stats(self) -> Dict[str, Any]:
        loop = asyncio.get_running_loop()
        batch = self._batcher.snapshot()
        ordered = sorted(self._latencies)
        return {
            "uptime_s": (
                loop.time() - self._started_at
                if self._started_at is not None
                else 0.0
            ),
            "draining": self._draining,
            "requests": dict(self._requests),
            "responses": {
                str(status): count
                for status, count in sorted(self._responses.items())
            },
            "queue": {
                "depth": batch.queue_depth,
                "requests_waiting": batch.requests_waiting,
                "in_flight": batch.in_flight,
                "limit": self.config.queue_limit,
                "rejected_total": batch.rejected_total,
            },
            "batches": {
                "total": batch.batches_total,
                "requests_total": batch.requests_total,
                "size_histogram": {
                    str(size): count
                    for size, count in sorted(
                        batch.batch_size_histogram.items()
                    )
                },
            },
            "latency": {
                "request_p50_s": nearest_rank(ordered, 0.50),
                "request_p99_s": nearest_rank(ordered, 0.99),
                "request_max_s": ordered[-1] if ordered else None,
                "samples": len(ordered),
                # The raw (bounded) reservoir: what a sharded parent
                # merges before recomputing percentiles on the union.
                "reservoir": list(self._latencies),
                "queue_wait_s_total": batch.queue_wait_s_total,
                "queue_wait_s_max": batch.queue_wait_s_max,
                "stages_s": batch.stage_s,
            },
            "models": {
                "serving": [
                    f"{entry.name}@{entry.fingerprint}"
                    for entry in self.registry.serving_entries()
                ],
                "registered": len(self.registry),
                "reload_checks": self._reload_checks,
                "refreshes": self.registry.refreshes,
                "swaps": self.registry.swaps,
            },
        }

    async def _stats_sharded(self) -> Tuple[int, Dict[str, Any]]:
        from .shards import merge_shard_stats

        loop = asyncio.get_running_loop()
        results = await self._shards.poll("GET", "/stats")
        reports = [
            report["payload"]
            for report in results
            if report.get("alive") and isinstance(report.get("payload"), dict)
        ]
        merged = merge_shard_stats(reports)
        merged["queue"]["limit"] = self.config.queue_limit
        per_shard: List[Dict[str, Any]] = []
        for report in results:
            entry: Dict[str, Any] = {
                "shard": report["shard"],
                "alive": bool(report.get("alive")),
                "pid": report.get("pid"),
            }
            payload = report.get("payload")
            if isinstance(payload, dict):
                entry["queue_depth"] = payload["queue"]["depth"]
                entry["in_flight"] = payload["queue"]["in_flight"]
                entry["requests_total"] = payload["batches"]["requests_total"]
                entry["latency_samples"] = payload["latency"]["samples"]
            per_shard.append(entry)
        models = next(
            (report["models"] for report in reports if "models" in report),
            {},
        )
        return 200, {
            "uptime_s": (
                loop.time() - self._started_at
                if self._started_at is not None
                else 0.0
            ),
            "draining": self._draining,
            "requests": dict(self._requests),
            "responses": {
                str(status): count
                for status, count in sorted(self._responses.items())
            },
            "queue": merged["queue"],
            "batches": merged["batches"],
            "latency": merged["latency"],
            "models": models,
            "shards": {
                "count": self.shard_count,
                "live": sum(1 for r in results if r.get("alive")),
                "crashes": self._shards.crashes,
                "respawns": self._shards.respawns,
                "spills": self._shards.spills,
                "per_shard": per_shard,
            },
        }

    # ------------------------------------------------------------------
    # Predict: in-process
    # ------------------------------------------------------------------

    async def _predict(self, body: bytes, want_foms: bool):
        if self._draining:
            return 503, {"error": "draining; not accepting new work"}
        error, parsed = parse_predict_payload(body, want_foms)
        if error is not None:
            return error
        try:
            entry = self.registry.resolve(parsed.model, parsed.fingerprint)
        except ValueError as exc:
            return 400, {"error": str(exc)}
        try:
            circuits = [from_qasm(qasm) for qasm in parsed.qasm]
        except Exception as exc:  # noqa: BLE001 - any parse failure is a 400
            return 400, {"error": f"bad QASM: {exc}"}
        effective_level = (
            entry.service.optimization_level
            if parsed.level is None
            else parsed.level
        )
        if parsed.stream:
            async def write(writer: asyncio.StreamWriter, close: bool):
                await self._write_stream_local(
                    writer, close, entry, circuits, effective_level,
                    parsed.chunk_size,
                )
            return _StreamResponse(200, write)
        key = (entry.name, entry.fingerprint, effective_level, want_foms)
        loop = asyncio.get_running_loop()
        started = loop.time()
        try:
            result = await asyncio.wait_for(
                self._batcher.submit(key, circuits, weight=len(circuits)),
                timeout=self.config.request_timeout,
            )
        except BacklogFull as exc:
            return 503, {"error": str(exc)}
        except BatcherClosed:
            return 503, {"error": "draining; not accepting new work"}
        except asyncio.TimeoutError:
            return 504, {
                "error": f"request timed out after "
                f"{self.config.request_timeout}s in the batch queue"
            }
        self._latencies.append(loop.time() - started)
        response: Dict[str, Any] = {
            "model": entry.name,
            "fingerprint": entry.fingerprint,
            "optimization_level": effective_level,
            "count": len(circuits),
        }
        if want_foms:
            response["foms"] = {
                **result["foms"],
                PROPOSED_LABEL: result["predictions"],
            }
        else:
            response["predictions"] = result["predictions"]
        return 200, response

    async def _write_stream_local(
        self,
        writer: asyncio.StreamWriter,
        close: bool,
        entry,
        circuits: List,
        level,
        chunk_size: Optional[int],
    ) -> None:
        """Stream predictions as chunked NDJSON riding ``predict_stream``.

        Bypasses the batcher: a corpus-sized request *is* its own batch,
        and global positions in ``predict_stream`` keep the bytes
        identical to a non-streamed call regardless of chunk size.
        Counted in ``_active_requests``, so a drain waits for the
        terminator — a stream in flight when SIGTERM lands still
        completes.
        """
        loop = asyncio.get_running_loop()
        started = loop.time()
        self._responses[200] = self._responses.get(200, 0) + 1
        writer.write(
            http_head(
                200, close=close, chunked=True,
                content_type=STREAM_CONTENT_TYPE,
            )
        )
        writer.write(
            json_chunk({
                "model": entry.name,
                "fingerprint": entry.fingerprint,
                "optimization_level": level,
                "count": len(circuits),
                "stream": True,
            })
        )
        await writer.drain()
        iterator = entry.service.predict_stream(
            circuits,
            optimization_level=level,
            max_workers=self.config.max_workers,
            workers_mode=self.config.workers_mode,
            chunk_size=chunk_size,
        )
        try:
            while True:
                part = await asyncio.to_thread(next, iterator, None)
                if part is None:
                    break
                writer.write(json_chunk({"predictions": part.tolist()}))
                await writer.drain()
        except (ConnectionError, OSError):
            raise  # client went away; nothing left to answer
        except Exception as exc:  # noqa: BLE001 - pipeline failure mid-stream
            writer.write(
                json_chunk({"error": f"stream failed: {exc}"})
                + CHUNK_TERMINATOR
            )
            await writer.drain()
            return
        self._latencies.append(loop.time() - started)
        writer.write(
            json_chunk({"done": True, "count": len(circuits)})
            + CHUNK_TERMINATOR
        )
        await writer.drain()

    # ------------------------------------------------------------------
    # Predict: sharded dispatch
    # ------------------------------------------------------------------

    async def _predict_sharded(self, path: str, body: bytes, want_foms: bool):
        """Validate, pick a shard by lane hash, relay bytes verbatim."""
        from .shards import ShardDown

        if self._draining:
            return 503, {"error": "draining; not accepting new work"}
        error, parsed = parse_predict_payload(body, want_foms)
        if error is not None:
            return error
        key = (parsed.model, parsed.fingerprint, parsed.level, want_foms)
        weight = len(parsed.qasm)
        manager = self._shards
        try:
            shard = manager.pick(key, weight)
        except ShardDown as down:
            return 503, {"error": str(down)}
        manager.begin(shard, weight)
        try:
            reply = await manager.exchange(shard, "POST", path, body)
        except (ConnectionError, OSError, asyncio.IncompleteReadError) as exc:
            manager.release(shard, weight)
            return 503, {
                "error": f"shard {shard.index} failed mid-request: {exc}"
            }
        if reply.body is not None:
            manager.release(shard, weight)
            # No parent-side latency sample: sharded /stats percentiles
            # come from the merged per-worker reservoirs.
            return _RawResponse(
                reply.status,
                reply.body,
                reply.headers.get("content-type", "application/json"),
            )

        async def write(writer: asyncio.StreamWriter, close: bool):
            self._responses[reply.status] = (
                self._responses.get(reply.status, 0) + 1
            )
            try:
                await manager.relay_stream(shard, reply, writer, close)
            finally:
                manager.release(shard, weight)

        return _StreamResponse(reply.status, write)


class DaemonThread:
    """Run a :class:`ServingDaemon` on a background event loop.

    For synchronous callers — tests, benchmarks, the smoke example:

    >>> with DaemonThread(daemon) as (host, port):
    ...     client = ServingClient(host, port)

    ``stop()`` performs the same graceful drain as SIGTERM.
    """

    def __init__(self, daemon: ServingDaemon):
        self.daemon = daemon
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._run, name="repro-serve", daemon=True
        )

    def _run(self) -> None:
        asyncio.set_event_loop(self._loop)
        self._loop.run_forever()
        self._loop.close()

    def start(self) -> Tuple[str, int]:
        self._thread.start()
        self.call(self.daemon.start())
        assert self.daemon.host is not None and self.daemon.port is not None
        return self.daemon.host, self.daemon.port

    def call(self, coroutine, timeout: float = 120.0):
        """Run a coroutine on the daemon's loop; return its result."""
        return asyncio.run_coroutine_threadsafe(
            coroutine, self._loop
        ).result(timeout=timeout)

    def stop(self) -> None:
        if self._thread.is_alive():
            self.call(self.daemon.stop())
            self._loop.call_soon_threadsafe(self._loop.stop)
            self._thread.join(timeout=30)

    def __enter__(self) -> Tuple[str, int]:
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
