"""The serving daemon: a stdlib-only asyncio HTTP front end.

:class:`ServingDaemon` owns a :class:`~repro.serving.registry.ModelRegistry`
(loaded once) and a :class:`~repro.serving.batcher.DynamicBatcher`, and
speaks a deliberately small slice of HTTP/1.1 over asyncio streams — no
third-party web framework, per the repo's numpy-only runtime rule.

Endpoints (all JSON):

* ``POST /predict`` — ``{"circuits": [qasm, ...], "model"?, "fingerprint"?,
  "optimization_level"?}`` → ``{"predictions": [...], "model":,
  "fingerprint":}``.  Concurrent requests coalesce into dynamic batches;
  responses are bit-identical to a direct
  :meth:`~repro.predictor.service.FomService.predict` call on the same
  inputs (request-local compile-seed positions).
* ``POST /foms`` — same request shape → the paper's full Table-I panel
  (four established figures of merit + the proposed estimator) under
  ``"foms"``.
* ``GET /healthz`` — 200 ``{"status": "serving", ...}`` while accepting
  work, 503 ``{"status": "draining"}`` once shutdown has begun.
* ``GET /stats`` — queue depth, batch-size histogram, per-stage latency
  totals, request-latency percentiles, response counters, and the
  currently-serving model fingerprints + reload counters.
* ``POST /reload`` — re-check every model source
  (:meth:`~repro.serving.registry.ModelRegistry.refresh`) and hot-swap
  changed estimators without dropping a request.  With
  ``ServerConfig.reload_interval > 0`` the daemon also polls on its own:
  a cheap ``(size, mtime_ns)`` / store-scan guard each tick, the full
  rehash+reload only when something moved.  In-flight batches finish on
  the model they resolved; post-swap responses are bit-identical to a
  freshly restarted daemon (see docs/drift.md for the contract).

Operational behavior:

* **Backpressure** — a bounded queue; when full, new work is rejected
  with 503 instead of queueing unbounded latency.
* **Per-request timeout** — a request that waits longer than
  ``request_timeout`` gets 504; the batch it joined still completes for
  everyone else.
* **Graceful shutdown** — on SIGTERM/SIGINT the daemon stops accepting
  (503), drains every in-flight and queued batch (each queued request
  is answered exactly once), closes the listener, and exits 0.
"""

from __future__ import annotations

import asyncio
import json
import math
import os
import signal
import threading
from collections import deque
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from ..circuits.qasm import from_qasm
from ..fom.metrics import PROPOSED_LABEL
from .batcher import BacklogFull, BatcherClosed, DynamicBatcher
from .registry import ModelRegistry

__all__ = ["DaemonThread", "ServerConfig", "ServingDaemon"]

_MAX_REQUEST_LINE = 8192
_MAX_HEADERS = 100


@dataclass
class ServerConfig:
    """Network + batching knobs of one daemon."""

    host: str = "127.0.0.1"
    port: int = 8377                  # 0 = pick a free port (tests)
    max_batch: int = 64               # circuits per dynamic batch (size trigger)
    batch_deadline: float = 0.010     # seconds before a partial batch flushes
    queue_limit: int = 1024           # circuits waiting before 503
    request_timeout: float = 60.0     # seconds before a request gets 504
    max_body_bytes: int = 64 * 1024 * 1024
    max_workers: int = 1              # pipeline workers per batch
    workers_mode: Optional[str] = "thread"
    latency_window: int = 2048        # request-latency samples kept for /stats
    reload_interval: float = 0.0      # seconds between auto model-refresh
                                      # probes (0 = only explicit /reload)


class _BadRequest(Exception):
    """Malformed HTTP framing; the connection is answered 400 and closed."""


class ServingDaemon:
    """A long-lived predict server over a model registry.

    Construct with a loaded registry, then either ``await start()`` /
    ``await stop()`` from an event loop (tests), use
    :class:`DaemonThread` from synchronous code, or call
    :meth:`serve_forever` as the process main (the CLI path — installs
    SIGTERM/SIGINT handlers for graceful drain).
    """

    def __init__(
        self, registry: ModelRegistry, config: Optional[ServerConfig] = None
    ):
        if len(registry) == 0:
            raise ValueError("cannot serve an empty model registry")
        self.registry = registry
        self.config = config or ServerConfig()
        self._batcher = DynamicBatcher(
            self._run_batch,
            max_batch=self.config.max_batch,
            max_delay=self.config.batch_deadline,
            max_queue=self.config.queue_limit,
        )
        self._server: Optional[asyncio.AbstractServer] = None
        self._connections: "set[asyncio.StreamWriter]" = set()
        self._handler_tasks: "set[asyncio.Task]" = set()
        self._draining = False
        self._active_requests = 0
        self._idle: Optional[asyncio.Event] = None   # created on the loop
        self._reload_lock: Optional[asyncio.Lock] = None
        self._reload_task: Optional[asyncio.Task] = None
        self._reload_checks = 0
        self._started_at: Optional[float] = None
        self.host: Optional[str] = None
        self.port: Optional[int] = None
        # Counters (event-loop-only mutation).
        self._requests: Dict[str, int] = {}
        self._responses: Dict[int, int] = {}
        self._latencies: "deque[float]" = deque(
            maxlen=self.config.latency_window
        )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    async def start(self) -> None:
        """Bind the listener and start the batcher; sets ``host``/``port``."""
        if self._server is not None:
            return
        self._idle = asyncio.Event()
        self._idle.set()
        await self._batcher.start()
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )
        sockname = self._server.sockets[0].getsockname()
        self.host, self.port = sockname[0], sockname[1]
        self._started_at = asyncio.get_running_loop().time()
        self._reload_lock = asyncio.Lock()
        if self.config.reload_interval > 0:
            self._reload_task = asyncio.get_running_loop().create_task(
                self._reload_loop()
            )

    def begin_drain(self) -> None:
        """Stop accepting new work (503) while queued requests finish."""
        self._draining = True

    async def stop(self) -> None:
        """Graceful shutdown: drain the batcher, close listener + connections.

        Every request queued before the call is answered exactly once;
        requests arriving after it get 503.
        """
        self.begin_drain()
        if self._reload_task is not None:
            self._reload_task.cancel()
            try:
                await self._reload_task
            except asyncio.CancelledError:
                pass
            self._reload_task = None
        await self._batcher.close()
        # Let in-flight handlers write their (already computed) responses
        # before tearing connections down — a drained request that never
        # reaches the wire is still a dropped request.
        if self._idle is not None:
            await self._idle.wait()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for writer in list(self._connections):
            writer.close()
        # Reap handler tasks (idle keep-alive readers wake on the close
        # above) so loop teardown never cancels a live task mid-read.
        pending = [
            task for task in self._handler_tasks if not task.done()
        ]
        if pending:
            done, still_pending = await asyncio.wait(pending, timeout=5)
            for task in still_pending:  # pragma: no cover - defensive
                task.cancel()
            if still_pending:  # pragma: no cover - defensive
                await asyncio.wait(still_pending, timeout=5)

    async def serve_forever(self) -> None:
        """Run as the process main: start, announce, drain on SIGTERM/SIGINT."""
        await self.start()
        loop = asyncio.get_running_loop()
        stop_signal = asyncio.Event()
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(signum, stop_signal.set)
            except NotImplementedError:  # pragma: no cover - non-POSIX loops
                pass
        models = ", ".join(
            f"{entry.name}@{entry.fingerprint}"
            for entry in self.registry.entries()
        )
        print(
            f"repro-serve listening on http://{self.host}:{self.port} "
            f"(pid {os.getpid()}; models: {models})",
            flush=True,
        )
        await stop_signal.wait()
        print("repro-serve draining (SIGTERM/SIGINT received)", flush=True)
        await self.stop()
        print("repro-serve drained; exiting", flush=True)

    # ------------------------------------------------------------------
    # The batch runner (worker thread)
    # ------------------------------------------------------------------

    def _run_batch(
        self,
        key: Tuple[str, str, int, bool],
        payloads: List[List],
        timings: Dict[str, float],
    ) -> List[Dict[str, Any]]:
        """Run one coalesced batch through the FomService pipeline.

        ``key`` pins (model name, fingerprint, optimization level,
        panel?), so every payload in the batch is computed identically.
        Positions restart at 0 for each payload: that is what makes the
        merged batch bit-identical to serving each request alone.
        """
        name, fingerprint, level, want_foms = key
        entry = self.registry.resolve(name, fingerprint)
        circuits: List = []
        positions: List[int] = []
        for payload in payloads:
            circuits.extend(payload)
            positions.extend(range(len(payload)))
        predictions, foms = entry.service.predict_at(
            circuits,
            positions=positions,
            optimization_level=level,
            max_workers=self.config.max_workers,
            workers_mode=self.config.workers_mode,
            want_foms=want_foms,
            timings=timings,
        )
        results: List[Dict[str, Any]] = []
        offset = 0
        for payload in payloads:
            count = len(payload)
            result: Dict[str, Any] = {
                "predictions": predictions[offset:offset + count].tolist(),
            }
            if want_foms:
                result["foms"] = {
                    label: values[offset:offset + count].tolist()
                    for label, values in foms.items()
                }
            results.append(result)
            offset += count
        return results

    # ------------------------------------------------------------------
    # Hot model reload
    # ------------------------------------------------------------------

    async def _reload_loop(self) -> None:
        """Background poll: a cheap staleness probe each tick; the full
        rehash + reload runs only when a model source actually moved."""
        while True:
            await asyncio.sleep(self.config.reload_interval)
            if self._draining:
                continue
            self._reload_checks += 1
            try:
                if await asyncio.to_thread(self.registry.maybe_stale):
                    await self._refresh_models()
            except Exception as exc:  # noqa: BLE001 - keep serving on failure
                print(f"repro-serve model refresh failed: {exc}", flush=True)

    async def _refresh_models(self, force: bool = False):
        """Serialized registry refresh off the event loop (hash + model
        load happen in a worker thread; the install is atomic)."""
        assert self._reload_lock is not None
        async with self._reload_lock:
            return await asyncio.to_thread(self.registry.refresh, force)

    async def _reload(self) -> Tuple[int, Dict[str, Any]]:
        if self._draining:
            return 503, {"error": "draining; not accepting new work"}
        self._reload_checks += 1
        try:
            swapped = await self._refresh_models(force=True)
        except Exception as exc:  # noqa: BLE001 - bad file must not kill serving
            return 500, {"error": f"model refresh failed: {exc}"}
        return 200, {
            "swapped": [
                {
                    "model": successor.name,
                    "fingerprint": successor.fingerprint,
                    "version": successor.version,
                    "previous_fingerprint": (
                        superseded.fingerprint
                        if superseded is not None
                        else None
                    ),
                }
                for superseded, successor in swapped
            ],
            "serving": [
                entry.describe()
                for entry in self.registry.serving_entries()
            ],
        }

    # ------------------------------------------------------------------
    # HTTP plumbing
    # ------------------------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._handler_tasks.add(task)
        self._connections.add(writer)
        try:
            while True:
                try:
                    request = await self._read_request(reader)
                except _BadRequest as exc:
                    await self._write_response(
                        writer, 400, {"error": str(exc)}, close=True
                    )
                    break
                if request is None:
                    break
                method, target, headers, body = request
                self._active_requests += 1
                if self._idle is not None:
                    self._idle.clear()
                try:
                    status, payload = await self._route(method, target, body)
                    keep_alive = (
                        headers.get("connection", "").lower() != "close"
                    )
                    await self._write_response(
                        writer, status, payload, close=not keep_alive
                    )
                finally:
                    self._active_requests -= 1
                    if self._active_requests == 0 and self._idle is not None:
                        self._idle.set()
                if not keep_alive:
                    break
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # client went away mid-exchange; nothing to answer
        except asyncio.CancelledError:  # pragma: no cover - teardown path
            pass  # loop teardown; the connection is closed below
        finally:
            if task is not None:
                self._handler_tasks.discard(task)
            self._connections.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> Optional[Tuple[str, str, Dict[str, str], bytes]]:
        """One HTTP/1.1 request, or ``None`` on a clean EOF between requests."""
        try:
            line = await reader.readline()
        except ValueError:
            raise _BadRequest("request line too long") from None
        if not line:
            return None
        line = line.strip().decode("latin-1", "replace")
        if len(line) > _MAX_REQUEST_LINE:
            raise _BadRequest("request line too long")
        parts = line.split()
        if len(parts) != 3 or not parts[2].startswith("HTTP/"):
            raise _BadRequest(f"malformed request line: {line[:80]!r}")
        method, target = parts[0].upper(), parts[1]
        headers: Dict[str, str] = {}
        for _ in range(_MAX_HEADERS):
            raw = await reader.readline()
            if raw in (b"\r\n", b"\n", b""):
                break
            name, sep, value = raw.decode("latin-1", "replace").partition(":")
            if not sep:
                raise _BadRequest(f"malformed header: {raw[:80]!r}")
            headers[name.strip().lower()] = value.strip()
        else:
            raise _BadRequest("too many headers")
        body = b""
        if "content-length" in headers:
            try:
                length = int(headers["content-length"])
            except ValueError:
                raise _BadRequest("bad content-length") from None
            if length < 0 or length > self.config.max_body_bytes:
                raise _BadRequest(
                    f"body too large ({length} > "
                    f"{self.config.max_body_bytes} bytes)"
                )
            body = await reader.readexactly(length)
        elif headers.get("transfer-encoding"):
            raise _BadRequest("chunked transfer encoding is not supported")
        return method, target, headers, body

    async def _write_response(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload: Dict[str, Any],
        close: bool,
    ) -> None:
        self._responses[status] = self._responses.get(status, 0) + 1
        reason = {
            200: "OK", 400: "Bad Request", 404: "Not Found",
            405: "Method Not Allowed", 500: "Internal Server Error",
            503: "Service Unavailable", 504: "Gateway Timeout",
        }.get(status, "Error")
        body = json.dumps(payload).encode()
        head = (
            f"HTTP/1.1 {status} {reason}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: {'close' if close else 'keep-alive'}\r\n"
            f"\r\n"
        ).encode("latin-1")
        writer.write(head + body)
        await writer.drain()

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------

    async def _route(
        self, method: str, target: str, body: bytes
    ) -> Tuple[int, Dict[str, Any]]:
        path = target.split("?", 1)[0]
        self._requests[path] = self._requests.get(path, 0) + 1
        if path == "/healthz":
            if method != "GET":
                return 405, {"error": "healthz is GET-only"}
            return self._healthz()
        if path == "/stats":
            if method != "GET":
                return 405, {"error": "stats is GET-only"}
            return 200, self._stats()
        if path == "/reload":
            if method != "POST":
                return 405, {"error": "reload is POST-only"}
            return await self._reload()
        if path in ("/predict", "/foms"):
            if method != "POST":
                return 405, {"error": f"{path} is POST-only"}
            return await self._predict(body, want_foms=(path == "/foms"))
        return 404, {
            "error": f"unknown path {path!r}; "
            "endpoints: /predict /foms /healthz /stats /reload"
        }

    def _healthz(self) -> Tuple[int, Dict[str, Any]]:
        status = "draining" if self._draining else "serving"
        return (503 if self._draining else 200), {
            "status": status,
            "models": [entry.describe() for entry in self.registry.entries()],
            "reload": {
                "interval_s": self.config.reload_interval,
                "checks": self._reload_checks,
                "refreshes": self.registry.refreshes,
                "swaps": self.registry.swaps,
            },
            "batch": {
                "max_batch": self.config.max_batch,
                "deadline_ms": self.config.batch_deadline * 1000.0,
                "queue_limit": self.config.queue_limit,
                "request_timeout_s": self.config.request_timeout,
            },
        }

    def _stats(self) -> Dict[str, Any]:
        loop = asyncio.get_running_loop()
        batch = self._batcher.snapshot()
        ordered = sorted(self._latencies)

        def percentile(fraction: float) -> Optional[float]:
            # Nearest-rank: the smallest sample with cumulative frequency
            # >= fraction, i.e. ordered[ceil(f * n) - 1].  (The previous
            # int(f * n) indexed one rank high whenever f * n was an
            # integer — with n=2 samples, p50 returned the *larger* one.)
            if not ordered:
                return None
            rank = math.ceil(fraction * len(ordered))
            return ordered[max(0, rank - 1)]

        return {
            "uptime_s": (
                loop.time() - self._started_at
                if self._started_at is not None
                else 0.0
            ),
            "draining": self._draining,
            "requests": dict(self._requests),
            "responses": {
                str(status): count
                for status, count in sorted(self._responses.items())
            },
            "queue": {
                "depth": batch.queue_depth,
                "requests_waiting": batch.requests_waiting,
                "in_flight": batch.in_flight,
                "limit": self.config.queue_limit,
                "rejected_total": batch.rejected_total,
            },
            "batches": {
                "total": batch.batches_total,
                "requests_total": batch.requests_total,
                "size_histogram": {
                    str(size): count
                    for size, count in sorted(
                        batch.batch_size_histogram.items()
                    )
                },
            },
            "latency": {
                "request_p50_s": percentile(0.50),
                "request_p99_s": percentile(0.99),
                "request_max_s": ordered[-1] if ordered else None,
                "samples": len(ordered),
                "queue_wait_s_total": batch.queue_wait_s_total,
                "queue_wait_s_max": batch.queue_wait_s_max,
                "stages_s": batch.stage_s,
            },
            "models": {
                "serving": [
                    f"{entry.name}@{entry.fingerprint}"
                    for entry in self.registry.serving_entries()
                ],
                "registered": len(self.registry),
                "reload_checks": self._reload_checks,
                "refreshes": self.registry.refreshes,
                "swaps": self.registry.swaps,
            },
        }

    async def _predict(
        self, body: bytes, want_foms: bool
    ) -> Tuple[int, Dict[str, Any]]:
        if self._draining:
            return 503, {"error": "draining; not accepting new work"}
        try:
            payload = json.loads(body.decode() or "null")
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            return 400, {"error": f"request body is not valid JSON: {exc}"}
        if not isinstance(payload, dict):
            return 400, {"error": "request body must be a JSON object"}
        qasm_list = payload.get("circuits")
        if (
            not isinstance(qasm_list, list)
            or not qasm_list
            or not all(isinstance(entry, str) for entry in qasm_list)
        ):
            return 400, {
                "error": "'circuits' must be a non-empty list of QASM strings"
            }
        level = payload.get("optimization_level")
        if level is not None and (
            not isinstance(level, int) or not 0 <= level <= 3
        ):
            return 400, {"error": "'optimization_level' must be 0..3"}
        try:
            entry = self.registry.resolve(
                payload.get("model"), payload.get("fingerprint")
            )
        except ValueError as exc:
            return 400, {"error": str(exc)}
        try:
            circuits = [from_qasm(qasm) for qasm in qasm_list]
        except Exception as exc:  # noqa: BLE001 - any parse failure is a 400
            return 400, {"error": f"bad QASM: {exc}"}
        effective_level = (
            entry.service.optimization_level if level is None else level
        )
        key = (entry.name, entry.fingerprint, effective_level, want_foms)
        loop = asyncio.get_running_loop()
        started = loop.time()
        try:
            result = await asyncio.wait_for(
                self._batcher.submit(key, circuits, weight=len(circuits)),
                timeout=self.config.request_timeout,
            )
        except BacklogFull as exc:
            return 503, {"error": str(exc)}
        except BatcherClosed:
            return 503, {"error": "draining; not accepting new work"}
        except asyncio.TimeoutError:
            return 504, {
                "error": f"request timed out after "
                f"{self.config.request_timeout}s in the batch queue"
            }
        self._latencies.append(loop.time() - started)
        response: Dict[str, Any] = {
            "model": entry.name,
            "fingerprint": entry.fingerprint,
            "optimization_level": effective_level,
            "count": len(circuits),
        }
        if want_foms:
            response["foms"] = {
                **result["foms"],
                PROPOSED_LABEL: result["predictions"],
            }
        else:
            response["predictions"] = result["predictions"]
        return 200, response


class DaemonThread:
    """Run a :class:`ServingDaemon` on a background event loop.

    For synchronous callers — tests, benchmarks, the smoke example:

    >>> with DaemonThread(daemon) as (host, port):
    ...     client = ServingClient(host, port)

    ``stop()`` performs the same graceful drain as SIGTERM.
    """

    def __init__(self, daemon: ServingDaemon):
        self.daemon = daemon
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._run, name="repro-serve", daemon=True
        )

    def _run(self) -> None:
        asyncio.set_event_loop(self._loop)
        self._loop.run_forever()
        self._loop.close()

    def start(self) -> Tuple[str, int]:
        self._thread.start()
        self.call(self.daemon.start())
        assert self.daemon.host is not None and self.daemon.port is not None
        return self.daemon.host, self.daemon.port

    def call(self, coroutine, timeout: float = 120.0):
        """Run a coroutine on the daemon's loop; return its result."""
        return asyncio.run_coroutine_threadsafe(
            coroutine, self._loop
        ).result(timeout=timeout)

    def stop(self) -> None:
        if self._thread.is_alive():
            self.call(self.daemon.stop())
            self._loop.call_soon_threadsafe(self._loop.stop)
            self._thread.join(timeout=30)

    def __enter__(self) -> Tuple[str, int]:
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
