"""Dynamic request batching: coalesce concurrent requests, bit-exactly.

The serving daemon's throughput comes from the same place the offline
pipeline's does — batched compile/featurize/predict sweeps.  But a
network front end receives many concurrent *small* requests, so someone
has to rebuild the batches.  :class:`DynamicBatcher` is that someone:

* Requests enqueue into **lanes** keyed by an opaque, hashable key (the
  daemon uses ``(model, fingerprint, level, panel?)``) — only requests
  whose results are computed identically may share a batch.
* A lane dispatches when its queued weight (circuit count) reaches
  ``max_batch`` (**size trigger**) or when its oldest request has waited
  ``max_delay`` seconds (**deadline trigger**), whichever comes first.
  Either trigger produces the same responses — batch composition only
  affects latency, never values (see
  :meth:`~repro.predictor.service.FomService.predict_at`).
* The queue is **bounded**: once ``max_queue`` circuits are waiting,
  :meth:`submit` raises :class:`BacklogFull` and the daemon answers 503
  instead of accumulating unbounded latency.
* :meth:`close` is an orderly **drain**: new submissions are rejected
  (:class:`BatcherClosed`), every already-queued request still runs and
  resolves its future exactly once, then the dispatch loop exits.

Batches execute one at a time in a worker thread
(:func:`asyncio.to_thread`), so the event loop stays responsive while
the CPU-bound pipeline runs; the runner itself may fan out further
(``max_workers`` inside :class:`~repro.predictor.service.FomService`).
"""

from __future__ import annotations

import asyncio
from collections import OrderedDict, deque
from typing import (
    Any,
    Callable,
    Deque,
    Dict,
    Hashable,
    List,
    NamedTuple,
    Optional,
    Tuple,
)

__all__ = ["BacklogFull", "BatcherClosed", "BatcherStats", "DynamicBatcher"]


class BacklogFull(RuntimeError):
    """The bounded queue is at capacity; the caller should shed load (503)."""


class BatcherClosed(RuntimeError):
    """The batcher is draining/closed and accepts no new work (503)."""


class _Request(NamedTuple):
    payload: Any
    weight: int
    future: "asyncio.Future[Any]"
    enqueued: float


class BatcherStats(NamedTuple):
    """A point-in-time snapshot of the batcher's counters."""

    queue_depth: int                  # circuits currently waiting
    requests_waiting: int             # requests currently waiting
    in_flight: int                    # circuits in the batch running now
    batches_total: int
    requests_total: int
    rejected_total: int               # BacklogFull + BatcherClosed rejections
    batch_size_histogram: Dict[int, int]   # batch weight -> count
    queue_wait_s_total: float         # summed enqueue->dispatch wait
    queue_wait_s_max: float
    stage_s: Dict[str, float]         # runner-reported per-stage seconds


class DynamicBatcher:
    """Size-/deadline-triggered coalescing over keyed lanes.

    Args:
        runner: ``runner(key, payloads, timings) -> results`` — called in
            a worker thread with every payload of one batch (all sharing
            ``key``); must return one result per payload, in order.  It
            may record per-stage seconds into the ``timings`` dict.
        max_batch: dispatch a lane once this many circuits are queued in
            it.  A single request larger than ``max_batch`` still
            dispatches (alone).
        max_delay: seconds the oldest queued request may wait before its
            lane dispatches regardless of size.
        max_queue: bound on the total circuits waiting across lanes.
    """

    def __init__(
        self,
        runner: Callable[[Hashable, List[Any], Dict[str, float]], List[Any]],
        *,
        max_batch: int = 64,
        max_delay: float = 0.010,
        max_queue: int = 1024,
    ):
        if max_batch < 1:
            raise ValueError("max_batch must be positive")
        if max_delay < 0:
            raise ValueError("max_delay must be non-negative")
        if max_queue < 1:
            raise ValueError("max_queue must be positive")
        self._runner = runner
        self.max_batch = max_batch
        self.max_delay = max_delay
        self.max_queue = max_queue
        self._lanes: "OrderedDict[Hashable, Deque[_Request]]" = OrderedDict()
        self._queued_weight = 0
        self._in_flight = 0
        self._closing = False
        self._wake: Optional[asyncio.Event] = None
        self._loop_task: Optional["asyncio.Task[None]"] = None
        # Counters (all mutated on the event loop only).
        self._batches_total = 0
        self._requests_total = 0
        self._rejected_total = 0
        self._batch_size_histogram: Dict[int, int] = {}
        self._queue_wait_s_total = 0.0
        self._queue_wait_s_max = 0.0
        self._stage_s: Dict[str, float] = {}

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    async def start(self) -> None:
        """Start the dispatch loop (idempotent)."""
        if self._loop_task is None:
            self._wake = asyncio.Event()
            self._loop_task = asyncio.get_running_loop().create_task(
                self._dispatch_loop()
            )

    async def close(self) -> None:
        """Drain: reject new work, run every queued batch, stop the loop.

        Every request queued before the call resolves exactly once (the
        deadline is waived — pending lanes dispatch immediately); no
        request is dropped or run twice.
        """
        self._closing = True
        if self._loop_task is not None:
            assert self._wake is not None
            self._wake.set()
            await self._loop_task
            self._loop_task = None

    @property
    def closing(self) -> bool:
        return self._closing

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------

    async def submit(self, key: Hashable, payload: Any, weight: int = 1) -> Any:
        """Enqueue one request and await its result.

        Raises :class:`BatcherClosed` when draining and
        :class:`BacklogFull` when ``max_queue`` circuits are already
        waiting.  If the awaiting task is cancelled (e.g. a per-request
        timeout), the batch still runs to completion — only the response
        is abandoned, never the ordering of everyone else's.
        """
        if weight < 1:
            raise ValueError("weight must be positive")
        if self._closing:
            self._rejected_total += 1
            raise BatcherClosed("batcher is draining; not accepting new work")
        if self._queued_weight + weight > self.max_queue:
            self._rejected_total += 1
            raise BacklogFull(
                f"queue at capacity ({self._queued_weight}/{self.max_queue} "
                f"circuits waiting)"
            )
        if self._loop_task is None:
            await self.start()
        loop = asyncio.get_running_loop()
        request = _Request(payload, weight, loop.create_future(), loop.time())
        self._lanes.setdefault(key, deque()).append(request)
        self._queued_weight += weight
        self._requests_total += 1
        assert self._wake is not None
        self._wake.set()
        return await request.future

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def snapshot(self) -> BatcherStats:
        """Current counters (the daemon's ``/stats`` feed)."""
        return BatcherStats(
            queue_depth=self._queued_weight,
            requests_waiting=sum(len(lane) for lane in self._lanes.values()),
            in_flight=self._in_flight,
            batches_total=self._batches_total,
            requests_total=self._requests_total,
            rejected_total=self._rejected_total,
            batch_size_histogram=dict(self._batch_size_histogram),
            queue_wait_s_total=self._queue_wait_s_total,
            queue_wait_s_max=self._queue_wait_s_max,
            stage_s=dict(self._stage_s),
        )

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------

    def _ripest_lane(self) -> Tuple[Hashable, float]:
        """The lane to dispatch next and its oldest enqueue time.

        Size-triggered lanes win immediately; otherwise the lane whose
        head request has waited longest.
        """
        best_key = None
        best_enqueued = float("inf")
        for key, lane in self._lanes.items():
            if sum(request.weight for request in lane) >= self.max_batch:
                return key, lane[0].enqueued
            if lane[0].enqueued < best_enqueued:
                best_key, best_enqueued = key, lane[0].enqueued
        return best_key, best_enqueued

    def _take_batch(self, key: Hashable) -> List[_Request]:
        """Pop whole requests from a lane head up to ``max_batch`` circuits."""
        lane = self._lanes[key]
        batch: List[_Request] = [lane.popleft()]
        taken = batch[0].weight
        while lane and taken + lane[0].weight <= self.max_batch:
            request = lane.popleft()
            batch.append(request)
            taken += request.weight
        if not lane:
            del self._lanes[key]
        self._queued_weight -= taken
        return batch

    async def _dispatch_loop(self) -> None:
        loop = asyncio.get_running_loop()
        assert self._wake is not None
        while True:
            if not self._lanes:
                if self._closing:
                    return
                self._wake.clear()
                # Re-check after clearing: a submit between the check and
                # the clear must not be lost.
                if not self._lanes and not self._closing:
                    await self._wake.wait()
                continue
            key, oldest = self._ripest_lane()
            lane_weight = sum(
                request.weight for request in self._lanes[key]
            )
            deadline = oldest + self.max_delay
            now = loop.time()
            if (
                lane_weight < self.max_batch
                and now < deadline
                and not self._closing
            ):
                # Wait for more work (or the deadline), then re-evaluate.
                self._wake.clear()
                try:
                    await asyncio.wait_for(
                        self._wake.wait(), timeout=deadline - now
                    )
                except asyncio.TimeoutError:
                    pass
                continue
            batch = self._take_batch(key)
            await self._run_batch(key, batch, dispatched_at=loop.time())

    async def _run_batch(
        self, key: Hashable, batch: List[_Request], dispatched_at: float
    ) -> None:
        weight = sum(request.weight for request in batch)
        self._in_flight = weight
        timings: Dict[str, float] = {}
        try:
            results = await asyncio.to_thread(
                self._runner, key, [request.payload for request in batch],
                timings,
            )
            if len(results) != len(batch):
                raise RuntimeError(
                    f"batch runner returned {len(results)} results "
                    f"for {len(batch)} requests"
                )
        except BaseException as exc:  # noqa: BLE001 - forwarded to callers
            for request in batch:
                if not request.future.done():
                    request.future.set_exception(exc)
        else:
            for request, result in zip(batch, results):
                if not request.future.done():
                    request.future.set_result(result)
        finally:
            self._in_flight = 0
            self._batches_total += 1
            self._batch_size_histogram[weight] = (
                self._batch_size_histogram.get(weight, 0) + 1
            )
            for request in batch:
                wait = dispatched_at - request.enqueued
                self._queue_wait_s_total += wait
                self._queue_wait_s_max = max(self._queue_wait_s_max, wait)
            for stage, seconds in timings.items():
                self._stage_s[stage] = self._stage_s.get(stage, 0.0) + seconds
