"""The daemon's model registry: (device, estimator) pairs, loaded once.

A serving process must not pay model-deserialization or device-building
costs per request.  :class:`ModelRegistry` front-loads all of it: each
:class:`ModelEntry` owns a fully-booted
:class:`~repro.predictor.service.FomService` (estimator + resolved
device), addressed by a human-readable ``name`` and a content
``fingerprint``.

Two loaders cover the repo's two artifact shapes:

* :meth:`ModelRegistry.add_model_file` — a ``save_model`` ``.npz`` path.
  The fingerprint is the SHA-256 of the file bytes (first 12 hex chars),
  so two registries booted from the same file agree on the address.
* :meth:`ModelRegistry.add_store` — every estimator artifact in an
  :class:`~repro.evaluation.artifacts.ArtifactStore` (optionally
  filtered by name/fingerprint), reusing the store's own fingerprints.

Lookup (:meth:`resolve`) mirrors ``FomService.from_store``: ``None``
filters match everything, and ambiguity is an error rather than a guess
— a daemon silently serving the wrong model helps nobody.

Entries are *versioned* (PR 9).  A fingerprint used to be computed once
at registration, so an ``.npz`` overwritten by a retrain kept serving
the old model under the old address forever.  :meth:`refresh` closes the
loop: a cheap ``(size, mtime_ns)`` guard, then a rehash, then — on a
content change — the model is reloaded from its remembered source and
registered as a *new version* of the same name.  Superseded entries are
retained, so in-flight batches pinned to the old fingerprint still
resolve and finish on the old model; unpinned lookups prefer the highest
version.  The swap is an atomic dict rebind, safe against concurrent
readers on the daemon's event loop.
"""

from __future__ import annotations

import hashlib
import os
from pathlib import Path
from typing import Dict, List, NamedTuple, Optional, Tuple

from ..predictor.service import FomService

__all__ = ["ModelEntry", "ModelRegistry", "ModelSource"]


def _file_fingerprint(path: Path) -> str:
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        for block in iter(lambda: handle.read(1 << 20), b""):
            digest.update(block)
    return digest.hexdigest()[:12]


def _file_stat(path: Path) -> "Tuple[int, int]":
    st = os.stat(path)
    return (st.st_size, st.st_mtime_ns)


class ModelSource(NamedTuple):
    """Where an entry came from — enough to reload it bit-identically.

    ``stat`` is the ``(size, mtime_ns)`` of the model file when its
    fingerprint was computed: the cheap staleness guard that gates the
    rehash.  Store-backed entries carry the add-time name/fingerprint
    filters instead, so :meth:`ModelRegistry.refresh` can rescan for
    newer checkpoints.
    """

    kind: str  # "file" | "store"
    path: Path  # model file, or the store root
    device: object
    service_kwargs: dict
    stat: Optional[Tuple[int, int]] = None
    name_filter: Optional[str] = None
    fingerprint_filter: Optional[str] = None


class ModelEntry(NamedTuple):
    """One registered model: its address plus the booted service."""

    name: str
    fingerprint: str
    service: FomService
    version: int = 1
    source: Optional[ModelSource] = None

    @property
    def key(self) -> "tuple[str, str]":
        return (self.name, self.fingerprint)

    def describe(self) -> Dict[str, str]:
        """The JSON-facing summary (``/healthz``, ``repro client``)."""
        return {
            "name": self.name,
            "fingerprint": self.fingerprint,
            "version": str(self.version),
            "device": self.service.device.name,
            "optimization_level": str(self.service.optimization_level),
        }


class ModelRegistry:
    """An ordered set of :class:`ModelEntry`, unique per (name, fingerprint)."""

    def __init__(self):
        self._entries: "Dict[tuple[str, str], ModelEntry]" = {}
        #: completed :meth:`refresh` passes and entries swapped in by them.
        self.refreshes = 0
        self.swaps = 0

    def __len__(self) -> int:
        return len(self._entries)

    def entries(self) -> List[ModelEntry]:
        return list(self._entries.values())

    def serving_entries(self) -> List[ModelEntry]:
        """The entries unpinned requests can land on: per name, the
        highest-version entries (ties included)."""
        by_name: Dict[str, List[ModelEntry]] = {}
        for entry in self._entries.values():
            by_name.setdefault(entry.name, []).append(entry)
        current = []
        for group in by_name.values():
            top = max(entry.version for entry in group)
            current.extend(e for e in group if e.version == top)
        return current

    def _add(self, entry: ModelEntry) -> ModelEntry:
        if entry.key in self._entries:
            raise ValueError(
                f"model {entry.key} is already registered"
            )
        self._entries[entry.key] = entry
        return entry

    def _next_version(self, name: str) -> int:
        versions = [
            entry.version
            for entry in self._entries.values()
            if entry.name == name
        ]
        return max(versions, default=0) + 1

    # ------------------------------------------------------------------
    # Loaders
    # ------------------------------------------------------------------

    def add_model_file(
        self,
        path: "str | Path",
        device,
        *,
        name: Optional[str] = None,
        **service_kwargs,
    ) -> ModelEntry:
        """Register a ``save_model`` ``.npz`` file (fingerprint = file hash).

        ``service_kwargs`` (``optimization_level``, ``seed``,
        ``num_trials``, ...) are forwarded to :class:`FomService`.
        """
        path = Path(path)
        if not path.is_file():
            raise ValueError(f"no model file at {path}")
        stat = _file_stat(path)
        service = FomService.load(path, device, **service_kwargs)
        source = ModelSource(
            "file", path, device, dict(service_kwargs), stat=stat
        )
        return self._add(
            ModelEntry(
                name or path.stem,
                _file_fingerprint(path),
                service,
                source=source,
            )
        )

    def add_store(
        self,
        store,
        device,
        *,
        name: Optional[str] = None,
        fingerprint: Optional[str] = None,
        **service_kwargs,
    ) -> List[ModelEntry]:
        """Register every matching estimator artifact in a store.

        ``store`` is an :class:`~repro.evaluation.artifacts.ArtifactStore`
        or a cache-directory path; ``name``/``fingerprint`` narrow which
        artifacts load (``None`` = all).  Registering zero models is an
        error — a daemon with an empty registry cannot serve anything.
        """
        from ..evaluation.artifacts import ArtifactStore

        store = ArtifactStore.coerce(store)
        refs = store.find("estimator", name=name, fingerprint=fingerprint)
        if not refs:
            raise ValueError(
                f"no estimator artifact matching name={name!r} "
                f"fingerprint={fingerprint!r} in {store.root}"
            )
        source = ModelSource(
            "store",
            store.root,
            device,
            dict(service_kwargs),
            name_filter=name,
            fingerprint_filter=fingerprint,
        )
        loaded = []
        for ref in refs:
            estimator = store.get("estimator", ref.name, ref.fingerprint)
            if estimator is None:
                raise ValueError(
                    f"estimator artifact {(ref.name, ref.fingerprint)} in "
                    f"{store.root} is corrupted or of the wrong kind"
                )
            loaded.append(
                self._add(
                    ModelEntry(
                        ref.name,
                        ref.fingerprint,
                        FomService(estimator, device, **service_kwargs),
                        source=source,
                    )
                )
            )
        return loaded

    # ------------------------------------------------------------------
    # Refresh (hot reload)
    # ------------------------------------------------------------------

    def _refreshable(self) -> List[ModelEntry]:
        """Per source, the latest-version entry — the one a refresh of
        changed content supersedes."""
        by_name: Dict[str, ModelEntry] = {}
        for entry in self._entries.values():
            if entry.source is None:
                continue
            kept = by_name.get(entry.name)
            if kept is None or entry.version > kept.version:
                by_name[entry.name] = entry
        return list(by_name.values())

    def maybe_stale(self) -> bool:
        """Cheap staleness probe, no hashing or loading.

        File-backed entries compare ``(size, mtime_ns)`` against the
        stat recorded when their fingerprint was computed; store-backed
        entries scan the store directory for unseen checkpoints.  A
        ``True`` answer means :meth:`refresh` has real work to check.
        """
        for entry in self._refreshable():
            source = entry.source
            if source.kind == "file":
                try:
                    if _file_stat(source.path) != source.stat:
                        return True
                except OSError:
                    continue
            elif source.kind == "store":
                for ref in self._store_refs(source):
                    if (ref.name, ref.fingerprint) not in self._entries:
                        return True
        return False

    def _store_refs(self, source: ModelSource):
        from ..evaluation.artifacts import ArtifactStore

        store = ArtifactStore.coerce(source.path)
        refs = store.find(
            "estimator",
            name=source.name_filter,
            fingerprint=source.fingerprint_filter,
        )
        # Chronological: versions of newly-arrived checkpoints follow
        # file modification order, deterministically tie-broken.
        return sorted(
            refs, key=lambda r: (r.path.stat().st_mtime_ns, r.name, r.fingerprint)
        )

    def refresh(
        self, force: bool = False
    ) -> "List[tuple[Optional[ModelEntry], ModelEntry]]":
        """Re-check every refreshable source and hot-swap changed models.

        Returns ``(superseded, successor)`` pairs (``superseded`` is
        ``None`` for a brand-new store checkpoint under a new name).  Old
        entries stay registered so fingerprint-pinned requests — and
        batches already queued under the old key — still resolve; the
        installed mapping is replaced in one atomic rebind.  ``force``
        skips the ``(size, mtime_ns)`` guard and always rehashes.
        """
        changes: "Dict[tuple[str, str], ModelEntry]" = {}
        swapped: "List[tuple[Optional[ModelEntry], ModelEntry]]" = []
        seen_store_sources = set()

        for entry in self._refreshable():
            source = entry.source
            if source.kind == "file":
                try:
                    stat = _file_stat(source.path)
                except OSError:
                    continue  # file gone: keep serving what we loaded
                if not force and stat == source.stat:
                    continue
                fingerprint = _file_fingerprint(source.path)
                fresh_source = source._replace(stat=stat)
                if fingerprint == entry.fingerprint:
                    # Touched but unchanged (or a same-content rewrite):
                    # just remember the new stat.
                    changes[entry.key] = entry._replace(source=fresh_source)
                    continue
                version = self._next_version(entry.name)
                existing = self._entries.get((entry.name, fingerprint))
                if existing is not None:
                    # The file reverted to previously-served content:
                    # promote that entry instead of re-loading.
                    successor = existing._replace(
                        version=version, source=fresh_source
                    )
                else:
                    service = FomService.load(
                        source.path, source.device, **source.service_kwargs
                    )
                    successor = ModelEntry(
                        entry.name,
                        fingerprint,
                        service,
                        version=version,
                        source=fresh_source,
                    )
                changes[successor.key] = successor
                swapped.append((entry, successor))
            elif source.kind == "store":
                ident = (
                    str(source.path),
                    source.name_filter,
                    source.fingerprint_filter,
                )
                if ident in seen_store_sources:
                    continue
                seen_store_sources.add(ident)
                from ..evaluation.artifacts import ArtifactStore

                store = ArtifactStore.coerce(source.path)
                for ref in self._store_refs(source):
                    key = (ref.name, ref.fingerprint)
                    if key in self._entries or key in changes:
                        continue
                    estimator = store.get("estimator", ref.name, ref.fingerprint)
                    if estimator is None:
                        continue  # corrupt newcomer: ignore, keep serving
                    versions = [
                        e.version
                        for e in list(self._entries.values()) + list(changes.values())
                        if e.name == ref.name
                    ]
                    successor = ModelEntry(
                        ref.name,
                        ref.fingerprint,
                        FomService(
                            estimator, source.device, **source.service_kwargs
                        ),
                        version=max(versions, default=0) + 1,
                        source=source,
                    )
                    changes[key] = successor
                    previous = next(
                        (
                            e
                            for e in self._refreshable()
                            if e.name == ref.name
                        ),
                        None,
                    )
                    swapped.append((previous, successor))

        if changes:
            entries = dict(self._entries)
            entries.update(changes)
            self._entries = entries  # atomic install
        self.refreshes += 1
        self.swaps += len(swapped)
        return swapped

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------

    def resolve(
        self,
        name: Optional[str] = None,
        fingerprint: Optional[str] = None,
    ) -> ModelEntry:
        """The unique entry matching the filters.

        ``None`` filters match everything, so a single-model registry
        resolves with no arguments.  Among same-name matches only the
        highest version survives (superseded entries stay addressable by
        explicit fingerprint); no match or more than one surviving match
        is a :class:`ValueError` (the daemon answers 400).
        """
        entries = self._entries  # snapshot: refresh() rebinds atomically
        matches = [
            entry
            for entry in entries.values()
            if (name is None or entry.name == name)
            and (fingerprint is None or entry.fingerprint == fingerprint)
        ]
        if not matches:
            raise ValueError(
                f"no registered model matching name={name!r} "
                f"fingerprint={fingerprint!r}; serving "
                f"{sorted(entry.key for entry in entries.values())}"
            )
        by_name: Dict[str, List[ModelEntry]] = {}
        for entry in matches:
            by_name.setdefault(entry.name, []).append(entry)
        survivors: List[ModelEntry] = []
        for group in by_name.values():
            top = max(entry.version for entry in group)
            survivors.extend(e for e in group if e.version == top)
        if len(survivors) > 1:
            raise ValueError(
                "ambiguous model reference: "
                f"{sorted(entry.key for entry in survivors)} all match "
                f"name={name!r} fingerprint={fingerprint!r}"
            )
        return survivors[0]
