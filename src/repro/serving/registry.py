"""The daemon's model registry: (device, estimator) pairs, loaded once.

A serving process must not pay model-deserialization or device-building
costs per request.  :class:`ModelRegistry` front-loads all of it: each
:class:`ModelEntry` owns a fully-booted
:class:`~repro.predictor.service.FomService` (estimator + resolved
device), addressed by a human-readable ``name`` and a content
``fingerprint``.

Two loaders cover the repo's two artifact shapes:

* :meth:`ModelRegistry.add_model_file` — a ``save_model`` ``.npz`` path.
  The fingerprint is the SHA-256 of the file bytes (first 12 hex chars),
  so two registries booted from the same file agree on the address.
* :meth:`ModelRegistry.add_store` — every estimator artifact in an
  :class:`~repro.evaluation.artifacts.ArtifactStore` (optionally
  filtered by name/fingerprint), reusing the store's own fingerprints.

Lookup (:meth:`resolve`) mirrors ``FomService.from_store``: ``None``
filters match everything, and ambiguity is an error rather than a guess
— a daemon silently serving the wrong model helps nobody.
"""

from __future__ import annotations

import hashlib
from pathlib import Path
from typing import Dict, List, NamedTuple, Optional

from ..predictor.service import FomService

__all__ = ["ModelEntry", "ModelRegistry"]


def _file_fingerprint(path: Path) -> str:
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        for block in iter(lambda: handle.read(1 << 20), b""):
            digest.update(block)
    return digest.hexdigest()[:12]


class ModelEntry(NamedTuple):
    """One registered model: its address plus the booted service."""

    name: str
    fingerprint: str
    service: FomService

    @property
    def key(self) -> "tuple[str, str]":
        return (self.name, self.fingerprint)

    def describe(self) -> Dict[str, str]:
        """The JSON-facing summary (``/healthz``, ``repro client``)."""
        return {
            "name": self.name,
            "fingerprint": self.fingerprint,
            "device": self.service.device.name,
            "optimization_level": str(self.service.optimization_level),
        }


class ModelRegistry:
    """An ordered set of :class:`ModelEntry`, unique per (name, fingerprint)."""

    def __init__(self):
        self._entries: "Dict[tuple[str, str], ModelEntry]" = {}

    def __len__(self) -> int:
        return len(self._entries)

    def entries(self) -> List[ModelEntry]:
        return list(self._entries.values())

    def _add(self, entry: ModelEntry) -> ModelEntry:
        if entry.key in self._entries:
            raise ValueError(
                f"model {entry.key} is already registered"
            )
        self._entries[entry.key] = entry
        return entry

    # ------------------------------------------------------------------
    # Loaders
    # ------------------------------------------------------------------

    def add_model_file(
        self,
        path: "str | Path",
        device,
        *,
        name: Optional[str] = None,
        **service_kwargs,
    ) -> ModelEntry:
        """Register a ``save_model`` ``.npz`` file (fingerprint = file hash).

        ``service_kwargs`` (``optimization_level``, ``seed``,
        ``num_trials``, ...) are forwarded to :class:`FomService`.
        """
        path = Path(path)
        if not path.is_file():
            raise ValueError(f"no model file at {path}")
        service = FomService.load(path, device, **service_kwargs)
        return self._add(
            ModelEntry(name or path.stem, _file_fingerprint(path), service)
        )

    def add_store(
        self,
        store,
        device,
        *,
        name: Optional[str] = None,
        fingerprint: Optional[str] = None,
        **service_kwargs,
    ) -> List[ModelEntry]:
        """Register every matching estimator artifact in a store.

        ``store`` is an :class:`~repro.evaluation.artifacts.ArtifactStore`
        or a cache-directory path; ``name``/``fingerprint`` narrow which
        artifacts load (``None`` = all).  Registering zero models is an
        error — a daemon with an empty registry cannot serve anything.
        """
        from ..evaluation.artifacts import ArtifactStore

        store = ArtifactStore.coerce(store)
        refs = store.find("estimator", name=name, fingerprint=fingerprint)
        if not refs:
            raise ValueError(
                f"no estimator artifact matching name={name!r} "
                f"fingerprint={fingerprint!r} in {store.root}"
            )
        loaded = []
        for ref in refs:
            estimator = store.get("estimator", ref.name, ref.fingerprint)
            if estimator is None:
                raise ValueError(
                    f"estimator artifact {(ref.name, ref.fingerprint)} in "
                    f"{store.root} is corrupted or of the wrong kind"
                )
            loaded.append(
                self._add(
                    ModelEntry(
                        ref.name,
                        ref.fingerprint,
                        FomService(estimator, device, **service_kwargs),
                    )
                )
            )
        return loaded

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------

    def resolve(
        self,
        name: Optional[str] = None,
        fingerprint: Optional[str] = None,
    ) -> ModelEntry:
        """The unique entry matching the filters.

        ``None`` filters match everything, so a single-model registry
        resolves with no arguments.  No match or more than one match is
        a :class:`ValueError` (the daemon answers 400).
        """
        matches = [
            entry
            for entry in self._entries.values()
            if (name is None or entry.name == name)
            and (fingerprint is None or entry.fingerprint == fingerprint)
        ]
        if not matches:
            raise ValueError(
                f"no registered model matching name={name!r} "
                f"fingerprint={fingerprint!r}; serving "
                f"{sorted(entry.key for entry in self._entries.values())}"
            )
        if len(matches) > 1:
            raise ValueError(
                "ambiguous model reference: "
                f"{sorted(entry.key for entry in matches)} all match "
                f"name={name!r} fingerprint={fingerprint!r}"
            )
        return matches[0]
