"""The long-lived serving stack: registry, dynamic batcher, daemon, client.

:class:`~repro.predictor.service.FomService` batches one caller's
iterable; production traffic is many concurrent small requests.  This
package puts a network front end on that machinery:

* :mod:`repro.serving.registry` — :class:`ModelRegistry`, the daemon's
  set of (device, estimator) pairs, loaded **once** from model files or
  an :class:`~repro.evaluation.artifacts.ArtifactStore` and addressed by
  name and/or fingerprint.
* :mod:`repro.serving.batcher` — :class:`DynamicBatcher`, which
  coalesces concurrent requests into size- or deadline-triggered batches
  with a bounded queue (backpressure) and an orderly drain.
* :mod:`repro.serving.server` — :class:`ServingDaemon`, a stdlib-only
  asyncio HTTP daemon exposing ``/predict``, ``/foms``, ``/healthz``,
  and ``/stats``, with per-request timeouts, chunked streaming
  responses, and graceful SIGTERM shutdown.
* :mod:`repro.serving.shards` — multi-process serving:
  :class:`RegistrySpec` (a picklable registry description) plus the
  spawn-worker pool the daemon dispatches to when ``shards > 1`` —
  one registry + batcher + GIL per worker, consistent-hash routing,
  merged stats, broadcast reload, crash respawn.
* :mod:`repro.serving.client` — :class:`ServingClient`, the matching
  stdlib HTTP client (also the ``python -m repro client`` backend),
  including incremental chunked-stream decoding
  (:meth:`~repro.serving.client.ServingClient.predict_stream`).

Coalescing is *bit-exact*: a request's circuits keep the compile seeds
of their positions within that request (via
:meth:`~repro.predictor.service.FomService.predict_at`), so a response
is identical whether the request shared a dynamic batch with a thousand
others or was served alone — and, by relay, whether the daemon runs
in-process or sharded across worker processes.
"""

from .batcher import BacklogFull, BatcherClosed, DynamicBatcher
from .client import (
    PredictionStream,
    ServingClient,
    ServingError,
    StreamInterrupted,
)
from .registry import ModelEntry, ModelRegistry
from .server import ServerConfig, ServingDaemon
from .shards import RegistrySpec, resolve_shards, shard_for

__all__ = [
    "BacklogFull",
    "BatcherClosed",
    "DynamicBatcher",
    "ModelEntry",
    "ModelRegistry",
    "PredictionStream",
    "RegistrySpec",
    "ServerConfig",
    "ServingClient",
    "ServingDaemon",
    "ServingError",
    "StreamInterrupted",
    "resolve_shards",
    "shard_for",
]
