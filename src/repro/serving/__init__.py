"""The long-lived serving stack: registry, dynamic batcher, daemon, client.

:class:`~repro.predictor.service.FomService` batches one caller's
iterable; production traffic is many concurrent small requests.  This
package puts a network front end on that machinery:

* :mod:`repro.serving.registry` — :class:`ModelRegistry`, the daemon's
  set of (device, estimator) pairs, loaded **once** from model files or
  an :class:`~repro.evaluation.artifacts.ArtifactStore` and addressed by
  name and/or fingerprint.
* :mod:`repro.serving.batcher` — :class:`DynamicBatcher`, which
  coalesces concurrent requests into size- or deadline-triggered batches
  with a bounded queue (backpressure) and an orderly drain.
* :mod:`repro.serving.server` — :class:`ServingDaemon`, a stdlib-only
  asyncio HTTP daemon exposing ``/predict``, ``/foms``, ``/healthz``,
  and ``/stats``, with per-request timeouts and graceful SIGTERM
  shutdown.
* :mod:`repro.serving.client` — :class:`ServingClient`, the matching
  stdlib HTTP client (also the ``python -m repro client`` backend).

Coalescing is *bit-exact*: a request's circuits keep the compile seeds
of their positions within that request (via
:meth:`~repro.predictor.service.FomService.predict_at`), so a response
is identical whether the request shared a dynamic batch with a thousand
others or was served alone.
"""

from .batcher import BacklogFull, BatcherClosed, DynamicBatcher
from .client import ServingClient, ServingError
from .registry import ModelEntry, ModelRegistry
from .server import ServerConfig, ServingDaemon

__all__ = [
    "BacklogFull",
    "BatcherClosed",
    "DynamicBatcher",
    "ModelEntry",
    "ModelRegistry",
    "ServerConfig",
    "ServingClient",
    "ServingDaemon",
    "ServingError",
]
