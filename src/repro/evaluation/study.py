"""The correlation study (Section V): Table I and the improvement numbers.

Pipeline per device:

1. build the benchmark suite (2-20 qubits, all families),
2. compile every circuit at optimization level 3,
3. drop circuits with compiled depth >= 1000,
4. execute on the device emulator, label with the Hellinger distance,
5. correlate each established figure of merit with the labels (Table I
   rows 1-4),
6. train the proposed estimator (80/20 split, 3-fold CV, grid search) and
   score it on the held-out test set (Table I row 5),
7. aggregate "Combined" columns over both devices and the paper's
   improvement percentages.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..bench.suite import DEPTH_LIMIT, build_suite
from ..fom.metrics import FOM_ORDER, PROPOSED_LABEL
from ..hardware.device import Device
from ..hardware.iqm import make_q20_pair
from ..ml.metrics import pearson_r
from ..predictor.dataset import CircuitDataset, build_dataset
from ..predictor.estimator import (
    EstimatorReport,
    HellingerEstimator,
    train_and_evaluate,
    train_and_evaluate_model,
)
from .artifacts import ArtifactStore
from .persistence import config_fingerprint, device_fingerprint



@dataclass
class StudyConfig:
    """Knobs of the correlation study (defaults reproduce the paper setup)."""

    algorithms: Optional[Sequence[str]] = None
    min_qubits: int = 2
    max_qubits: int = 20
    qubit_step: int = 1
    #: 0-3 for the fixed pipelines, or ``"search"`` for the
    #: predictor-guided compiler (requires ``search_estimator``).
    optimization_level: "int | str" = 3
    #: Cost model for ``optimization_level="search"``: an estimator with
    #: a ``predict`` method (typically a trained
    #: :class:`~repro.predictor.estimator.HellingerEstimator`).
    search_estimator: Optional[object] = None
    #: Extra keyword arguments for
    #: :func:`~repro.compiler.search.compile_search` (``beam_width``,
    #: ``generations``, ``store``, ...) when the level is ``"search"``.
    search_opts: Optional[Dict] = None
    shots: int = 2000
    seed: int = 0
    depth_limit: int = DEPTH_LIMIT
    test_size: float = 0.2
    n_splits: int = 3
    param_grid: Optional[Dict[str, Sequence]] = None
    progress: bool = False
    #: Worker-pool size for batched compile/simulate/execute stages and
    #: the grid-search/forest training tasks (``None``: one per CPU).
    max_workers: Optional[int] = None
    #: Execution mode for the GIL-bound pooled stages (compile, grid
    #: search, forest fit): ``"process"``/``"thread"``; ``None`` defers to
    #: the ``REPRO_WORKERS_MODE`` environment override, else process.
    workers_mode: Optional[str] = None
    #: Directory for stage caches: when set, per-device datasets (the
    #: compile/simulate/execute product) and trained-estimator reports
    #: are stored there and reused on reruns whose inputs are unchanged,
    #: making ``run_study`` (and ``reproduce_table1.py``) resumable.
    cache_dir: Optional[str] = None

    def dataset_fingerprint(self, device) -> str:
        """Hash of every input that influences a device's labelled dataset.

        ``device`` is normally a :class:`~repro.hardware.device.Device`,
        keyed by its full content (topology, calibrations, noise) so an
        in-place edit of error rates invalidates the cache even under the
        same name.  A plain string is accepted for key-stability checks
        but then covers the name only.
        """
        key = device if isinstance(device, str) else device_fingerprint(device)
        payload = {
            "device": key,
            "algorithms": list(self.algorithms) if self.algorithms else None,
            "min_qubits": self.min_qubits,
            "max_qubits": self.max_qubits,
            "qubit_step": self.qubit_step,
            "optimization_level": self.optimization_level,
            "shots": self.shots,
            "seed": self.seed,
            "depth_limit": self.depth_limit,
        }
        if self.optimization_level == "search":
            # The search key only exists when search is active, so every
            # pre-existing level-0..3 fingerprint stays byte-stable.
            from ..compiler.search import model_fingerprint

            payload["search"] = {
                "estimator": (
                    model_fingerprint(self.search_estimator)
                    if self.search_estimator is not None else None
                ),
                "opts": {
                    knob: value
                    for knob, value in sorted((self.search_opts or {}).items())
                    if isinstance(value, (int, float, str, bool, type(None)))
                },
            }
        return config_fingerprint(payload)

    def report_fingerprint(self, device) -> str:
        """Hash of the dataset inputs plus every training knob."""
        return config_fingerprint({
            "dataset": self.dataset_fingerprint(device),
            "test_size": self.test_size,
            "n_splits": self.n_splits,
            "param_grid": self.param_grid,
        })


@dataclass
class StudyResult:
    """All numbers behind Table I and Fig. 3."""

    device_names: List[str]
    correlations: Dict[str, Dict[str, float]]
    reports: Dict[str, EstimatorReport]
    datasets: Dict[str, CircuitDataset]
    improvements: Dict[str, float] = field(default_factory=dict)

    def table_rows(self) -> List[Tuple[str, List[float]]]:
        """Rows of Table I: (figure of merit, [Q20-A, Q20-B, Combined])."""
        columns = self.device_names + ["Combined"]
        rows = []
        for fom in FOM_ORDER + [PROPOSED_LABEL]:
            rows.append(
                (fom, [self.correlations[fom][col] for col in columns])
            )
        return rows


def run_study(
    devices: Optional[Sequence[Device]] = None,
    config: Optional[StudyConfig] = None,
    cache_dir: Optional[str] = None,
) -> StudyResult:
    """Run the full correlation study on the given devices.

    Defaults to the paper's two QPUs (Q20-A, Q20-B) and the paper's
    configuration; a reduced :class:`StudyConfig` gives quick smoke runs.

    With ``cache_dir`` (argument or ``config.cache_dir``), the expensive
    stages are checkpointed per device through an
    :class:`~repro.evaluation.artifacts.ArtifactStore`: the labelled
    dataset (compile + simulate + execute) and the trained-estimator
    report are stored keyed by a fingerprint of their inputs, and reruns
    with unchanged inputs skip those stages.  Stale or corrupted cache
    entries are treated as misses and rebuilt.
    """
    config = config or StudyConfig()
    store = ArtifactStore.coerce(cache_dir or config.cache_dir)
    if devices is None:
        devices = list(make_q20_pair())

    datasets = build_device_datasets(devices, config, store)

    correlations: Dict[str, Dict[str, float]] = {
        fom: {} for fom in FOM_ORDER + [PROPOSED_LABEL]
    }

    # Established figures of merit: per device and combined (all executions).
    for fom in FOM_ORDER:
        combined_vals: List[np.ndarray] = []
        combined_labels: List[np.ndarray] = []
        for device in devices:
            data = datasets[device.name]
            values = data.fom_column(fom)
            labels = data.y
            correlations[fom][device.name] = abs(pearson_r(values, labels))
            combined_vals.append(values)
            combined_labels.append(labels)
        correlations[fom]["Combined"] = abs(
            pearson_r(
                np.concatenate(combined_vals), np.concatenate(combined_labels)
            )
        )

    # Proposed approach: one model per device, scored on unseen test sets.
    reports: Dict[str, EstimatorReport] = {}
    all_test_y: List[np.ndarray] = []
    all_test_pred: List[np.ndarray] = []
    for device in devices:
        data = datasets[device.name]

        def train(data=data, device=device):
            return train_and_evaluate(
                data.X, data.y,
                device_name=device.name,
                test_size=config.test_size,
                n_splits=config.n_splits,
                seed=config.seed,
                param_grid=config.param_grid,
                max_workers=config.max_workers,
                workers_mode=config.workers_mode,
            )

        def announce_hit(device=device):
            if config.progress:
                print(f"[{device.name}] estimator loaded from cache", flush=True)

        if store is not None:
            report = store.fetch(
                "report", device.name, config.report_fingerprint(device),
                train, on_hit=announce_hit,
            )
        else:
            report = train()
        reports[device.name] = report
        correlations[PROPOSED_LABEL][device.name] = abs(report.test_pearson)
        all_test_y.append(report.y_test)
        all_test_pred.append(report.y_test_pred)
    correlations[PROPOSED_LABEL]["Combined"] = abs(
        pearson_r(np.concatenate(all_test_y), np.concatenate(all_test_pred))
    )

    result = StudyResult(
        device_names=[device.name for device in devices],
        correlations=correlations,
        reports=reports,
        datasets=datasets,
    )
    result.improvements = compute_improvements(result)
    return result


def build_device_datasets(
    devices: Sequence[Device],
    config: StudyConfig,
    cache: "ArtifactStore | str | Path | None" = None,
) -> Dict[str, CircuitDataset]:
    """Labelled datasets for every device, cache-aware and width-capped.

    The shared compile/execute/label stage of :func:`run_study` and
    :func:`run_cross_device_study`.  Each device's suite is capped at the
    device width (``min(config.max_qubits, device.num_qubits)``) so small
    zoo devices get the widest suite they can hold; the noiseless
    reference distributions are shared across all devices through one
    ``ideal_cache``.  ``cache`` — an
    :class:`~repro.evaluation.artifacts.ArtifactStore` or a directory
    path — checkpoints per-device datasets keyed by their input
    fingerprints.
    """
    store = ArtifactStore.coerce(cache)
    datasets: Dict[str, CircuitDataset] = {}
    missing: List[Device] = []
    for device in devices:
        if store is not None:
            cached = store.get(
                "dataset", device.name, config.dataset_fingerprint(device)
            )
            if cached is not None:
                datasets[device.name] = cached
                if config.progress:
                    print(f"[{device.name}] dataset loaded from cache", flush=True)
                continue
        missing.append(device)

    if missing:
        suites: Dict[int, List] = {}
        ideal_cache: Dict[str, Dict[str, float]] = {}
        for device in missing:
            width = min(config.max_qubits, device.num_qubits)
            if width < config.min_qubits:
                raise ValueError(
                    f"device {device.name} has {device.num_qubits} qubits, "
                    f"below the study's min_qubits={config.min_qubits}"
                )
            if width not in suites:
                suites[width] = build_suite(
                    algorithms=config.algorithms,
                    min_qubits=config.min_qubits,
                    max_qubits=width,
                    step=config.qubit_step,
                )
            datasets[device.name] = build_dataset(
                suites[width], device,
                optimization_level=config.optimization_level,
                shots=config.shots,
                seed=config.seed,
                depth_limit=config.depth_limit,
                ideal_cache=ideal_cache,
                progress=config.progress,
                max_workers=config.max_workers,
                workers_mode=config.workers_mode,
                estimator=config.search_estimator,
                search_opts=config.search_opts,
            )
            if store is not None:
                store.put(
                    "dataset", datasets[device.name], device.name,
                    config.dataset_fingerprint(device),
                )
    return datasets


@dataclass
class CrossDeviceResult:
    """Outcome of a transfer study: train on one device, score on others.

    ``correlations`` has one column per device (train first): the four
    established figures of merit plus the proposed estimator.  The
    proposed row is apples-to-apples across columns — one model, fitted
    on the train device's 80/20 *training split*, scored everywhere on
    the **held-out programs only**: the train column is the in-domain
    test score of Table I's protocol, and each evaluation column scores
    the same model on the foreign device's rows for those same held-out
    programs — so a transfer gap isolates the hardware change (new
    topology, new calibration) from program memorization.  (The suite
    *programs* are shared across devices by design; their compiled
    features and Hellinger labels are device-specific.)  If a foreign
    device's depth filter leaves fewer than two held-out programs, that
    column falls back to the device's full dataset (see
    ``transfer_support``).

    ``transfer_support`` records how many circuits each proposed-row
    column was scored on; ``transfer_fallback`` names the devices whose
    column used the full-dataset fallback.
    """

    train_device: str
    eval_device_names: List[str]
    correlations: Dict[str, Dict[str, float]]
    report: EstimatorReport
    estimator: HellingerEstimator
    datasets: Dict[str, CircuitDataset]
    transfer_support: Dict[str, int] = field(default_factory=dict)
    transfer_fallback: List[str] = field(default_factory=list)

    @property
    def device_names(self) -> List[str]:
        return [self.train_device] + list(self.eval_device_names)

    def table_rows(self) -> List[Tuple[str, List[float]]]:
        """Rows (fom, [train, eval...]) in Table-I order."""
        return [
            (fom, [self.correlations[fom][name] for name in self.device_names])
            for fom in FOM_ORDER + [PROPOSED_LABEL]
        ]

    def transfer_gap(self, device_name: str) -> float:
        """In-domain minus transfer correlation of the proposed estimator."""
        proposed = self.correlations[PROPOSED_LABEL]
        return proposed[self.train_device] - proposed[device_name]


def run_cross_device_study(
    train_device: Device,
    eval_devices: Sequence[Device],
    config: Optional[StudyConfig] = None,
    cache_dir: Optional[str] = None,
) -> CrossDeviceResult:
    """Train the Hellinger estimator on one device, score transfer on others.

    The generalization experiment the two-QPU case study cannot run:
    every evaluation device (typically drawn from the device zoo, see
    :mod:`repro.hardware.zoo`) gets its own compiled/executed/labelled
    dataset, one estimator is fitted on the train device's 80/20
    training split, and every proposed-row column scores that model on
    the held-out programs — in-domain on the train device, and on
    foreign compiled/executed versions of those same programs for each
    evaluation device (see :class:`CrossDeviceResult` for the exact
    semantics).

    Stage caches (``cache_dir`` or ``config.cache_dir``) are shared with
    :func:`run_study`: per-device datasets, the train device's 80/20
    report, and the train-split estimator are all checkpointed and
    reused when their input fingerprints are unchanged.
    """
    config = config or StudyConfig()
    store = ArtifactStore.coerce(cache_dir or config.cache_dir)
    eval_devices = list(eval_devices)
    if not eval_devices:
        raise ValueError("run_cross_device_study needs at least one eval device")
    names = [train_device.name] + [device.name for device in eval_devices]
    if len(set(names)) != len(names):
        raise ValueError(f"duplicate device names in cross-device study: {names}")

    devices = [train_device] + eval_devices
    datasets = build_device_datasets(devices, config, store)
    train_data = datasets[train_device.name]

    # In-domain protocol (80/20 + CV grid search) on the train device.
    # The report and the transfer model are ONE fit: the estimator that
    # produced the report's held-out score is the estimator scored on
    # foreign devices, so the columns differ only in the hardware.  Both
    # halves are cached; a miss on either recomputes the (deterministic)
    # pair so they can never drift apart.
    report = estimator = None
    if store is not None:
        fingerprint = config.report_fingerprint(train_device)
        report = store.get("report", train_device.name, fingerprint)
        estimator = store.get("estimator", train_device.name, fingerprint)
    if report is None or estimator is None:
        report, estimator = train_and_evaluate_model(
            train_data.X, train_data.y,
            device_name=train_device.name,
            test_size=config.test_size,
            n_splits=config.n_splits,
            seed=config.seed,
            param_grid=config.param_grid,
            max_workers=config.max_workers,
        )
        if store is not None:
            fingerprint = config.report_fingerprint(train_device)
            store.put("report", report, train_device.name, fingerprint)
            store.put("estimator", estimator, train_device.name, fingerprint)

    heldout_names = {
        train_data.entries[int(i)].name for i in report.test_indices
    }

    correlations: Dict[str, Dict[str, float]] = {
        fom: {} for fom in FOM_ORDER + [PROPOSED_LABEL]
    }
    for device in devices:
        data = datasets[device.name]
        for fom in FOM_ORDER:
            correlations[fom][device.name] = abs(
                pearson_r(data.fom_column(fom), data.y)
            )
    correlations[PROPOSED_LABEL][train_device.name] = abs(report.test_pearson)
    transfer_support = {train_device.name: len(heldout_names)}
    transfer_fallback: List[str] = []
    for device in eval_devices:
        data = datasets[device.name]
        rows = [
            index for index, entry in enumerate(data.entries)
            if entry.name in heldout_names
        ]
        if len(rows) < 2:
            # Foreign depth filter dropped (nearly) all held-out
            # programs: fall back to the full foreign dataset, and say so.
            rows = list(range(len(data)))
            transfer_fallback.append(device.name)
        transfer_support[device.name] = len(rows)
        correlations[PROPOSED_LABEL][device.name] = abs(
            pearson_r(data.y[rows], estimator.predict(data.X[rows]))
        )

    return CrossDeviceResult(
        train_device=train_device.name,
        eval_device_names=[device.name for device in eval_devices],
        correlations=correlations,
        report=report,
        estimator=estimator,
        datasets=datasets,
        transfer_support=transfer_support,
        transfer_fallback=transfer_fallback,
    )


def compute_improvements(result: StudyResult) -> Dict[str, float]:
    """The paper's improvement percentages.

    For each column, the proposed correlation relative to the *average* of
    the four established figures of merit: the paper reports +62% (Q20-A),
    +38% (Q20-B), and +49% (Combined, the headline number).
    """
    improvements: Dict[str, float] = {}
    for column in result.device_names + ["Combined"]:
        established = np.mean(
            [result.correlations[fom][column] for fom in FOM_ORDER]
        )
        proposed = result.correlations[PROPOSED_LABEL][column]
        improvements[column] = (
            (proposed / established - 1.0) * 100.0 if established > 0 else 0.0
        )
    return improvements
