"""ASCII rendering of the paper's Table I and Fig. 3."""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np

from ..fom.features import GROUP_ORDER
from .importance import grouped_importances
from .study import PROPOSED_LABEL, CrossDeviceResult, StudyResult


def format_table_i(result: StudyResult) -> str:
    """Render Table I: Pearson correlation with Hellinger distance."""
    columns = result.device_names + ["Combined"]
    header = f"{'Figure of merit / QPU':<24}" + "".join(
        f"{col:>10}" for col in columns
    )
    rule = "-" * len(header)
    lines = [
        "TABLE I: Pearson correlation with Hellinger distance",
        rule,
        header,
        rule,
    ]
    for fom, values in result.table_rows():
        row = f"{fom:<24}" + "".join(f"{value:>10.2f}" for value in values)
        if fom == PROPOSED_LABEL:
            lines.append(rule)
        lines.append(row)
    lines.append(rule)
    improvement = ", ".join(
        f"{col}: +{result.improvements[col]:.0f}%"
        for col in columns
    )
    lines.append(f"Improvement over mean of established FoMs -> {improvement}")
    lines.append(
        f"Circuits per device -> "
        + ", ".join(
            f"{name}: {len(result.datasets[name])}"
            for name in result.device_names
        )
    )
    return "\n".join(lines)


def format_transfer_table(result: CrossDeviceResult) -> str:
    """Render a cross-device study: one column per device, train first.

    The proposed row's train column is the in-domain held-out score; the
    evaluation columns score the train-device model on foreign devices
    (marked ``*``).  The footer summarizes the transfer gap per device.
    """
    columns = result.device_names
    labels = [result.train_device + " (train)"] + [
        name + " *" for name in result.eval_device_names
    ]
    name_width = max(24, max(len(label) for label in labels) + 2)
    header = f"{'Figure of merit / QPU':<24}" + "".join(
        f"{label:>{name_width}}" for label in labels
    )
    rule = "-" * len(header)
    lines = [
        "Cross-device transfer: Pearson correlation with Hellinger distance",
        rule,
        header,
        rule,
    ]
    for fom, values in result.table_rows():
        if fom == PROPOSED_LABEL:
            lines.append(rule)
        lines.append(
            f"{fom:<24}"
            + "".join(f"{value:>{name_width}.2f}" for value in values)
        )
    lines.append(rule)
    lines.append(
        "Transfer gap (in-domain minus transfer, proposed approach) -> "
        + ", ".join(
            f"{name}: {result.transfer_gap(name):+.2f}"
            for name in result.eval_device_names
        )
    )
    lines.append(
        "Circuits per device -> "
        + ", ".join(
            f"{name}: {len(result.datasets[name])}"
            for name in columns
        )
    )
    if result.transfer_support:
        fallback = set(result.transfer_fallback)
        lines.append(
            "Proposed row scored on held-out programs -> "
            + ", ".join(
                f"{name}: {result.transfer_support[name]}"
                + (" (FALLBACK: full dataset, incl. trained programs)"
                   if name in fallback else "")
                for name in columns
                if name in result.transfer_support
            )
        )
    return "\n".join(lines)


def format_fig3(per_device: Dict[str, np.ndarray], width: int = 40) -> str:
    """Render Fig. 3 as horizontal ASCII bars (one block per category)."""
    grouped = {
        device: grouped_importances(importances)
        for device, importances in per_device.items()
    }
    max_value = max(
        value for groups in grouped.values() for value in groups.values()
    )
    max_value = max(max_value, 1e-9)
    lines = ["Fig. 3: Random forest model feature importance", ""]
    for group in GROUP_ORDER:
        lines.append(group)
        for device in grouped:
            value = grouped[device][group]
            bar = "#" * max(1, int(round(width * value / max_value))) if value > 0 else ""
            lines.append(f"  {device:<8} |{bar:<{width}}| {value:.3f}")
    return "\n".join(lines)


def format_series(
    title: str,
    x_label: str,
    x_values: Sequence,
    series: Dict[str, Sequence[float]],
    precision: int = 3,
) -> str:
    """Render a generic figure as a column-aligned data table."""
    names = sorted(series)
    header = f"{x_label:<16}" + "".join(f"{name:>18}" for name in names)
    lines = [title, "-" * len(header), header, "-" * len(header)]
    for index, x in enumerate(x_values):
        row = f"{str(x):<16}"
        for name in names:
            row += f"{series[name][index]:>18.{precision}f}"
        lines.append(row)
    return "\n".join(lines)
