"""ASCII rendering of the paper's Table I and Fig. 3."""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np

from ..fom.features import GROUP_ORDER
from .importance import grouped_importances
from .study import PROPOSED_LABEL, StudyResult


def format_table_i(result: StudyResult) -> str:
    """Render Table I: Pearson correlation with Hellinger distance."""
    columns = result.device_names + ["Combined"]
    header = f"{'Figure of merit / QPU':<24}" + "".join(
        f"{col:>10}" for col in columns
    )
    rule = "-" * len(header)
    lines = [
        "TABLE I: Pearson correlation with Hellinger distance",
        rule,
        header,
        rule,
    ]
    for fom, values in result.table_rows():
        row = f"{fom:<24}" + "".join(f"{value:>10.2f}" for value in values)
        if fom == PROPOSED_LABEL:
            lines.append(rule)
        lines.append(row)
    lines.append(rule)
    improvement = ", ".join(
        f"{col}: +{result.improvements[col]:.0f}%"
        for col in columns
    )
    lines.append(f"Improvement over mean of established FoMs -> {improvement}")
    lines.append(
        f"Circuits per device -> "
        + ", ".join(
            f"{name}: {len(result.datasets[name])}"
            for name in result.device_names
        )
    )
    return "\n".join(lines)


def format_fig3(per_device: Dict[str, np.ndarray], width: int = 40) -> str:
    """Render Fig. 3 as horizontal ASCII bars (one block per category)."""
    grouped = {
        device: grouped_importances(importances)
        for device, importances in per_device.items()
    }
    max_value = max(
        value for groups in grouped.values() for value in groups.values()
    )
    max_value = max(max_value, 1e-9)
    lines = ["Fig. 3: Random forest model feature importance", ""]
    for group in GROUP_ORDER:
        lines.append(group)
        for device in grouped:
            value = grouped[device][group]
            bar = "#" * max(1, int(round(width * value / max_value))) if value > 0 else ""
            lines.append(f"  {device:<8} |{bar:<{width}}| {value:.3f}")
    return "\n".join(lines)


def format_series(
    title: str,
    x_label: str,
    x_values: Sequence,
    series: Dict[str, Sequence[float]],
    precision: int = 3,
) -> str:
    """Render a generic figure as a column-aligned data table."""
    names = sorted(series)
    header = f"{x_label:<16}" + "".join(f"{name:>18}" for name in names)
    lines = [title, "-" * len(header), header, "-" * len(header)]
    for index, x in enumerate(x_values):
        row = f"{str(x):<16}"
        for name in names:
            row += f"{series[name][index]:>18.{precision}f}"
        lines.append(row)
    return "\n".join(lines)
