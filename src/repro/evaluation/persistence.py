"""Persistence: study archives, trained models, and stage caches.

Three layers, all file-based and dependency-free:

* **Study archives** (JSON): the numbers behind Table I / Fig. 3
  (:func:`save_study` / :func:`load_study_data` / :func:`load_datasets`),
  unchanged from the original interface.
* **Models** (``.npz``): fitted trees, forests, and
  :class:`~repro.predictor.estimator.HellingerEstimator` instances are
  encoded as flat node arrays plus a JSON metadata blob
  (:func:`save_model` / :func:`load_model`).  A loaded model predicts
  bit-identically to the one that was saved.
* **Stage caches** (JSON): per-device labelled datasets and estimator
  reports keyed by a fingerprint of everything that influences them, so
  ``run_study(cache_dir=...)`` skips compile/execute/train stages whose
  inputs are unchanged (:func:`save_dataset_cache` & friends).  These
  are the serialization primitives; the pipelines reach them through the
  unified :class:`~repro.evaluation.artifacts.ArtifactStore`.

Corrupted or foreign files raise :class:`PersistenceError` from the model
loaders; the stage-cache readers raise it too, and ``run_study`` treats
that as a cache miss (a stale cache must never kill a long study).
"""

from __future__ import annotations

import dataclasses
import hashlib
import io
import json
import zipfile
from pathlib import Path
from typing import TYPE_CHECKING, Dict

import numpy as np

from ..ml.forest import RandomForestRegressor
from ..ml.tree import TREE_ARRAY_KEYS, DecisionTreeRegressor
from ..predictor.dataset import CircuitDataset, DatasetEntry
from ..predictor.estimator import EstimatorReport, HellingerEstimator

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (study imports us)
    from .study import StudyResult

#: Format tag + version embedded in every ``.npz`` model file.
MODEL_FORMAT = "repro-model"
MODEL_VERSION = 1


class PersistenceError(ValueError):
    """A model or cache file is missing, corrupted, or incompatible."""


# ----------------------------------------------------------------------
# Study archives (JSON) — original interface.


def study_to_dict(result: "StudyResult") -> Dict:
    """Serialize a study result into plain JSON-compatible data."""
    return {
        "device_names": list(result.device_names),
        "correlations": {
            fom: dict(columns) for fom, columns in result.correlations.items()
        },
        "improvements": dict(result.improvements),
        "reports": {
            name: {
                "test_pearson": report.test_pearson,
                "train_pearson": report.train_pearson,
                "cv_score": report.cv_score,
                "best_params": {
                    k: v for k, v in report.best_params.items()
                },
                "feature_importances": report.feature_importances.tolist(),
            }
            for name, report in result.reports.items()
        },
        "datasets": {
            name: [_entry_to_dict(entry) for entry in dataset.entries]
            for name, dataset in result.datasets.items()
        },
    }


def save_study(result: "StudyResult", path: str | Path) -> Path:
    """Write a study result to ``path`` as JSON; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(study_to_dict(result), indent=1))
    return path


def load_study_data(path: str | Path) -> Dict:
    """Load the raw dict written by :func:`save_study`."""
    return json.loads(Path(path).read_text())


def load_datasets(path: str | Path) -> Dict[str, CircuitDataset]:
    """Rebuild :class:`CircuitDataset` objects from a saved study.

    Compiled circuits are not persisted; entries carry ``compiled=None``.
    Everything needed to retrain/score models (features, labels, FoM
    columns) is restored.
    """
    data = load_study_data(path)
    datasets: Dict[str, CircuitDataset] = {}
    for name, entries in data["datasets"].items():
        dataset = CircuitDataset(device_name=name)
        for record in entries:
            dataset.entries.append(_entry_from_dict(record))
        datasets[name] = dataset
    return datasets


def _entry_to_dict(entry: DatasetEntry) -> Dict:
    return {
        "name": entry.name,
        "algorithm": entry.algorithm,
        "num_qubits": entry.num_qubits,
        "features": entry.features.tolist(),
        "label": entry.label,
        "fom_values": dict(entry.fom_values),
        "compiled_depth": entry.compiled_depth,
        "compiled_two_qubit_gates": entry.compiled_two_qubit_gates,
        "success_probability": entry.success_probability,
    }


def _entry_from_dict(record: Dict) -> DatasetEntry:
    return DatasetEntry(
        name=record["name"],
        algorithm=record["algorithm"],
        num_qubits=record["num_qubits"],
        features=np.array(record["features"], dtype=float),
        label=float(record["label"]),
        fom_values=dict(record["fom_values"]),
        compiled_depth=int(record["compiled_depth"]),
        compiled_two_qubit_gates=int(record["compiled_two_qubit_gates"]),
        success_probability=float(record["success_probability"]),
    )


# ----------------------------------------------------------------------
# Model persistence (.npz flat arrays + JSON metadata).


def _tree_payload(tree: DecisionTreeRegressor, prefix: str) -> Dict[str, np.ndarray]:
    arrays = tree.to_arrays()
    return {f"{prefix}{key}": value for key, value in arrays.items()}


def _tree_from_payload(
    data, prefix: str, params: dict, num_features: int
) -> DecisionTreeRegressor:
    try:
        arrays = {
            key: data[f"{prefix}{key}"]
            for key in (*TREE_ARRAY_KEYS, "importances")
        }
    except KeyError as exc:
        raise PersistenceError(f"model file is missing array {exc}") from exc
    try:
        return DecisionTreeRegressor.from_arrays(params, num_features, arrays)
    except ValueError as exc:
        raise PersistenceError(str(exc)) from exc


def _write_npz(path: Path, meta: Dict, arrays: Dict[str, np.ndarray]) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = {"meta": np.frombuffer(
        json.dumps(meta).encode("utf-8"), dtype=np.uint8
    )}
    payload.update(arrays)
    buffer = io.BytesIO()
    np.savez_compressed(buffer, **payload)
    path.write_bytes(buffer.getvalue())
    return path


def _read_npz(path: str | Path):
    path = Path(path)
    if not path.exists():
        raise PersistenceError(f"no model file at {path}")
    try:
        data = np.load(path, allow_pickle=False)
        meta = json.loads(bytes(data["meta"]).decode("utf-8"))
    except (
        ValueError, OSError, KeyError, EOFError,
        zipfile.BadZipFile, json.JSONDecodeError, UnicodeDecodeError,
    ) as exc:
        raise PersistenceError(f"{path} is not a repro model file: {exc}") from exc
    if meta.get("format") != MODEL_FORMAT:
        raise PersistenceError(f"{path} is not a repro model file")
    if meta.get("version") != MODEL_VERSION:
        raise PersistenceError(
            f"{path} has unsupported model version {meta.get('version')!r}"
        )
    return meta, data


def save_model(
    model: "DecisionTreeRegressor | RandomForestRegressor | HellingerEstimator",
    path: str | Path,
) -> Path:
    """Save a fitted tree, forest, or Hellinger estimator to ``path``.

    The file is a single ``.npz``: flat node arrays per tree plus one JSON
    metadata entry (kind, hyper-parameters, grid-search outcome for
    estimators).  Load with :func:`load_model`.
    """
    if isinstance(model, HellingerEstimator):
        if model.model is None:
            raise PersistenceError("cannot save an unfitted estimator")
        meta, arrays = _forest_content(model.model)
        meta["kind"] = "hellinger_estimator"
        meta["estimator"] = {
            "param_grid": model.param_grid,
            "n_splits": model.n_splits,
            "seed": model.seed,
            "best_params": model.best_params_,
            "cv_score": model.cv_score_,
        }
    elif isinstance(model, RandomForestRegressor):
        meta, arrays = _forest_content(model)
    elif isinstance(model, DecisionTreeRegressor):
        if model.feature_importances_ is None:
            raise PersistenceError("cannot save an unfitted tree")
        meta = {
            "kind": "tree",
            "params": model.get_params(),
            "num_features": model._num_features,
        }
        arrays = _tree_payload(model, "tree_")
    else:
        raise PersistenceError(
            f"cannot persist a {type(model).__name__}; expected a tree, "
            "forest, or HellingerEstimator"
        )
    meta["format"] = MODEL_FORMAT
    meta["version"] = MODEL_VERSION
    return _write_npz(Path(path), meta, arrays)


def _forest_content(forest: RandomForestRegressor):
    if not forest.estimators_:
        raise PersistenceError("cannot save an unfitted forest")
    meta = {
        "kind": "forest",
        "params": forest.get_params(),
        "num_features": forest.estimators_[0]._num_features,
        "num_trees": len(forest.estimators_),
        "tree_params": [t.get_params() for t in forest.estimators_],
    }
    arrays: Dict[str, np.ndarray] = {
        "forest_importances": forest.feature_importances_.copy()
    }
    for index, tree in enumerate(forest.estimators_):
        arrays.update(_tree_payload(tree, f"tree{index}_"))
    return meta, arrays


def load_model(path: str | Path):
    """Load a model written by :func:`save_model`.

    Returns the same kind of object that was saved; predictions and
    feature importances are bit-identical to the original.  Raises
    :class:`PersistenceError` on missing, corrupted, or foreign files.
    """
    meta, data = _read_npz(path)
    kind = meta.get("kind")
    if kind == "tree":
        return _tree_from_payload(
            data, "tree_", meta["params"], meta["num_features"]
        )
    if kind in ("forest", "hellinger_estimator"):
        forest = _load_forest(meta, data)
        if kind == "forest":
            return forest
        info = meta["estimator"]
        estimator = HellingerEstimator(
            param_grid=info["param_grid"],
            n_splits=info["n_splits"],
            seed=info["seed"],
        )
        estimator.model = forest
        estimator.best_params_ = dict(info["best_params"])
        estimator.cv_score_ = float(info["cv_score"])
        return estimator
    raise PersistenceError(f"unknown model kind {kind!r} in {path}")


def _load_forest(meta: Dict, data) -> RandomForestRegressor:
    try:
        forest = RandomForestRegressor(**meta["params"])
        num_trees = int(meta["num_trees"])
        tree_params = meta["tree_params"]
        num_features = int(meta["num_features"])
        importances = np.asarray(data["forest_importances"], dtype=float)
    except (KeyError, TypeError) as exc:
        raise PersistenceError(f"corrupted forest metadata: {exc}") from exc
    if len(tree_params) != num_trees:
        raise PersistenceError("corrupted forest metadata: tree count mismatch")
    forest.estimators_ = [
        _tree_from_payload(data, f"tree{i}_", tree_params[i], num_features)
        for i in range(num_trees)
    ]
    forest.feature_importances_ = importances
    return forest


# ----------------------------------------------------------------------
# Stage caches: fingerprints, datasets, estimator reports.


def config_fingerprint(payload: Dict) -> str:
    """Stable short hash of a JSON-serializable payload (cache keys)."""
    canonical = json.dumps(payload, sort_keys=True, default=str)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]


def device_fingerprint(device) -> str:
    """Content hash of everything a labelled dataset reads off a device.

    Covers the topology, native gate set, both calibration snapshots
    (compilation sees the *reported* one, execution the *true* one), and
    the noise-profile parameters — so a renamed-but-identical device hits
    the cache while an in-place edit of error rates misses it.  Stable
    across processes (pure content, no Python ``hash()``).
    """
    def calibration(cal) -> Dict:
        return {
            "one_qubit_fidelity": sorted(cal.one_qubit_fidelity.items()),
            "two_qubit_fidelity": sorted(
                (list(edge), value)
                for edge, value in cal.two_qubit_fidelity.items()
            ),
            "readout_fidelity": sorted(cal.readout_fidelity.items()),
            "t1": sorted(cal.t1.items()),
            "t2": sorted(cal.t2.items()),
            "durations": dataclasses.asdict(cal.durations),
        }

    return config_fingerprint({
        "name": device.name,
        "num_qubits": device.num_qubits,
        "edges": sorted(list(edge) for edge in device.coupling.edges),
        "native_gates": sorted(device.native_gates),
        "reported": calibration(device.reported_calibration),
        "true": calibration(device.true_calibration),
        "noise": dataclasses.asdict(device.noise),
    })


def save_dataset_cache(
    dataset: CircuitDataset, path: str | Path, fingerprint: str
) -> Path:
    """Write one device's labelled dataset as a cache entry."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps({
        "format": "repro-dataset-cache",
        "fingerprint": fingerprint,
        "device_name": dataset.device_name,
        "entries": [_entry_to_dict(entry) for entry in dataset.entries],
    }))
    return path


def load_dataset_cache(
    path: str | Path, fingerprint: str
) -> CircuitDataset:
    """Load a cached dataset; raises :class:`PersistenceError` when the
    file is unreadable, foreign, or was written for different inputs."""
    path = Path(path)
    if not path.exists():
        raise PersistenceError(f"no dataset cache at {path}")
    try:
        data = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise PersistenceError(f"unreadable dataset cache {path}: {exc}") from exc
    if not isinstance(data, dict) or data.get("format") != "repro-dataset-cache":
        raise PersistenceError(f"{path} is not a dataset cache file")
    if data.get("fingerprint") != fingerprint:
        raise PersistenceError(
            f"{path} was built from different inputs "
            f"(fingerprint {data.get('fingerprint')!r} != {fingerprint!r})"
        )
    dataset = CircuitDataset(device_name=data["device_name"])
    try:
        for record in data["entries"]:
            dataset.entries.append(_entry_from_dict(record))
    except (KeyError, TypeError, ValueError) as exc:
        raise PersistenceError(f"corrupted dataset cache {path}: {exc}") from exc
    return dataset


def save_report_cache(
    report: EstimatorReport, path: str | Path, fingerprint: str
) -> Path:
    """Write a trained-estimator report as a cache entry."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps({
        "format": "repro-report-cache",
        "fingerprint": fingerprint,
        "device_name": report.device_name,
        "test_pearson": report.test_pearson,
        "train_pearson": report.train_pearson,
        "cv_score": report.cv_score,
        "best_params": report.best_params,
        "feature_importances": report.feature_importances.tolist(),
        "y_test": report.y_test.tolist(),
        "y_test_pred": report.y_test_pred.tolist(),
        "test_indices": report.test_indices.tolist(),
    }))
    return path


def load_report_cache(path: str | Path, fingerprint: str) -> EstimatorReport:
    """Load a cached report; raises :class:`PersistenceError` when stale."""
    path = Path(path)
    if not path.exists():
        raise PersistenceError(f"no report cache at {path}")
    try:
        data = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise PersistenceError(f"unreadable report cache {path}: {exc}") from exc
    if not isinstance(data, dict) or data.get("format") != "repro-report-cache":
        raise PersistenceError(f"{path} is not a report cache file")
    if data.get("fingerprint") != fingerprint:
        raise PersistenceError(
            f"{path} was built from different inputs "
            f"(fingerprint {data.get('fingerprint')!r} != {fingerprint!r})"
        )
    try:
        return EstimatorReport(
            device_name=data["device_name"],
            test_pearson=float(data["test_pearson"]),
            train_pearson=float(data["train_pearson"]),
            cv_score=float(data["cv_score"]),
            best_params=dict(data["best_params"]),
            feature_importances=np.array(
                data["feature_importances"], dtype=float
            ),
            y_test=np.array(data["y_test"], dtype=float),
            y_test_pred=np.array(data["y_test_pred"], dtype=float),
            test_indices=np.array(data["test_indices"], dtype=int),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise PersistenceError(f"corrupted report cache {path}: {exc}") from exc


#: Format tag + version of cached drift-study results.
DRIFT_FORMAT = "repro-drift-cache"
DRIFT_VERSION = 1


def save_drift_cache(result: Dict, path: str | Path, fingerprint: str) -> Path:
    """Write a completed drift-study result (plain-dict form).

    Same contract as the other stage caches: canonical JSON carrying a
    format tag plus the fingerprint of every input, so a rerun with
    unchanged inputs is a pure cache read and any input change is a miss.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = dict(result)
    payload["format"] = DRIFT_FORMAT
    payload["version"] = DRIFT_VERSION
    payload["fingerprint"] = fingerprint
    path.write_text(
        json.dumps(payload, sort_keys=True, indent=2) + "\n",
        encoding="utf-8",
    )
    return path


def load_drift_cache(path: str | Path, fingerprint: str) -> Dict:
    """Load a drift-study cache entry; :class:`PersistenceError` when the
    file is missing, unreadable, foreign, wrong-version, or stale."""
    path = Path(path)
    if not path.exists():
        raise PersistenceError(f"no drift cache at {path}")
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise PersistenceError(f"unreadable drift cache {path}: {exc}") from exc
    if not isinstance(data, dict) or data.get("format") != DRIFT_FORMAT:
        raise PersistenceError(f"{path} is not a drift cache file")
    if data.get("version") != DRIFT_VERSION:
        raise PersistenceError(
            f"{path} has unsupported drift-cache version "
            f"{data.get('version')!r}"
        )
    if data.get("fingerprint") != fingerprint:
        raise PersistenceError(
            f"{path} was built from different inputs "
            f"(fingerprint {data.get('fingerprint')!r} != {fingerprint!r})"
        )
    if not isinstance(data.get("steps"), list):
        raise PersistenceError(f"corrupted drift cache {path}: no steps list")
    # Strip the envelope: callers get back exactly what they stored.
    return {
        key: value
        for key, value in data.items()
        if key not in ("format", "version", "fingerprint")
    }


#: Format tag + version of committed compilation-search leaderboard rows.
LEADERBOARD_FORMAT = "repro-leaderboard"
LEADERBOARD_VERSION = 1

#: The pass-configuration keys every leaderboard entry must carry
#: (mirrors :class:`repro.compiler.search.PassConfig`; validated
#: structurally here to keep evaluation free of compiler imports).
_LEADERBOARD_CONFIG_KEYS = (
    "layout",
    "layout_seed_offset",
    "routing_seed_offset",
    "lookahead_size",
    "opt_iterations",
)


def save_leaderboard_cache(
    entry: Dict, path: str | Path, fingerprint: str
) -> Path:
    """Write one (device-family, width-bucket) leaderboard row.

    Canonical JSON — sorted keys, fixed indentation, trailing newline, no
    timestamps — so re-running the same search over the same estimator
    regenerates the committed file *byte for byte*.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = dict(entry)
    payload["format"] = LEADERBOARD_FORMAT
    payload["version"] = LEADERBOARD_VERSION
    payload["fingerprint"] = fingerprint
    path.write_text(
        json.dumps(payload, sort_keys=True, indent=2) + "\n",
        encoding="utf-8",
    )
    return path


def load_leaderboard_cache(path: str | Path, fingerprint: str) -> Dict:
    """Load a leaderboard row; raises :class:`PersistenceError` when stale.

    Missing, unreadable, foreign-format, wrong-version, structurally
    invalid, and stale-fingerprint entries all raise — through the
    :class:`~repro.evaluation.artifacts.ArtifactStore` that is a silent
    miss, and the compiler searches fresh.
    """
    path = Path(path)
    if not path.exists():
        raise PersistenceError(f"no leaderboard entry at {path}")
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise PersistenceError(
            f"unreadable leaderboard entry {path}: {exc}"
        ) from exc
    if not isinstance(data, dict) or data.get("format") != LEADERBOARD_FORMAT:
        raise PersistenceError(f"{path} is not a leaderboard entry")
    if data.get("version") != LEADERBOARD_VERSION:
        raise PersistenceError(
            f"{path} has unsupported leaderboard version "
            f"{data.get('version')!r}"
        )
    if data.get("fingerprint") != fingerprint:
        raise PersistenceError(
            f"{path} was built from different inputs "
            f"(fingerprint {data.get('fingerprint')!r} != {fingerprint!r})"
        )
    config = data.get("config")
    if not isinstance(config, dict) or any(
        key not in config for key in _LEADERBOARD_CONFIG_KEYS
    ):
        raise PersistenceError(
            f"corrupted leaderboard entry {path}: incomplete pass config"
        )
    return data
