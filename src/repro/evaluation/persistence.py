"""Save/load study results as JSON.

A full-scale study costs ~15 minutes; archiving its numbers lets ablation
notebooks, plots, and regression checks reuse the run.  Only plain data is
persisted (correlations, improvements, importances, per-circuit records) —
models are cheap to retrain from the persisted features and labels.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict

import numpy as np

from ..predictor.dataset import CircuitDataset, DatasetEntry
from .study import StudyResult


def study_to_dict(result: StudyResult) -> Dict:
    """Serialize a study result into plain JSON-compatible data."""
    return {
        "device_names": list(result.device_names),
        "correlations": {
            fom: dict(columns) for fom, columns in result.correlations.items()
        },
        "improvements": dict(result.improvements),
        "reports": {
            name: {
                "test_pearson": report.test_pearson,
                "train_pearson": report.train_pearson,
                "cv_score": report.cv_score,
                "best_params": {
                    k: v for k, v in report.best_params.items()
                },
                "feature_importances": report.feature_importances.tolist(),
            }
            for name, report in result.reports.items()
        },
        "datasets": {
            name: [
                {
                    "name": entry.name,
                    "algorithm": entry.algorithm,
                    "num_qubits": entry.num_qubits,
                    "features": entry.features.tolist(),
                    "label": entry.label,
                    "fom_values": dict(entry.fom_values),
                    "compiled_depth": entry.compiled_depth,
                    "compiled_two_qubit_gates": entry.compiled_two_qubit_gates,
                    "success_probability": entry.success_probability,
                }
                for entry in dataset.entries
            ]
            for name, dataset in result.datasets.items()
        },
    }


def save_study(result: StudyResult, path: str | Path) -> Path:
    """Write a study result to ``path`` as JSON; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(study_to_dict(result), indent=1))
    return path


def load_study_data(path: str | Path) -> Dict:
    """Load the raw dict written by :func:`save_study`."""
    return json.loads(Path(path).read_text())


def load_datasets(path: str | Path) -> Dict[str, CircuitDataset]:
    """Rebuild :class:`CircuitDataset` objects from a saved study.

    Compiled circuits are not persisted; entries carry ``compiled=None``.
    Everything needed to retrain/score models (features, labels, FoM
    columns) is restored.
    """
    data = load_study_data(path)
    datasets: Dict[str, CircuitDataset] = {}
    for name, entries in data["datasets"].items():
        dataset = CircuitDataset(device_name=name)
        for record in entries:
            dataset.entries.append(
                DatasetEntry(
                    name=record["name"],
                    algorithm=record["algorithm"],
                    num_qubits=record["num_qubits"],
                    features=np.array(record["features"], dtype=float),
                    label=float(record["label"]),
                    fom_values=dict(record["fom_values"]),
                    compiled_depth=int(record["compiled_depth"]),
                    compiled_two_qubit_gates=int(
                        record["compiled_two_qubit_gates"]
                    ),
                    success_probability=float(record["success_probability"]),
                )
            )
        datasets[name] = dataset
    return datasets
