"""The unified artifact store: one cache layout for every pipeline stage.

Before the serving-stack refactor the repo had grown three ad-hoc cache
schemes — per-device dataset checkpoints and estimator-report checkpoints
(PR 3's ``run_study(cache_dir=...)``) and the cross-device study's
``transfer-estimator_*.npz`` model checkpoint (PR 4).  Each hand-rolled
the same moves: derive a fingerprint of the inputs, build a file name,
try to load, treat *any* problem as a miss, rebuild, save.

:class:`ArtifactStore` centralizes those moves behind a content-addressed
``get``/``put`` pair.  Entries are addressed by ``(kind, name,
fingerprint)``: ``kind`` selects the serializer (see :data:`ARTIFACT_KINDS`),
``name`` is a human-readable label (typically the device name), and
``fingerprint`` is the caller's content hash of every input that
influenced the artifact (see
:meth:`repro.evaluation.study.StudyConfig.dataset_fingerprint` and
friends).  The on-disk layout is **identical** to the pre-refactor cache
files — ``dataset_<name>_<fp>.json``, ``report_<name>_<fp>.json``,
``transfer-estimator_<name>_<fp>.npz`` in one flat directory — so cache
directories written before this refactor keep hitting, byte for byte.

Failure policy (unchanged from the schemes it replaces): a missing,
truncated, corrupted, foreign-format, wrong-version, or stale-fingerprint
entry makes :meth:`ArtifactStore.get` return ``None`` — the caller
rebuilds and overwrites.  A cache must never kill a long study.
``run_study``, ``run_cross_device_study``, ``build_device_datasets``, and
:class:`~repro.predictor.service.FomService` model loading all sit on
this store.
"""

from __future__ import annotations

from pathlib import Path
from typing import Callable, Dict, Iterator, List, NamedTuple, Optional, Tuple

from ..predictor.estimator import HellingerEstimator
from .persistence import (
    PersistenceError,
    load_dataset_cache,
    load_drift_cache,
    load_leaderboard_cache,
    load_model,
    load_report_cache,
    save_dataset_cache,
    save_drift_cache,
    save_leaderboard_cache,
    save_model,
    save_report_cache,
)

def _save_estimator(model, path: Path, fingerprint: str) -> Path:
    # Staleness of model checkpoints is enforced through the fingerprint
    # embedded in the file name (the .npz format predates fingerprint
    # metadata and must stay loadable by plain ``load_model``).
    return save_model(model, path)


def _load_estimator(path: Path, fingerprint: str):
    model = load_model(path)
    if not isinstance(model, HellingerEstimator):
        raise PersistenceError(
            f"{path} holds a {type(model).__name__}, not a HellingerEstimator"
        )
    return model


class ArtifactKind(NamedTuple):
    """Serialization recipe for one artifact kind."""

    pattern: str                       # file name: pattern.format(name=, fingerprint=)
    save: Callable[..., Path]          # save(obj, path, fingerprint)
    load: Callable[..., object]        # load(path, fingerprint) -> obj or raise


#: The artifact kinds the pipelines persist, keyed by kind id.  File-name
#: patterns are frozen: they are the pre-refactor cache names.
ARTIFACT_KINDS: Dict[str, ArtifactKind] = {
    "dataset": ArtifactKind(
        "dataset_{name}_{fingerprint}.json",
        save_dataset_cache,
        load_dataset_cache,
    ),
    "report": ArtifactKind(
        "report_{name}_{fingerprint}.json",
        save_report_cache,
        load_report_cache,
    ),
    "estimator": ArtifactKind(
        "transfer-estimator_{name}_{fingerprint}.npz",
        _save_estimator,
        _load_estimator,
    ),
    # Compilation-search winners per (device-family, width-bucket); the
    # committed copies live under benchmarks/leaderboards/ (see
    # repro.compiler.search and docs/search.md).
    "leaderboard": ArtifactKind(
        "leaderboard_{name}_{fingerprint}.json",
        save_leaderboard_cache,
        load_leaderboard_cache,
    ),
    # Completed drift-study results (repro.evaluation.drift): the final
    # stage cache that makes a warm rerun a pure read.
    "drift": ArtifactKind(
        "drift_{name}_{fingerprint}.json",
        save_drift_cache,
        load_drift_cache,
    ),
}


class ArtifactRef(NamedTuple):
    """Address of one stored artifact: the ``get``/``put`` key plus its path."""

    kind: str
    name: str
    fingerprint: str
    path: Path


class ArtifactStore:
    """Content-addressed, fingerprint-keyed artifact cache in a directory.

    >>> store = ArtifactStore("cache-dir")
    >>> store.put("dataset", dataset, "Q20-A", fingerprint)
    >>> store.get("dataset", "Q20-A", fingerprint)   # -> dataset or None
    """

    def __init__(self, root: "str | Path"):
        self.root = Path(root)

    @classmethod
    def coerce(
        cls, store: "ArtifactStore | str | Path | None"
    ) -> "Optional[ArtifactStore]":
        """Accept a store, a directory path, or ``None`` (no caching)."""
        if store is None or isinstance(store, cls):
            return store
        return cls(store)

    def path(self, kind: str, name: str, fingerprint: str) -> Path:
        """The entry's file path (exists or not)."""
        return self.root / self._kind(kind).pattern.format(
            name=name, fingerprint=fingerprint
        )

    def get(self, kind: str, name: str, fingerprint: str):
        """The stored artifact, or ``None`` on any kind of miss.

        Missing, unreadable, corrupted, truncated, foreign-format,
        wrong-version, and stale-fingerprint entries all count as misses:
        the caller rebuilds (and normally :meth:`put`s the fresh value
        over the bad entry).
        """
        recipe = self._kind(kind)
        try:
            return recipe.load(self.path(kind, name, fingerprint), fingerprint)
        except PersistenceError:
            return None

    def put(self, kind: str, artifact, name: str, fingerprint: str) -> Path:
        """Write (or overwrite) an entry; returns its path."""
        recipe = self._kind(kind)
        return recipe.save(artifact, self.path(kind, name, fingerprint), fingerprint)

    def fetch(
        self,
        kind: str,
        name: str,
        fingerprint: str,
        build: Callable[[], object],
        on_hit: Optional[Callable[[], None]] = None,
    ):
        """``get`` with rebuild-on-miss: the artifact, built at most once.

        On a hit, ``on_hit`` fires (progress reporting) and the cached
        value is returned; on a miss, ``build()`` runs and its result is
        stored before being returned.
        """
        artifact = self.get(kind, name, fingerprint)
        if artifact is not None:
            if on_hit is not None:
                on_hit()
            return artifact
        artifact = build()
        self.put(kind, artifact, name, fingerprint)
        return artifact

    def entries(self, kind: Optional[str] = None) -> Iterator[Tuple[str, Path]]:
        """Yield ``(kind, path)`` for every entry currently in the store."""
        for ref in self.refs(kind):
            yield ref.kind, ref.path

    def refs(self, kind: Optional[str] = None) -> Iterator[ArtifactRef]:
        """Yield an :class:`ArtifactRef` for every entry in the store.

        The ``(name, fingerprint)`` address is parsed back out of the
        frozen file-name patterns (the fingerprint is the last ``_``-token
        of the stem; names may themselves contain underscores).
        """
        if not self.root.is_dir():
            return
        kinds = [kind] if kind is not None else list(ARTIFACT_KINDS)
        for kind_id in kinds:
            recipe = self._kind(kind_id)
            prefix, _, suffix = recipe.pattern.partition("{name}")
            tail = suffix.replace("{fingerprint}", "*")
            extension = tail[tail.rindex("*") + 1:]
            for path in sorted(self.root.glob(f"{prefix}*{tail}")):
                stem = path.name[len(prefix):len(path.name) - len(extension)]
                name, _, fingerprint = stem.rpartition("_")
                if not name or not fingerprint:
                    continue  # foreign file that happens to match the glob
                yield ArtifactRef(kind_id, name, fingerprint, path)

    def find(
        self,
        kind: str,
        *,
        name: Optional[str] = None,
        fingerprint: Optional[str] = None,
    ) -> "List[ArtifactRef]":
        """Entries of ``kind`` matching the given name and/or fingerprint.

        This is the registry-lookup primitive the serving daemon boots
        from: ``find("estimator", fingerprint=...)`` addresses one exact
        trained model regardless of its human-readable name.  Filters
        that are ``None`` match everything.
        """
        return [
            ref
            for ref in self.refs(kind)
            if (name is None or ref.name == name)
            and (fingerprint is None or ref.fingerprint == fingerprint)
        ]

    @staticmethod
    def _kind(kind: str) -> ArtifactKind:
        try:
            return ARTIFACT_KINDS[kind]
        except KeyError:
            raise ValueError(
                f"unknown artifact kind {kind!r}; "
                f"expected one of {sorted(ARTIFACT_KINDS)}"
            ) from None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"ArtifactStore({str(self.root)!r})"


__all__ = [
    "ARTIFACT_KINDS",
    "ArtifactKind",
    "ArtifactRef",
    "ArtifactStore",
]
