"""Paper experiments: correlation study, feature importance, reporting."""

from .importance import (
    grouped_importances,
    importance_table,
    sorted_groups,
    top_features,
)
from .persistence import (
    PersistenceError,
    config_fingerprint,
    load_datasets,
    load_model,
    load_study_data,
    save_model,
    save_study,
)
from .reporting import format_fig3, format_series, format_table_i
from .study import (
    FOM_ORDER,
    PROPOSED_LABEL,
    StudyConfig,
    StudyResult,
    compute_improvements,
    run_study,
)

__all__ = [
    "FOM_ORDER",
    "PROPOSED_LABEL",
    "PersistenceError",
    "StudyConfig",
    "StudyResult",
    "compute_improvements",
    "config_fingerprint",
    "format_fig3",
    "format_series",
    "format_table_i",
    "grouped_importances",
    "load_datasets",
    "load_model",
    "load_study_data",
    "importance_table",
    "run_study",
    "save_model",
    "save_study",
    "sorted_groups",
    "top_features",
]
