"""Paper experiments: correlation study, feature importance, reporting."""

from .artifacts import ARTIFACT_KINDS, ArtifactStore
from .drift import (
    DriftStepResult,
    DriftStudyConfig,
    DriftStudyResult,
    RefreshPoint,
    calibration_distance,
    default_drift_study_config,
    format_drift_table,
    run_drift_study,
)
from .importance import (
    grouped_importances,
    importance_table,
    sorted_groups,
    top_features,
)
from .persistence import (
    PersistenceError,
    config_fingerprint,
    load_datasets,
    load_model,
    load_study_data,
    save_model,
    save_study,
)
from .reporting import (
    format_fig3,
    format_series,
    format_table_i,
    format_transfer_table,
)
from .study import (
    FOM_ORDER,
    PROPOSED_LABEL,
    CrossDeviceResult,
    StudyConfig,
    StudyResult,
    build_device_datasets,
    compute_improvements,
    run_cross_device_study,
    run_study,
)

__all__ = [
    "ARTIFACT_KINDS",
    "ArtifactStore",
    "CrossDeviceResult",
    "DriftStepResult",
    "DriftStudyConfig",
    "DriftStudyResult",
    "FOM_ORDER",
    "RefreshPoint",
    "calibration_distance",
    "default_drift_study_config",
    "run_drift_study",
    "PROPOSED_LABEL",
    "PersistenceError",
    "StudyConfig",
    "StudyResult",
    "build_device_datasets",
    "compute_improvements",
    "config_fingerprint",
    "format_drift_table",
    "format_fig3",
    "format_series",
    "format_table_i",
    "format_transfer_table",
    "grouped_importances",
    "load_datasets",
    "load_model",
    "load_study_data",
    "importance_table",
    "run_cross_device_study",
    "run_study",
    "save_model",
    "save_study",
    "sorted_groups",
    "top_features",
]
