"""Feature-importance aggregation for the paper's Fig. 3.

The paper groups the random-forest importances into seven categories
(liveness, gate ratios, directed program communication, parallelism, gate
counts, circuit depth, other features) and plots them per QPU.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from ..fom.features import FEATURE_GROUPS, FEATURE_NAMES, GROUP_ORDER


def grouped_importances(importances: np.ndarray) -> Dict[str, float]:
    """Sum per-feature importances into the Fig. 3 categories."""
    importances = np.asarray(importances, dtype=float)
    if len(importances) != len(FEATURE_NAMES):
        raise ValueError(
            f"expected {len(FEATURE_NAMES)} importances, got {len(importances)}"
        )
    grouped = {group: 0.0 for group in GROUP_ORDER}
    for name, value in zip(FEATURE_NAMES, importances):
        grouped[FEATURE_GROUPS[name]] += float(value)
    return grouped


def importance_table(
    per_device: Dict[str, np.ndarray],
) -> List[Dict[str, object]]:
    """Rows of Fig. 3: one dict per category with per-device importances."""
    grouped = {
        device: grouped_importances(importances)
        for device, importances in per_device.items()
    }
    rows: List[Dict[str, object]] = []
    for group in GROUP_ORDER:
        row: Dict[str, object] = {"feature": group}
        for device in per_device:
            row[device] = grouped[device][group]
        rows.append(row)
    return rows


def top_features(
    importances: np.ndarray, k: int = 10
) -> List[tuple[str, float]]:
    """The ``k`` individually most important features."""
    importances = np.asarray(importances, dtype=float)
    order = np.argsort(importances)[::-1][:k]
    return [(FEATURE_NAMES[i], float(importances[i])) for i in order]


def sorted_groups(grouped: Dict[str, float]) -> List[tuple[str, float]]:
    """Categories sorted by descending importance."""
    return sorted(grouped.items(), key=lambda item: -item[1])
