"""Calibration-drift studies: staleness trajectories and cheap refresh.

Real devices drift between calibrations.  An estimator trained when the
reported snapshot matched the hardware keeps compiling against the same
report while the *true* error rates walk away — so its labels go stale
even though its features do not.  This module measures that decay and
what it costs to recover from it:

1. **Snapshot walk** — :func:`~repro.hardware.calibration.drift_walk`
   iterates the drift map over the device's true calibration (the tier's
   ``fidelity_drift`` / ``relaxation_drift`` knobs scaled by
   ``drift_scale``), producing a sequence of step devices.  The reported
   calibration is deliberately frozen at step 0: compilation — and hence
   every feature vector — is identical across steps, so the error
   trajectory isolates the hardware change.  This is the iterated-map
   view of the source paper's Markov dynamics: what matters is error
   under *repeated* application of the drift map, not one perturbation.
2. **Staleness curve** — the step-0 estimator is scored on each step's
   freshly-labelled held-out rows (same split every step).
3. **Recovery curves** — two refresh strategies per step:
   *full retrain* (the complete grid-search protocol on the step's
   labels) vs *fine-tune* (append ``n`` fresh trees fitted on the step's
   training rows to the step-0 forest — PR 3's ``bootstrap_draws``
   prefix property means one ``max(n)``-tree fit serves the whole
   ``refresh_trees`` sweep by slicing prefixes).
4. **Caching** — every stage rides the fingerprinted
   :class:`~repro.evaluation.artifacts.ArtifactStore`: per-step datasets
   (keyed by snapshot content), per-step retrain reports, the base
   estimator, and the completed study (kind ``"drift"``).  A rerun with
   unchanged inputs is a pure cache read.

The serving loop closes in :mod:`repro.serving`: a refreshed model saved
over the daemon's ``.npz`` is detected and hot-swapped without a restart
(see docs/drift.md).
"""

from __future__ import annotations

import dataclasses
import math
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..hardware import NOISE_TIERS, resolve_device
from ..hardware.calibration import Calibration, drift_walk
from ..hardware.device import Device
from ..ml.metrics import pearson_r
from ..predictor.estimator import FINE_TUNE_SEED_OFFSET, train_and_evaluate_model
from .artifacts import ArtifactStore
from .persistence import config_fingerprint, device_fingerprint
from .study import StudyConfig, build_device_datasets

__all__ = [
    "DriftStepResult",
    "DriftStudyConfig",
    "DriftStudyResult",
    "RefreshPoint",
    "calibration_distance",
    "default_drift_study_config",
    "format_drift_table",
    "run_drift_study",
]

#: Per-step drift knobs when the device is not a zoo spec with a tier
#: (the ``make_device`` defaults).
DEFAULT_DRIFT_KNOBS = (0.3, 0.6)


def default_drift_study_config(progress: bool = False) -> StudyConfig:
    """The reduced dataset/training knobs a drift study uses by default.

    A 2–6-qubit suite, 400 shots, and a two-candidate grid keep the cold
    run in CLI territory while still exercising a real grid search.
    """
    return StudyConfig(
        max_qubits=6,
        shots=400,
        param_grid={
            "n_estimators": [25],
            "max_depth": [8, None],
            "min_samples_leaf": [1],
            "min_samples_split": [2],
        },
        progress=progress,
    )


def calibration_distance(a: Calibration, b: Calibration) -> float:
    """Walk distance between two snapshots: the mean absolute log-ratio
    over every calibrated table (infidelities for the three fidelity
    tables; raw values for T1/T2).  Zero iff the tables agree."""
    ratios: List[float] = []

    def log_ratio(va: float, vb: float, infidelity: bool) -> float:
        if infidelity:
            va, vb = max(1.0 - va, 1e-12), max(1.0 - vb, 1e-12)
        return abs(math.log(vb / va))

    for table_a, table_b, infidelity in (
        (a.one_qubit_fidelity, b.one_qubit_fidelity, True),
        (a.two_qubit_fidelity, b.two_qubit_fidelity, True),
        (a.readout_fidelity, b.readout_fidelity, True),
        (a.t1, b.t1, False),
        (a.t2, b.t2, False),
    ):
        for key, value in table_a.items():
            ratios.append(log_ratio(value, table_b[key], infidelity))
    return float(np.mean(ratios)) if ratios else 0.0


@dataclass
class DriftStudyConfig:
    """Knobs of one drift study."""

    #: Device object or spec string (``q20a`` / ``zoo:...``).  Zoo specs
    #: contribute their tier's per-step drift knobs.
    device: "Device | str" = "zoo:grid:12:typical:0"
    #: Drifted snapshots after step 0 (the walk length).
    steps: int = 3
    #: Multiplies the tier's per-step ``fidelity_drift`` /
    #: ``relaxation_drift`` (the zoo's ``drift_scale`` convention).
    drift_scale: float = 1.0
    #: Explicit per-step knob overrides (pre-scale); ``None`` = tier knob
    #: for zoo specs, else :data:`DEFAULT_DRIFT_KNOBS`.
    fidelity_drift: Optional[float] = None
    relaxation_drift: Optional[float] = None
    #: Opt-in duration drift per step (see ``drift_calibration``).
    duration_drift: float = 0.0
    drift_seed: int = 0
    #: Fine-tune recovery curve: fresh trees appended per refresh.  One
    #: ``max(refresh_trees)``-tree fit serves every point (prefixes).
    refresh_trees: Tuple[int, ...] = (4, 8, 16)
    #: ``True``: the new trees replace the oldest (constant-size forest).
    replace: bool = False
    #: Dataset + training knobs; ``None`` uses
    #: :func:`default_drift_study_config`.
    study: Optional[StudyConfig] = None
    cache_dir: Optional[str] = None
    progress: bool = False

    def effective_drift(self) -> Tuple[float, float]:
        """Per-step ``(fidelity_drift, relaxation_drift)`` after tier
        lookup and ``drift_scale``."""
        fid, relax = DEFAULT_DRIFT_KNOBS
        if isinstance(self.device, str) and self.device.lower().startswith("zoo:"):
            parts = self.device.split(":")
            tier = NOISE_TIERS.get(parts[3]) if len(parts) > 3 and parts[3] else None
            if tier is None and len(parts) <= 3:
                tier = NOISE_TIERS.get("typical")
            if tier is not None:
                fid, relax = tier.fidelity_drift, tier.relaxation_drift
        if self.fidelity_drift is not None:
            fid = self.fidelity_drift
        if self.relaxation_drift is not None:
            relax = self.relaxation_drift
        return fid * self.drift_scale, relax * self.drift_scale

    def fingerprint(self, device: Device, study: StudyConfig) -> str:
        """Hash of every input that influences the study result."""
        fid, relax = self.effective_drift()
        return config_fingerprint({
            "device": device_fingerprint(device),
            "steps": self.steps,
            "fidelity_drift": fid,
            "relaxation_drift": relax,
            "duration_drift": self.duration_drift,
            "drift_seed": self.drift_seed,
            "refresh_trees": list(self.refresh_trees),
            "replace": self.replace,
            # Covers the dataset knobs AND the training protocol.
            "report": study.report_fingerprint(device),
        })


@dataclass
class RefreshPoint:
    """One fine-tune point: ``trees`` fresh trees appended/replaced."""

    trees: int
    pearson: float
    mae: float


@dataclass
class DriftStepResult:
    """Staleness + recovery numbers at one walk step."""

    step: int
    device_name: str
    #: :func:`calibration_distance` from the step-0 true calibration.
    distance: float
    stale_pearson: float
    stale_mae: float
    retrain_pearson: float
    retrain_mae: float
    retrain_fit_s: float
    retrain_cached: bool
    #: Seconds to fit the ``max(refresh_trees)`` fresh trees (one fit
    #: serves every point below).
    fine_tune_fit_s: float
    fine_tune: List[RefreshPoint] = field(default_factory=list)

    def best_fine_tune(self) -> RefreshPoint:
        return max(self.fine_tune, key=lambda point: point.pearson)

    def recovery_gap(self) -> float:
        """Full-retrain Pearson minus the best fine-tune Pearson (how
        much recovery the cheap strategy leaves on the table)."""
        return self.retrain_pearson - self.best_fine_tune().pearson


@dataclass
class DriftStudyResult:
    """Everything one drift study measured."""

    device_name: str
    fidelity_drift: float
    relaxation_drift: float
    duration_drift: float
    refresh_trees: Tuple[int, ...]
    replace: bool
    base_pearson: float
    base_fit_s: float
    base_cached: bool
    steps: List[DriftStepResult] = field(default_factory=list)
    #: Set on return, never persisted: whether this invocation was a pure
    #: cache read, and its wall-clock seconds.
    from_cache: bool = False
    elapsed_s: float = 0.0


def _result_to_dict(result: DriftStudyResult) -> Dict:
    return {
        "device_name": result.device_name,
        "fidelity_drift": result.fidelity_drift,
        "relaxation_drift": result.relaxation_drift,
        "duration_drift": result.duration_drift,
        "refresh_trees": list(result.refresh_trees),
        "replace": result.replace,
        "base_pearson": result.base_pearson,
        "base_fit_s": result.base_fit_s,
        "base_cached": result.base_cached,
        "steps": [
            {
                **{
                    key: value
                    for key, value in dataclasses.asdict(step).items()
                    if key != "fine_tune"
                },
                "fine_tune": [
                    dataclasses.asdict(point) for point in step.fine_tune
                ],
            }
            for step in result.steps
        ],
    }


def _result_from_dict(data: Dict) -> DriftStudyResult:
    steps = [
        DriftStepResult(
            step=int(record["step"]),
            device_name=record["device_name"],
            distance=float(record["distance"]),
            stale_pearson=float(record["stale_pearson"]),
            stale_mae=float(record["stale_mae"]),
            retrain_pearson=float(record["retrain_pearson"]),
            retrain_mae=float(record["retrain_mae"]),
            retrain_fit_s=float(record["retrain_fit_s"]),
            retrain_cached=bool(record["retrain_cached"]),
            fine_tune_fit_s=float(record["fine_tune_fit_s"]),
            fine_tune=[
                RefreshPoint(
                    trees=int(point["trees"]),
                    pearson=float(point["pearson"]),
                    mae=float(point["mae"]),
                )
                for point in record["fine_tune"]
            ],
        )
        for record in data["steps"]
    ]
    return DriftStudyResult(
        device_name=data["device_name"],
        fidelity_drift=float(data["fidelity_drift"]),
        relaxation_drift=float(data["relaxation_drift"]),
        duration_drift=float(data["duration_drift"]),
        refresh_trees=tuple(int(n) for n in data["refresh_trees"]),
        replace=bool(data["replace"]),
        base_pearson=float(data["base_pearson"]),
        base_fit_s=float(data["base_fit_s"]),
        base_cached=bool(data["base_cached"]),
        steps=steps,
    )


def format_drift_table(result: DriftStudyResult) -> str:
    """The ``repro drift-study`` table: staleness and recovery per step."""
    knobs = (
        f"fid_drift={result.fidelity_drift:.3f} "
        f"relax_drift={result.relaxation_drift:.3f}"
    )
    if result.duration_drift:
        knobs += f" dur_drift={result.duration_drift:.3f}"
    lines = [
        f"drift study: {result.device_name}  ({knobs})",
        f"base estimator: r={result.base_pearson:.3f}  "
        f"fit={result.base_fit_s:.2f}s"
        + ("  [cached]" if result.base_cached else ""),
    ]
    header = (
        f"{'step':>4} {'distance':>9} {'stale_r':>8} "
        f"{'retrain_r':>10} {'retrain_s':>10}"
    )
    for count in result.refresh_trees:
        header += f" {f'ft{count}_r':>8}"
    header += f" {'finetune_s':>11}"
    lines.append(header)
    for step in result.steps:
        row = (
            f"{step.step:>4} {step.distance:>9.4f} "
            f"{step.stale_pearson:>8.3f} {step.retrain_pearson:>10.3f} "
            f"{step.retrain_fit_s:>9.2f}{'*' if step.retrain_cached else ' '}"
        )
        by_trees = {point.trees: point for point in step.fine_tune}
        for count in result.refresh_trees:
            row += f" {by_trees[count].pearson:>8.3f}"
        row += f" {step.fine_tune_fit_s:>11.3f}"
        lines.append(row)
    origin = "cached result, " if result.from_cache else ""
    lines.append(f"({origin}elapsed {result.elapsed_s:.2f}s; * = cached retrain)")
    return "\n".join(lines)


def _step_devices(base: Device, config: DriftStudyConfig) -> List[Device]:
    """The walk's snapshot devices: drifted *true* calibration, frozen
    *reported* calibration (so compilation — and features — never move)."""
    fid, relax = config.effective_drift()
    snapshots = drift_walk(
        base.true_calibration,
        np.random.default_rng(config.drift_seed),
        config.steps,
        fidelity_drift=fid,
        relaxation_drift=relax,
        duration_drift=config.duration_drift,
    )
    return [
        Device(
            name=f"{base.name}-drift{index + 1}",
            coupling=base.coupling,
            true_calibration=snapshot,
            reported_calibration=base.reported_calibration,
            native_gates=base.native_gates,
            noise=base.noise,
        )
        for index, snapshot in enumerate(snapshots)
    ]


def _mae(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    return float(np.mean(np.abs(np.asarray(y_true) - np.asarray(y_pred))))


def run_drift_study(
    config: Optional[DriftStudyConfig] = None,
    cache_dir: "ArtifactStore | str | None" = None,
) -> DriftStudyResult:
    """Run (or warm-load) one drift study.

    Every stage is cached through the store when one is given: per-step
    datasets, the base report + estimator, per-step retrain reports, and
    the assembled result (kind ``"drift"``).  A rerun with unchanged
    inputs returns the cached result directly (``from_cache=True``).
    """
    config = config or DriftStudyConfig()
    study = config.study or default_drift_study_config(progress=config.progress)
    store = ArtifactStore.coerce(
        cache_dir if cache_dir is not None else (config.cache_dir or study.cache_dir)
    )
    if config.steps < 1:
        raise ValueError("a drift study needs steps >= 1")
    if not config.refresh_trees or min(config.refresh_trees) < 1:
        raise ValueError("refresh_trees must be positive tree counts")

    base_device = resolve_device(config.device)
    started = time.perf_counter()
    fingerprint = config.fingerprint(base_device, study)
    if store is not None:
        cached = store.get("drift", base_device.name, fingerprint)
        if cached is not None:
            result = _result_from_dict(cached)
            result.from_cache = True
            result.elapsed_s = time.perf_counter() - started
            if config.progress:
                print(
                    f"[{base_device.name}] drift study loaded from cache",
                    flush=True,
                )
            return result

    step_devices = _step_devices(base_device, config)
    datasets = build_device_datasets(
        [base_device] + step_devices, study, store
    )
    base_data = datasets[base_device.name]
    if len(base_data) < 5:
        raise ValueError(
            f"drift study dataset too small ({len(base_data)} rows); "
            "widen the suite or raise max_qubits"
        )

    # One split for every curve: compilation is frozen across steps, so
    # all step datasets hold the same rows in the same order and the
    # base report's held-out indices are meaningful everywhere.
    order = np.random.default_rng(study.seed).permutation(len(base_data))
    n_test = max(1, int(round(len(base_data) * study.test_size)))
    test_idx, train_idx = order[:n_test], order[n_test:]

    report = estimator = None
    base_fingerprint = study.report_fingerprint(base_device)
    if store is not None:
        report = store.get("report", base_device.name, base_fingerprint)
        estimator = store.get("estimator", base_device.name, base_fingerprint)
    base_cached = report is not None and estimator is not None
    base_fit_s = 0.0
    if not base_cached:
        fit_started = time.perf_counter()
        report, estimator = train_and_evaluate_model(
            base_data.X, base_data.y,
            device_name=base_device.name,
            test_size=study.test_size,
            n_splits=study.n_splits,
            seed=study.seed,
            param_grid=study.param_grid,
            max_workers=study.max_workers,
            workers_mode=study.workers_mode,
        )
        base_fit_s = time.perf_counter() - fit_started
        if store is not None:
            store.put("report", report, base_device.name, base_fingerprint)
            store.put("estimator", estimator, base_device.name, base_fingerprint)

    fid, relax = config.effective_drift()
    result = DriftStudyResult(
        device_name=base_device.name,
        fidelity_drift=fid,
        relaxation_drift=relax,
        duration_drift=config.duration_drift,
        refresh_trees=tuple(config.refresh_trees),
        replace=config.replace,
        base_pearson=float(report.test_pearson),
        base_fit_s=base_fit_s,
        base_cached=base_cached,
    )

    max_trees = max(config.refresh_trees)
    for index, device in enumerate(step_devices, start=1):
        data = datasets[device.name]
        if len(data) != len(base_data):
            raise RuntimeError(
                f"step dataset {device.name} has {len(data)} rows, base has "
                f"{len(base_data)} — frozen-compilation invariant broken"
            )
        X, y = data.X, data.y

        stale_pred = estimator.predict(X[test_idx])
        stale_pearson = pearson_r(y[test_idx], stale_pred)
        stale_mae = _mae(y[test_idx], stale_pred)

        # Full retrain: the complete (cached) grid-search protocol.
        retrain_report = None
        retrain_fingerprint = study.report_fingerprint(device)
        if store is not None:
            retrain_report = store.get("report", device.name, retrain_fingerprint)
        retrain_cached = retrain_report is not None
        retrain_fit_s = 0.0
        if not retrain_cached:
            fit_started = time.perf_counter()
            retrain_report, _ = train_and_evaluate_model(
                X, y,
                device_name=device.name,
                test_size=study.test_size,
                n_splits=study.n_splits,
                seed=study.seed,
                param_grid=study.param_grid,
                max_workers=study.max_workers,
                workers_mode=study.workers_mode,
            )
            retrain_fit_s = time.perf_counter() - fit_started
            if store is not None:
                store.put("report", retrain_report, device.name, retrain_fingerprint)

        # Fine-tune: one max-count fit; every sweep point is a prefix.
        fit_started = time.perf_counter()
        trees = estimator.model.fit_new_trees(
            X[train_idx], y[train_idx], max_trees,
            random_state=study.seed + FINE_TUNE_SEED_OFFSET + index,
            max_workers=study.max_workers,
            workers_mode=study.workers_mode,
        )
        fine_tune_fit_s = time.perf_counter() - fit_started
        points = []
        for count in config.refresh_trees:
            tuned = estimator.with_trees(trees[:count], replace=config.replace)
            tuned_pred = tuned.predict(X[test_idx])
            points.append(RefreshPoint(
                trees=count,
                pearson=pearson_r(y[test_idx], tuned_pred),
                mae=_mae(y[test_idx], tuned_pred),
            ))

        step = DriftStepResult(
            step=index,
            device_name=device.name,
            distance=calibration_distance(
                base_device.true_calibration, device.true_calibration
            ),
            stale_pearson=stale_pearson,
            stale_mae=stale_mae,
            retrain_pearson=float(retrain_report.test_pearson),
            retrain_mae=_mae(retrain_report.y_test, retrain_report.y_test_pred),
            retrain_fit_s=retrain_fit_s,
            retrain_cached=retrain_cached,
            fine_tune_fit_s=fine_tune_fit_s,
            fine_tune=points,
        )
        result.steps.append(step)
        if config.progress:
            best = step.best_fine_tune()
            print(
                f"[{device.name}] distance={step.distance:.3f} "
                f"stale_r={stale_pearson:.3f} retrain_r="
                f"{step.retrain_pearson:.3f} finetune_r={best.pearson:.3f} "
                f"({best.trees} trees)",
                flush=True,
            )

    result.elapsed_s = time.perf_counter() - started
    if store is not None:
        store.put("drift", _result_to_dict(result), base_device.name, fingerprint)
    return result
