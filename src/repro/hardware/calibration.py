"""Device calibration data and the staleness (drift) model.

A :class:`Calibration` snapshot stores everything the established
hardware-aware figures of merit consume: per-qubit single-qubit gate
fidelities, per-edge two-qubit gate fidelities, readout fidelities,
T1/T2 relaxation times, and operation durations.

The paper observes that ESP correlates *worse* than expected fidelity and
attributes it to "possibly outdated T1, T2 times" (Section V-B).  We model
this directly: a device carries a *true* calibration (used by the noisy
executor) and a *reported* snapshot produced by :func:`drift_calibration`,
which perturbs fidelities mildly and relaxation times strongly — exactly the
asymmetry that penalizes ESP's extra term.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Tuple

import numpy as np

from .coupling import CouplingMap, Edge


@dataclass
class GateDurations:
    """Operation durations in nanoseconds."""

    one_qubit: float = 40.0
    two_qubit: float = 120.0
    readout: float = 1000.0

    def of(self, num_qubits: int, is_measure: bool) -> float:
        if is_measure:
            return self.readout
        return self.one_qubit if num_qubits == 1 else self.two_qubit


@dataclass
class Calibration:
    """One calibration snapshot of a device.

    Attributes:
        one_qubit_fidelity: per-qubit average single-qubit gate fidelity.
        two_qubit_fidelity: per-edge two-qubit (CZ) gate fidelity.
        readout_fidelity: per-qubit readout assignment fidelity
            (probability the measured bit equals the pre-measurement state).
        t1: per-qubit T1 relaxation time in nanoseconds.
        t2: per-qubit T2 dephasing time in nanoseconds.
        durations: operation durations.
        timestamp: arbitrary label for bookkeeping (e.g. "true", "stale").
    """

    one_qubit_fidelity: Dict[int, float]
    two_qubit_fidelity: Dict[Edge, float]
    readout_fidelity: Dict[int, float]
    t1: Dict[int, float]
    t2: Dict[int, float]
    durations: GateDurations = field(default_factory=GateDurations)
    timestamp: str = "true"

    def __post_init__(self) -> None:
        for name, table in (
            ("one_qubit_fidelity", self.one_qubit_fidelity),
            ("readout_fidelity", self.readout_fidelity),
        ):
            for qubit, value in table.items():
                if not 0.0 < value <= 1.0:
                    raise ValueError(f"{name}[{qubit}] = {value} outside (0, 1]")
        for edge, value in self.two_qubit_fidelity.items():
            if not 0.0 < value <= 1.0:
                raise ValueError(f"two_qubit_fidelity[{edge}] = {value} outside (0, 1]")
            if edge != tuple(sorted(edge)):
                raise ValueError(f"edge {edge} must be sorted (low, high)")
        for table_name, table in (("t1", self.t1), ("t2", self.t2)):
            for qubit, value in table.items():
                if value <= 0:
                    raise ValueError(f"{table_name}[{qubit}] = {value} must be > 0")

    # ------------------------------------------------------------------
    # Lookups
    # ------------------------------------------------------------------

    def edge_fidelity(self, a: int, b: int) -> float:
        """Two-qubit gate fidelity along the (unordered) edge ``(a, b)``."""
        return self.two_qubit_fidelity[tuple(sorted((a, b)))]

    def min_relaxation(self, qubit: int) -> float:
        """``min(T1, T2)`` for the ESP decay factor."""
        return min(self.t1[qubit], self.t2[qubit])

    def mean_two_qubit_fidelity(self) -> float:
        values = list(self.two_qubit_fidelity.values())
        return float(np.mean(values)) if values else 1.0

    def mean_readout_fidelity(self) -> float:
        values = list(self.readout_fidelity.values())
        return float(np.mean(values)) if values else 1.0

    def copy(self, timestamp: str | None = None) -> "Calibration":
        return Calibration(
            one_qubit_fidelity=dict(self.one_qubit_fidelity),
            two_qubit_fidelity=dict(self.two_qubit_fidelity),
            readout_fidelity=dict(self.readout_fidelity),
            t1=dict(self.t1),
            t2=dict(self.t2),
            durations=replace(self.durations),
            timestamp=timestamp or self.timestamp,
        )


def random_calibration(
    coupling: CouplingMap,
    rng: np.random.Generator,
    one_qubit_fidelity: Tuple[float, float] = (0.9985, 0.9998),
    two_qubit_fidelity: Tuple[float, float] = (0.975, 0.995),
    readout_fidelity: Tuple[float, float] = (0.95, 0.99),
    t1_us: Tuple[float, float] = (25.0, 60.0),
    t2_us: Tuple[float, float] = (8.0, 40.0),
    durations: GateDurations | None = None,
) -> Calibration:
    """Draw a heterogeneous but realistic calibration for ``coupling``.

    Ranges default to values typical of 20-qubit superconducting devices
    (IQM Q20 series ballpark).  T1/T2 are stored in nanoseconds.
    """
    n = coupling.num_qubits
    t2_raw = rng.uniform(t2_us[0] * 1e3, t2_us[1] * 1e3, size=n)
    t1_raw = rng.uniform(t1_us[0] * 1e3, t1_us[1] * 1e3, size=n)
    # Physical constraint: T2 <= 2 * T1.
    t2_raw = np.minimum(t2_raw, 2.0 * t1_raw)
    return Calibration(
        one_qubit_fidelity={
            q: float(rng.uniform(*one_qubit_fidelity)) for q in range(n)
        },
        two_qubit_fidelity={
            edge: float(rng.uniform(*two_qubit_fidelity))
            for edge in coupling.edges
        },
        readout_fidelity={
            q: float(rng.uniform(*readout_fidelity)) for q in range(n)
        },
        t1={q: float(t1_raw[q]) for q in range(n)},
        t2={q: float(t2_raw[q]) for q in range(n)},
        durations=durations or GateDurations(),
        timestamp="true",
    )


def drift_calibration(
    calibration: Calibration,
    rng: np.random.Generator,
    fidelity_drift: float = 0.3,
    relaxation_drift: float = 0.6,
    duration_drift: float = 0.0,
) -> Calibration:
    """Produce a *stale* snapshot that has drifted away from the truth.

    Fidelity infidelities — single-qubit, two-qubit, *and* readout
    assignment — are rescaled by ``lognormal(0, fidelity_drift)`` (mild
    mis-estimation), while T1/T2 are rescaled by
    ``lognormal(0, relaxation_drift)`` (strong mis-estimation).  Relaxation
    times drift hardest because they are measured least often on real
    hardware — this is the mechanism behind the paper's observation that
    ESP underperforms plain expected fidelity.

    Durations do NOT drift by default: they are control-stack settings,
    not measured quantities, so a stale report still states them exactly.
    ``duration_drift > 0`` opts into modelling a retuned pulse schedule
    (each duration rescaled by ``lognormal(0, duration_drift)``).  The
    extra draws happen after all fidelity/relaxation draws, so the default
    keeps the RNG stream — and every downstream reported calibration —
    byte-identical to older revisions.
    """
    if fidelity_drift < 0 or relaxation_drift < 0 or duration_drift < 0:
        raise ValueError("drift magnitudes must be non-negative")

    def drift_fidelity(value: float) -> float:
        infidelity = (1.0 - value) * float(rng.lognormal(0.0, fidelity_drift))
        return float(np.clip(1.0 - infidelity, 0.5, 1.0))

    def drift_time(value: float) -> float:
        return float(value * rng.lognormal(0.0, relaxation_drift))

    stale = Calibration(
        one_qubit_fidelity={
            q: drift_fidelity(v) for q, v in calibration.one_qubit_fidelity.items()
        },
        two_qubit_fidelity={
            e: drift_fidelity(v) for e, v in calibration.two_qubit_fidelity.items()
        },
        readout_fidelity={
            q: drift_fidelity(v) for q, v in calibration.readout_fidelity.items()
        },
        t1={q: drift_time(v) for q, v in calibration.t1.items()},
        t2={q: drift_time(v) for q, v in calibration.t2.items()},
        durations=replace(calibration.durations),
        timestamp="stale",
    )
    if duration_drift > 0:
        base = calibration.durations
        stale.durations = GateDurations(
            one_qubit=float(base.one_qubit * rng.lognormal(0.0, duration_drift)),
            two_qubit=float(base.two_qubit * rng.lognormal(0.0, duration_drift)),
            readout=float(base.readout * rng.lognormal(0.0, duration_drift)),
        )
    return stale


def drift_walk(
    calibration: Calibration,
    rng: np.random.Generator,
    steps: int,
    fidelity_drift: float = 0.3,
    relaxation_drift: float = 0.6,
    duration_drift: float = 0.0,
) -> "list[Calibration]":
    """Iterate the drift map: a stochastic walk over calibration snapshots.

    Returns ``steps`` snapshots where snapshot ``k`` is
    :func:`drift_calibration` applied ``k + 1`` times from ``calibration``
    (the drift-study analogue of the paper's iterated Hopf-square Markov
    dynamics: what matters is the trajectory under repeated application,
    not a single perturbation).  Infidelity clipping to ``[0, 0.5]``
    bounds the walk; T1/T2 random-walk multiplicatively.  Timestamps are
    ``"drift-1"``, ``"drift-2"``, ...
    """
    if steps < 0:
        raise ValueError("steps must be >= 0")
    snapshots = []
    current = calibration
    for k in range(steps):
        current = drift_calibration(
            current,
            rng,
            fidelity_drift=fidelity_drift,
            relaxation_drift=relaxation_drift,
            duration_drift=duration_drift,
        )
        current.timestamp = f"drift-{k + 1}"
        snapshots.append(current)
    return snapshots
