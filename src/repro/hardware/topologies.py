"""The topology zoo: parameterized coupling-map families beyond the 4x5 grid.

The paper's case study lives on two square-grid devices; everything above
``hardware/`` (layout, routing, dataset building, the Hellinger estimator)
consumes only :class:`~repro.hardware.coupling.CouplingMap`, so it should
work on *any* connected topology.  This module provides the families that
exercise that claim:

* :func:`ladder_map` — a 2 x k square ladder (rung-coupled double chain),
* :func:`random_coupling_map` — seeded bounded-degree random graphs built
  from a degree-respecting random spanning tree plus extra random edges,
* sized builders for every family (line, ring, ladder, star, grid,
  heavy-hex, random) through the :data:`TOPOLOGIES` registry, each
  returning a *validated* (connected, duplicate-free) coupling map.

Size conventions: every family is requested by a target qubit count
``num_qubits``.  Heavy-hex quantizes the size — it builds the largest
lattice that fits within the request and may return fewer qubits.  All
other families return exactly ``num_qubits`` or raise (grid additionally
rejects prime counts rather than degenerating into a chain).  Random
families take a ``seed`` that fully determines the graph; all other
families ignore it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

import numpy as np

from .coupling import (
    CouplingMap,
    Edge,
    grid_map,
    heavy_hex_map,
    line_map,
    ring_map,
    star_map,
)


def validate_coupling(coupling: CouplingMap, context: str = "topology") -> CouplingMap:
    """Assert that ``coupling`` is usable as a compilation target.

    Routing requires a connected graph with at least one qubit; builders
    funnel their output through this check so an invalid construction
    fails at build time with a message naming the offending family, not
    deep inside a router.
    """
    if coupling.num_qubits < 1:
        raise ValueError(f"{context} produced an empty coupling map")
    if not coupling.is_connected():
        components = _component_summary(coupling)
        raise ValueError(
            f"{context} produced a disconnected coupling map "
            f"({components}); routing needs a path between every qubit "
            f"pair — add couplers bridging the components"
        )
    return coupling


def _component_summary(coupling: CouplingMap) -> str:
    sizes = sorted(
        (len(c) for c in coupling.connected_components()), reverse=True
    )
    return f"{len(sizes)} components of sizes {sizes}"


def ladder_map(num_qubits: int) -> CouplingMap:
    """A 2 x (n/2) ladder: two chains joined by a rung at every position.

    Qubit ``i`` of the top chain pairs with qubit ``i + n/2`` of the
    bottom chain.  Requires an even ``num_qubits >= 4``.
    """
    if num_qubits < 4 or num_qubits % 2:
        raise ValueError(
            f"a ladder needs an even qubit count >= 4, got {num_qubits}; "
            f"round to the nearest even size or use line_map"
        )
    half = num_qubits // 2
    edges: List[Edge] = []
    for i in range(half - 1):
        edges.append((i, i + 1))
        edges.append((half + i, half + i + 1))
    edges.extend((i, half + i) for i in range(half))
    return CouplingMap(num_qubits, edges)


def random_coupling_map(
    num_qubits: int, degree: int = 3, seed: int = 0
) -> CouplingMap:
    """A seeded connected random graph with maximum degree ``degree``.

    Construction is deterministic in ``seed``: a random spanning tree is
    grown by attaching each qubit (in shuffled order) to a uniformly
    chosen earlier qubit that still has spare degree, then extra random
    edges are added while both endpoints stay within the degree bound —
    targeting a mean degree roughly halfway between tree sparsity and the
    bound, so the graphs look like plausible sparse QPU layouts rather
    than either trees or near-regular expanders.
    """
    if num_qubits < 2:
        raise ValueError(
            f"a random coupling map needs >= 2 qubits, got {num_qubits}"
        )
    if degree < 2:
        raise ValueError(
            f"degree bound must be >= 2 (got {degree}): a bound of 1 "
            f"cannot connect more than two qubits"
        )
    rng = np.random.default_rng(seed)
    order = rng.permutation(num_qubits)
    deg = np.zeros(num_qubits, dtype=int)
    edges: List[Edge] = []
    placed: List[int] = [int(order[0])]
    for raw in order[1:]:
        qubit = int(raw)
        # Attach to a uniformly chosen already-placed qubit with spare
        # degree; the new leaf consumes one slot of each endpoint.
        open_slots = [p for p in placed if deg[p] < degree]
        parent = int(open_slots[rng.integers(len(open_slots))])
        edges.append((min(qubit, parent), max(qubit, parent)))
        deg[qubit] += 1
        deg[parent] += 1
        placed.append(qubit)

    edge_set = set(edges)
    # Extra edges: aim for mean degree ~ (2 tree edges + bound) / 2.
    target_extra = max(0, int(round(num_qubits * (degree - 2) / 2.0)) - 1)
    attempts = 0
    while target_extra > 0 and attempts < 20 * num_qubits:
        attempts += 1
        a, b = (int(x) for x in rng.integers(num_qubits, size=2))
        if a == b:
            continue
        candidate = (min(a, b), max(a, b))
        if candidate in edge_set:
            continue
        if deg[a] >= degree or deg[b] >= degree:
            continue
        edges.append(candidate)
        edge_set.add(candidate)
        deg[a] += 1
        deg[b] += 1
        target_extra -= 1
    return CouplingMap(num_qubits, edges)


# ---------------------------------------------------------------------------
# Sized builders: every family requested by target qubit count.
# ---------------------------------------------------------------------------


def _build_line(num_qubits: int, seed: int) -> CouplingMap:
    if num_qubits < 2:
        raise ValueError(f"a line needs >= 2 qubits, got {num_qubits}")
    return line_map(num_qubits)


def _build_ring(num_qubits: int, seed: int) -> CouplingMap:
    return ring_map(num_qubits)


def _build_ladder(num_qubits: int, seed: int) -> CouplingMap:
    return ladder_map(num_qubits)


def _build_star(num_qubits: int, seed: int) -> CouplingMap:
    if num_qubits < 2:
        raise ValueError(f"a star needs >= 2 qubits, got {num_qubits}")
    return star_map(num_qubits)


def _build_grid(num_qubits: int, seed: int) -> CouplingMap:
    """The most-square ``rows x cols`` grid with ``rows * cols == num_qubits``.

    Prime sizes degenerate to a 1 x n chain, which is a line in disguise;
    reject them with a pointer to the nearest composite sizes.
    """
    if num_qubits < 4:
        raise ValueError(f"a grid needs >= 4 qubits, got {num_qubits}")
    best: Tuple[int, int] | None = None
    for rows in range(2, int(np.sqrt(num_qubits)) + 1):
        if num_qubits % rows == 0:
            best = (rows, num_qubits // rows)
    if best is None:
        raise ValueError(
            f"cannot build a 2-D grid with a prime qubit count "
            f"({num_qubits}); use {num_qubits - 1} or {num_qubits + 1}, "
            f"or the 'line' family"
        )
    return grid_map(*best)


def _build_heavy_hex(num_qubits: int, seed: int) -> CouplingMap:
    """The largest heavy-hex lattice with at most ``num_qubits`` qubits.

    Lattice sizes quantize (distance d = 1, 2, 3, ... gives 6, 16, 30,
    48, ... qubits), so the returned map may be smaller than requested.
    """
    if num_qubits < 6:
        raise ValueError(
            f"the smallest heavy-hex lattice (distance 1) has 6 qubits; "
            f"got a request for {num_qubits}"
        )
    distance = 1
    while heavy_hex_qubits(distance + 1) <= num_qubits:
        distance += 1
    return heavy_hex_map(distance)


def heavy_hex_qubits(distance: int) -> int:
    """Qubit count of :func:`heavy_hex_map` at ``distance`` (6, 16, 30, ...)."""
    # nx.hexagonal_lattice_graph(d, d) node count, in closed form.
    return 2 * (distance + 1) * (distance + 1) - 2


def _build_random(num_qubits: int, seed: int) -> CouplingMap:
    return random_coupling_map(num_qubits, degree=3, seed=seed)


@dataclass(frozen=True)
class TopologyFamily:
    """One named coupling-map family with a sized, seeded builder."""

    name: str
    builder: Callable[[int, int], CouplingMap]
    description: str
    min_qubits: int
    exact_size: bool  # False: the lattice quantizes sizes (may return fewer)
    seeded: bool = False  # True: the graph itself depends on the seed

    def build(self, num_qubits: int, seed: int = 0) -> CouplingMap:
        """A validated coupling map of (at most) ``num_qubits`` qubits."""
        coupling = self.builder(num_qubits, seed)
        return validate_coupling(coupling, context=f"topology '{self.name}'")


#: Every topology family, keyed by name (the CLI's ``zoo --list`` source).
TOPOLOGIES: Dict[str, TopologyFamily] = {
    family.name: family
    for family in (
        TopologyFamily(
            "line", _build_line,
            "1-D nearest-neighbour chain", 2, exact_size=True,
        ),
        TopologyFamily(
            "ring", _build_ring,
            "closed 1-D cycle", 3, exact_size=True,
        ),
        TopologyFamily(
            "ladder", _build_ladder,
            "2 x n/2 double chain with rungs (even sizes)", 4,
            exact_size=True,
        ),
        TopologyFamily(
            "star", _build_star,
            "hub qubit coupled to every spoke", 2, exact_size=True,
        ),
        TopologyFamily(
            "grid", _build_grid,
            "most-square 2-D lattice (composite sizes)", 4,
            exact_size=True,
        ),
        TopologyFamily(
            "heavy_hex", _build_heavy_hex,
            "IBM-style heavy-hex lattice (6, 16, 30, 48, ... qubits)", 6,
            exact_size=False,
        ),
        TopologyFamily(
            "random", _build_random,
            "seeded connected random graph, max degree 3", 2,
            exact_size=True, seeded=True,
        ),
    )
}


def build_topology(name: str, num_qubits: int, seed: int = 0) -> CouplingMap:
    """Build a validated coupling map from a named family."""
    try:
        family = TOPOLOGIES[name]
    except KeyError:
        raise ValueError(
            f"unknown topology family '{name}'; available: "
            f"{sorted(TOPOLOGIES)}"
        ) from None
    return family.build(num_qubits, seed=seed)
