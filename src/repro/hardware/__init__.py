"""Hardware models: coupling maps, calibration data, devices."""

from .calibration import (
    Calibration,
    GateDurations,
    drift_calibration,
    drift_walk,
    random_calibration,
)
from .coupling import (
    CouplingMap,
    full_map,
    grid_map,
    grid_positions,
    heavy_hex_map,
    line_map,
    ring_map,
    star_map,
)
from .device import Device, IQM_NATIVE_GATES, NoiseProfile, make_device
from .iqm import make_q20a, make_q20b, make_q20_pair, q20_coupling
from .topologies import (
    TOPOLOGIES,
    TopologyFamily,
    build_topology,
    heavy_hex_qubits,
    ladder_map,
    random_coupling_map,
    validate_coupling,
)
from .zoo import (
    DEFAULT_SIZES,
    NOISE_TIERS,
    ZOO_SPEC_GRAMMAR,
    ZOO_SPEC_HELP,
    NoiseTier,
    device_from_spec,
    make_zoo_device,
    zoo_families,
    zoo_summary,
)

#: The built-in (paper) devices by CLI name.
BUILTIN_DEVICES = {"q20a": make_q20a, "q20b": make_q20b}


def resolve_device(spec: "Device | str") -> Device:
    """A :class:`Device` from a device object or any device spec string.

    Accepts a ready :class:`Device` (returned as-is), a built-in name
    (``q20a``, ``q20b``), or a zoo spec like ``zoo:heavy_hex:16:noisy:1``
    (see :func:`device_from_spec`).  This is the one resolution rule every
    device-taking surface (CLI, :class:`~repro.predictor.service.FomService`)
    shares.
    """
    if isinstance(spec, Device):
        return spec
    name = spec.lower()
    if name.startswith("zoo:"):
        return device_from_spec(spec)
    if name in BUILTIN_DEVICES:
        return BUILTIN_DEVICES[name]()
    raise ValueError(
        f"unknown device '{spec}'; available: {sorted(BUILTIN_DEVICES)} "
        f"or a zoo spec (see `python -m repro zoo --list`)"
    )


__all__ = [
    "BUILTIN_DEVICES",
    "resolve_device",
    "Calibration",
    "CouplingMap",
    "DEFAULT_SIZES",
    "Device",
    "GateDurations",
    "IQM_NATIVE_GATES",
    "NOISE_TIERS",
    "NoiseProfile",
    "NoiseTier",
    "TOPOLOGIES",
    "TopologyFamily",
    "ZOO_SPEC_GRAMMAR",
    "ZOO_SPEC_HELP",
    "build_topology",
    "device_from_spec",
    "drift_calibration",
    "drift_walk",
    "full_map",
    "grid_map",
    "grid_positions",
    "heavy_hex_map",
    "heavy_hex_qubits",
    "ladder_map",
    "line_map",
    "make_device",
    "make_q20a",
    "make_q20b",
    "make_q20_pair",
    "make_zoo_device",
    "q20_coupling",
    "random_calibration",
    "random_coupling_map",
    "ring_map",
    "star_map",
    "validate_coupling",
    "zoo_families",
    "zoo_summary",
]
