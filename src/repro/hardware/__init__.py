"""Hardware models: coupling maps, calibration data, devices."""

from .calibration import (
    Calibration,
    GateDurations,
    drift_calibration,
    random_calibration,
)
from .coupling import (
    CouplingMap,
    full_map,
    grid_map,
    grid_positions,
    heavy_hex_map,
    line_map,
    ring_map,
    star_map,
)
from .device import Device, IQM_NATIVE_GATES, NoiseProfile, make_device
from .iqm import make_q20a, make_q20b, make_q20_pair, q20_coupling

__all__ = [
    "Calibration",
    "CouplingMap",
    "Device",
    "GateDurations",
    "IQM_NATIVE_GATES",
    "NoiseProfile",
    "drift_calibration",
    "full_map",
    "grid_map",
    "grid_positions",
    "heavy_hex_map",
    "line_map",
    "make_device",
    "make_q20a",
    "make_q20b",
    "make_q20_pair",
    "q20_coupling",
    "random_calibration",
    "ring_map",
    "star_map",
]
