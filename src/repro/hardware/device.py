"""Device model: topology + native gates + calibration (true and reported).

A :class:`Device` bundles everything the compiler and the noisy executor
need.  The *true* calibration drives the executor's error channel; the
*reported* calibration is what figure-of-merit computations see — mirroring
real QPU operation, where published calibration data lags behind the
hardware's actual state.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet

import numpy as np

from .calibration import Calibration, drift_calibration, random_calibration
from .coupling import CouplingMap

#: Native gate set of IQM crystal devices: phased-RX plus CZ.
IQM_NATIVE_GATES = frozenset({"prx", "rz", "cz", "measure", "barrier"})


@dataclass
class NoiseProfile:
    """Parameters of the executor's noise channel beyond plain calibration.

    Attributes:
        crosstalk_two_two: extra error added to a two-qubit gate per
            *simultaneously executing* two-qubit gate on an adjacent edge.
        crosstalk_two_one: extra error added per simultaneous single-qubit
            gate on a neighbouring qubit.
        coherent_strength: magnitude of the coherent (shape-distorting)
            component of the error distribution.
        scramble_locality: fraction of error mass that stays "near" the true
            distribution (bit-flip scrambled) rather than going to the
            decayed background.
        garbage_one_bias: probability that a bit reads 1 in the fully
            decohered background distribution.  Values below 0.5 model the
            amplitude-damping pull towards ``|0...0>`` that real
            superconducting devices show.
        readout_asymmetry: excess probability of 1 -> 0 readout decay
            relative to 0 -> 1 excitation errors.
        shot_noise: executors always sample finitely; kept here for clarity.
    """

    crosstalk_two_two: float = 0.004
    crosstalk_two_one: float = 0.001
    coherent_strength: float = 0.1
    scramble_locality: float = 0.5
    garbage_one_bias: float = 0.35
    readout_asymmetry: float = 2.0
    shot_noise: bool = True


@dataclass
class Device:
    """A compilation and execution target."""

    name: str
    coupling: CouplingMap
    true_calibration: Calibration
    reported_calibration: Calibration
    native_gates: FrozenSet[str] = field(default_factory=lambda: IQM_NATIVE_GATES)
    noise: NoiseProfile = field(default_factory=NoiseProfile)

    @property
    def num_qubits(self) -> int:
        return self.coupling.num_qubits

    @property
    def routing_tables(self):
        """Precomputed routing lookup tables, cached per topology.

        Distance matrix, adjacency matrix, and neighbour lists are shared
        by every layout/routing trial that targets this device (see
        :class:`~repro.hardware.coupling.RoutingTables`).
        """
        return self.coupling.routing_tables()

    def supports(self, gate_name: str) -> bool:
        return gate_name in self.native_gates

    def validate_circuit(self, circuit) -> None:
        """Raise ``ValueError`` if the circuit is not executable on this device."""
        if circuit.num_qubits > self.num_qubits:
            raise ValueError(
                f"circuit uses {circuit.num_qubits} qubits, device has "
                f"{self.num_qubits}"
            )
        for instruction in circuit.instructions:
            if instruction.name == "barrier":
                continue
            if not self.supports(instruction.name):
                raise ValueError(
                    f"gate '{instruction.name}' is not native to {self.name} "
                    f"(native: {sorted(self.native_gates)})"
                )
            if instruction.num_qubits == 2 and not self.coupling.has_edge(
                *instruction.qubits
            ):
                raise ValueError(
                    f"two-qubit gate on non-adjacent qubits {instruction.qubits}"
                )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Device({self.name!r}, qubits={self.num_qubits}, "
            f"edges={len(self.coupling.edges)})"
        )


def make_device(
    name: str,
    coupling: CouplingMap,
    seed: int,
    noise: NoiseProfile | None = None,
    native_gates: FrozenSet[str] = IQM_NATIVE_GATES,
    fidelity_drift: float = 0.3,
    relaxation_drift: float = 0.6,
    **calibration_ranges,
) -> Device:
    """Create a device with a random true calibration and a drifted snapshot."""
    rng = np.random.default_rng(seed)
    true_cal = random_calibration(coupling, rng, **calibration_ranges)
    reported = drift_calibration(
        true_cal, rng,
        fidelity_drift=fidelity_drift,
        relaxation_drift=relaxation_drift,
    )
    return Device(
        name=name,
        coupling=coupling,
        true_calibration=true_cal,
        reported_calibration=reported,
        native_gates=native_gates,
        noise=noise or NoiseProfile(),
    )
