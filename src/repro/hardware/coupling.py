"""Qubit connectivity graphs (coupling maps) and distance queries.

Dependency note: the graph structure is a plain adjacency-dict per qubit
(insertion-ordered, exactly like the ``networkx.Graph`` adjacency this
module used before the serving-stack refactor).  The shortest-path query
is a faithful port of networkx's bidirectional BFS — same frontier
alternation, same neighbour iteration order, hence the *same* path among
equal-length candidates — so compiled circuits are bit-identical to the
networkx era (pinned by the compiler golden-digest tests, and
cross-checked against networkx itself in ``tests/hardware`` when the
test-only extra is installed).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Sequence, Tuple

import numpy as np

Edge = Tuple[int, int]


@dataclass(frozen=True)
class RoutingTables:
    """Precomputed per-topology lookup structures shared by router trials.

    Built once per coupling map (level-3 compilation runs four routing
    trials over the same device; datasets run hundreds) and cached on the
    :class:`CouplingMap` / :class:`~repro.hardware.device.Device`:

    Attributes:
        distance: all-pairs shortest-path matrix (float64).
        adjacency: boolean adjacency matrix (``adjacency[a, b]`` iff edge).
        neighbors: sorted neighbour tuple per qubit.
    """

    distance: np.ndarray
    adjacency: np.ndarray
    neighbors: Tuple[Tuple[int, ...], ...]

    def to_arrays(self) -> Dict[str, np.ndarray]:
        """Flat-array encoding (cheap pickling for process pools).

        Same idiom as :meth:`repro.ml.tree.DecisionTreeRegressor.to_arrays`:
        the ragged ``neighbors`` tuple flattens into count/value arrays so
        a worker process receives a few numpy buffers instead of nested
        Python tuples.  Feed to :meth:`from_arrays` to reconstruct.
        """
        counts = np.asarray([len(row) for row in self.neighbors], dtype=np.int32)
        flat = np.asarray(
            [nbr for row in self.neighbors for nbr in row], dtype=np.int32
        )
        return {
            "distance": self.distance,
            "adjacency": self.adjacency,
            "neighbor_counts": counts,
            "neighbors": flat,
        }

    @classmethod
    def from_arrays(cls, arrays: Dict[str, np.ndarray]) -> "RoutingTables":
        """Rebuild tables from :meth:`to_arrays` output (bit-identical)."""
        counts = np.asarray(arrays["neighbor_counts"]).tolist()
        flat = np.asarray(arrays["neighbors"]).tolist()
        neighbors: List[Tuple[int, ...]] = []
        cursor = 0
        for count in counts:
            neighbors.append(tuple(flat[cursor:cursor + count]))
            cursor += count
        return cls(
            distance=np.asarray(arrays["distance"], dtype=np.float64),
            adjacency=np.asarray(arrays["adjacency"], dtype=bool),
            neighbors=tuple(neighbors),
        )


class CouplingMap:
    """Undirected connectivity graph between physical qubits.

    Two-qubit gates may only be applied along edges.  Provides the
    all-pairs shortest-path distance matrix used by layout and routing.
    """

    def __init__(self, num_qubits: int, edges: Iterable[Edge]):
        if num_qubits < 0:
            raise ValueError(f"num_qubits must be >= 0, got {num_qubits}")
        self.num_qubits = num_qubits
        # Insertion-ordered adjacency dicts: iteration order matches the
        # order edges were supplied, which BFS/path tie-breaking relies on.
        self._adj: List[Dict[int, None]] = [{} for _ in range(num_qubits)]
        for a, b in edges:
            if not (0 <= a < num_qubits and 0 <= b < num_qubits):
                raise ValueError(
                    f"edge ({a}, {b}) out of range: qubit indices must lie in "
                    f"[0, {num_qubits - 1}] for a {num_qubits}-qubit coupling map"
                )
            if a == b:
                raise ValueError(
                    f"self-loop on qubit {a}: couplers connect two distinct "
                    f"qubits; drop the ({a}, {a}) entry"
                )
            a, b = int(a), int(b)
            if b in self._adj[a]:
                raise ValueError(
                    f"duplicate edge ({a}, {b}): each coupler must be listed "
                    f"once (edges are undirected, so ({b}, {a}) counts too)"
                )
            self._adj[a][b] = None
            self._adj[b][a] = None
        self._distance: np.ndarray | None = None
        self._routing_tables: RoutingTables | None = None
        self._fingerprint: int | None = None

    @property
    def edges(self) -> List[Edge]:
        """Sorted list of (low, high) edges."""
        return sorted(
            (q, nbr)
            for q in range(self.num_qubits)
            for nbr in self._adj[q]
            if q < nbr
        )

    @property
    def edge_set(self) -> FrozenSet[Edge]:
        return frozenset(
            (q, nbr)
            for q in range(self.num_qubits)
            for nbr in self._adj[q]
            if q < nbr
        )

    def has_edge(self, a: int, b: int) -> bool:
        return 0 <= a < self.num_qubits and b in self._adj[a]

    def neighbors(self, qubit: int) -> List[int]:
        return sorted(self._adj[qubit])

    def degree(self, qubit: int) -> int:
        return len(self._adj[qubit])

    def is_connected(self) -> bool:
        return self.num_qubits == 0 or len(self._bfs_reach(0)) == self.num_qubits

    def _bfs_reach(self, start: int) -> Dict[int, int]:
        """BFS levels from ``start`` (insertion-ordered adjacency)."""
        levels = {start: 0}
        queue = deque([start])
        adj = self._adj
        while queue:
            node = queue.popleft()
            next_level = levels[node] + 1
            for nbr in adj[node]:
                if nbr not in levels:
                    levels[nbr] = next_level
                    queue.append(nbr)
        return levels

    def bfs_order(self, start: int) -> List[int]:
        """Qubits in BFS discovery order from ``start``.

        Neighbour expansion follows adjacency insertion order — identical
        to ``list(nx.bfs_tree(graph, start))`` on the equivalent graph
        (the contract :class:`~repro.compiler.passes.layout.LineLayout`
        relies on).  Unreachable qubits are omitted.
        """
        order = [start]
        seen = {start}
        queue = deque([start])
        adj = self._adj
        while queue:
            node = queue.popleft()
            for nbr in adj[node]:
                if nbr not in seen:
                    seen.add(nbr)
                    order.append(nbr)
                    queue.append(nbr)
        return order

    def connected_components(self) -> List[List[int]]:
        """Connected components, each in BFS order from its lowest qubit."""
        seen: set = set()
        components: List[List[int]] = []
        for start in range(self.num_qubits):
            if start in seen:
                continue
            component = self.bfs_order(start)
            seen.update(component)
            components.append(component)
        return components

    def distance_matrix(self) -> np.ndarray:
        """All-pairs shortest-path distances (``inf`` if disconnected)."""
        if self._distance is None:
            dist = np.full((self.num_qubits, self.num_qubits), np.inf)
            for source in range(self.num_qubits):
                for target, length in self._bfs_reach(source).items():
                    dist[source, target] = length
            self._distance = dist
        return self._distance

    def routing_tables(self) -> RoutingTables:
        """Cached :class:`RoutingTables` (distance/adjacency/neighbours)."""
        if self._routing_tables is None:
            adjacency = np.zeros((self.num_qubits, self.num_qubits), dtype=bool)
            for a, b in self.edges:
                adjacency[a, b] = adjacency[b, a] = True
            self._routing_tables = RoutingTables(
                distance=self.distance_matrix(),
                adjacency=adjacency,
                neighbors=tuple(
                    tuple(self.neighbors(q)) for q in range(self.num_qubits)
                ),
            )
        return self._routing_tables

    def fingerprint(self) -> int:
        """Content hash of the topology, used in compile-cache keys."""
        if self._fingerprint is None:
            self._fingerprint = hash((self.num_qubits, tuple(self.edges)))
        return self._fingerprint

    def distance(self, a: int, b: int) -> int:
        value = self.distance_matrix()[a, b]
        if np.isinf(value):
            raise ValueError(f"qubits {a} and {b} are disconnected")
        return int(value)

    def shortest_path(self, a: int, b: int) -> List[int]:
        """One shortest path from ``a`` to ``b`` (bidirectional BFS).

        Port of networkx's ``bidirectional_shortest_path``: the two
        frontiers alternate (smaller side expands), neighbours are
        scanned in adjacency insertion order, and the first meeting node
        wins — so among equal-length paths this returns exactly the one
        the networkx implementation would.  Routing determinism (and the
        golden compile digests) depend on that tie-break.
        """
        if not (0 <= a < self.num_qubits and 0 <= b < self.num_qubits):
            raise ValueError(
                f"shortest_path endpoints ({a}, {b}) must be qubits of a "
                f"{self.num_qubits}-qubit coupling map"
            )
        if a == b:
            return [a]
        adj = self._adj
        pred: Dict[int, int | None] = {a: None}
        succ: Dict[int, int | None] = {b: None}
        forward_fringe = [a]
        reverse_fringe = [b]
        meet = None
        while forward_fringe and reverse_fringe and meet is None:
            if len(forward_fringe) <= len(reverse_fringe):
                this_level, forward_fringe = forward_fringe, []
                for node in this_level:
                    for nbr in adj[node]:
                        if nbr not in pred:
                            forward_fringe.append(nbr)
                            pred[nbr] = node
                        if nbr in succ:
                            meet = nbr
                            break
                    if meet is not None:
                        break
            else:
                this_level, reverse_fringe = reverse_fringe, []
                for node in this_level:
                    for nbr in adj[node]:
                        if nbr not in succ:
                            succ[nbr] = node
                            reverse_fringe.append(nbr)
                        if nbr in pred:
                            meet = nbr
                            break
                    if meet is not None:
                        break
        if meet is None:
            raise ValueError(f"no path between qubits {a} and {b}")
        path: List[int] = []
        cursor: int | None = meet
        while cursor is not None:
            path.append(cursor)
            cursor = pred[cursor]
        path.reverse()
        cursor = succ[path[-1]]
        while cursor is not None:
            path.append(cursor)
            cursor = succ[cursor]
        return path

    def adjacent_edges(self, edge: Edge) -> List[Edge]:
        """Edges sharing at least one endpoint with ``edge`` (crosstalk pairs)."""
        a, b = edge
        out = set()
        for q in (a, b):
            for nbr in self._adj[q]:
                candidate = tuple(sorted((q, nbr)))
                if candidate != tuple(sorted(edge)):
                    out.add(candidate)
        return sorted(out)

    def subgraph_is_connected(self, qubits: Sequence[int]) -> bool:
        allowed = set(qubits)
        if not allowed:
            return True
        start = next(iter(qubits))
        seen = {start}
        queue = deque([start])
        while queue:
            node = queue.popleft()
            for nbr in self._adj[node]:
                if nbr in allowed and nbr not in seen:
                    seen.add(nbr)
                    queue.append(nbr)
        return len(seen) == len(allowed)

    def __getstate__(self):
        # Pickling must preserve per-node neighbour *insertion order* —
        # BFS and shortest-path tie-breaking (hence compiled-circuit
        # bit-identity across process workers) depend on it, so the
        # sorted ``edges`` property must never be used to reconstruct.
        # Precomputed routing tables ship as flat arrays so workers skip
        # the O(n^2) BFS rebuild.
        tables = self._routing_tables
        return {
            "num_qubits": self.num_qubits,
            "adjacency": tuple(tuple(nbrs) for nbrs in self._adj),
            "routing_tables": None if tables is None else tables.to_arrays(),
        }

    def __setstate__(self, state):
        self.num_qubits = state["num_qubits"]
        self._adj = [dict.fromkeys(nbrs) for nbrs in state["adjacency"]]
        tables = state["routing_tables"]
        self._routing_tables = (
            None if tables is None else RoutingTables.from_arrays(tables)
        )
        self._distance = (
            None if self._routing_tables is None
            else self._routing_tables.distance
        )
        # ``hash()`` is salted per interpreter; recompute lazily instead
        # of shipping a fingerprint that is wrong in the receiving process.
        self._fingerprint = None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"CouplingMap(qubits={self.num_qubits}, edges={len(self.edges)})"


# ---------------------------------------------------------------------------
# Standard topologies
# ---------------------------------------------------------------------------

def line_map(num_qubits: int) -> CouplingMap:
    """A 1-D chain."""
    return CouplingMap(num_qubits, [(i, i + 1) for i in range(num_qubits - 1)])


def ring_map(num_qubits: int) -> CouplingMap:
    """A cycle."""
    if num_qubits < 3:
        raise ValueError(
            f"a ring needs at least 3 qubits, got {num_qubits}; "
            f"use line_map for smaller devices"
        )
    edges = [(i, (i + 1) % num_qubits) for i in range(num_qubits)]
    return CouplingMap(num_qubits, edges)


def grid_map(rows: int, cols: int) -> CouplingMap:
    """A ``rows x cols`` square lattice (IQM 'crystal' style).

    Qubit ``r * cols + c`` sits at row ``r``, column ``c``.
    """
    edges: List[Edge] = []
    for r in range(rows):
        for c in range(cols):
            q = r * cols + c
            if c + 1 < cols:
                edges.append((q, q + 1))
            if r + 1 < rows:
                edges.append((q, q + cols))
    return CouplingMap(rows * cols, edges)


def star_map(num_qubits: int) -> CouplingMap:
    """Qubit 0 connected to all others."""
    return CouplingMap(num_qubits, [(0, i) for i in range(1, num_qubits)])


def full_map(num_qubits: int) -> CouplingMap:
    """All-to-all connectivity."""
    edges = [
        (i, j) for i in range(num_qubits) for j in range(i + 1, num_qubits)
    ]
    return CouplingMap(num_qubits, edges)


def hexagonal_lattice(m: int, n: int) -> Tuple[List[Tuple[int, int]], List[Tuple]]:
    """Node and edge sets of an ``m x n`` hexagonal lattice.

    Reproduces the (non-periodic) node/edge sets of
    ``networkx.hexagonal_lattice_graph(m, n)``: nodes are ``(column,
    row)`` positions on a brick-wall embedding with the two degree-1
    corner nodes removed (cross-checked against networkx in the hardware
    tests).  Nodes are returned sorted; edges sorted by endpoint.
    """
    if m <= 0 or n <= 0:
        return [], []
    rows = 2 * m + 2
    removed = {(0, rows - 1), (n, (rows - 1) * (n % 2))}
    nodes = sorted(
        (i, j)
        for i in range(n + 1)
        for j in range(rows)
        if (i, j) not in removed
    )
    present = set(nodes)
    column_edges = (
        ((i, j), (i, j + 1)) for i in range(n + 1) for j in range(rows - 1)
    )
    row_edges = (
        ((i, j), (i + 1, j))
        for i in range(n)
        for j in range(rows)
        if i % 2 == j % 2
    )
    edges = sorted(
        (a, b)
        for a, b in (*column_edges, *row_edges)
        if a in present and b in present
    )
    return nodes, edges


def heavy_hex_map(distance: int = 3) -> CouplingMap:
    """A small heavy-hex lattice (IBM style), for topology comparisons."""
    nodes, lattice_edges = hexagonal_lattice(distance, distance)
    mapping = {node: index for index, node in enumerate(nodes)}
    edges = [(mapping[a], mapping[b]) for a, b in lattice_edges]
    return CouplingMap(len(mapping), edges)


def grid_positions(rows: int, cols: int) -> Dict[int, Tuple[int, int]]:
    """(row, col) positions of grid qubits, for drawing and crosstalk geometry."""
    return {r * cols + c: (r, c) for r in range(rows) for c in range(cols)}
