"""Qubit connectivity graphs (coupling maps) and distance queries."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Sequence, Tuple

import networkx as nx
import numpy as np

Edge = Tuple[int, int]


@dataclass(frozen=True)
class RoutingTables:
    """Precomputed per-topology lookup structures shared by router trials.

    Built once per coupling map (level-3 compilation runs four routing
    trials over the same device; datasets run hundreds) and cached on the
    :class:`CouplingMap` / :class:`~repro.hardware.device.Device`:

    Attributes:
        distance: all-pairs shortest-path matrix (float64).
        adjacency: boolean adjacency matrix (``adjacency[a, b]`` iff edge).
        neighbors: sorted neighbour tuple per qubit.
    """

    distance: np.ndarray
    adjacency: np.ndarray
    neighbors: Tuple[Tuple[int, ...], ...]


class CouplingMap:
    """Undirected connectivity graph between physical qubits.

    Two-qubit gates may only be applied along edges.  Provides the
    all-pairs shortest-path distance matrix used by layout and routing.
    """

    def __init__(self, num_qubits: int, edges: Iterable[Edge]):
        if num_qubits < 0:
            raise ValueError(f"num_qubits must be >= 0, got {num_qubits}")
        self.num_qubits = num_qubits
        self.graph = nx.Graph()
        self.graph.add_nodes_from(range(num_qubits))
        for a, b in edges:
            if not (0 <= a < num_qubits and 0 <= b < num_qubits):
                raise ValueError(
                    f"edge ({a}, {b}) out of range: qubit indices must lie in "
                    f"[0, {num_qubits - 1}] for a {num_qubits}-qubit coupling map"
                )
            if a == b:
                raise ValueError(
                    f"self-loop on qubit {a}: couplers connect two distinct "
                    f"qubits; drop the ({a}, {a}) entry"
                )
            if self.graph.has_edge(a, b):
                raise ValueError(
                    f"duplicate edge ({a}, {b}): each coupler must be listed "
                    f"once (edges are undirected, so ({b}, {a}) counts too)"
                )
            self.graph.add_edge(int(a), int(b))
        self._distance: np.ndarray | None = None
        self._routing_tables: RoutingTables | None = None
        self._fingerprint: int | None = None

    @property
    def edges(self) -> List[Edge]:
        """Sorted list of (low, high) edges."""
        return sorted(tuple(sorted(e)) for e in self.graph.edges)

    @property
    def edge_set(self) -> FrozenSet[Edge]:
        return frozenset(tuple(sorted(e)) for e in self.graph.edges)

    def has_edge(self, a: int, b: int) -> bool:
        return self.graph.has_edge(a, b)

    def neighbors(self, qubit: int) -> List[int]:
        return sorted(self.graph.neighbors(qubit))

    def degree(self, qubit: int) -> int:
        return self.graph.degree(qubit)

    def is_connected(self) -> bool:
        return self.num_qubits == 0 or nx.is_connected(self.graph)

    def distance_matrix(self) -> np.ndarray:
        """All-pairs shortest-path distances (``inf`` if disconnected)."""
        if self._distance is None:
            dist = np.full((self.num_qubits, self.num_qubits), np.inf)
            for source, lengths in nx.all_pairs_shortest_path_length(self.graph):
                for target, length in lengths.items():
                    dist[source, target] = length
            self._distance = dist
        return self._distance

    def routing_tables(self) -> RoutingTables:
        """Cached :class:`RoutingTables` (distance/adjacency/neighbours)."""
        if self._routing_tables is None:
            adjacency = np.zeros((self.num_qubits, self.num_qubits), dtype=bool)
            for a, b in self.graph.edges:
                adjacency[a, b] = adjacency[b, a] = True
            self._routing_tables = RoutingTables(
                distance=self.distance_matrix(),
                adjacency=adjacency,
                neighbors=tuple(
                    tuple(self.neighbors(q)) for q in range(self.num_qubits)
                ),
            )
        return self._routing_tables

    def fingerprint(self) -> int:
        """Content hash of the topology, used in compile-cache keys."""
        if self._fingerprint is None:
            self._fingerprint = hash((self.num_qubits, tuple(self.edges)))
        return self._fingerprint

    def distance(self, a: int, b: int) -> int:
        value = self.distance_matrix()[a, b]
        if np.isinf(value):
            raise ValueError(f"qubits {a} and {b} are disconnected")
        return int(value)

    def shortest_path(self, a: int, b: int) -> List[int]:
        return nx.shortest_path(self.graph, a, b)

    def adjacent_edges(self, edge: Edge) -> List[Edge]:
        """Edges sharing at least one endpoint with ``edge`` (crosstalk pairs)."""
        a, b = edge
        out = set()
        for q in (a, b):
            for nbr in self.graph.neighbors(q):
                candidate = tuple(sorted((q, nbr)))
                if candidate != tuple(sorted(edge)):
                    out.add(candidate)
        return sorted(out)

    def subgraph_is_connected(self, qubits: Sequence[int]) -> bool:
        sub = self.graph.subgraph(qubits)
        return len(qubits) == 0 or nx.is_connected(sub)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"CouplingMap(qubits={self.num_qubits}, edges={len(self.edges)})"


# ---------------------------------------------------------------------------
# Standard topologies
# ---------------------------------------------------------------------------

def line_map(num_qubits: int) -> CouplingMap:
    """A 1-D chain."""
    return CouplingMap(num_qubits, [(i, i + 1) for i in range(num_qubits - 1)])


def ring_map(num_qubits: int) -> CouplingMap:
    """A cycle."""
    if num_qubits < 3:
        raise ValueError(
            f"a ring needs at least 3 qubits, got {num_qubits}; "
            f"use line_map for smaller devices"
        )
    edges = [(i, (i + 1) % num_qubits) for i in range(num_qubits)]
    return CouplingMap(num_qubits, edges)


def grid_map(rows: int, cols: int) -> CouplingMap:
    """A ``rows x cols`` square lattice (IQM 'crystal' style).

    Qubit ``r * cols + c`` sits at row ``r``, column ``c``.
    """
    edges: List[Edge] = []
    for r in range(rows):
        for c in range(cols):
            q = r * cols + c
            if c + 1 < cols:
                edges.append((q, q + 1))
            if r + 1 < rows:
                edges.append((q, q + cols))
    return CouplingMap(rows * cols, edges)


def star_map(num_qubits: int) -> CouplingMap:
    """Qubit 0 connected to all others."""
    return CouplingMap(num_qubits, [(0, i) for i in range(1, num_qubits)])


def full_map(num_qubits: int) -> CouplingMap:
    """All-to-all connectivity."""
    edges = [
        (i, j) for i in range(num_qubits) for j in range(i + 1, num_qubits)
    ]
    return CouplingMap(num_qubits, edges)


def heavy_hex_map(distance: int = 3) -> CouplingMap:
    """A small heavy-hex lattice (IBM style), for topology comparisons."""
    graph = nx.hexagonal_lattice_graph(distance, distance)
    mapping = {node: index for index, node in enumerate(sorted(graph.nodes))}
    edges = [(mapping[a], mapping[b]) for a, b in graph.edges]
    return CouplingMap(len(mapping), edges)


def grid_positions(rows: int, cols: int) -> Dict[int, Tuple[int, int]]:
    """(row, col) positions of grid qubits, for drawing and crosstalk geometry."""
    return {r * cols + c: (r, c) for r in range(rows) for c in range(cols)}
