"""The device zoo: named, seeded device families on every topology.

Builds on :mod:`~repro.hardware.topologies` to turn each coupling-map
family into a full :class:`~repro.hardware.device.Device` family with
three calibrated noise tiers:

* ``clean``   — fresh calibration, little crosstalk (Q20-B-like),
* ``typical`` — the middle of the road,
* ``noisy``   — strong crosstalk and stale calibration (Q20-A-like).

Seed conventions: a zoo device is fully determined by its
``(family, num_qubits, tier, seed, drift_scale)`` tuple.  The user-facing
``seed`` is folded together with the family name, size, and tier through
SHA-256 into the calibration seed handed to
:func:`~repro.hardware.device.make_device` (and, for seeded topologies
such as ``random``, into the graph builder), so distinct family members
never share calibration streams even at equal user seeds, and the same
spec rebuilds the identical device in every process.

Spec strings (CLI ``--device`` and :func:`device_from_spec`)::

    zoo:<family>[:<num_qubits>[:<tier>[:<seed>]]]

e.g. ``zoo:ring``, ``zoo:heavy_hex:16:noisy``, ``zoo:random:12:clean:7``.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .calibration import GateDurations
from .device import Device, NoiseProfile, make_device
from .topologies import TOPOLOGIES, TopologyFamily

#: The spec grammar, as one string every user-facing surface quotes.
#: :func:`device_from_spec`, the CLI parsers, and ``zoo --list`` all
#: render this constant, so the grammar cannot drift between help texts.
ZOO_SPEC_GRAMMAR = "zoo:<family>[:<size>[:<tier>[:<seed>]]]"

#: Ready-made ``--device`` help line for CLI parsers.
ZOO_SPEC_HELP = (
    f"q20a, q20b, or a zoo spec {ZOO_SPEC_GRAMMAR} "
    "like zoo:ring:12:noisy:1 (see `zoo --list`)"
)


@dataclass(frozen=True)
class NoiseTier:
    """Calibration ranges, drift, and noise-channel knobs of one tier."""

    name: str
    description: str
    noise: NoiseProfile
    one_qubit_fidelity: Tuple[float, float]
    two_qubit_fidelity: Tuple[float, float]
    readout_fidelity: Tuple[float, float]
    t1_us: Tuple[float, float]
    t2_us: Tuple[float, float]
    fidelity_drift: float
    relaxation_drift: float
    durations: GateDurations = field(default_factory=GateDurations)


#: The three calibrated noise tiers, bracketed by the two case-study QPUs.
NOISE_TIERS: Dict[str, NoiseTier] = {
    tier.name: tier
    for tier in (
        NoiseTier(
            name="clean",
            description="fresh calibration, weak crosstalk (Q20-B-like)",
            noise=NoiseProfile(
                crosstalk_two_two=0.004,
                crosstalk_two_one=0.0012,
                coherent_strength=0.05,
                scramble_locality=0.6,
                garbage_one_bias=0.35,
                readout_asymmetry=2.0,
            ),
            one_qubit_fidelity=(0.9985, 0.9998),
            two_qubit_fidelity=(0.965, 0.995),
            readout_fidelity=(0.955, 0.992),
            t1_us=(28.0, 60.0),
            t2_us=(10.0, 35.0),
            fidelity_drift=0.12,
            relaxation_drift=0.5,
            durations=GateDurations(one_qubit=40.0, two_qubit=120.0, readout=1000.0),
        ),
        NoiseTier(
            name="typical",
            description="mid-grade calibration and crosstalk",
            noise=NoiseProfile(
                crosstalk_two_two=0.008,
                crosstalk_two_one=0.002,
                coherent_strength=0.10,
                scramble_locality=0.55,
                garbage_one_bias=0.33,
                readout_asymmetry=2.2,
            ),
            one_qubit_fidelity=(0.9975, 0.9997),
            two_qubit_fidelity=(0.955, 0.993),
            readout_fidelity=(0.942, 0.990),
            t1_us=(22.0, 52.0),
            t2_us=(8.0, 30.0),
            fidelity_drift=0.20,
            relaxation_drift=0.8,
            durations=GateDurations(one_qubit=41.0, two_qubit=125.0, readout=1100.0),
        ),
        NoiseTier(
            name="noisy",
            description="stale calibration, strong crosstalk (Q20-A-like)",
            noise=NoiseProfile(
                crosstalk_two_two=0.012,
                crosstalk_two_one=0.003,
                coherent_strength=0.16,
                scramble_locality=0.5,
                garbage_one_bias=0.30,
                readout_asymmetry=2.5,
            ),
            one_qubit_fidelity=(0.9965, 0.9996),
            two_qubit_fidelity=(0.945, 0.992),
            readout_fidelity=(0.930, 0.988),
            t1_us=(18.0, 45.0),
            t2_us=(6.0, 25.0),
            fidelity_drift=0.30,
            relaxation_drift=1.1,
            durations=GateDurations(one_qubit=42.0, two_qubit=130.0, readout=1200.0),
        ),
    )
}

#: Default device size per topology family (chosen so fast tests stay fast
#: while each family still shows its characteristic connectivity).
DEFAULT_SIZES: Dict[str, int] = {
    "line": 10,
    "ring": 12,
    "ladder": 12,
    "star": 8,
    "grid": 12,
    "heavy_hex": 16,
    "random": 12,
}

DEFAULT_TIER = "typical"


def zoo_families() -> List[str]:
    """Names of every zoo device family (one per topology family)."""
    return sorted(TOPOLOGIES)


def _calibration_seed(family: str, num_qubits: int, tier: str, seed: int) -> int:
    """Process-stable seed folding the whole spec (SHA-256, not ``hash``)."""
    text = f"repro-zoo:{family}:{num_qubits}:{tier}:{seed}"
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


def make_zoo_device(
    family: str,
    num_qubits: Optional[int] = None,
    tier: str = DEFAULT_TIER,
    seed: int = 0,
    drift_scale: float = 1.0,
) -> Device:
    """Build one deterministic member of a zoo device family.

    Args:
        family: topology family name (see :func:`zoo_families`).
        num_qubits: target size (default: the family's
            :data:`DEFAULT_SIZES` entry).  Quantized lattices (heavy-hex)
            may return fewer qubits; the device reflects the actual count.
        tier: noise tier name (:data:`NOISE_TIERS`).
        seed: family-member index; every value gives an independent but
            reproducible calibration (and, for ``random``, topology).
        drift_scale: multiplies the tier's calibration-staleness knobs
            (``0`` = perfectly fresh reported calibration, ``> 1`` =
            staler than the tier default).

    Returns:
        A fully calibrated :class:`~repro.hardware.device.Device` named
        ``zoo-<family><n>-<tier>-s<seed>``.
    """
    try:
        topology: TopologyFamily = TOPOLOGIES[family]
    except KeyError:
        raise ValueError(
            f"unknown zoo family '{family}'; available: {zoo_families()}"
        ) from None
    try:
        tier_spec = NOISE_TIERS[tier]
    except KeyError:
        raise ValueError(
            f"unknown noise tier '{tier}'; available: {sorted(NOISE_TIERS)}"
        ) from None
    if drift_scale < 0:
        raise ValueError(f"drift_scale must be >= 0, got {drift_scale}")
    size = DEFAULT_SIZES[family] if num_qubits is None else num_qubits
    if topology.seeded:
        # Seeded topologies are exact-size, so the requested size is the
        # actual one and can feed both the graph and calibration streams.
        master = _calibration_seed(family, size, tier, seed)
        coupling = topology.build(size, seed=master)
    else:
        # Quantized lattices may round the size down; fold the *actual*
        # qubit count into the seed so e.g. heavy_hex:17 and heavy_hex:16
        # (both the 16-qubit lattice, same name) are the same device.
        coupling = topology.build(size)
        master = _calibration_seed(family, coupling.num_qubits, tier, seed)
    return make_device(
        name=f"zoo-{family}{coupling.num_qubits}-{tier}-s{seed}",
        coupling=coupling,
        seed=master,
        noise=tier_spec.noise,
        fidelity_drift=tier_spec.fidelity_drift * drift_scale,
        relaxation_drift=tier_spec.relaxation_drift * drift_scale,
        one_qubit_fidelity=tier_spec.one_qubit_fidelity,
        two_qubit_fidelity=tier_spec.two_qubit_fidelity,
        readout_fidelity=tier_spec.readout_fidelity,
        t1_us=tier_spec.t1_us,
        t2_us=tier_spec.t2_us,
        durations=tier_spec.durations,
    )


def device_from_spec(spec: str) -> Device:
    """Parse a ``zoo:<family>[:<size>[:<tier>[:<seed>]]]`` device spec."""
    parts = spec.split(":")
    if parts and parts[0].lower() == "zoo":
        parts = parts[1:]
    if not parts or not parts[0]:
        raise ValueError(
            f"empty zoo spec; expected {ZOO_SPEC_GRAMMAR}, "
            f"with <family> one of {zoo_families()}"
        )
    if len(parts) > 4:
        raise ValueError(
            f"malformed zoo spec {spec!r}: at most {ZOO_SPEC_GRAMMAR}"
        )
    family = parts[0]
    num_qubits = None
    tier = DEFAULT_TIER
    seed = 0
    try:
        if len(parts) > 1 and parts[1]:
            num_qubits = int(parts[1])
        if len(parts) > 3 and parts[3]:
            seed = int(parts[3])
    except ValueError:
        raise ValueError(
            f"malformed zoo spec {spec!r}: <size> and <seed> must be integers"
        ) from None
    if len(parts) > 2 and parts[2]:
        tier = parts[2]
    return make_zoo_device(family, num_qubits=num_qubits, tier=tier, seed=seed)


def zoo_summary() -> str:
    """One line per family: the ``python -m repro zoo --list`` payload."""
    lines = [
        f"{'family':<11} {'default':>8} {'sizes':<22} description",
        "-" * 78,
    ]
    for name in zoo_families():
        topology = TOPOLOGIES[name]
        sizing = (
            f"exact, >= {topology.min_qubits}"
            if topology.exact_size
            else f"quantized, >= {topology.min_qubits}"
        )
        if topology.seeded:
            sizing += ", seeded"
        lines.append(
            f"{name:<11} {DEFAULT_SIZES[name]:>7}q {sizing:<22} "
            f"{topology.description}"
        )
    lines.append("-" * 78)
    lines.append(f"noise tiers: {', '.join(sorted(NOISE_TIERS))}")
    lines.append(f"spec: {ZOO_SPEC_GRAMMAR}")
    return "\n".join(lines)
