"""The two 20-qubit IQM-style devices used in the paper's case study.

The paper executes its benchmark set on two members of IQM's 20-qubit
"crystal" series hosted at LRZ, labelled Q20-A and Q20-B.  Their native gate
set is a parameterized single-qubit rotation (phased-RX) plus CZ, with
qubits on a square grid.  We model both as 4x5 grid devices.

Q20-A is the noisier device with a staler calibration snapshot; Q20-B is
cleaner and better characterized.  This asymmetry reproduces the paper's
Table I column ordering, where every figure of merit correlates better on
Q20-B than on Q20-A.
"""

from __future__ import annotations

from .calibration import GateDurations
from .coupling import CouplingMap, grid_map
from .device import Device, NoiseProfile, make_device

Q20_ROWS = 4
Q20_COLS = 5

#: Seeds fixing the two devices' calibrations (deterministic reproduction).
Q20A_SEED = 20250122
Q20B_SEED = 20250123


def q20_coupling() -> CouplingMap:
    """The 4x5 square-grid ("crystal") coupling map of the Q20 series."""
    return grid_map(Q20_ROWS, Q20_COLS)


def make_q20a(seed: int = Q20A_SEED) -> Device:
    """Q20-A: the noisier, more crosstalk-prone device with staler calibration."""
    return make_device(
        name="Q20-A",
        coupling=q20_coupling(),
        seed=seed,
        noise=NoiseProfile(
            crosstalk_two_two=0.012,
            crosstalk_two_one=0.003,
            coherent_strength=0.16,
            scramble_locality=0.5,
            garbage_one_bias=0.30,
            readout_asymmetry=2.5,
        ),
        fidelity_drift=0.30,
        relaxation_drift=1.1,
        one_qubit_fidelity=(0.9965, 0.9996),
        two_qubit_fidelity=(0.945, 0.992),
        readout_fidelity=(0.930, 0.988),
        t1_us=(18.0, 45.0),
        t2_us=(6.0, 25.0),
        durations=GateDurations(one_qubit=42.0, two_qubit=130.0, readout=1200.0),
    )


def make_q20b(seed: int = Q20B_SEED) -> Device:
    """Q20-B: the cleaner device with fresher calibration data."""
    return make_device(
        name="Q20-B",
        coupling=q20_coupling(),
        seed=seed,
        noise=NoiseProfile(
            crosstalk_two_two=0.004,
            crosstalk_two_one=0.0012,
            coherent_strength=0.05,
            scramble_locality=0.6,
            garbage_one_bias=0.35,
            readout_asymmetry=2.0,
        ),
        fidelity_drift=0.12,
        relaxation_drift=0.5,
        one_qubit_fidelity=(0.9985, 0.9998),
        two_qubit_fidelity=(0.965, 0.995),
        readout_fidelity=(0.955, 0.992),
        t1_us=(28.0, 60.0),
        t2_us=(10.0, 35.0),
        durations=GateDurations(one_qubit=40.0, two_qubit=120.0, readout=1000.0),
    )


def make_q20_pair() -> tuple[Device, Device]:
    """Both devices of the case study, in paper order (Q20-A, Q20-B)."""
    return make_q20a(), make_q20b()
