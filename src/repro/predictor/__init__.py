"""The proposed figure of merit: datasets, estimator, PST extension."""

from .dataset import CircuitDataset, DatasetEntry, build_dataset
from .estimator import (
    DEFAULT_PARAM_GRID,
    EstimatorReport,
    HellingerEstimator,
    train_and_evaluate,
)
from .pst import mirror_circuit, pst, pst_label

__all__ = [
    "CircuitDataset",
    "DEFAULT_PARAM_GRID",
    "DatasetEntry",
    "EstimatorReport",
    "HellingerEstimator",
    "build_dataset",
    "mirror_circuit",
    "pst",
    "pst_label",
    "train_and_evaluate",
]
