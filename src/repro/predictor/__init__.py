"""The proposed figure of merit: datasets, estimator, serving, PST extension."""

from .dataset import CircuitDataset, DatasetEntry, build_dataset
from .estimator import (
    DEFAULT_PARAM_GRID,
    EstimatorReport,
    HellingerEstimator,
    train_and_evaluate,
)
from .pst import mirror_circuit, pst, pst_label
from .service import DEFAULT_CHUNK_SIZE, FomService

__all__ = [
    "CircuitDataset",
    "DEFAULT_CHUNK_SIZE",
    "DEFAULT_PARAM_GRID",
    "DatasetEntry",
    "EstimatorReport",
    "FomService",
    "HellingerEstimator",
    "build_dataset",
    "mirror_circuit",
    "pst",
    "pst_label",
    "train_and_evaluate",
]
