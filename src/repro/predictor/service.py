"""The high-throughput figure-of-merit inference service.

The paper's headline claim is that the trained estimator is *usable* as a
fast figure of merit: hand it compiled circuits, get predicted Hellinger
distances, no calibration data required.  After PRs 1-4 made simulation,
compilation, and training fast, this module adds the missing end-to-end
entry point: :class:`FomService` loads a persisted estimator (the PR 3
``.npz`` model format) and a device **once**, then scores arbitrarily many
circuits per call through the batched substrates —
:func:`~repro.compiler.compile.compile_batch` for compilation, the
single-pass :func:`~repro.fom.features.feature_matrix` for featurization,
and one forest ``predict`` per chunk.

Inputs stream in chunks (:attr:`FomService.chunk_size`), so datasets
larger than memory can be scored from a generator; predictions are
**invariant to the chunk size** — per-circuit compile seeds are assigned
by global input position, not chunk position.

``python -m repro predict`` and ``examples/predict_service.py`` are the
command-line / scripted frontends.
"""

from __future__ import annotations

import time
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

import numpy as np

from ..circuits.circuit import QuantumCircuit
from ..compiler.compile import SEED_STRIDE, CompilationResult, compile_batch
from ..fom.features import feature_matrix
from ..fom.metrics import FOM_ORDER, PROPOSED_LABEL, esp, expected_fidelity_batch
from ..hardware import Device, resolve_device

#: Default number of circuits compiled/featurized/predicted per chunk.
DEFAULT_CHUNK_SIZE = 128


class FomService:
    """Serve Hellinger-distance predictions for batches of circuits.

    Loads its two heavyweight inputs once — a fitted estimator (anything
    with a ``predict(X)`` over 30-dim feature rows, typically a
    :class:`~repro.predictor.estimator.HellingerEstimator`) and a target
    :class:`~repro.hardware.device.Device` — and then answers
    :meth:`predict` / :meth:`score_established_foms` calls with batched
    compile -> featurize -> predict sweeps.

    Args:
        estimator: fitted model mapping ``(M, 30)`` features to distances.
        device: a :class:`Device`, a built-in name (``q20a``/``q20b``),
            or a zoo spec string (``zoo:heavy_hex:16:noisy:1``).
        optimization_level: default compilation level for served circuits
            — 0-3, or ``"search"`` for the predictor-guided beam search
            (:mod:`repro.compiler.search`) with the service's own
            estimator as the cost model.
        seed: base seed of the per-circuit compile-seed streams
            (``seed + 7919 * position``, the dataset convention).
        num_trials: level-3 layout/routing trials per circuit.
        chunk_size: circuits per streamed chunk (memory ceiling).
        search_store: leaderboard directory /
            :class:`~repro.evaluation.artifacts.ArtifactStore` consulted
            by ``"search"`` compiles (``None``: search without one).
        beam_width: ``"search"`` beam width.
        generations: ``"search"`` expansion generations.
    """

    def __init__(
        self,
        estimator,
        device: "Device | str",
        *,
        optimization_level: "int | str" = 3,
        seed: int = 0,
        num_trials: int = 4,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        search_store=None,
        beam_width: Optional[int] = None,
        generations: Optional[int] = None,
    ):
        from ..compiler.search import DEFAULT_BEAM_WIDTH, DEFAULT_GENERATIONS

        if not hasattr(estimator, "predict"):
            raise TypeError(
                f"estimator must expose predict(X); got {type(estimator).__name__}"
            )
        if chunk_size < 1:
            raise ValueError("chunk_size must be positive")
        self.estimator = estimator
        self.device = resolve_device(device)
        self.optimization_level = optimization_level
        self.seed = seed
        self.num_trials = num_trials
        self.chunk_size = chunk_size
        self.search_store = search_store
        self.beam_width = (
            DEFAULT_BEAM_WIDTH if beam_width is None else beam_width
        )
        self.generations = (
            DEFAULT_GENERATIONS if generations is None else generations
        )

    # ------------------------------------------------------------------
    # Construction from persisted artifacts
    # ------------------------------------------------------------------

    @classmethod
    def load(cls, model_path, device: "Device | str", **kwargs) -> "FomService":
        """Boot a service from a ``save_model`` ``.npz`` file.

        Raises :class:`~repro.evaluation.persistence.PersistenceError`
        on missing/corrupt/foreign model files.
        """
        from ..evaluation.persistence import load_model

        return cls(load_model(model_path), device, **kwargs)

    @classmethod
    def from_store(
        cls,
        store,
        device: "Device | str",
        *,
        name: Optional[str] = None,
        fingerprint: Optional[str] = None,
        **kwargs,
    ) -> "FomService":
        """Boot a service from an estimator checkpoint in an artifact store.

        ``store`` is an :class:`~repro.evaluation.artifacts.ArtifactStore`
        or a cache directory path (the one ``run_cross_device_study``
        writes its train-split estimator into).  ``name`` /
        ``fingerprint`` narrow the candidates when the store holds more
        than one estimator; ambiguity is an error rather than a guess.
        """
        from ..evaluation.artifacts import ArtifactStore

        store = ArtifactStore.coerce(store)
        candidates = store.find("estimator", name=name, fingerprint=fingerprint)
        if not candidates:
            raise ValueError(
                f"no estimator artifact matching name={name!r} "
                f"fingerprint={fingerprint!r} in {store.root}"
            )
        if len(candidates) > 1:
            raise ValueError(
                "ambiguous estimator artifacts "
                f"{sorted((ref.name, ref.fingerprint) for ref in candidates)} "
                f"in {store.root}; pass name=/fingerprint= to pick one"
            )
        ref = candidates[0]
        estimator = store.get("estimator", ref.name, ref.fingerprint)
        if estimator is None:
            raise ValueError(
                f"estimator artifact {(ref.name, ref.fingerprint)} in "
                f"{store.root} is corrupted or of the wrong kind"
            )
        return cls(estimator, device, **kwargs)

    # ------------------------------------------------------------------
    # Serving
    # ------------------------------------------------------------------

    def predict(
        self,
        circuits: Iterable[QuantumCircuit],
        *,
        optimization_level: Optional[int] = None,
        max_workers: Optional[int] = None,
        workers_mode: Optional[str] = None,
        chunk_size: Optional[int] = None,
    ) -> np.ndarray:
        """Predicted Hellinger distances, one per input circuit.

        The pipeline per chunk is ``compile_batch`` -> batched featurize
        -> one forest ``predict``.  ``circuits`` may be any iterable —
        including a generator over a corpus that does not fit in memory;
        only ``chunk_size`` circuits are materialized at a time.  Results
        are identical for every ``chunk_size``, ``max_workers``, and
        ``workers_mode`` (``None`` workers = one per CPU; the GIL-bound
        compile and featurize stages default to a process pool).
        """
        parts = [
            predictions
            for predictions, _ in self._serve(
                circuits, optimization_level, max_workers, workers_mode,
                chunk_size, want_foms=False,
            )
        ]
        return np.concatenate(parts) if parts else np.empty(0)

    def predict_stream(
        self,
        circuits: Iterable[QuantumCircuit],
        *,
        optimization_level: Optional[int] = None,
        max_workers: Optional[int] = None,
        workers_mode: Optional[str] = None,
        chunk_size: Optional[int] = None,
    ) -> Iterator[np.ndarray]:
        """Like :meth:`predict`, but yield per-chunk prediction arrays.

        For callers that also cannot hold the *output* (or want results
        flowing before the corpus is exhausted).
        """
        for predictions, _ in self._serve(
            circuits, optimization_level, max_workers, workers_mode,
            chunk_size, want_foms=False,
        ):
            yield predictions

    def score_established_foms(
        self,
        circuits: Iterable[QuantumCircuit],
        *,
        optimization_level: Optional[int] = None,
        max_workers: Optional[int] = None,
        workers_mode: Optional[str] = None,
        chunk_size: Optional[int] = None,
    ) -> Dict[str, np.ndarray]:
        """The paper's full metric panel in one call.

        One compile pass feeds everything: the four established figures
        of merit of Table I (gate count, depth, expected fidelity, ESP —
        computed on the *compiled* circuit against the device's reported
        calibration) plus the proposed estimator's predictions under the
        :data:`PROPOSED_LABEL` key.  Each value is one array, in input
        order.
        """
        panel: Dict[str, List[np.ndarray]] = {}
        for predictions, foms in self._serve(
            circuits, optimization_level, max_workers, workers_mode,
            chunk_size, want_foms=True,
        ):
            for fom_name, values in foms.items():
                panel.setdefault(fom_name, []).append(values)
            panel.setdefault(PROPOSED_LABEL, []).append(predictions)
        if not panel:
            return {
                name: np.empty(0) for name in (*FOM_ORDER, PROPOSED_LABEL)
            }
        return {name: np.concatenate(parts) for name, parts in panel.items()}

    def predict_at(
        self,
        circuits: "List[QuantumCircuit]",
        *,
        positions: "List[int]",
        optimization_level: Optional[int] = None,
        max_workers: Optional[int] = None,
        workers_mode: Optional[str] = None,
        want_foms: bool = False,
        timings: Optional[Dict[str, float]] = None,
        search_session=None,
    ) -> Tuple[np.ndarray, Dict[str, np.ndarray]]:
        """One batched pipeline pass with explicit per-circuit seed positions.

        This is the serving daemon's coalescing primitive: a dynamic
        batch that merges several concurrent requests must give each
        circuit the compile seed of its position *within its own
        request* — not its position in the merged batch — so that the
        response is bit-identical to the same request served alone.
        ``predict_at(circuits, positions=range(len(circuits)))`` is
        exactly ``predict(circuits)``; per-circuit work is independent
        (compilation seeds, feature rows, forest rows), so any
        concatenation of requests served through one ``predict_at`` call
        splits back into the solo answers.

        With ``want_foms`` the established Table-I panel is computed from
        the same compile pass and returned as the second element (empty
        dict otherwise).  ``timings`` (when given) accumulates per-stage
        wall-clock seconds under ``"compile_s"``, ``"featurize_s"``, and
        ``"predict_s"`` — the daemon's ``/stats`` feed.

        At ``optimization_level="search"``, ``search_session`` (a
        :class:`~repro.compiler.search.LeaderboardSession`) shares one
        leaderboard snapshot across several calls; without one the call
        opens and flushes its own.
        """
        circuits = list(circuits)
        positions = [int(position) for position in positions]
        if len(positions) != len(circuits):
            raise ValueError(
                f"positions ({len(positions)}) must match "
                f"circuits ({len(circuits)})"
            )
        if any(position < 0 for position in positions):
            raise ValueError("positions must be non-negative")
        level = (
            self.optimization_level
            if optimization_level is None
            else optimization_level
        )
        own_session = level == "search" and search_session is None
        if own_session:
            search_session = self._search_session()
        started = time.perf_counter()
        results = compile_batch(
            circuits,
            self.device,
            optimization_level=level,
            seeds=[self.seed + SEED_STRIDE * position for position in positions],
            num_trials=self.num_trials,
            max_workers=max_workers,
            workers_mode=workers_mode,
            **self._compile_extras(level, search_session),
        )
        if own_session:
            search_session.flush()
        compiled = [result.circuit for result in results]
        compiled_at = time.perf_counter()
        features = feature_matrix(
            compiled, max_workers=max_workers, workers_mode=workers_mode
        )
        featurized_at = time.perf_counter()
        if circuits:
            predictions = np.asarray(
                self.estimator.predict(features), dtype=float
            )
        else:
            predictions = np.empty(0)
        predicted_at = time.perf_counter()
        foms = self._established_panel(compiled) if want_foms else {}
        if timings is not None:
            timings["compile_s"] = (
                timings.get("compile_s", 0.0) + (compiled_at - started)
            )
            timings["featurize_s"] = (
                timings.get("featurize_s", 0.0) + (featurized_at - compiled_at)
            )
            timings["predict_s"] = (
                timings.get("predict_s", 0.0) + (predicted_at - featurized_at)
            )
        return predictions, foms

    def compile_only(
        self,
        circuits: Iterable[QuantumCircuit],
        *,
        optimization_level: "Optional[int | str]" = None,
        max_workers: Optional[int] = None,
        workers_mode: Optional[str] = None,
    ) -> List[CompilationResult]:
        """The service's compilation stage alone (seed streams included)."""
        circuits = list(circuits)
        level = (
            self.optimization_level
            if optimization_level is None
            else optimization_level
        )
        session = self._search_session() if level == "search" else None
        results = self._compile_chunk(
            circuits, 0, level, max_workers, workers_mode, session
        )
        if session is not None:
            session.flush()
        return results

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _search_session(self):
        """A per-call leaderboard view: snapshot reads, deferred writes.

        One session spans every chunk of a :meth:`predict` /
        :meth:`score_established_foms` call, so results stay invariant
        to ``chunk_size``: lookups always see the store as it was at
        call start, and freshly searched winners land only when the call
        completes.
        """
        from ..compiler.search import LeaderboardSession

        return LeaderboardSession.for_search(
            self.search_store,
            self.estimator,
            beam_width=self.beam_width,
            generations=self.generations,
            num_trials=self.num_trials,
        )

    def _compile_extras(self, level, session) -> Dict:
        """compile_batch keywords that only the ``"search"`` level needs."""
        if level != "search":
            return {}
        return {
            "estimator": self.estimator,
            "search_opts": {
                "beam_width": self.beam_width,
                "generations": self.generations,
                "session": session,
            },
        }

    def _compile_chunk(
        self,
        chunk: List[QuantumCircuit],
        offset: int,
        optimization_level: "int | str",
        max_workers: Optional[int],
        workers_mode: Optional[str],
        search_session=None,
    ) -> List[CompilationResult]:
        return compile_batch(
            chunk,
            self.device,
            optimization_level=optimization_level,
            # Seeds follow the global input position, so chunking cannot
            # change which compilation a circuit gets.
            seeds=[
                self.seed + SEED_STRIDE * (offset + index)
                for index in range(len(chunk))
            ],
            num_trials=self.num_trials,
            max_workers=max_workers,
            workers_mode=workers_mode,
            **self._compile_extras(optimization_level, search_session),
        )

    def _serve(
        self,
        circuits: Iterable[QuantumCircuit],
        optimization_level: Optional[int],
        max_workers: Optional[int],
        workers_mode: Optional[str],
        chunk_size: Optional[int],
        want_foms: bool,
    ) -> Iterator[Tuple[np.ndarray, Dict[str, np.ndarray]]]:
        level = (
            self.optimization_level
            if optimization_level is None
            else optimization_level
        )
        size = self.chunk_size if chunk_size is None else chunk_size
        if size < 1:
            raise ValueError("chunk_size must be positive")
        # Compilation and featurization are GIL-bound pure Python, so
        # both stages fan out over process pools by default; one
        # max_workers/workers_mode pair governs the whole pipeline
        # (``None`` workers = one per CPU, the repo-wide rule).
        # "search" compiles share one leaderboard session across every
        # chunk (snapshot reads, writes deferred to the end), keeping
        # predictions chunk-size invariant.
        session = self._search_session() if level == "search" else None
        offset = 0
        try:
            for chunk in _chunked(circuits, size):
                yield self.predict_at(
                    chunk,
                    positions=range(offset, offset + len(chunk)),
                    optimization_level=level,
                    max_workers=max_workers,
                    workers_mode=workers_mode,
                    want_foms=want_foms,
                    search_session=session,
                )
                offset += len(chunk)
        finally:
            if session is not None:
                session.flush()

    def _established_panel(
        self, compiled: "List[QuantumCircuit]"
    ) -> Dict[str, np.ndarray]:
        """The four established Table-I figures of merit, in FOM_ORDER.

        Specialized computations (batched fidelity) under the shared
        Table-I labels, evaluated on already-compiled circuits against
        the device's reported calibration.
        """
        gates_label, depth_label, fidelity_label, esp_label = FOM_ORDER
        return {
            gates_label: np.array(
                [float(circuit.size()) for circuit in compiled]
            ),
            depth_label: np.array(
                [float(circuit.depth()) for circuit in compiled]
            ),
            fidelity_label: expected_fidelity_batch(compiled, self.device),
            esp_label: np.array(
                [esp(circuit, self.device) for circuit in compiled]
            ),
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"FomService(device={self.device.name!r}, "
            f"level={self.optimization_level}, chunk_size={self.chunk_size})"
        )


def _chunked(
    circuits: Iterable[QuantumCircuit], size: int
) -> Iterator[List[QuantumCircuit]]:
    """Materialize an iterable ``size`` circuits at a time."""
    chunk: List[QuantumCircuit] = []
    for circuit in circuits:
        chunk.append(circuit)
        if len(chunk) >= size:
            yield chunk
            chunk = []
    if chunk:
        yield chunk


__all__ = ["DEFAULT_CHUNK_SIZE", "FomService", "PROPOSED_LABEL"]
