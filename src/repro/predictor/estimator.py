"""The proposed figure of merit: a trained Hellinger-distance estimator.

Section IV-B / V-A3 of the paper: a random forest regressor per QPU, trained
on the 30-dim feature vectors with measured Hellinger distances as labels,
using an 80/20 train/test split, 3-fold cross-validation, a hyper-parameter
grid search (number of trees, maximum depth, minimum samples per leaf and
split), and the Pearson correlation coefficient as the model score.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence

import numpy as np

from ..ml.forest import RandomForestRegressor
from ..ml.metrics import pearson_r
from ..ml.model_selection import grid_search

#: Seed offset for fine-tune tree draws: keeps the refresh trees' seed
#: stream disjoint from the original forest's (same master seed) stream.
FINE_TUNE_SEED_OFFSET = 104729

#: Grid searched in Section V-A3 (trees, depth, leaf/split minima).
DEFAULT_PARAM_GRID: Dict[str, Sequence] = {
    "n_estimators": [50, 100],
    "max_depth": [None, 8, 16],
    "min_samples_leaf": [1, 2, 4],
    "min_samples_split": [2, 4],
}


class HellingerEstimator:
    """Trainable figure of merit predicting a circuit's Hellinger distance.

    Usage matches any other figure of merit after :meth:`fit`: call
    :meth:`predict` on feature vectors of candidate compiled circuits and
    prefer the candidate with the smallest predicted distance.
    """

    def __init__(
        self,
        param_grid: Optional[Dict[str, Sequence]] = None,
        n_splits: int = 3,
        seed: int = 0,
        max_workers: Optional[int] = 1,
        workers_mode: Optional[str] = None,
    ):
        self.param_grid = dict(param_grid) if param_grid else dict(DEFAULT_PARAM_GRID)
        self.n_splits = n_splits
        self.seed = seed
        self.max_workers = max_workers
        self.workers_mode = workers_mode
        self.model: Optional[RandomForestRegressor] = None
        self.best_params_: Dict[str, object] = {}
        self.cv_score_: float = float("nan")

    def fit(self, X: np.ndarray, y: np.ndarray) -> "HellingerEstimator":
        """Grid-search hyper-parameters with CV, then fit on all of ``X``.

        ``max_workers`` fans the (candidate, fold) grid tasks and the
        final forest's trees over a worker pool (``workers_mode`` picks
        thread vs process; the default process mode is what scales, since
        fitting is GIL-bound); the fitted model is bit-identical for
        every value and mode.
        """
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=float)
        # Candidate forests stay sequential (max_workers=1): the grid
        # search parallelizes across candidates/folds instead.
        base = RandomForestRegressor(random_state=self.seed, max_features="sqrt")
        search = grid_search(
            base, self.param_grid, X, y,
            n_splits=self.n_splits, seed=self.seed, scorer=pearson_r,
            max_workers=self.max_workers, workers_mode=self.workers_mode,
        )
        self.best_params_ = search.best_params
        self.cv_score_ = search.best_score
        self.model = base.clone().set_params(**search.best_params)
        self.model.max_workers = self.max_workers
        self.model.workers_mode = self.workers_mode
        self.model.fit(X, y)
        return self

    def with_trees(self, trees, replace: bool = False) -> "HellingerEstimator":
        """A new estimator whose forest is this one refreshed with ``trees``.

        ``self`` is untouched; grid-search results (``best_params_``,
        ``cv_score_``) carry over — a fine-tune deliberately skips the
        search, which is what makes it cheap.
        """
        if self.model is None:
            raise RuntimeError("estimator is not fitted")
        refreshed = HellingerEstimator(
            param_grid=self.param_grid, n_splits=self.n_splits,
            seed=self.seed, max_workers=self.max_workers,
            workers_mode=self.workers_mode,
        )
        refreshed.best_params_ = dict(self.best_params_)
        refreshed.cv_score_ = self.cv_score_
        refreshed.model = self.model.refreshed(trees, replace=replace)
        return refreshed

    def fine_tune(
        self,
        X: np.ndarray,
        y: np.ndarray,
        n_trees: int,
        replace: bool = False,
        random_state: Optional[int] = None,
    ) -> "HellingerEstimator":
        """Cheap refresh on fresh labels: fit ``n_trees`` new trees on
        ``(X, y)`` with the forest's tuned hyper-parameters and append
        them (or replace the oldest with ``replace=True``).

        No grid search runs — the cost is ``n_trees`` tree fits, a small
        fraction of a full retrain.  Deterministic and worker-invariant
        (see :meth:`RandomForestRegressor.fit_new_trees`); the default
        ``random_state`` derives from the estimator seed via
        ``FINE_TUNE_SEED_OFFSET`` so refresh draws never collide with the
        original fit's stream.
        """
        if self.model is None:
            raise RuntimeError("estimator is not fitted")
        if random_state is None:
            random_state = self.seed + FINE_TUNE_SEED_OFFSET
        trees = self.model.fit_new_trees(X, y, n_trees, random_state)
        return self.with_trees(trees, replace=replace)

    def predict(self, X: np.ndarray) -> np.ndarray:
        if self.model is None:
            raise RuntimeError("estimator is not fitted")
        return self.model.predict(np.asarray(X, dtype=float))

    def score(self, X: np.ndarray, y: np.ndarray) -> float:
        """Pearson correlation between predictions and true labels."""
        return pearson_r(np.asarray(y, dtype=float), self.predict(X))

    @property
    def feature_importances_(self) -> np.ndarray:
        if self.model is None:
            raise RuntimeError("estimator is not fitted")
        return self.model.feature_importances_


@dataclass
class EstimatorReport:
    """Everything the study records about one trained estimator."""

    device_name: str
    test_pearson: float
    train_pearson: float
    cv_score: float
    best_params: Dict[str, object]
    feature_importances: np.ndarray
    y_test: np.ndarray
    y_test_pred: np.ndarray
    test_indices: np.ndarray = field(default_factory=lambda: np.array([]))


def train_and_evaluate_model(
    X: np.ndarray,
    y: np.ndarray,
    device_name: str = "QPU",
    test_size: float = 0.2,
    n_splits: int = 3,
    seed: int = 0,
    param_grid: Optional[Dict[str, Sequence]] = None,
    max_workers: Optional[int] = 1,
    workers_mode: Optional[str] = None,
) -> "tuple[EstimatorReport, HellingerEstimator]":
    """:func:`train_and_evaluate` that also returns the fitted estimator.

    The cross-device study scores this exact model on foreign devices, so
    its transfer columns and the report's in-domain test score come from
    one and the same forest.
    """
    X = np.asarray(X, dtype=float)
    y = np.asarray(y, dtype=float)
    n = len(X)
    rng = np.random.default_rng(seed)
    order = rng.permutation(n)
    n_test = max(1, int(round(n * test_size)))
    test_idx, train_idx = order[:n_test], order[n_test:]

    estimator = HellingerEstimator(
        param_grid=param_grid, n_splits=n_splits, seed=seed,
        max_workers=max_workers, workers_mode=workers_mode,
    )
    estimator.fit(X[train_idx], y[train_idx])
    test_pred = estimator.predict(X[test_idx])
    train_pred = estimator.predict(X[train_idx])
    report = EstimatorReport(
        device_name=device_name,
        test_pearson=pearson_r(y[test_idx], test_pred),
        train_pearson=pearson_r(y[train_idx], train_pred),
        cv_score=estimator.cv_score_,
        best_params=dict(estimator.best_params_),
        feature_importances=estimator.feature_importances_.copy(),
        y_test=y[test_idx].copy(),
        y_test_pred=test_pred,
        test_indices=test_idx.copy(),
    )
    return report, estimator


def train_and_evaluate(
    X: np.ndarray,
    y: np.ndarray,
    device_name: str = "QPU",
    test_size: float = 0.2,
    n_splits: int = 3,
    seed: int = 0,
    param_grid: Optional[Dict[str, Sequence]] = None,
    max_workers: Optional[int] = 1,
    workers_mode: Optional[str] = None,
) -> EstimatorReport:
    """Run the paper's full evaluation protocol for one QPU.

    80/20 split, grid search with ``n_splits``-fold CV on the training set,
    final fit on the training set, Pearson scoring on the held-out test set.
    """
    return train_and_evaluate_model(
        X, y,
        device_name=device_name,
        test_size=test_size,
        n_splits=n_splits,
        seed=seed,
        param_grid=param_grid,
        max_workers=max_workers,
        workers_mode=workers_mode,
    )[0]
