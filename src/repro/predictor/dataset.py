"""Dataset construction: features and Hellinger labels per (circuit, device).

Implements the workflow of the paper's Fig. 2: every benchmark circuit is
compiled for the target QPU, executed on it (here: on the emulator), and
labelled with the Hellinger distance between its true distribution and the
execution result.  The same pass also records the established figures of
merit so the correlation study can score everything on identical data.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..bench.suite import DEPTH_LIMIT, BenchmarkCircuit, ideal_distributions
from ..compiler.compile import compile_batch
from ..fom.features import feature_vector
from ..fom.metrics import circuit_depth, esp, expected_fidelity, gate_count
from ..hardware.device import Device
from ..simulation.distributions import hellinger_distance
from ..simulation.executor import SEED_STRIDE, QPUExecutor


@dataclass
class DatasetEntry:
    """One labelled circuit."""

    name: str
    algorithm: str
    num_qubits: int
    features: np.ndarray
    label: float
    fom_values: Dict[str, float]
    compiled_depth: int
    compiled_two_qubit_gates: int
    success_probability: float
    compiled: object = None  # the compiled QuantumCircuit (for ablations)


@dataclass
class CircuitDataset:
    """Feature matrix ``X``, labels ``y``, and per-circuit bookkeeping."""

    device_name: str
    entries: List[DatasetEntry] = field(default_factory=list)

    @property
    def X(self) -> np.ndarray:
        return np.vstack([entry.features for entry in self.entries])

    @property
    def y(self) -> np.ndarray:
        return np.array([entry.label for entry in self.entries])

    def fom_column(self, fom_name: str) -> np.ndarray:
        return np.array([entry.fom_values[fom_name] for entry in self.entries])

    def __len__(self) -> int:
        return len(self.entries)


def build_dataset(
    suite: Sequence[BenchmarkCircuit],
    device: Device,
    optimization_level: "int | str" = 3,
    shots: int = 2000,
    seed: int = 0,
    depth_limit: int = DEPTH_LIMIT,
    ideal_cache: Optional[Dict[str, Dict[str, float]]] = None,
    sim_dtype=np.complex64,
    progress: bool = False,
    max_workers: Optional[int] = None,
    workers_mode: Optional[str] = None,
    estimator=None,
    search_opts: Optional[Dict] = None,
) -> CircuitDataset:
    """Compile, execute, and label every suite circuit on ``device``.

    Circuits whose *compiled* depth reaches ``depth_limit`` are dropped,
    matching the paper's selection rule.  ``ideal_cache`` (keyed by benchmark
    name) shares the expensive noiseless simulations across devices — valid
    because compilation preserves the measured distribution.

    Every stage is batched and parallel (``max_workers``, default one
    worker per CPU): compilation fans out over
    :func:`~repro.compiler.compile.compile_batch` — a *process* pool by
    default, because compilation is GIL-bound pure Python — while the
    numpy-heavy noiseless simulation and noisy execution (which release
    the GIL) run as thread-pool passes via :func:`ideal_distributions`
    and :meth:`QPUExecutor.run_batch`.  ``workers_mode`` overrides the
    compile stage's mode (``None``: the ``REPRO_WORKERS_MODE``
    environment override if set, else ``"process"``).  Per-circuit seeds
    are fixed functions of ``seed`` and the suite index, so results are
    bit-identical for every worker count and mode.  With
    ``progress=True`` each batched stage reports per-circuit liveness as
    results land (completion order), instead of after the stage drains.

    ``optimization_level="search"`` labels the dataset with the
    predictor-guided compiler instead of stock level 3: ``estimator`` is
    the cost model and ``search_opts`` tunes the search (see
    :func:`~repro.compiler.search.compile_search`); both are forwarded to
    ``compile_batch`` untouched.
    """
    executor = QPUExecutor(device)
    dataset = CircuitDataset(device_name=device.name)
    cache = ideal_cache if ideal_cache is not None else {}

    # Stage 1 — compile and apply the compiled-depth filter.
    # The cheap pre-filter skips compilation entirely: compilation to the
    # native two-qubit-heavy basis never compresses depth by 2x, so those
    # circuits cannot pass the compiled-depth filter.
    candidates = [
        (index, entry) for index, entry in enumerate(suite)
        if entry.circuit.depth() < 2 * depth_limit
    ]

    def compile_progress(position: int, result) -> None:
        _, entry = candidates[position]
        print(
            f"[{device.name}] {entry.name:<20} compiled "
            f"depth={result.circuit.depth():<5} "
            f"cz={result.circuit.num_nonlocal_gates()}",
            flush=True,
        )

    # Compilation is GIL-bound pure Python, so this stage scales with
    # cores only through a process pool; liveness streams through
    # on_result either way (fired in the parent, completion order).
    compiled_results = compile_batch(
        [entry.circuit for _, entry in candidates],
        device,
        optimization_level=optimization_level,
        seeds=[seed + index for index, _ in candidates],
        max_workers=max_workers,
        workers_mode=workers_mode,
        on_result=compile_progress if progress else None,
        estimator=estimator,
        search_opts=search_opts,
    )
    survivors = []
    for (index, entry), result in zip(candidates, compiled_results):
        depth = result.circuit.depth()
        if depth < depth_limit:
            survivors.append((index, entry, result.circuit, depth))

    # Stage 2 — noiseless reference distributions (parallel, cache-shared).
    # ``on_result`` positions index the not-yet-cached subset, in order.
    missing_names = [
        entry.name for _, entry, _, _ in survivors if entry.name not in cache
    ]

    def simulate_progress(position: int, _dist) -> None:
        print(
            f"[{device.name}] {missing_names[position]:<20} simulated",
            flush=True,
        )

    ideal_distributions(
        [entry for _, entry, _, _ in survivors],
        dtype=sim_dtype,
        max_workers=max_workers,
        cache=cache,
        on_result=simulate_progress if progress else None,
    )

    # Stage 3 — noisy execution through the batched executor API.
    def execute_progress(position: int, execution) -> None:
        _, entry, _, depth = survivors[position]
        label = hellinger_distance(cache[entry.name], execution.distribution())
        print(
            f"[{device.name}] {entry.name:<20} depth={depth:<5} "
            f"S={execution.success_probability:.3f} d={label:.3f}",
            flush=True,
        )

    executions = executor.run_batch(
        [compiled for _, _, compiled, _ in survivors],
        shots=shots,
        ideals=[cache[entry.name] for _, entry, _, _ in survivors],
        seeds=[seed + SEED_STRIDE * index for index, _, _, _ in survivors],
        max_workers=max_workers,
        on_result=execute_progress if progress else None,
    )

    # Stage 4 — assemble features, labels, and figures of merit.
    for (index, entry, compiled, depth), execution in zip(
        survivors, executions
    ):
        ideal = cache[entry.name]
        label = hellinger_distance(ideal, execution.distribution())
        fom_values = {
            "Number of gates": float(gate_count(compiled)),
            "Circuit depth": float(circuit_depth(compiled)),
            "Expected fidelity": expected_fidelity(compiled, device),
            "ESP": esp(compiled, device),
        }
        dataset.entries.append(
            DatasetEntry(
                name=entry.name,
                algorithm=entry.algorithm,
                num_qubits=entry.num_qubits,
                features=feature_vector(compiled),
                label=label,
                fom_values=fom_values,
                compiled_depth=depth,
                compiled_two_qubit_gates=compiled.num_nonlocal_gates(),
                success_probability=execution.success_probability,
                compiled=compiled,
            )
        )
    return dataset
