"""Probability of Successful Trials via mirror circuits (Section V-D).

The paper's future-work discussion notes that the PST — obtained by
appending a circuit's inverse and measuring how often the all-zero string
returns — can stand in for simulation-based labels once circuits outgrow
classical simulation.  This module implements that extension: mirror
construction, PST measurement on the emulator, and a PST-based label that
can replace the Hellinger distance in training.
"""

from __future__ import annotations

from typing import Tuple

from ..circuits.circuit import QuantumCircuit
from ..hardware.device import Device
from ..simulation.executor import QPUExecutor


def mirror_circuit(circuit: QuantumCircuit) -> QuantumCircuit:
    """Return ``C . barrier . C^{-1}`` with terminal measurements everywhere.

    The ideal output is exactly ``|0...0>``, so no simulation is needed to
    know the reference distribution.  The barrier at the mirror point is
    essential: without it, any optimizing compiler would cancel the circuit
    against its inverse and the "execution" would measure an empty circuit.
    """
    body = circuit.without_directives()
    mirrored = QuantumCircuit(
        circuit.num_qubits, circuit.num_qubits,
        name=f"{circuit.name}_mirror",
    )
    mirrored.compose(body)
    mirrored.barrier()
    mirrored.compose(body.inverse())
    mirrored.global_phase = 0.0
    mirrored.measure_all()
    return mirrored


def pst(
    circuit: QuantumCircuit,
    device: Device,
    shots: int = 2000,
    seed: int = 0,
    compiled: bool = False,
) -> Tuple[float, QuantumCircuit]:
    """Probability of successful trials of ``circuit`` on ``device``.

    Builds the mirror circuit, compiles it (unless ``compiled`` indicates the
    input is already a native mirror circuit), executes it on the device
    emulator, and returns the frequency of the all-zero outcome together
    with the executed circuit.
    """
    from ..compiler.compile import compile_circuit

    mirrored = circuit if compiled else mirror_circuit(circuit)
    if not compiled:
        result = compile_circuit(mirrored, device, optimization_level=3, seed=seed)
        mirrored = result.circuit
    zero_key = "0" * _output_width(mirrored)
    executor = QPUExecutor(device)
    execution = executor.execute(
        mirrored, shots=shots, seed=seed, ideal={zero_key: 1.0}
    )
    return execution.counts.get(zero_key, 0) / shots, mirrored


def pst_label(
    circuit: QuantumCircuit,
    device: Device,
    shots: int = 2000,
    seed: int = 0,
) -> float:
    """A Hellinger-style label derived from PST: ``sqrt(1 - PST)``.

    For an ideal point distribution the Hellinger distance to the noisy
    result is ``sqrt(1 - sqrt(p_zero) ...)``; the simpler ``sqrt(1 - PST)``
    preserves ordering and lands in ``[0, 1]``, which is all the regressor
    needs.
    """
    value, _ = pst(circuit, device, shots=shots, seed=seed)
    return (1.0 - value) ** 0.5


def _output_width(circuit: QuantumCircuit) -> int:
    pairs = circuit.measured_qubits()
    if not pairs:
        raise ValueError("mirror circuit has no measurements")
    return max(clbit for _, clbit in pairs) + 1
