"""Probability distributions over measurement bitstrings.

The paper quantifies execution quality with the Hellinger distance between a
circuit's true (noiseless) distribution and the empirical distribution
observed on a QPU (Eq. 1).  This module provides that distance plus the
related distribution utilities used throughout the library.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, Mapping

import numpy as np

Distribution = Mapping[str, float]
Counts = Mapping[str, int]


def normalize(distribution: Distribution) -> Dict[str, float]:
    """Return a normalized copy (probabilities summing to one)."""
    total = float(sum(distribution.values()))
    if total <= 0:
        raise ValueError("distribution has non-positive total mass")
    return {k: v / total for k, v in distribution.items()}


def counts_to_distribution(counts: Counts) -> Dict[str, float]:
    """Convert integer counts to a normalized probability distribution."""
    total = sum(counts.values())
    if total <= 0:
        raise ValueError("counts are empty")
    return {k: v / total for k, v in counts.items()}


def validate_distribution(distribution: Distribution, atol: float = 1e-6) -> None:
    """Raise ``ValueError`` if probabilities are negative or don't sum to 1."""
    total = 0.0
    for key, prob in distribution.items():
        if prob < -atol:
            raise ValueError(f"negative probability {prob} for '{key}'")
        total += prob
    if not math.isclose(total, 1.0, abs_tol=max(atol, 1e-6)):
        raise ValueError(f"probabilities sum to {total}, expected 1")


def hellinger_distance(p: Distribution, q: Distribution) -> float:
    """Hellinger distance between two bitstring distributions (Eq. 1).

    ``d(P, Q) = (1/sqrt(2)) * sqrt( sum_i (sqrt(p_i) - sqrt(q_i))^2 )``
    lies in ``[0, 1]``: 0 for identical distributions, 1 for disjoint support.

    The accumulation runs in sorted-key order: float addition is not
    associative, and set iteration order follows the per-interpreter
    string-hash salt, so an unsorted sum differs in the last ulp between
    interpreters (enough to decohere downstream model training).
    """
    keys = sorted(set(p) | set(q))
    acc = 0.0
    for key in keys:
        acc += (math.sqrt(p.get(key, 0.0)) - math.sqrt(q.get(key, 0.0))) ** 2
    return min(1.0, math.sqrt(acc) / math.sqrt(2.0))


def hellinger_fidelity(p: Distribution, q: Distribution) -> float:
    """``(1 - d^2)^2`` — Qiskit's Hellinger fidelity, for cross-checks."""
    d2 = hellinger_distance(p, q) ** 2
    return (1.0 - d2) ** 2


def total_variation_distance(p: Distribution, q: Distribution) -> float:
    """Total variation distance ``0.5 * sum |p_i - q_i|`` in ``[0, 1]``.

    Summed in sorted-key order for hash-salt invariance (see
    :func:`hellinger_distance`).
    """
    keys = sorted(set(p) | set(q))
    return 0.5 * sum(abs(p.get(k, 0.0) - q.get(k, 0.0)) for k in keys)


def bhattacharyya_coefficient(p: Distribution, q: Distribution) -> float:
    """Overlap ``sum sqrt(p_i q_i)`` in ``[0, 1]``.

    Summed in sorted-key order for hash-salt invariance (see
    :func:`hellinger_distance`).
    """
    keys = sorted(set(p) & set(q))
    return sum(math.sqrt(p[k] * q[k]) for k in keys)


def cross_entropy(p: Distribution, q: Distribution, epsilon: float = 1e-12) -> float:
    """Cross entropy ``-sum p_i log q_i`` with clipping for missing outcomes."""
    acc = 0.0
    for key, prob in p.items():
        if prob <= 0:
            continue
        acc -= prob * math.log(max(q.get(key, 0.0), epsilon))
    return acc


def shannon_entropy(p: Distribution) -> float:
    """Shannon entropy in bits."""
    acc = 0.0
    for prob in p.values():
        if prob > 0:
            acc -= prob * math.log2(prob)
    return acc


def uniform_distribution(num_bits: int) -> Dict[str, float]:
    """The uniform distribution over ``2**num_bits`` bitstrings."""
    dim = 1 << num_bits
    prob = 1.0 / dim
    return {format(i, f"0{num_bits}b"): prob for i in range(dim)}


def mix(p: Distribution, q: Distribution, weight_p: float) -> Dict[str, float]:
    """Convex mixture ``weight_p * P + (1 - weight_p) * Q``."""
    if not 0.0 <= weight_p <= 1.0:
        raise ValueError("weight_p must lie in [0, 1]")
    out: Dict[str, float] = {}
    for key, prob in p.items():
        out[key] = out.get(key, 0.0) + weight_p * prob
    for key, prob in q.items():
        out[key] = out.get(key, 0.0) + (1.0 - weight_p) * prob
    return out


def apply_bitflip_confusion(
    distribution: Distribution,
    p0_to_1: Iterable[float],
    p1_to_0: Iterable[float],
) -> Dict[str, float]:
    """Push a distribution through independent per-bit readout confusion.

    Bit ``c`` of a bitstring (right-most character is bit 0) flips
    ``0 -> 1`` with probability ``p0_to_1[c]`` and ``1 -> 0`` with
    probability ``p1_to_0[c]``.  Implemented as a sequence of single-bit
    channel applications, so cost is ``O(num_bits * support * 2)``.
    """
    p01 = list(p0_to_1)
    p10 = list(p1_to_0)
    current = dict(distribution)
    width = len(next(iter(current))) if current else 0
    if width and (len(p01) < width or len(p10) < width):
        raise ValueError("confusion probabilities shorter than bitstring width")
    for bit in range(width):
        pos = width - 1 - bit  # character position of bit `bit`
        nxt: Dict[str, float] = {}
        e01, e10 = p01[bit], p10[bit]
        for key, prob in current.items():
            if prob == 0.0:
                continue
            if key[pos] == "0":
                stay, flip = (1.0 - e01), e01
                flipped = key[:pos] + "1" + key[pos + 1:]
            else:
                stay, flip = (1.0 - e10), e10
                flipped = key[:pos] + "0" + key[pos + 1:]
            if stay:
                nxt[key] = nxt.get(key, 0.0) + prob * stay
            if flip:
                nxt[flipped] = nxt.get(flipped, 0.0) + prob * flip
        current = nxt
    return current


def marginalize(distribution: Distribution, keep_bits: Iterable[int]) -> Dict[str, float]:
    """Marginal distribution over the given bit indices (bit 0 = right-most)."""
    keep = sorted(set(keep_bits))
    out: Dict[str, float] = {}
    for key, prob in distribution.items():
        width = len(key)
        sub = "".join(key[width - 1 - b] for b in reversed(keep))
        out[sub] = out.get(sub, 0.0) + prob
    return out


def expected_distribution_distance(
    p: Distribution, shots: int, trials: int, rng: np.random.Generator
) -> float:
    """Monte-Carlo estimate of E[Hellinger(P, empirical P)] from shot noise.

    Useful as the noise floor when interpreting measured Hellinger labels.
    """
    keys = sorted(p)
    probs = np.array([p[k] for k in keys])
    probs = probs / probs.sum()
    acc = 0.0
    for _ in range(trials):
        draws = rng.multinomial(shots, probs)
        q = {k: c / shots for k, c in zip(keys, draws) if c}
        acc += hellinger_distance(dict(zip(keys, probs)), q)
    return acc / trials
