"""Vectorized gate-application kernels shared by every simulator.

This module is the single hot path of the reproduction: statevector
simulation, density-matrix evolution, and full-unitary construction all
funnel their gate applications through it.  Four ideas carry the speedup:

1. **Tensor contractions instead of slice arithmetic.**  The state is
   viewed as an ``n``-axis tensor; each gate moves its target qubit axes to
   the front and applies the unitary as one BLAS matmul over the flattened
   remainder — a single pass over the state with no per-slice temporaries.
   Diagonal gates short-circuit to in-place scalings, and pure SWAPs are
   free axis relabelings.

2. **Lazy axis permutation.**  Inside a simulation run the engine never
   moves axes back after a contraction; it tracks which axis currently
   holds which qubit and restores canonical order once, at the end.  This
   halves the memory traffic of every entangling gate.

3. **Adjacent-gate fusion.**  Runs of single-qubit gates on the same wire
   are folded into one 2x2 matrix, and pending 1q matrices are absorbed
   into the next two-qubit gate touching their wire, so a fused circuit
   performs roughly one contraction per *entangling* gate.  Fused gate
   lists are cached per circuit.

4. **Matrix caching.**  Gate matrices are memoized on ``(name, params)``;
   parameterized rotations in loops (QFT's controlled phases, random
   circuits' Euler angles) stop rebuilding identical 2x2/4x4 arrays.

Bit convention matches the registry: for a gate applied to ``qubits``,
``qubits[0]`` is the least-significant bit of the matrix index, and state
index ``i`` holds qubit ``k`` in bit ``(i >> k) & 1``.
"""

from __future__ import annotations

import weakref
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..circuits.gates import SWAP_MATRIX, cached_gate_matrix

#: Operation kinds precomputed at fusion time.
KIND_DIAGONAL = "d"
KIND_SWAP = "s"
KIND_GENERAL = "g"

#: One fused operation: ``(matrix, qubits, kind)``.
FusedOp = Tuple[np.ndarray, Tuple[int, ...], str]

_ID2 = np.eye(2, dtype=complex)

# The gate-matrix memo lives in repro.circuits.gates (cached_gate_matrix)
# and is shared with the compiler's merge/synthesis passes.


def _is_diagonal(matrix: np.ndarray) -> bool:
    off = matrix.copy()
    np.fill_diagonal(off, 0.0)
    return not off.any()


def _classify(matrix: np.ndarray) -> str:
    if _is_diagonal(matrix):
        return KIND_DIAGONAL
    if matrix.shape == (4, 4) and np.array_equal(matrix, SWAP_MATRIX):
        return KIND_SWAP
    return KIND_GENERAL


def _kron2(m_b: np.ndarray, m_a: np.ndarray) -> np.ndarray:
    """``m_b (x) m_a`` for 2x2 factors, without :func:`numpy.kron` overhead."""
    return (
        m_b[:, None, :, None] * m_a[None, :, None, :]
    ).reshape(4, 4)


# ---------------------------------------------------------------------------
# Single-gate application (canonical axis order)
# ---------------------------------------------------------------------------

def _writable(data: np.ndarray, overwrite: bool) -> np.ndarray:
    """A C-contiguous array the diagonal path may scale in place."""
    if data.flags["C_CONTIGUOUS"]:
        return data if overwrite else data.copy()
    return np.ascontiguousarray(data)


def apply_matrix(
    data: np.ndarray,
    matrix: np.ndarray,
    qubits: Sequence[int],
    num_qubits: int,
    tail: int = 1,
    overwrite: bool = True,
) -> np.ndarray:
    """Apply a ``2**k x 2**k`` unitary to qubit axes of a dense array.

    Args:
        data: array with ``2**num_qubits * tail`` elements whose leading
            bits index the qubits (qubit ``num_qubits - 1`` is the
            most-significant) and whose trailing ``tail`` elements form a
            batch axis (columns of a unitary, density-matrix columns, ...).
        matrix: the gate unitary; index bit ``m`` corresponds to
            ``qubits[m]``.
        qubits: target qubits.
        num_qubits: total qubit count of ``data``.
        tail: size of the trailing batch axis.
        overwrite: when True the kernel may mutate ``data`` in place (the
            diagonal fast path does); pass False if the input must survive.

    Returns:
        The evolved array.  Callers must rebind to the return value rather
        than rely on aliasing.
    """
    k = len(qubits)
    if matrix.shape != (1 << k, 1 << k):
        raise ValueError(
            f"matrix shape {matrix.shape} does not match {k} qubits"
        )
    if _is_diagonal(matrix):
        data = _writable(data, overwrite)
        _scale_diagonal_canonical(data, matrix, qubits, tail)
        return data
    return _apply_general(data, matrix, qubits, num_qubits, tail)


def _scale_diagonal_canonical(
    data: np.ndarray, matrix: np.ndarray, qubits: Sequence[int], tail: int
) -> None:
    """In-place scaling by a diagonal gate, canonical axis order."""
    k = len(qubits)
    if k == 1:
        view = data.reshape(-1, 2, (1 << qubits[0]) * tail)
        if matrix[0, 0] != 1.0:
            view[:, 0, :] *= matrix[0, 0]
        if matrix[1, 1] != 1.0:
            view[:, 1, :] *= matrix[1, 1]
        return
    if k == 2:
        qubit_a, qubit_b = qubits
        lo, hi = (qubit_a, qubit_b) if qubit_a < qubit_b else (qubit_b, qubit_a)
        view = data.reshape(-1, 2, 1 << (hi - lo - 1), 2, (1 << lo) * tail)
        # Matrix index m: bit 0 = qubit_a, bit 1 = qubit_b; axis 1 is `hi`.
        for m in range(4):
            if matrix[m, m] != 1.0:
                bit_a, bit_b = m & 1, (m >> 1) & 1
                bit_lo, bit_hi = (
                    (bit_a, bit_b) if qubit_a == lo else (bit_b, bit_a)
                )
                view[:, bit_hi, :, bit_lo, :] *= matrix[m, m]
        return
    # Rare (>= 3 qubits, e.g. ccz): scale each non-unit diagonal entry.
    sorted_desc = sorted(qubits, reverse=True)
    shape = []
    previous = None
    for qubit in sorted_desc:
        shape.append(-1 if previous is None else 1 << (previous - qubit - 1))
        shape.append(2)
        previous = qubit
    shape.append((1 << sorted_desc[-1]) * tail)
    view = data.reshape(shape)
    bit_of = {qubit: bit for bit, qubit in enumerate(qubits)}
    for m in range(1 << k):
        if matrix[m, m] == 1.0:
            continue
        index: List = [slice(None)] * len(shape)
        for position, qubit in enumerate(sorted_desc):
            index[2 * position + 1] = (m >> bit_of[qubit]) & 1
        view[tuple(index)] *= matrix[m, m]


def _apply_general(
    data: np.ndarray,
    matrix: np.ndarray,
    qubits: Sequence[int],
    n: int,
    tail: int,
) -> np.ndarray:
    """Move target axes to the front, one BLAS matmul, move back."""
    shape = data.shape
    k = len(qubits)
    tensor = data.reshape((2,) * n + (tail,))
    # Axis j of the tensor corresponds to qubit n-1-j; bring the axes of
    # the target qubits to the front, most-significant matrix bit first.
    axes = [n - 1 - qubits[m] for m in reversed(range(k))]
    tensor = np.moveaxis(tensor, axes, range(k))
    moved_shape = tensor.shape
    tensor = matrix @ tensor.reshape(1 << k, -1)
    tensor = np.moveaxis(tensor.reshape(moved_shape), range(k), axes)
    return np.ascontiguousarray(tensor).reshape(shape)


# ---------------------------------------------------------------------------
# Fusion
# ---------------------------------------------------------------------------

def fuse_instructions(instructions, dtype=np.complex128) -> List[FusedOp]:
    """Fold a gate sequence into a shorter list of dense operations.

    Runs of single-qubit gates on one wire become a single 2x2 matrix;
    pending single-qubit matrices are absorbed into the next two-qubit gate
    acting on their wire (``U_2q . (m_b (x) m_a)``).  Measures and barriers
    are skipped — fusion is only valid for the unitary part of a circuit.

    Returns:
        ``(matrix, qubits, kind)`` triples whose in-order application is
        equivalent to the original sequence (up to float round-off from the
        explicit matrix products).  ``kind`` precomputes the dispatch:
        diagonal, pure swap, or general.
    """
    dtype = np.dtype(dtype)
    pending: Dict[int, np.ndarray] = {}
    ops: List[FusedOp] = []

    def emit(matrix: np.ndarray, qubits: Tuple[int, ...]) -> None:
        kind = _classify(matrix)
        ops.append(
            (np.ascontiguousarray(matrix, dtype=dtype), qubits, kind)
        )

    for instruction in instructions:
        if not instruction.is_unitary:
            continue
        matrix = cached_gate_matrix(instruction.name, instruction.params)
        if instruction.num_qubits == 1:
            qubit = instruction.qubits[0]
            previous = pending.get(qubit)
            pending[qubit] = matrix if previous is None else matrix @ previous
        elif instruction.num_qubits == 2:
            a, b = instruction.qubits
            m_a = pending.pop(a, None)
            m_b = pending.pop(b, None)
            if m_a is not None or m_b is not None:
                matrix = matrix @ _kron2(
                    m_b if m_b is not None else _ID2,
                    m_a if m_a is not None else _ID2,
                )
            emit(matrix, instruction.qubits)
        else:
            for qubit in instruction.qubits:
                if qubit in pending:
                    emit(pending.pop(qubit), (qubit,))
            emit(matrix, instruction.qubits)
    for qubit in sorted(pending):
        emit(pending[qubit], (qubit,))
    return ops


def circuit_fingerprint(circuit) -> int:
    """Cheap content hash used to revalidate identity-keyed caches.

    Instructions are frozen dataclasses, so the tuple hash covers names,
    qubits, parameters, and clbits — in-place edits that keep the length
    unchanged (e.g. parameter rebinding) still change the fingerprint.
    """
    return hash(tuple(circuit.instructions))


#: Cache of fused gate lists, keyed by ``(id(circuit), dtype)``.  Entries
#: are evicted when the circuit is garbage collected (guarding against
#: ``id`` reuse) and revalidated against the content fingerprint (guarding
#: against in-place edits).
_FUSION_CACHE: Dict[Tuple[int, str], Tuple[int, List[FusedOp]]] = {}


def fused_circuit_ops(circuit, dtype=np.complex128) -> List[FusedOp]:
    """Memoized :func:`fuse_instructions` for a circuit object."""
    key = (id(circuit), np.dtype(dtype).str)
    fingerprint = circuit_fingerprint(circuit)
    cached = _FUSION_CACHE.get(key)
    if cached is not None and cached[0] == fingerprint:
        return cached[1]
    ops = fuse_instructions(circuit.instructions, dtype=dtype)
    is_new_key = key not in _FUSION_CACHE
    _FUSION_CACHE[key] = (fingerprint, ops)
    if is_new_key:
        weakref.finalize(circuit, _FUSION_CACHE.pop, key, None)
    return ops


# ---------------------------------------------------------------------------
# Block fusion (cost-aware merging of consecutive operations)
# ---------------------------------------------------------------------------

#: Largest dense block built by :func:`block_ops` (a 16x16 matrix).
MAX_BLOCK_QUBITS = 4

#: Largest qubit union for merged diagonal runs (a 2**12 factor vector).
MAX_DIAG_QUBITS = 12

#: One blocked operation: ``(kind, qubits, payload)`` with payload a dense
#: matrix ("g"), a diagonal factor vector ("d"), or ``None`` ("s").
BlockOp = Tuple[str, Tuple[int, ...], Optional[np.ndarray]]


def _permute_matrix_bits(
    matrix: np.ndarray, perm: Sequence[int]
) -> np.ndarray:
    """Reorder the qubit bits of a dense matrix: new bit j = old bit perm[j]."""
    b = len(perm)
    tensor = matrix.reshape((2,) * (2 * b))
    row_axes = [b - 1 - perm[b - 1 - axis] for axis in range(b)]
    axes = row_axes + [axis + b for axis in row_axes]
    return np.ascontiguousarray(tensor.transpose(axes)).reshape(
        1 << b, 1 << b
    )


def _expand_general(
    matrix: np.ndarray,
    qubits: Tuple[int, ...],
    block: Tuple[int, ...],
) -> np.ndarray:
    """Embed a dense operator into a larger qubit block (bit j = block[j])."""
    if qubits == block:
        return matrix
    extras = [q for q in block if q not in qubits]
    full = matrix
    for _ in extras:
        full = np.kron(_ID2.astype(matrix.dtype), full)
    current = list(qubits) + extras
    perm = [current.index(q) for q in block]
    return _permute_matrix_bits(full, perm)


def _expand_diag(
    vector: np.ndarray,
    qubits: Tuple[int, ...],
    block: Tuple[int, ...],
) -> np.ndarray:
    """Embed a diagonal factor vector into a larger qubit block."""
    if qubits == block:
        return vector
    indices = np.arange(1 << len(block))
    sub = np.zeros_like(indices)
    for bit, qubit in enumerate(qubits):
        sub |= ((indices >> block.index(qubit)) & 1) << bit
    return vector[sub]


#: How many blocks the scheduler keeps open for commuting merges.
_BLOCK_WINDOW = 8


def _merge_block(
    block: BlockOp,
    op_kind: str,
    op_qubits: Tuple[int, ...],
    op_payload: np.ndarray,
    union: Tuple[int, ...],
) -> BlockOp:
    """Fold an operation (applied *after* ``block``) into the block."""
    bkind, bqubits, bpayload = block
    if op_kind == KIND_DIAGONAL and bkind == KIND_DIAGONAL:
        merged = _expand_diag(op_payload, op_qubits, union) * (
            _expand_diag(bpayload, bqubits, union)
        )
        return (KIND_DIAGONAL, union, merged)
    if op_kind == KIND_DIAGONAL:
        dense = _expand_general(bpayload, bqubits, union)
        return (
            KIND_GENERAL, union,
            _expand_diag(op_payload, op_qubits, union)[:, None] * dense,
        )
    dense = _expand_general(np.asarray(op_payload), op_qubits, union)
    if bkind == KIND_DIAGONAL:
        expanded = _expand_diag(bpayload, bqubits, union)
        return (KIND_GENERAL, union, dense * expanded[None, :])
    return (
        KIND_GENERAL, union,
        dense @ _expand_general(bpayload, bqubits, union),
    )


def block_ops(
    ops: Sequence[FusedOp],
    max_block: int = MAX_BLOCK_QUBITS,
    max_diag: int = MAX_DIAG_QUBITS,
) -> List[BlockOp]:
    """Merge fused gates into larger dense/diagonal blocks.

    Cost model: a dense contraction costs ~two passes over the state
    regardless of block size (up to ``max_block`` qubits), and a diagonal
    scaling costs at most one pass regardless of qubit count — so merging
    dense gates whose qubit union fits a block, and collapsing runs of
    (mutually commuting) diagonal gates into one factor vector, strictly
    reduces memory traffic.  A diagonal gate also folds into an open dense
    block for free.

    The scheduler keeps a window of open blocks: an operation may merge
    into an *earlier* open block when its qubits are disjoint from every
    later open block (disjoint supports commute), which packs random
    circuits far denser than last-block-only fusion.  Pure SWAPs flush the
    window and stay standalone: the plan compiler turns them into
    zero-cost axis relabelings.
    """
    emitted: List[BlockOp] = []
    window: List[BlockOp] = []

    def flush() -> None:
        emitted.extend(window)
        window.clear()

    for matrix, qubits, kind in ops:
        if kind == KIND_SWAP:
            flush()
            emitted.append((KIND_SWAP, qubits, None))
            continue
        payload = (
            np.ascontiguousarray(np.diagonal(matrix))
            if kind == KIND_DIAGONAL else matrix
        )
        qubit_set = set(qubits)
        cap = max_diag if kind == KIND_DIAGONAL else max_block
        target = None
        # Walk open blocks newest-first; stop at the first block sharing a
        # qubit (the op cannot commute past it).
        for index in reversed(range(len(window))):
            bkind, bqubits, _ = window[index]
            union = bqubits + tuple(
                q for q in qubits if q not in bqubits
            )
            merged_cap = (
                max_diag
                if kind == KIND_DIAGONAL and bkind == KIND_DIAGONAL
                else max_block
            )
            if len(union) <= merged_cap:
                target = (index, union)
                break
            if qubit_set & set(bqubits) and not (
                kind == KIND_DIAGONAL and bkind == KIND_DIAGONAL
            ):
                # Shared support and not mutually diagonal: the op cannot
                # commute past this block.
                break
        if target is not None:
            index, union = target
            window[index] = _merge_block(
                window[index], kind, tuple(qubits), payload, union
            )
            continue
        window.append((kind, tuple(qubits), payload))
        if len(window) > _BLOCK_WINDOW:
            emitted.append(window.pop(0))
    flush()
    return emitted


# ---------------------------------------------------------------------------
# Fused-run engine (lazy axis permutation, precompiled schedules)
# ---------------------------------------------------------------------------

#: A contraction plan: a list of steps plus the final restore step.
#: Steps reference *coalesced* axis groups — maximal runs of adjacent
#: untouched axes are merged into single dimensions, so every transpose or
#: broadcast runs over a handful of large blocks instead of ``n`` axes of
#: size 2 (high-dimensional numpy copies degrade to element-wise loops).
#: Group dimensions are stored as qubit counts; the runtime folds the
#: batch-axis size into the last group.  Step kinds:
#:
#: - ``("g", matrix, counts, perm)``: reshape to groups, transpose the
#:   target groups to the front, one BLAS matmul.
#: - ``("b", factor, counts)``: reshape to groups, one in-place broadcast
#:   multiply by a diagonal factor tensor.
Plan = Tuple[
    List[tuple], Optional[Tuple[Tuple[int, ...], Tuple[int, ...]]]
]


def _group_axes(
    target_axes: Sequence[int], n: int
) -> Tuple[Tuple[int, ...], Dict[int, int]]:
    """Coalesce axes ``0..n`` into target singletons and merged runs.

    Returns the per-group qubit counts (the trailing batch axis ``n``
    contributes no qubit count) and a map from target axis to group index.
    """
    targets = set(target_axes)
    counts: List[int] = []
    group_of: Dict[int, int] = {}
    open_run = False
    for axis in range(n + 1):
        if axis in targets:
            group_of[axis] = len(counts)
            counts.append(1)
            open_run = False
        else:
            qubit_count = 1 if axis < n else 0
            if open_run:
                counts[-1] += qubit_count
            else:
                counts.append(qubit_count)
                open_run = True
    return tuple(counts), group_of


def _group_dims(counts: Tuple[int, ...], tail: int) -> List[int]:
    """Concrete group sizes for a batch-axis size of ``tail``."""
    dims = [1 << c for c in counts]
    dims[-1] *= tail
    return dims


def _coalesce_permutation(
    perm: Tuple[int, ...],
) -> Tuple[Tuple[int, ...], Tuple[int, ...]]:
    """Compress a full-axis permutation into coalesced groups.

    Runs of source axes that stay adjacent (and in order) through the
    permutation become single groups.  Returns ``(counts, group_perm)``:
    per-group qubit counts in *source* order (the batch axis — the largest
    source axis — contributing none) and the transpose permutation over
    groups.
    """
    batch_axis = len(perm) - 1
    runs: List[List[int]] = []
    for src in perm:
        if runs and src == runs[-1][-1] + 1:
            runs[-1].append(src)
        else:
            runs.append([src])
    source_order = sorted(range(len(runs)), key=lambda r: runs[r][0])
    counts = tuple(
        sum(1 for axis in runs[r] if axis != batch_axis)
        for r in source_order
    )
    group_of_run = {run: g for g, run in enumerate(source_order)}
    group_perm = tuple(group_of_run[r] for r in range(len(runs)))
    return counts, group_perm


def compile_plan(ops: Sequence[FusedOp], num_qubits: int) -> Plan:
    """Precompute the axis schedule of a fused gate list.

    The gate list is first blocked (:func:`block_ops`).  The engine never
    moves axes back after a contraction; it tracks which tensor axis holds
    which qubit and restores canonical order once, at the end.  That
    bookkeeping depends only on the gate sequence, so it is done here —
    once per circuit — leaving the runtime loop with nothing but
    ``reshape``/``transpose``/``matmul``/multiply calls over coalesced axis
    groups.  Pure SWAPs dissolve into the schedule entirely (they are just
    axis relabelings).

    The plan is independent of the trailing batch-axis size: the batch axis
    (index ``num_qubits``) never moves and its size is folded in at
    execution time.
    """
    n = num_qubits
    steps: List[tuple] = []
    # order[axis] = qubit currently stored on that axis.
    order = [n - 1 - axis for axis in range(n)]
    position = {qubit: axis for axis, qubit in enumerate(order)}

    for kind, qubits, payload in block_ops(
        ops, max_block=min(n, MAX_BLOCK_QUBITS)
    ):
        if kind == KIND_SWAP:
            axis_a, axis_b = position[qubits[0]], position[qubits[1]]
            order[axis_a], order[axis_b] = order[axis_b], order[axis_a]
            position[qubits[0]], position[qubits[1]] = axis_b, axis_a
            continue
        if kind == KIND_DIAGONAL:
            if np.all(payload == 1.0):
                continue
            target_axes = [position[q] for q in qubits]
            counts, group_of = _group_axes(target_axes, n)
            # Factor tensor: qubit q's axis lands on its group, size-1
            # dims everywhere else.
            u = len(qubits)
            factor = payload.reshape((2,) * u)  # axis i <-> qubits[u-1-i]
            by_axis = sorted(qubits, key=lambda q: position[q])
            factor = np.ascontiguousarray(
                factor.transpose(
                    [u - 1 - qubits.index(q) for q in by_axis]
                )
            )
            shape = [1] * len(counts)
            for q in qubits:
                shape[group_of[position[q]]] = 2
            steps.append(("b", factor.reshape(shape), counts))
            continue
        axes = [position[q] for q in reversed(qubits)]
        counts, group_of = _group_axes(axes, n)
        target_groups = [group_of[a] for a in axes]
        perm = tuple(target_groups) + tuple(
            g for g in range(len(counts)) if g not in set(target_groups)
        )
        steps.append(("g", payload, counts, perm))
        # The target axes now sit at the front; everything else keeps its
        # relative order (the tail axis stays last).
        axes_set = set(axes)
        order = [order[a] for a in axes] + [
            qubit for axis, qubit in enumerate(order) if axis not in axes_set
        ]
        position = {qubit: axis for axis, qubit in enumerate(order)}

    restore = tuple(position[n - 1 - axis] for axis in range(n)) + (n,)
    final = None
    if restore != tuple(range(n + 1)):
        final = _coalesce_permutation(restore)
    return steps, final


def execute_plan(
    data: np.ndarray, plan: Plan, num_qubits: int, tail: int = 1
) -> np.ndarray:
    """Apply a precompiled contraction plan to a flat dense array.

    ``data`` holds ``2**num_qubits * tail`` elements in canonical qubit
    order (trailing batch axis of size ``tail``); so does the result.
    ``data`` may be mutated in place; callers rebind to the return value.
    """
    steps, final = plan
    tensor = data
    scratch = out = None
    for step in steps:
        if step[0] == "g":
            _, matrix, counts, perm = step
            if scratch is None:
                # Two reusable buffers: the gather lands in `scratch`, the
                # matmul writes into `out`; `tensor` then lives in `out`
                # and the roles never conflict (the gather always copies
                # the full state out of `tensor` first).
                scratch = np.empty(data.size, dtype=data.dtype)
                out = np.empty(data.size, dtype=data.dtype)
            view = tensor.reshape(_group_dims(counts, tail)).transpose(perm)
            gathered = scratch.reshape(view.shape)
            np.copyto(gathered, view)
            rows = matrix.shape[0]
            result = out.reshape(rows, data.size // rows)
            np.matmul(matrix, gathered.reshape(rows, -1), out=result)
            tensor, out = result, (
                data if tensor is data else tensor.reshape(-1)
            )
            if out is data:
                out = np.empty(data.size, dtype=data.dtype)
        else:
            _, factor, counts = step
            view = tensor.reshape(_group_dims(counts, tail))
            view *= factor
            tensor = view
    if final is not None:
        counts, perm = final
        tensor = np.ascontiguousarray(
            tensor.reshape(_group_dims(counts, tail)).transpose(perm)
        )
    return tensor.reshape(data.shape)


def run_fused_ops(
    data: np.ndarray,
    ops: Sequence[FusedOp],
    num_qubits: int,
    tail: int = 1,
) -> np.ndarray:
    """Compile and execute a fused gate list (uncached convenience)."""
    if num_qubits == 0 or not ops:
        return data
    return execute_plan(
        data, compile_plan(ops, num_qubits), num_qubits, tail
    )


#: Cache of compiled plans, keyed like :data:`_FUSION_CACHE`.
_PLAN_CACHE: Dict[Tuple[int, str], Tuple[int, Plan]] = {}


def circuit_plan(circuit, dtype=np.complex128) -> Plan:
    """Memoized fuse-and-compile pipeline for a circuit object."""
    key = (id(circuit), np.dtype(dtype).str)
    fingerprint = circuit_fingerprint(circuit)
    cached = _PLAN_CACHE.get(key)
    if cached is not None and cached[0] == fingerprint:
        return cached[1]
    plan = compile_plan(
        fused_circuit_ops(circuit, dtype=dtype), circuit.num_qubits
    )
    is_new_key = key not in _PLAN_CACHE
    _PLAN_CACHE[key] = (fingerprint, plan)
    if is_new_key:
        weakref.finalize(circuit, _PLAN_CACHE.pop, key, None)
    return plan
