"""Density-matrix simulation with Kraus noise channels.

A reference implementation for small systems (<= ~10 qubits): exact mixed-
state evolution under gate unitaries and per-gate Kraus channels.  It exists
to validate the fast sampling executor: both models agree on the physics
(depolarizing error scaling, T1/T2 decay, readout confusion), while the
executor trades exactness for the throughput the full study needs.

Operators are applied as tensor contractions over the qubit axes via the
shared kernels (``rho -> (U rho) U^dagger`` as two row-side contractions),
replacing the per-amplitude embedding loops of the original implementation
— a >100x speedup at the top of the supported size range.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Sequence

import numpy as np

from ..circuits.circuit import QuantumCircuit
from .channels import Kraus
from .kernels import (
    apply_matrix,
    cached_gate_matrix,
    circuit_plan,
    execute_plan,
)

_MAX_DENSITY_QUBITS = 10


class DensityMatrix:
    """A ``2^n x 2^n`` density matrix with gate/channel application."""

    def __init__(self, num_qubits: int, data: Optional[np.ndarray] = None):
        if not 0 <= num_qubits <= _MAX_DENSITY_QUBITS:
            raise ValueError(
                f"num_qubits must be in [0, {_MAX_DENSITY_QUBITS}]"
            )
        self.num_qubits = num_qubits
        dim = 1 << num_qubits
        if data is None:
            self.data = np.zeros((dim, dim), dtype=complex)
            self.data[0, 0] = 1.0
        else:
            data = np.asarray(data, dtype=complex)
            if data.shape != (dim, dim):
                raise ValueError("density matrix shape mismatch")
            self.data = data.copy()

    def trace(self) -> float:
        return float(np.real(np.trace(self.data)))

    def purity(self) -> float:
        return float(np.real(np.trace(self.data @ self.data)))

    def _evolved(
        self, matrix: np.ndarray, qubits: Sequence[int]
    ) -> np.ndarray:
        """``U rho U^dagger`` via two row-axis tensor contractions.

        The row index of ``rho`` is contracted with ``U`` directly; the
        column index is reached by conjugate-transposing, contracting with
        ``U`` again, and transposing back: ``(U (U rho)^H)^H = U rho U^H``.
        """
        n = self.num_qubits
        dim = 1 << n
        matrix = np.ascontiguousarray(matrix, dtype=complex)
        half = apply_matrix(
            self.data, matrix, qubits, n, tail=dim, overwrite=False
        )
        half = np.ascontiguousarray(half.conj().T)
        full = apply_matrix(half, matrix, qubits, n, tail=dim)
        return np.ascontiguousarray(full.conj().T)

    def apply_unitary(self, matrix: np.ndarray, qubits: Sequence[int]) -> None:
        self.data = self._evolved(matrix, qubits)

    def apply_channel(self, channel: Kraus, qubits: Sequence[int]) -> None:
        """``rho -> sum_k K_k rho K_k^dagger`` (trace-preserving mixture)."""
        self.data = sum(
            self._evolved(kraus_op, qubits) for kraus_op in channel
        )

    def probabilities(self) -> np.ndarray:
        return np.clip(np.real(np.diag(self.data)), 0.0, None)

    def measurement_distribution(
        self, qubits: Optional[Sequence[int]] = None
    ) -> Dict[str, float]:
        """Z-basis outcome distribution over ``qubits`` (default: all)."""
        if qubits is None:
            qubits = list(range(self.num_qubits))
        probs = self.probabilities()
        out: Dict[str, float] = {}
        width = len(qubits)
        for index, prob in enumerate(probs):
            if prob < 1e-14:
                continue
            bits = "".join(
                "1" if (index >> q) & 1 else "0" for q in reversed(qubits)
            )
            out[bits] = out.get(bits, 0.0) + float(prob)
        return out


def simulate_density(
    circuit: QuantumCircuit,
    gate_noise: Optional[Dict[int, Kraus]] = None,
    default_1q_noise: Optional[Kraus] = None,
    default_2q_noise: Optional[Kraus] = None,
) -> DensityMatrix:
    """Evolve a circuit as a density matrix with optional per-gate noise.

    Args:
        circuit: circuit to simulate (measures/barriers ignored).
        gate_noise: optional map instruction index -> Kraus channel applied
            after that instruction (on its qubits).
        default_1q_noise: channel applied after every 1-qubit gate.
        default_2q_noise: channel applied after every 2-qubit gate.

    The noiseless case applies the fused gate list (one contraction per
    entangling gate); noisy evolution interleaves channels with gates, so
    each instruction is applied individually.
    """
    rho = DensityMatrix(circuit.num_qubits)
    noiseless = not gate_noise and default_1q_noise is None and (
        default_2q_noise is None
    )
    if noiseless:
        # Evolve rows with the whole fused circuit, conjugate-transpose,
        # evolve rows again: U (U rho)^H = U rho U^H (rho is Hermitian).
        n = circuit.num_qubits
        dim = 1 << n
        plan = circuit_plan(circuit)
        half = execute_plan(rho.data, plan, n, tail=dim)
        half = np.ascontiguousarray(half.conj().T)
        rho.data = execute_plan(half, plan, n, tail=dim)
        return rho
    for index, instruction in enumerate(circuit.instructions):
        if not instruction.is_unitary:
            continue
        matrix = cached_gate_matrix(instruction.name, instruction.params)
        rho.apply_unitary(matrix, instruction.qubits)
        channel = None
        if gate_noise and index in gate_noise:
            channel = gate_noise[index]
        elif instruction.num_qubits == 1 and default_1q_noise is not None:
            channel = default_1q_noise
        elif instruction.num_qubits == 2 and default_2q_noise is not None:
            channel = default_2q_noise
        if channel is not None:
            dim = channel[0].shape[0]
            target_qubits: Iterable[int]
            if dim == 2:
                target_qubits = instruction.qubits[:1]
            else:
                target_qubits = instruction.qubits[:2]
            rho.apply_channel(channel, list(target_qubits))
    return rho
