"""Density-matrix simulation with Kraus noise channels.

A reference implementation for small systems (<= ~8 qubits): exact mixed-
state evolution under gate unitaries and per-gate Kraus channels.  It exists
to validate the fast sampling executor: both models agree on the physics
(depolarizing error scaling, T1/T2 decay, readout confusion), while the
executor trades exactness for the throughput the full study needs.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from ..circuits.circuit import QuantumCircuit
from ..circuits.gates import gate_matrix
from .channels import Kraus

_MAX_DENSITY_QUBITS = 10


class DensityMatrix:
    """A ``2^n x 2^n`` density matrix with gate/channel application."""

    def __init__(self, num_qubits: int, data: Optional[np.ndarray] = None):
        if not 0 <= num_qubits <= _MAX_DENSITY_QUBITS:
            raise ValueError(
                f"num_qubits must be in [0, {_MAX_DENSITY_QUBITS}]"
            )
        self.num_qubits = num_qubits
        dim = 1 << num_qubits
        if data is None:
            self.data = np.zeros((dim, dim), dtype=complex)
            self.data[0, 0] = 1.0
        else:
            data = np.asarray(data, dtype=complex)
            if data.shape != (dim, dim):
                raise ValueError("density matrix shape mismatch")
            self.data = data.copy()

    def trace(self) -> float:
        return float(np.real(np.trace(self.data)))

    def purity(self) -> float:
        return float(np.real(np.trace(self.data @ self.data)))

    def _embed(self, matrix: np.ndarray, qubits: Sequence[int]) -> np.ndarray:
        """Expand a k-qubit operator to the full Hilbert space."""
        n = self.num_qubits
        k = len(qubits)
        full = np.zeros((1 << n, 1 << n), dtype=complex)
        others = [q for q in range(n) if q not in qubits]
        for row_local in range(1 << k):
            for col_local in range(1 << k):
                amp = matrix[row_local, col_local]
                if amp == 0:
                    continue
                for rest in range(1 << len(others)):
                    base = 0
                    for index, q in enumerate(others):
                        if (rest >> index) & 1:
                            base |= 1 << q
                    row = base
                    col = base
                    for index, q in enumerate(qubits):
                        if (row_local >> index) & 1:
                            row |= 1 << q
                        if (col_local >> index) & 1:
                            col |= 1 << q
                    full[row, col] += amp
        return full

    def apply_unitary(self, matrix: np.ndarray, qubits: Sequence[int]) -> None:
        full = self._embed(matrix, qubits)
        self.data = full @ self.data @ full.conj().T

    def apply_channel(self, channel: Kraus, qubits: Sequence[int]) -> None:
        full_ops = [self._embed(k, qubits) for k in channel]
        self.data = sum(
            op @ self.data @ op.conj().T for op in full_ops
        )

    def probabilities(self) -> np.ndarray:
        return np.clip(np.real(np.diag(self.data)), 0.0, None)

    def measurement_distribution(
        self, qubits: Optional[Sequence[int]] = None
    ) -> Dict[str, float]:
        """Z-basis outcome distribution over ``qubits`` (default: all)."""
        if qubits is None:
            qubits = list(range(self.num_qubits))
        probs = self.probabilities()
        out: Dict[str, float] = {}
        width = len(qubits)
        for index, prob in enumerate(probs):
            if prob < 1e-14:
                continue
            bits = "".join(
                "1" if (index >> q) & 1 else "0" for q in reversed(qubits)
            )
            out[bits] = out.get(bits, 0.0) + float(prob)
        return out


def simulate_density(
    circuit: QuantumCircuit,
    gate_noise: Optional[Dict[int, Kraus]] = None,
    default_1q_noise: Optional[Kraus] = None,
    default_2q_noise: Optional[Kraus] = None,
) -> DensityMatrix:
    """Evolve a circuit as a density matrix with optional per-gate noise.

    Args:
        circuit: circuit to simulate (measures/barriers ignored).
        gate_noise: optional map instruction index -> Kraus channel applied
            after that instruction (on its qubits).
        default_1q_noise: channel applied after every 1-qubit gate.
        default_2q_noise: channel applied after every 2-qubit gate.
    """
    rho = DensityMatrix(circuit.num_qubits)
    for index, instruction in enumerate(circuit.instructions):
        if not instruction.is_unitary:
            continue
        matrix = gate_matrix(instruction.name, instruction.params)
        rho.apply_unitary(matrix, instruction.qubits)
        channel = None
        if gate_noise and index in gate_noise:
            channel = gate_noise[index]
        elif instruction.num_qubits == 1 and default_1q_noise is not None:
            channel = default_1q_noise
        elif instruction.num_qubits == 2 and default_2q_noise is not None:
            channel = default_2q_noise
        if channel is not None:
            dim = channel[0].shape[0]
            target_qubits: Iterable[int]
            if dim == 2:
                target_qubits = instruction.qubits[:1]
            else:
                target_qubits = instruction.qubits[:2]
            rho.apply_channel(channel, list(target_qubits))
    return rho
