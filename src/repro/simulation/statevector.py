"""Dense noiseless statevector simulation.

This is the substrate the paper uses (via Qiskit Aer) to obtain the *true*
output distribution of every benchmark circuit.  Gate application is
delegated to the shared tensor kernels in :mod:`repro.simulation.kernels`:
each gate is one einsum contraction over the target qubit axes, runs of
single-qubit gates are fused into the next entangling gate, and matrices
are memoized — so the simulator comfortably handles the paper's 2-20 qubit
range at dataset-generation throughput.

Bit convention: index ``i`` of the state vector has qubit ``k`` in the bit
``(i >> k) & 1`` — qubit 0 is the least-significant bit, matching Qiskit.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence, Tuple

import numpy as np

from functools import lru_cache

from ..circuits.circuit import QuantumCircuit
from .kernels import apply_matrix, circuit_plan, execute_plan

_MAX_DENSE_QUBITS = 26

#: Probabilities below this are dropped from distribution dicts.
_PROB_CUTOFF = 1e-14


class Statevector:
    """A mutable ``2**n`` statevector with gate application kernels."""

    def __init__(
        self,
        num_qubits: int,
        data: np.ndarray | None = None,
        dtype=np.complex128,
    ):
        if num_qubits < 0 or num_qubits > _MAX_DENSE_QUBITS:
            raise ValueError(
                f"num_qubits must be in [0, {_MAX_DENSE_QUBITS}], got {num_qubits}"
            )
        self.num_qubits = num_qubits
        self.dtype = np.dtype(dtype)
        if self.dtype not in (np.dtype(np.complex64), np.dtype(np.complex128)):
            raise ValueError("dtype must be complex64 or complex128")
        dim = 1 << num_qubits
        if data is None:
            self.data = np.zeros(dim, dtype=self.dtype)
            self.data[0] = 1.0
        else:
            data = np.asarray(data, dtype=self.dtype).reshape(dim)
            self.data = data.copy()

    def copy(self) -> "Statevector":
        return Statevector(self.num_qubits, self.data, dtype=self.dtype)

    def apply_matrix(self, matrix: np.ndarray, qubits: Sequence[int]) -> None:
        """Apply a ``2**k x 2**k`` unitary to the given qubits in place.

        ``qubits[0]`` corresponds to the least-significant bit of the matrix
        index (the registry convention).
        """
        if matrix.dtype != self.dtype:
            matrix = matrix.astype(self.dtype)
        self.data = apply_matrix(self.data, matrix, qubits, self.num_qubits)

    def _apply_general(self, matrix: np.ndarray, qubits: Sequence[int]) -> None:
        """Generic tensor-reshape path (reference implementation for tests)."""
        from .kernels import _apply_general

        self.data = _apply_general(
            self.data, matrix.astype(self.dtype), qubits, self.num_qubits, 1
        )

    def probabilities(self) -> np.ndarray:
        """Probability of each computational-basis state."""
        real, imag = self.data.real, self.data.imag
        return real * real + imag * imag

    def marginal_probabilities(self, qubits: Sequence[int]) -> np.ndarray:
        """Marginal distribution over a subset of qubits.

        Output index bit ``m`` corresponds to ``qubits[m]``.
        """
        if list(qubits) == list(range(self.num_qubits)):
            # Identity layout: the flat probabilities already have output
            # bit m = qubit m.
            return self.probabilities()
        probs = self.probabilities().reshape((2,) * self.num_qubits)
        keep_axes = [self.num_qubits - 1 - q for q in qubits]
        drop_axes = tuple(
            axis for axis in range(self.num_qubits) if axis not in keep_axes
        )
        if drop_axes:
            probs = probs.sum(axis=drop_axes)
        # Remaining axes are ordered by original axis index (descending qubit).
        kept_sorted = sorted(keep_axes)
        # Reorder so that qubits[m] maps to output bit m (axis order:
        # most-significant first == reversed(qubits)).
        desired = [kept_sorted.index(axis) for axis in
                   (self.num_qubits - 1 - q for q in reversed(qubits))]
        probs = np.transpose(probs, desired)
        return probs.reshape(-1)

    def expectation_z(self, qubit: int) -> float:
        """Expectation value of Pauli-Z on ``qubit``."""
        probs = self.marginal_probabilities([qubit])
        return float(probs[0] - probs[1])

    def fidelity(self, other: "Statevector") -> float:
        """State fidelity ``|<self|other>|^2``."""
        if self.num_qubits != other.num_qubits:
            raise ValueError("qubit count mismatch")
        return float(abs(np.vdot(self.data, other.data)) ** 2)


def simulate_statevector(
    circuit: QuantumCircuit, dtype=np.complex128
) -> Statevector:
    """Run ``circuit`` (ignoring measures/barriers) and return the final state.

    Gates are fused (runs of single-qubit gates folded into one matrix and
    absorbed into adjacent two-qubit gates) before application, so the cost
    scales with the entangling-gate count rather than the raw gate count.

    ``dtype=numpy.complex64`` halves memory traffic; the resulting
    distribution error (~1e-6 for thousand-gate circuits) is far below shot
    noise, so the bulk study uses it.
    """
    state = Statevector(circuit.num_qubits, dtype=dtype)
    plan = circuit_plan(circuit, dtype=dtype)
    state.data = execute_plan(state.data, plan, circuit.num_qubits)
    if circuit.global_phase:
        state.data = state.data * np.exp(1j * circuit.global_phase).astype(
            dtype
        )
    return state


def circuit_unitary(circuit: QuantumCircuit) -> np.ndarray:
    """Full ``2**n x 2**n`` unitary of the circuit (small circuits only).

    Column ``j`` is the state produced from input basis state ``j``.  All
    columns evolve simultaneously: the identity matrix is treated as a batch
    of ``2**n`` statevectors and every fused gate is applied as one
    contraction with a trailing batch axis.
    """
    n = circuit.num_qubits
    if n > 12:
        raise ValueError("circuit_unitary is limited to 12 qubits")
    dim = 1 << n
    out = np.eye(dim, dtype=complex)
    out = execute_plan(out, circuit_plan(circuit), n, tail=dim)
    if circuit.global_phase:
        out = out * np.exp(1j * circuit.global_phase)
    return out


def _measurement_layout(
    circuit: QuantumCircuit,
) -> Tuple[List[int], int, List[int]]:
    """Resolve ``(qubits, width, positions)`` of the output register.

    Measured clbits define the output: bit ``positions[m]`` of the output
    string is the measured value of ``qubits[m]``.  Circuits without
    measurements report all qubits in qubit order.
    """
    pairs = circuit.measured_qubits()
    if pairs:
        measured_qubits = [qubit for qubit, _ in pairs]
        if len(set(measured_qubits)) != len(measured_qubits):
            raise ValueError(
                "a qubit is measured more than once; terminal measurements "
                "must be unique per qubit"
            )
        clbit_for = {}
        for qubit, clbit in pairs:
            clbit_for[clbit] = qubit
        clbits = sorted(clbit_for)
        qubits = [clbit_for[c] for c in clbits]
        width = max(clbits) + 1
        positions = clbits
    else:
        qubits = list(range(circuit.num_qubits))
        width = circuit.num_qubits
        positions = list(range(width))
    return qubits, width, positions


def _bitstring_keys(indices: np.ndarray, width: int) -> List[str]:
    """Vectorized big-endian bitstring rendering of integer outcomes."""
    if width == 0:
        return ["" for _ in range(len(indices))]
    indices = np.asarray(indices, dtype=np.int64)
    shifts = np.arange(width - 1, -1, -1, dtype=np.int64)
    bits = (indices[:, None] >> shifts) & 1
    chars = (bits + ord("0")).astype(np.uint8)
    flat = chars.tobytes().decode("ascii")
    return [flat[i:i + width] for i in range(0, len(flat), width)]


#: Widths whose complete bitstring tables are memoized (64k strings max).
_KEY_TABLE_MAX_WIDTH = 16


@lru_cache(maxsize=_KEY_TABLE_MAX_WIDTH + 1)
def _key_table(width: int) -> Tuple[str, ...]:
    """All ``2**width`` bitstrings, index-ordered (for small widths).

    Built by doubling — ``table(w) = ['0'+s, then '1'+s for s in
    table(w-1)]`` — which is several times faster than rendering 2**w
    strings from scratch.
    """
    if width == 1:
        return ("0", "1")
    half = _key_table(width - 1)
    return tuple(prefix + s for prefix in ("0", "1") for s in half)


def bitstring_keys(indices: np.ndarray, width: int) -> Sequence[str]:
    """Big-endian bitstrings of integer outcomes, table-backed when small."""
    if 0 < width <= _KEY_TABLE_MAX_WIDTH:
        table = _key_table(width)
        if len(indices) == len(table) and np.array_equal(
            indices, np.arange(len(table))
        ):
            return table
        return [table[i] for i in np.asarray(indices).tolist()]
    return _bitstring_keys(indices, width)


def ideal_distribution(
    circuit: QuantumCircuit, dtype=np.complex128
) -> Dict[str, float]:
    """The circuit's noiseless measurement distribution as a bitstring dict.

    Measured clbits define the output register: bit ``c`` of the output
    string is the measured value of the qubit mapped to clbit ``c``.  If the
    circuit has no measurements, all qubits are reported in qubit order.
    Bitstrings are big-endian (clbit 0 is the right-most character), matching
    Qiskit's counts convention.
    """
    state = simulate_statevector(circuit, dtype=dtype)
    qubits, width, positions = _measurement_layout(circuit)
    marginal = state.marginal_probabilities(qubits)
    support = np.flatnonzero(marginal >= _PROB_CUTOFF)
    if len(support) == len(marginal):
        probs = marginal
    else:
        probs = marginal[support]
    if positions == list(range(width)):
        out_index = support
    else:
        # Scatter marginal bit m to output bit positions[m].  The map is
        # injective (positions are distinct), so no aggregation needed.
        out_index = np.zeros(len(support), dtype=np.int64)
        for m, pos in enumerate(positions):
            out_index |= ((support >> m) & 1) << pos
    keys = bitstring_keys(out_index, width)
    return dict(zip(keys, np.asarray(probs, dtype=float).tolist()))


def sample_counts(
    distribution: Dict[str, float],
    shots: int,
    rng: np.random.Generator,
) -> Dict[str, int]:
    """Sample ``shots`` outcomes from a bitstring probability dict.

    Vectorized: one cumulative-distribution table and a single batch of
    uniform draws, binned with ``searchsorted`` — no per-shot Python work.
    """
    keys = sorted(distribution)
    probs = np.array([distribution[k] for k in keys], dtype=float)
    total = probs.sum()
    if not math.isclose(total, 1.0, abs_tol=1e-6):
        probs = probs / total
    draws = sample_indices(probs, shots, rng)
    counts = np.bincount(draws, minlength=len(keys))
    return {k: int(c) for k, c in zip(keys, counts) if c > 0}


def sample_indices(
    probs: np.ndarray, shots: int, rng: np.random.Generator
) -> np.ndarray:
    """Draw ``shots`` category indices from ``probs`` via one CDF lookup."""
    cdf = np.cumsum(probs)
    cdf[-1] = max(cdf[-1], 1.0)  # guard against round-off at the tail
    return np.searchsorted(cdf, rng.random(shots), side="right")
