"""Dense noiseless statevector simulation.

This is the substrate the paper uses (via Qiskit Aer) to obtain the *true*
output distribution of every benchmark circuit.  The simulator applies each
gate's unitary to a dense ``2**n`` complex state using tensor reshapes, so it
comfortably handles the paper's 2-20 qubit range.

Bit convention: index ``i`` of the state vector has qubit ``k`` in the bit
``(i >> k) & 1`` — qubit 0 is the least-significant bit, matching Qiskit.
"""

from __future__ import annotations

import math
from typing import Dict, Sequence

import numpy as np

from ..circuits.circuit import QuantumCircuit
from ..circuits.gates import gate_matrix

_MAX_DENSE_QUBITS = 26


class Statevector:
    """A mutable ``2**n`` statevector with gate application kernels."""

    def __init__(
        self,
        num_qubits: int,
        data: np.ndarray | None = None,
        dtype=np.complex128,
    ):
        if num_qubits < 0 or num_qubits > _MAX_DENSE_QUBITS:
            raise ValueError(
                f"num_qubits must be in [0, {_MAX_DENSE_QUBITS}], got {num_qubits}"
            )
        self.num_qubits = num_qubits
        self.dtype = np.dtype(dtype)
        if self.dtype not in (np.dtype(np.complex64), np.dtype(np.complex128)):
            raise ValueError("dtype must be complex64 or complex128")
        dim = 1 << num_qubits
        if data is None:
            self.data = np.zeros(dim, dtype=self.dtype)
            self.data[0] = 1.0
        else:
            data = np.asarray(data, dtype=self.dtype).reshape(dim)
            self.data = data.copy()

    def copy(self) -> "Statevector":
        return Statevector(self.num_qubits, self.data, dtype=self.dtype)

    def apply_matrix(self, matrix: np.ndarray, qubits: Sequence[int]) -> None:
        """Apply a ``2**k x 2**k`` unitary to the given qubits in place.

        ``qubits[0]`` corresponds to the least-significant bit of the matrix
        index (the registry convention).  One- and two-qubit gates use fast
        contiguous-slice kernels; larger gates fall back to a generic
        tensor-reshape path.
        """
        k = len(qubits)
        if matrix.shape != (1 << k, 1 << k):
            raise ValueError(
                f"matrix shape {matrix.shape} does not match {k} qubits"
            )
        if k == 1:
            self._apply_1q(matrix, qubits[0])
        elif k == 2:
            self._apply_2q(matrix, qubits[0], qubits[1])
        else:
            self._apply_general(matrix, qubits)

    def _apply_1q(self, matrix: np.ndarray, qubit: int) -> None:
        view = self.data.reshape(-1, 2, 1 << qubit)
        m00, m01, m10, m11 = matrix[0, 0], matrix[0, 1], matrix[1, 0], matrix[1, 1]
        if m01 == 0 and m10 == 0:
            # Diagonal gate (rz, p, z, ...): two scalings, no mixing.
            if m00 != 1.0:
                view[:, 0, :] *= m00
            if m11 != 1.0:
                view[:, 1, :] *= m11
            return
        if m00 == 0 and m11 == 0:
            # Anti-diagonal gate (x, y): swap-and-scale.
            s0 = view[:, 0, :].copy()
            view[:, 0, :] = m01 * view[:, 1, :]
            view[:, 1, :] = m10 * s0
            return
        s0 = view[:, 0, :].copy()
        s1 = view[:, 1, :]
        view[:, 0, :] = m00 * s0 + m01 * s1
        view[:, 1, :] = m10 * s0 + m11 * s1

    def _apply_2q(self, matrix: np.ndarray, qubit_a: int, qubit_b: int) -> None:
        lo, hi = (qubit_a, qubit_b) if qubit_a < qubit_b else (qubit_b, qubit_a)
        view = self.data.reshape(
            -1, 2, 1 << (hi - lo - 1), 2, 1 << lo
        )
        # Matrix index m: bit 0 = value of qubit_a, bit 1 = value of qubit_b.
        # View axis 1 = bit of `hi`, axis 3 = bit of `lo`.
        slices = []
        for m in range(4):
            bit_a, bit_b = m & 1, (m >> 1) & 1
            bit_lo, bit_hi = (bit_a, bit_b) if qubit_a == lo else (bit_b, bit_a)
            slices.append((bit_hi, bit_lo))
        off_diagonal = abs(matrix).sum() - abs(np.diag(matrix)).sum()
        if off_diagonal == 0:
            # Diagonal gate (cz, cp, rzz, ...): pure scalings.
            for m, (bh, bl) in enumerate(slices):
                if matrix[m, m] != 1.0:
                    view[:, bh, :, bl, :] *= matrix[m, m]
            return
        olds = [view[:, bh, :, bl, :].copy() for bh, bl in slices]
        for m, (bh, bl) in enumerate(slices):
            view[:, bh, :, bl, :] = (
                matrix[m, 0] * olds[0]
                + matrix[m, 1] * olds[1]
                + matrix[m, 2] * olds[2]
                + matrix[m, 3] * olds[3]
            )

    def _apply_general(self, matrix: np.ndarray, qubits: Sequence[int]) -> None:
        k = len(qubits)
        n = self.num_qubits
        # View the state as an n-axis tensor; axis j corresponds to qubit
        # n-1-j (most-significant qubit first).
        tensor = self.data.reshape((2,) * n)
        # Matrix index bit m corresponds to qubits[m]; bring the axes so the
        # most-significant matrix bit (qubits[k-1]) comes first.
        axes = [n - 1 - qubits[m] for m in reversed(range(k))]
        tensor = np.moveaxis(tensor, axes, range(k))
        shape = tensor.shape
        tensor = tensor.reshape(1 << k, -1)
        tensor = matrix @ tensor
        tensor = tensor.reshape(shape)
        tensor = np.moveaxis(tensor, range(k), axes)
        self.data = np.ascontiguousarray(tensor).reshape(-1)

    def probabilities(self) -> np.ndarray:
        """Probability of each computational-basis state."""
        return np.abs(self.data) ** 2

    def marginal_probabilities(self, qubits: Sequence[int]) -> np.ndarray:
        """Marginal distribution over a subset of qubits.

        Output index bit ``m`` corresponds to ``qubits[m]``.
        """
        probs = self.probabilities().reshape((2,) * self.num_qubits)
        keep_axes = [self.num_qubits - 1 - q for q in qubits]
        drop_axes = tuple(
            axis for axis in range(self.num_qubits) if axis not in keep_axes
        )
        if drop_axes:
            probs = probs.sum(axis=drop_axes)
        # Remaining axes are ordered by original axis index (descending qubit).
        kept_sorted = sorted(keep_axes)
        # Reorder so that qubits[m] maps to output bit m (axis order:
        # most-significant first == reversed(qubits)).
        desired = [kept_sorted.index(axis) for axis in
                   (self.num_qubits - 1 - q for q in reversed(qubits))]
        probs = np.transpose(probs, desired)
        return probs.reshape(-1)

    def expectation_z(self, qubit: int) -> float:
        """Expectation value of Pauli-Z on ``qubit``."""
        probs = self.marginal_probabilities([qubit])
        return float(probs[0] - probs[1])

    def fidelity(self, other: "Statevector") -> float:
        """State fidelity ``|<self|other>|^2``."""
        if self.num_qubits != other.num_qubits:
            raise ValueError("qubit count mismatch")
        return float(abs(np.vdot(self.data, other.data)) ** 2)


def simulate_statevector(
    circuit: QuantumCircuit, dtype=np.complex128
) -> Statevector:
    """Run ``circuit`` (ignoring measures/barriers) and return the final state.

    ``dtype=numpy.complex64`` halves memory traffic; the resulting
    distribution error (~1e-6 for thousand-gate circuits) is far below shot
    noise, so the bulk study uses it.
    """
    state = Statevector(circuit.num_qubits, dtype=dtype)
    for instruction in circuit.instructions:
        if not instruction.is_unitary:
            continue
        matrix = gate_matrix(instruction.name, instruction.params).astype(dtype)
        state.apply_matrix(matrix, instruction.qubits)
    if circuit.global_phase:
        state.data *= np.exp(1j * circuit.global_phase)
    return state


def circuit_unitary(circuit: QuantumCircuit) -> np.ndarray:
    """Full ``2**n x 2**n`` unitary of the circuit (small circuits only).

    Column ``j`` is the state produced from input basis state ``j``.
    """
    n = circuit.num_qubits
    if n > 12:
        raise ValueError("circuit_unitary is limited to 12 qubits")
    dim = 1 << n
    out = np.zeros((dim, dim), dtype=complex)
    for j in range(dim):
        state = Statevector(n)
        state.data[:] = 0
        state.data[j] = 1.0
        for instruction in circuit.instructions:
            if not instruction.is_unitary:
                continue
            matrix = gate_matrix(instruction.name, instruction.params)
            state.apply_matrix(matrix, instruction.qubits)
        out[:, j] = state.data
    if circuit.global_phase:
        out *= np.exp(1j * circuit.global_phase)
    return out


def ideal_distribution(
    circuit: QuantumCircuit, dtype=np.complex128
) -> Dict[str, float]:
    """The circuit's noiseless measurement distribution as a bitstring dict.

    Measured clbits define the output register: bit ``c`` of the output
    string is the measured value of the qubit mapped to clbit ``c``.  If the
    circuit has no measurements, all qubits are reported in qubit order.
    Bitstrings are big-endian (clbit 0 is the right-most character), matching
    Qiskit's counts convention.
    """
    state = simulate_statevector(circuit, dtype=dtype)
    pairs = circuit.measured_qubits()
    if pairs:
        measured_qubits = [qubit for qubit, _ in pairs]
        if len(set(measured_qubits)) != len(measured_qubits):
            raise ValueError(
                "a qubit is measured more than once; terminal measurements "
                "must be unique per qubit"
            )
        clbit_for = {}
        for qubit, clbit in pairs:
            clbit_for[clbit] = qubit
        clbits = sorted(clbit_for)
        qubits = [clbit_for[c] for c in clbits]
        width = max(clbits) + 1
        positions = clbits
    else:
        qubits = list(range(circuit.num_qubits))
        width = circuit.num_qubits
        positions = list(range(width))
    marginal = state.marginal_probabilities(qubits)
    dist: Dict[str, float] = {}
    for index, prob in enumerate(marginal):
        if prob < 1e-14:
            continue
        bits = ["0"] * width
        for m, pos in enumerate(positions):
            if (index >> m) & 1:
                bits[pos] = "1"
        key = "".join(reversed(bits))
        dist[key] = dist.get(key, 0.0) + float(prob)
    return dist


def sample_counts(
    distribution: Dict[str, float],
    shots: int,
    rng: np.random.Generator,
) -> Dict[str, int]:
    """Sample ``shots`` outcomes from a bitstring probability dict."""
    keys = sorted(distribution)
    probs = np.array([distribution[k] for k in keys], dtype=float)
    total = probs.sum()
    if not math.isclose(total, 1.0, abs_tol=1e-6):
        probs = probs / total
    draws = rng.multinomial(shots, probs)
    return {k: int(c) for k, c in zip(keys, draws) if c > 0}
