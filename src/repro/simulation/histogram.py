"""ASCII histograms for measurement distributions.

Used by the examples and handy in a REPL: render one distribution, or two
side by side (the paper's Fig. 2 contrasts the true distribution with the
QPU distribution — this is the text-mode equivalent).
"""

from __future__ import annotations

from typing import Mapping, Optional

Distribution = Mapping[str, float]


def render_histogram(
    distribution: Distribution,
    title: str = "",
    width: int = 40,
    max_rows: int = 16,
) -> str:
    """Render a single distribution as horizontal bars.

    Outcomes are sorted by probability; at most ``max_rows`` rows are shown,
    with the remaining mass aggregated into an "(other)" row.
    """
    items = sorted(distribution.items(), key=lambda kv: -kv[1])
    shown = items[:max_rows]
    rest = sum(p for _, p in items[max_rows:])
    peak = max((p for _, p in shown), default=1.0)
    lines = []
    if title:
        lines.append(title)
    for key, prob in shown:
        bar = "#" * max(1, int(round(width * prob / peak))) if prob > 0 else ""
        lines.append(f"  {key}  {prob:7.4f} |{bar}")
    if rest > 1e-12:
        lines.append(f"  (other)  {rest:6.4f}")
    return "\n".join(lines)


def render_comparison(
    ideal: Distribution,
    measured: Distribution,
    title: str = "",
    width: int = 30,
    max_rows: int = 12,
    labels: Optional[tuple[str, str]] = None,
) -> str:
    """Render two distributions side by side over their union support."""
    label_a, label_b = labels or ("ideal", "measured")
    keys = sorted(
        set(ideal) | set(measured),
        # Secondary key: ties would otherwise surface in hash-salted set
        # order, making the rendered row order vary between interpreters.
        key=lambda k: (-(ideal.get(k, 0.0) + measured.get(k, 0.0)), k),
    )
    shown = keys[:max_rows]
    peak = max(
        [ideal.get(k, 0.0) for k in shown]
        + [measured.get(k, 0.0) for k in shown]
        + [1e-12]
    )
    lines = []
    if title:
        lines.append(title)
    lines.append(f"  {'outcome':<12} {label_a:>9} {label_b:>9}")
    for key in shown:
        pa = ideal.get(key, 0.0)
        pb = measured.get(key, 0.0)
        bar_a = "#" * int(round(width * pa / peak))
        bar_b = "=" * int(round(width * pb / peak))
        lines.append(f"  {key:<12} {pa:9.4f} {pb:9.4f}  |{bar_a}")
        lines.append(f"  {'':<12} {'':>9} {'':>9}  |{bar_b}")
    remaining = len(keys) - len(shown)
    if remaining > 0:
        lines.append(f"  ... {remaining} more outcomes")
    return "\n".join(lines)
