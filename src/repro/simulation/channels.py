"""Kraus channels for density-matrix noise modelling.

These channels back the small-scale density-matrix simulator used to
validate the fast executor's error model: depolarizing, amplitude damping,
phase damping, bit/phase flips, and readout confusion.  Each channel is a
list of Kraus operators ``K_i`` with ``sum_i K_i^dagger K_i = I``.
"""

from __future__ import annotations

import math
from typing import List

import numpy as np

Kraus = List[np.ndarray]

_I = np.eye(2, dtype=complex)
_X = np.array([[0, 1], [1, 0]], dtype=complex)
_Y = np.array([[0, -1j], [1j, 0]], dtype=complex)
_Z = np.array([[1, 0], [0, -1]], dtype=complex)


def _validate_probability(p: float, name: str = "p") -> None:
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"{name} = {p} outside [0, 1]")


def identity_channel() -> Kraus:
    """The trivial channel."""
    return [_I.copy()]


def bit_flip(p: float) -> Kraus:
    """X error with probability ``p``."""
    _validate_probability(p)
    return [math.sqrt(1 - p) * _I, math.sqrt(p) * _X]


def phase_flip(p: float) -> Kraus:
    """Z error with probability ``p``."""
    _validate_probability(p)
    return [math.sqrt(1 - p) * _I, math.sqrt(p) * _Z]


def depolarizing(p: float) -> Kraus:
    """Single-qubit depolarizing channel with error probability ``p``."""
    _validate_probability(p)
    return [
        math.sqrt(1 - p) * _I,
        math.sqrt(p / 3) * _X,
        math.sqrt(p / 3) * _Y,
        math.sqrt(p / 3) * _Z,
    ]


def two_qubit_depolarizing(p: float) -> Kraus:
    """Two-qubit depolarizing channel (15 non-identity Paulis)."""
    _validate_probability(p)
    paulis = [_I, _X, _Y, _Z]
    ops: Kraus = []
    for i, a in enumerate(paulis):
        for j, b in enumerate(paulis):
            weight = 1 - p if (i == 0 and j == 0) else p / 15
            ops.append(math.sqrt(weight) * np.kron(a, b))
    return ops


def amplitude_damping(gamma: float) -> Kraus:
    """T1 relaxation: ``|1> -> |0>`` with probability ``gamma``."""
    _validate_probability(gamma, "gamma")
    k0 = np.array([[1, 0], [0, math.sqrt(1 - gamma)]], dtype=complex)
    k1 = np.array([[0, math.sqrt(gamma)], [0, 0]], dtype=complex)
    return [k0, k1]


def phase_damping(lam: float) -> Kraus:
    """Pure dephasing (T2) with probability ``lam``."""
    _validate_probability(lam, "lam")
    k0 = np.array([[1, 0], [0, math.sqrt(1 - lam)]], dtype=complex)
    k1 = np.array([[0, 0], [0, math.sqrt(lam)]], dtype=complex)
    return [k0, k1]


def thermal_relaxation(t1: float, t2: float, duration: float) -> Kraus:
    """Combined T1/T2 channel over ``duration`` (same units as T1/T2).

    Requires ``t2 <= 2 * t1`` (physicality).  Implemented as amplitude
    damping followed by the residual pure dephasing.
    """
    if t1 <= 0 or t2 <= 0:
        raise ValueError("T1 and T2 must be positive")
    if t2 > 2 * t1 + 1e-12:
        raise ValueError("unphysical relaxation: T2 > 2*T1")
    gamma = 1.0 - math.exp(-duration / t1)
    # Residual dephasing after accounting for the T1 contribution.
    exp_t2 = math.exp(-duration / t2)
    exp_t1_half = math.exp(-duration / (2 * t1))
    dephase = 1.0 - (exp_t2 / exp_t1_half) ** 2
    dephase = min(max(dephase, 0.0), 1.0)
    amplitude = amplitude_damping(gamma)
    phase = phase_damping(dephase)
    return compose_channels(amplitude, phase)


def compose_channels(first: Kraus, second: Kraus) -> Kraus:
    """The channel applying ``first`` then ``second``."""
    return [k2 @ k1 for k2 in second for k1 in first]


def is_trace_preserving(channel: Kraus, atol: float = 1e-9) -> bool:
    """Check ``sum K_i^dagger K_i == I``."""
    dim = channel[0].shape[0]
    total = sum(k.conj().T @ k for k in channel)
    return np.allclose(total, np.eye(dim), atol=atol)


def readout_confusion_matrix(p01: float, p10: float) -> np.ndarray:
    """Column-stochastic classical confusion matrix.

    ``M[i, j] = P(read i | true j)`` with ``p01 = P(1|0)``, ``p10 = P(0|1)``.
    """
    _validate_probability(p01, "p01")
    _validate_probability(p10, "p10")
    return np.array([[1 - p01, p10], [p01, 1 - p10]])
