"""Noisy QPU emulation: the execution channel standing in for real hardware.

The paper executes every benchmark circuit on two real IQM 20-qubit QPUs and
labels it with the Hellinger distance between the ideal distribution and the
measured one.  This module reproduces that channel with a physically
motivated error model whose *structure* matches the failure modes the paper
identifies:

1. **Gate errors** use the device's *true* calibration (per-qubit 1q
   fidelities, per-edge CZ fidelities) — which differs from the *reported*
   snapshot that figures of merit see.
2. **Crosstalk**: simultaneously executing gates on neighbouring qubits add
   extra error (the effect of Fig. 1 that no established figure of merit
   captures).
3. **Decoherence**: per-qubit idle time causes dephasing (T2, folded into
   the global success probability) and amplitude decay (T1, a biased
   1 -> 0 readout flip).
4. **Coherent errors**: a deterministic, circuit-specific distortion of the
   ideal distribution (miscalibrated pulses do not simply depolarize).
5. **Readout confusion**: asymmetric per-qubit bit flips.
6. **Shot noise**: finitely many samples.

The outcome distribution is the mixture ``S * P_distorted + (1 - S) * E``
where ``S`` is the accumulated success probability and the error
distribution ``E`` combines locally scrambled copies of ``P`` with a uniform
background.

Throughput comes from two mechanisms.  All circuit-static quantities
(success probability, idle schedule, readout flip rates, the structural
signature of the coherent distortion) are computed once per ``(circuit,
device)`` pair and cached, so repeated executions — PST sweeps, seed
ensembles, shot-count scans — only pay for sampling.  Sampling itself is
fully vectorized: one cumulative-distribution table serves every shot via a
single ``searchsorted`` batch, and scramble/readout bit flips are drawn as
one ``(shots, width)`` matrix.  :meth:`QPUExecutor.run_batch` executes many
circuits with a worker pool and deterministic per-circuit RNG streams.
"""

from __future__ import annotations

import hashlib
import math
import weakref
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..circuits.circuit import QuantumCircuit
from ..circuits.dag import CircuitDag
from ..hardware.device import Device
from ..parallel import parallel_map, resolve_workers  # noqa: F401  (re-export)
from .kernels import circuit_fingerprint
from .statevector import bitstring_keys, ideal_distribution, sample_indices

_SCRAMBLE_FLIP_PROB = 0.3

#: Stride between the default per-circuit RNG seeds of :meth:`run_batch`
#: (prime, so overlapping batches decorrelate quickly).
SEED_STRIDE = 7919


@dataclass
class ExecutionResult:
    """Counts plus diagnostic quantities of one noisy execution."""

    counts: Dict[str, int]
    shots: int
    success_probability: float
    gate_error_accumulated: float
    crosstalk_error_accumulated: float
    dephasing_factor: float

    def distribution(self) -> Dict[str, float]:
        return {k: v / self.shots for k, v in self.counts.items()}


def _device_fingerprint(device: Device) -> int:
    """Content hash of everything the execution profile reads off a device.

    Covers the true calibration tables, noise parameters, and coupling
    edges, so in-place drift (e.g. scaling ``true_calibration.t2``) is
    detected and the cached profile recomputed.
    """
    cal = device.true_calibration
    noise = device.noise
    return hash((
        device.name,
        tuple(sorted(cal.one_qubit_fidelity.items())),
        tuple(sorted(cal.two_qubit_fidelity.items())),
        tuple(sorted(cal.readout_fidelity.items())),
        tuple(sorted(cal.t1.items())),
        tuple(sorted(cal.t2.items())),
        (
            cal.durations.one_qubit,
            cal.durations.two_qubit,
            cal.durations.readout,
        ),
        (
            noise.crosstalk_two_two,
            noise.crosstalk_two_one,
            noise.coherent_strength,
            noise.scramble_locality,
            noise.garbage_one_bias,
            noise.readout_asymmetry,
        ),
        tuple(sorted(device.coupling.edges)),
    ))


@dataclass
class _CircuitProfile:
    """Everything about executing a circuit that does not depend on shots."""

    fingerprint: int
    device_fingerprint: int
    success: float
    diag: Dict[str, float]
    idle: Dict[int, float]
    signature: int
    clbit_to_qubit: Dict[int, int]


#: Cache of circuit-static execution profiles, keyed by
#: ``(id(circuit), id(device))`` — object identity on both sides, so two
#: devices that share a name but differ in calibration/noise never reuse
#: each other's profiles.  Entries are evicted when either object is
#: garbage collected (guarding against ``id`` reuse) and revalidated
#: against content fingerprints of both the circuit and the device
#: (guarding against in-place edits and calibration drift).
_PROFILE_CACHE: Dict[Tuple[int, int], _CircuitProfile] = {}

#: Live cache keys per device id, so a device's finalizer can evict every
#: profile computed against it (long-lived circuits executed on short-lived
#: devices would otherwise pin dead-device entries until the *circuit*
#: died).  ``_DEVICE_FINALIZED`` tracks which device ids currently carry a
#: finalizer; the id is released in the finalizer so a recycled id gets a
#: fresh one.
_DEVICE_KEYS: Dict[int, set] = {}
_DEVICE_FINALIZED: set = set()


def _evict_device_profiles(device_id: int) -> None:
    """Drop every cached profile computed against a now-dead device."""
    _DEVICE_FINALIZED.discard(device_id)
    for key in _DEVICE_KEYS.pop(device_id, ()):
        _PROFILE_CACHE.pop(key, None)


def _profile_cache_evict(key: Tuple[int, int]) -> None:
    """Drop one profile when its circuit dies (device bookkeeping included)."""
    _PROFILE_CACHE.pop(key, None)
    device_keys = _DEVICE_KEYS.get(key[1])
    if device_keys is not None:
        device_keys.discard(key)


class QPUExecutor:
    """Executes compiled circuits on an emulated noisy device."""

    def __init__(self, device: Device):
        self.device = device

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def execute(
        self,
        circuit: QuantumCircuit,
        shots: int = 2000,
        seed: int = 0,
        ideal: Optional[Dict[str, float]] = None,
    ) -> ExecutionResult:
        """Run ``circuit`` with ``shots`` repetitions and return counts.

        Args:
            circuit: a compiled circuit (native gates, coupled 2q pairs,
                terminal measurements).  Validated against the device.
            shots: number of samples.
            seed: seed for the stochastic parts (shot noise, scrambling).
            ideal: optional precomputed ideal distribution (saves the
                statevector simulation when the caller already has it).
        """
        if shots <= 0:
            raise ValueError("shots must be positive")
        profile = self._profile(circuit)

        if ideal is None:
            ideal = ideal_distribution(circuit)

        rng = np.random.default_rng(seed)
        distorted = self._distort(profile.signature, ideal, profile.success)

        width = len(next(iter(ideal)))
        outcomes = self._sample_outcomes(
            distorted, profile.success, width, shots, rng
        )
        outcomes = self._apply_readout_and_decay(
            outcomes, width, profile, rng
        )
        counts = self._to_counts(outcomes, width)
        return ExecutionResult(
            counts=counts,
            shots=shots,
            success_probability=profile.success,
            gate_error_accumulated=profile.diag["gate"],
            crosstalk_error_accumulated=profile.diag["crosstalk"],
            dephasing_factor=profile.diag["dephasing"],
        )

    def run_batch(
        self,
        circuits: Sequence[QuantumCircuit],
        shots: int = 2000,
        seed: int = 0,
        ideals: Optional[Sequence[Optional[Dict[str, float]]]] = None,
        seeds: Optional[Sequence[int]] = None,
        max_workers: Optional[int] = None,
        on_result: Optional[Callable[[int, ExecutionResult], None]] = None,
    ) -> List[ExecutionResult]:
        """Execute many circuits, in parallel, with per-circuit RNG streams.

        Circuit ``i`` runs exactly as ``execute(circuits[i], shots,
        seed=seeds[i], ideal=ideals[i])`` would — results are returned in
        input order and are bit-identical to the sequential calls for any
        worker count, because every circuit owns an independent RNG stream.

        Args:
            circuits: circuits to execute.
            shots: shots per circuit.
            seed: base seed; circuit ``i`` defaults to the stream
                ``seed + SEED_STRIDE * i``.
            ideals: optional per-circuit precomputed ideal distributions
                (``None`` entries are simulated on the worker).
            seeds: optional explicit per-circuit seeds (overrides ``seed``).
            max_workers: worker-pool size (default: one per CPU).
            on_result: optional ``callback(index, result)`` fired in the
                parent as each circuit finishes (completion order) —
                per-circuit liveness for progress reporting.

        Returns:
            One :class:`ExecutionResult` per circuit, in input order.

        Execution is numpy-heavy and releases the GIL, so the pool is a
        thread pool (pinned explicitly; the GIL-bound compile/featurize
        stages are the ones that use process pools — see
        :mod:`repro.parallel`).
        """
        n = len(circuits)
        if seeds is None:
            seeds = [seed + SEED_STRIDE * i for i in range(n)]
        elif len(seeds) != n:
            raise ValueError("seeds must match circuits in length")
        if ideals is None:
            ideals = [None] * n
        elif len(ideals) != n:
            raise ValueError("ideals must match circuits in length")

        def job(index: int) -> ExecutionResult:
            return self.execute(
                circuits[index],
                shots=shots,
                seed=seeds[index],
                ideal=ideals[index],
            )

        return parallel_map(
            job, range(n),
            max_workers=max_workers, on_result=on_result, mode="thread",
        )

    # ------------------------------------------------------------------
    # Circuit-static profile
    # ------------------------------------------------------------------

    def _profile(self, circuit: QuantumCircuit) -> _CircuitProfile:
        """Validate the circuit and compute (or recall) its static profile."""
        key = (id(circuit), id(self.device))
        fingerprint = circuit_fingerprint(circuit)
        device_fingerprint = _device_fingerprint(self.device)
        cached = _PROFILE_CACHE.get(key)
        if cached is not None and (
            cached.fingerprint == fingerprint
            and cached.device_fingerprint == device_fingerprint
        ):
            return cached

        self.device.validate_circuit(circuit)
        measured = circuit.measured_qubits()
        if not measured:
            raise ValueError("circuit has no measurements; nothing to sample")

        success, diag, idle = self._success_probability(circuit)
        profile = _CircuitProfile(
            fingerprint=fingerprint,
            device_fingerprint=device_fingerprint,
            success=success,
            diag=diag,
            idle=idle,
            signature=self._structural_hash(circuit),
            clbit_to_qubit={clbit: qubit for qubit, clbit in measured},
        )
        # One finalizer per live (circuit, device) key: entries only leave
        # the cache when the circuit dies, so a key absent at insertion has
        # no live finalizer yet.  The device side mirrors this with one
        # finalizer per live device id, evicting every key computed against
        # it, so dead devices release their profiles without waiting for
        # the circuits to be collected.
        is_new_key = key not in _PROFILE_CACHE
        _PROFILE_CACHE[key] = profile
        device_id = id(self.device)
        _DEVICE_KEYS.setdefault(device_id, set()).add(key)
        if device_id not in _DEVICE_FINALIZED:
            _DEVICE_FINALIZED.add(device_id)
            weakref.finalize(self.device, _evict_device_profiles, device_id)
        if is_new_key:
            weakref.finalize(circuit, _profile_cache_evict, key)
        return profile

    # ------------------------------------------------------------------
    # Error accumulation
    # ------------------------------------------------------------------

    def _success_probability(
        self, circuit: QuantumCircuit
    ) -> Tuple[float, Dict[str, float], Dict[int, float]]:
        """Accumulate gate, crosstalk, and dephasing error into ``S``.

        Returns ``(success, diagnostics, per-qubit idle times)``; the idle
        times are reused by the readout/decay channel so the schedule is
        computed once per circuit.
        """
        cal = self.device.true_calibration
        noise = self.device.noise
        coupling = self.device.coupling

        log_success = 0.0
        gate_error = 0.0
        crosstalk_error = 0.0

        dag = CircuitDag(circuit)
        layers = dag.layers(include_directives=True)
        for layer in layers:
            two_qubit_gates = [
                ins for ins in layer
                if ins.is_unitary and ins.num_qubits == 2
            ]
            one_qubit_gates = [
                ins for ins in layer
                if ins.is_unitary and ins.num_qubits == 1
            ]
            # Qubits with an active neighbour in the same layer get crosstalk.
            busy_one_q = {ins.qubits[0] for ins in one_qubit_gates}
            for instruction in layer:
                if instruction.name == "measure" or not instruction.is_unitary:
                    continue
                if instruction.num_qubits == 1:
                    error = 1.0 - cal.one_qubit_fidelity[instruction.qubits[0]]
                    gate_error += error
                else:
                    a, b = instruction.qubits
                    error = 1.0 - cal.edge_fidelity(a, b)
                    gate_error += error
                    # Crosstalk from other simultaneous gates near this edge.
                    xt = 0.0
                    for other in two_qubit_gates:
                        if other is instruction:
                            continue
                        if self._edges_adjacent(
                            coupling, instruction.qubits, other.qubits
                        ):
                            xt += noise.crosstalk_two_two
                    neighbour_qubits = set()
                    for q in (a, b):
                        neighbour_qubits.update(coupling.neighbors(q))
                    neighbour_qubits -= {a, b}
                    xt += noise.crosstalk_two_one * len(
                        busy_one_q & neighbour_qubits
                    )
                    crosstalk_error += xt
                    error += xt
                error = min(error, 0.75)
                log_success += math.log1p(-error)

        # Dephasing from idle time (T2, true values).
        from ..compiler.passes.scheduling import schedule_asap

        schedule = schedule_asap(circuit, cal.durations)
        idle = schedule.idle_times()
        dephasing = 0.0
        for qubit, idle_time in idle.items():
            dephasing += idle_time / cal.t2[qubit]
        dephasing_factor = math.exp(-dephasing)

        success = math.exp(log_success) * dephasing_factor
        diag = {
            "gate": gate_error,
            "crosstalk": crosstalk_error,
            "dephasing": dephasing_factor,
        }
        return success, diag, idle

    @staticmethod
    def _edges_adjacent(coupling, qubits_a, qubits_b) -> bool:
        """Whether two gate edges touch or neighbour each other."""
        set_a, set_b = set(qubits_a), set(qubits_b)
        if set_a & set_b:
            return True
        for qa in set_a:
            for qb in set_b:
                if coupling.has_edge(qa, qb):
                    return True
        return False

    # ------------------------------------------------------------------
    # Distribution machinery
    # ------------------------------------------------------------------

    def _coherent_distortion(
        self,
        circuit: QuantumCircuit,
        ideal: Dict[str, float],
        success: float,
    ) -> Dict[str, float]:
        """Deterministically distort the ideal distribution.

        Coherent (non-depolarizing) errors shift probability mass between
        nearby outcomes rather than whitening the distribution.  The
        distortion is a fixed function of (device, circuit structure), so
        repeated executions see the same systematic error.
        """
        return self._distort(self._structural_hash(circuit), ideal, success)

    def _distort(
        self, signature: int, ideal: Dict[str, float], success: float
    ) -> Dict[str, float]:
        strength = self.device.noise.coherent_strength * (1.0 - success)
        if strength <= 0.0:
            return dict(ideal)
        rng = np.random.default_rng(signature)
        keys = sorted(ideal)
        weights = np.array([ideal[k] for k in keys])
        factors = np.exp(strength * rng.standard_normal(len(keys)))
        weights = weights * factors
        weights /= weights.sum()
        return dict(zip(keys, weights))

    def _structural_hash(self, circuit: QuantumCircuit) -> int:
        text = self.device.name + ";" + ";".join(
            f"{ins.name}{ins.qubits}{tuple(round(p, 6) for p in ins.params)}"
            for ins in circuit.instructions
        )
        digest = hashlib.sha256(text.encode()).digest()
        return int.from_bytes(digest[:8], "little")

    def _sample_outcomes(
        self,
        distorted_ideal: Dict[str, float],
        success: float,
        width: int,
        shots: int,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Draw raw outcome integers from ``S * P' + (1 - S) * E``.

        Ideal and scrambled shots share one cumulative-distribution table
        and one ``searchsorted`` batch; scramble and background bit flips
        are drawn as ``(shots, width)`` matrices and packed to integers.
        """
        keys = sorted(distorted_ideal)
        key_ints = np.array([int(k, 2) for k in keys], dtype=np.int64)
        probs = np.array([distorted_ideal[k] for k in keys])
        probs = probs / probs.sum()

        locality = self.device.noise.scramble_locality
        choice = rng.random(shots)
        from_ideal = choice < success
        from_scramble = (~from_ideal) & (
            rng.random(shots) < locality
        )
        from_uniform = ~(from_ideal | from_scramble)

        powers = 1 << np.arange(width, dtype=np.int64)
        outcomes = np.empty(shots, dtype=np.int64)
        n_ideal = int(from_ideal.sum())
        n_scramble = int(from_scramble.sum())
        n_uniform = int(from_uniform.sum())
        if n_ideal or n_scramble:
            # One CDF draw serves both ideal and scrambled shots.
            drawn = key_ints[
                sample_indices(probs, n_ideal + n_scramble, rng)
            ]
            if n_ideal:
                outcomes[from_ideal] = drawn[:n_ideal]
            if n_scramble:
                flips = rng.random((n_scramble, width)) < _SCRAMBLE_FLIP_PROB
                flip_mask = flips.astype(np.int64) @ powers
                outcomes[from_scramble] = drawn[n_ideal:] ^ flip_mask
        if n_uniform:
            # Fully decohered background: independent bits biased towards 0
            # (amplitude damping), not a flat uniform distribution.
            bias = self.device.noise.garbage_one_bias
            ones = rng.random((n_uniform, width)) < bias
            outcomes[from_uniform] = ones.astype(np.int64) @ powers
        return outcomes

    def _readout_flip_probabilities(
        self, width: int, profile: _CircuitProfile
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Per-clbit ``(p 0->1, p 1->0)`` flip rates, T1 decay included."""
        cal = self.device.true_calibration
        asym = self.device.noise.readout_asymmetry
        p01 = np.zeros(width)
        p10 = np.zeros(width)
        for clbit in range(width):
            qubit = profile.clbit_to_qubit.get(clbit)
            if qubit is None:
                # Unmeasured clbits keep value 0; no flips.
                continue
            fidelity = cal.readout_fidelity[qubit]
            # Split the assignment error asymmetrically: decay (1->0) is
            # `asym` times more likely than excitation (0->1).
            error = 1.0 - fidelity
            e01 = 2.0 * error / (1.0 + asym)
            e10 = asym * e01
            # Amplitude damping from idle time adds to the 1->0 channel.
            t1 = cal.t1[qubit]
            e10 += (1.0 - math.exp(-profile.idle.get(qubit, 0.0) / t1)) * 0.5
            p01[clbit] = min(e01, 0.5)
            p10[clbit] = min(e10, 0.9)
        return p01, p10

    def _apply_readout_and_decay(
        self,
        outcomes: np.ndarray,
        width: int,
        profile: _CircuitProfile,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Per-qubit asymmetric readout confusion plus T1 idle decay.

        All clbits flip in one vectorized pass: a single ``(shots, width)``
        uniform draw against per-bit thresholds selected by bit value.
        """
        p01, p10 = self._readout_flip_probabilities(width, profile)
        shifts = np.arange(width, dtype=np.int64)
        bit_vals = (outcomes[:, None] >> shifts) & 1
        rand = rng.random((len(outcomes), width))
        thresholds = np.where(bit_vals == 1, p10[None, :], p01[None, :])
        flips = rand < thresholds
        flip_mask = flips.astype(np.int64) @ (1 << shifts)
        return outcomes ^ flip_mask

    @staticmethod
    def _to_counts(outcomes: np.ndarray, width: int) -> Dict[str, int]:
        values, counts = np.unique(outcomes, return_counts=True)
        keys = bitstring_keys(values, width)
        return {k: int(c) for k, c in zip(keys, counts)}


def execute_and_label(
    circuit: QuantumCircuit,
    device: Device,
    shots: int = 2000,
    seed: int = 0,
    ideal: Optional[Dict[str, float]] = None,
) -> Tuple[float, ExecutionResult]:
    """Execute and return ``(hellinger_distance, result)`` — the paper's label."""
    from .distributions import hellinger_distance

    if ideal is None:
        ideal = ideal_distribution(circuit)
    executor = QPUExecutor(device)
    result = executor.execute(circuit, shots=shots, seed=seed, ideal=ideal)
    distance = hellinger_distance(ideal, result.distribution())
    return distance, result
