"""Noisy QPU emulation: the execution channel standing in for real hardware.

The paper executes every benchmark circuit on two real IQM 20-qubit QPUs and
labels it with the Hellinger distance between the ideal distribution and the
measured one.  This module reproduces that channel with a physically
motivated error model whose *structure* matches the failure modes the paper
identifies:

1. **Gate errors** use the device's *true* calibration (per-qubit 1q
   fidelities, per-edge CZ fidelities) — which differs from the *reported*
   snapshot that figures of merit see.
2. **Crosstalk**: simultaneously executing gates on neighbouring qubits add
   extra error (the effect of Fig. 1 that no established figure of merit
   captures).
3. **Decoherence**: per-qubit idle time causes dephasing (T2, folded into
   the global success probability) and amplitude decay (T1, a biased
   1 -> 0 readout flip).
4. **Coherent errors**: a deterministic, circuit-specific distortion of the
   ideal distribution (miscalibrated pulses do not simply depolarize).
5. **Readout confusion**: asymmetric per-qubit bit flips.
6. **Shot noise**: finitely many samples.

The outcome distribution is the mixture ``S * P_distorted + (1 - S) * E``
where ``S`` is the accumulated success probability and the error
distribution ``E`` combines locally scrambled copies of ``P`` with a uniform
background.  Sampling is fully vectorized over shots, so 20-qubit circuits
with thousands of gates execute in milliseconds.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..circuits.circuit import QuantumCircuit
from ..circuits.dag import CircuitDag
from ..hardware.device import Device
from .statevector import ideal_distribution

_SCRAMBLE_FLIP_PROB = 0.3


@dataclass
class ExecutionResult:
    """Counts plus diagnostic quantities of one noisy execution."""

    counts: Dict[str, int]
    shots: int
    success_probability: float
    gate_error_accumulated: float
    crosstalk_error_accumulated: float
    dephasing_factor: float

    def distribution(self) -> Dict[str, float]:
        return {k: v / self.shots for k, v in self.counts.items()}


class QPUExecutor:
    """Executes compiled circuits on an emulated noisy device."""

    def __init__(self, device: Device):
        self.device = device

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def execute(
        self,
        circuit: QuantumCircuit,
        shots: int = 2000,
        seed: int = 0,
        ideal: Optional[Dict[str, float]] = None,
    ) -> ExecutionResult:
        """Run ``circuit`` with ``shots`` repetitions and return counts.

        Args:
            circuit: a compiled circuit (native gates, coupled 2q pairs,
                terminal measurements).  Validated against the device.
            shots: number of samples.
            seed: seed for the stochastic parts (shot noise, scrambling).
            ideal: optional precomputed ideal distribution (saves the
                statevector simulation when the caller already has it).
        """
        self.device.validate_circuit(circuit)
        measured = circuit.measured_qubits()
        if not measured:
            raise ValueError("circuit has no measurements; nothing to sample")
        if shots <= 0:
            raise ValueError("shots must be positive")

        if ideal is None:
            ideal = ideal_distribution(circuit)

        rng = np.random.default_rng(seed)
        success, diag = self._success_probability(circuit)
        distorted = self._coherent_distortion(circuit, ideal, success)

        width = len(next(iter(ideal)))
        clbit_to_qubit = self._clbit_mapping(circuit, width)
        outcomes = self._sample_outcomes(
            distorted, success, width, shots, rng
        )
        outcomes = self._apply_readout_and_decay(
            outcomes, width, clbit_to_qubit, circuit, rng
        )
        counts = self._to_counts(outcomes, width)
        return ExecutionResult(
            counts=counts,
            shots=shots,
            success_probability=success,
            gate_error_accumulated=diag["gate"],
            crosstalk_error_accumulated=diag["crosstalk"],
            dephasing_factor=diag["dephasing"],
        )

    # ------------------------------------------------------------------
    # Error accumulation
    # ------------------------------------------------------------------

    def _success_probability(
        self, circuit: QuantumCircuit
    ) -> Tuple[float, Dict[str, float]]:
        """Accumulate gate, crosstalk, and dephasing error into ``S``."""
        cal = self.device.true_calibration
        noise = self.device.noise
        coupling = self.device.coupling

        log_success = 0.0
        gate_error = 0.0
        crosstalk_error = 0.0

        dag = CircuitDag(circuit)
        layers = dag.layers(include_directives=True)
        for layer in layers:
            two_qubit_gates = [
                ins for ins in layer
                if ins.is_unitary and ins.num_qubits == 2
            ]
            one_qubit_gates = [
                ins for ins in layer
                if ins.is_unitary and ins.num_qubits == 1
            ]
            # Qubits with an active neighbour in the same layer get crosstalk.
            busy_one_q = {ins.qubits[0] for ins in one_qubit_gates}
            for instruction in layer:
                if instruction.name == "measure" or not instruction.is_unitary:
                    continue
                if instruction.num_qubits == 1:
                    error = 1.0 - cal.one_qubit_fidelity[instruction.qubits[0]]
                    gate_error += error
                else:
                    a, b = instruction.qubits
                    error = 1.0 - cal.edge_fidelity(a, b)
                    gate_error += error
                    # Crosstalk from other simultaneous gates near this edge.
                    xt = 0.0
                    for other in two_qubit_gates:
                        if other is instruction:
                            continue
                        if self._edges_adjacent(
                            coupling, instruction.qubits, other.qubits
                        ):
                            xt += noise.crosstalk_two_two
                    neighbour_qubits = set()
                    for q in (a, b):
                        neighbour_qubits.update(coupling.neighbors(q))
                    neighbour_qubits -= {a, b}
                    xt += noise.crosstalk_two_one * len(
                        busy_one_q & neighbour_qubits
                    )
                    crosstalk_error += xt
                    error += xt
                error = min(error, 0.75)
                log_success += math.log1p(-error)

        # Dephasing from idle time (T2, true values).
        from ..compiler.passes.scheduling import schedule_asap

        schedule = schedule_asap(circuit, cal.durations)
        dephasing = 0.0
        for qubit, idle in schedule.idle_times().items():
            dephasing += idle / cal.t2[qubit]
        dephasing_factor = math.exp(-dephasing)

        success = math.exp(log_success) * dephasing_factor
        return success, {
            "gate": gate_error,
            "crosstalk": crosstalk_error,
            "dephasing": dephasing_factor,
        }

    @staticmethod
    def _edges_adjacent(coupling, qubits_a, qubits_b) -> bool:
        """Whether two gate edges touch or neighbour each other."""
        set_a, set_b = set(qubits_a), set(qubits_b)
        if set_a & set_b:
            return True
        for qa in set_a:
            for qb in set_b:
                if coupling.has_edge(qa, qb):
                    return True
        return False

    # ------------------------------------------------------------------
    # Distribution machinery
    # ------------------------------------------------------------------

    def _coherent_distortion(
        self,
        circuit: QuantumCircuit,
        ideal: Dict[str, float],
        success: float,
    ) -> Dict[str, float]:
        """Deterministically distort the ideal distribution.

        Coherent (non-depolarizing) errors shift probability mass between
        nearby outcomes rather than whitening the distribution.  The
        distortion is a fixed function of (device, circuit structure), so
        repeated executions see the same systematic error.
        """
        strength = self.device.noise.coherent_strength * (1.0 - success)
        if strength <= 0.0:
            return dict(ideal)
        signature = self._structural_hash(circuit)
        rng = np.random.default_rng(signature)
        keys = sorted(ideal)
        weights = np.array([ideal[k] for k in keys])
        factors = np.exp(strength * rng.standard_normal(len(keys)))
        weights = weights * factors
        weights /= weights.sum()
        return dict(zip(keys, weights))

    def _structural_hash(self, circuit: QuantumCircuit) -> int:
        text = self.device.name + ";" + ";".join(
            f"{ins.name}{ins.qubits}{tuple(round(p, 6) for p in ins.params)}"
            for ins in circuit.instructions
        )
        digest = hashlib.sha256(text.encode()).digest()
        return int.from_bytes(digest[:8], "little")

    def _sample_outcomes(
        self,
        distorted_ideal: Dict[str, float],
        success: float,
        width: int,
        shots: int,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Draw raw outcome integers from ``S * P' + (1 - S) * E``."""
        keys = sorted(distorted_ideal)
        key_ints = np.array([int(k, 2) for k in keys], dtype=np.int64)
        probs = np.array([distorted_ideal[k] for k in keys])
        probs = probs / probs.sum()

        locality = self.device.noise.scramble_locality
        choice = rng.random(shots)
        from_ideal = choice < success
        from_scramble = (~from_ideal) & (
            rng.random(shots) < locality
        )
        from_uniform = ~(from_ideal | from_scramble)

        outcomes = np.empty(shots, dtype=np.int64)
        n_ideal = int(from_ideal.sum())
        n_scramble = int(from_scramble.sum())
        n_uniform = int(from_uniform.sum())
        if n_ideal:
            idx = rng.choice(len(keys), size=n_ideal, p=probs)
            outcomes[from_ideal] = key_ints[idx]
        if n_scramble:
            idx = rng.choice(len(keys), size=n_scramble, p=probs)
            base = key_ints[idx]
            flip_mask = np.zeros(n_scramble, dtype=np.int64)
            for bit in range(width):
                flips = rng.random(n_scramble) < _SCRAMBLE_FLIP_PROB
                flip_mask |= flips.astype(np.int64) << bit
            outcomes[from_scramble] = base ^ flip_mask
        if n_uniform:
            # Fully decohered background: independent bits biased towards 0
            # (amplitude damping), not a flat uniform distribution.
            bias = self.device.noise.garbage_one_bias
            background = np.zeros(n_uniform, dtype=np.int64)
            for bit in range(width):
                ones = rng.random(n_uniform) < bias
                background |= ones.astype(np.int64) << bit
            outcomes[from_uniform] = background
        return outcomes

    def _clbit_mapping(
        self, circuit: QuantumCircuit, width: int
    ) -> Dict[int, int]:
        mapping = {}
        for qubit, clbit in circuit.measured_qubits():
            mapping[clbit] = qubit
        if len(mapping) < width:
            # Unmeasured clbits keep value 0; map them to no qubit.
            pass
        return mapping

    def _apply_readout_and_decay(
        self,
        outcomes: np.ndarray,
        width: int,
        clbit_to_qubit: Dict[int, int],
        circuit: QuantumCircuit,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Per-qubit asymmetric readout confusion plus T1 idle decay."""
        from ..compiler.passes.scheduling import schedule_asap

        cal = self.device.true_calibration
        asym = self.device.noise.readout_asymmetry
        schedule = schedule_asap(circuit, cal.durations)
        idle = schedule.idle_times()

        shots = len(outcomes)
        for clbit in range(width):
            qubit = clbit_to_qubit.get(clbit)
            if qubit is None:
                continue
            fidelity = cal.readout_fidelity[qubit]
            # Split the assignment error asymmetrically: decay (1->0) is
            # `asym` times more likely than excitation (0->1).
            error = 1.0 - fidelity
            p01 = 2.0 * error / (1.0 + asym)
            p10 = asym * p01
            # Amplitude damping from idle time adds to the 1->0 channel.
            t1 = cal.t1[qubit]
            p10 += (1.0 - math.exp(-idle.get(qubit, 0.0) / t1)) * 0.5
            p01 = min(p01, 0.5)
            p10 = min(p10, 0.9)

            bit_vals = (outcomes >> clbit) & 1
            rand = rng.random(shots)
            flip = np.where(bit_vals == 1, rand < p10, rand < p01)
            outcomes = outcomes ^ (flip.astype(np.int64) << clbit)
        return outcomes

    @staticmethod
    def _to_counts(outcomes: np.ndarray, width: int) -> Dict[str, int]:
        values, counts = np.unique(outcomes, return_counts=True)
        return {
            format(int(v), f"0{width}b"): int(c)
            for v, c in zip(values, counts)
        }


def execute_and_label(
    circuit: QuantumCircuit,
    device: Device,
    shots: int = 2000,
    seed: int = 0,
    ideal: Optional[Dict[str, float]] = None,
) -> Tuple[float, ExecutionResult]:
    """Execute and return ``(hellinger_distance, result)`` — the paper's label."""
    from .distributions import hellinger_distance

    if ideal is None:
        ideal = ideal_distribution(circuit)
    executor = QPUExecutor(device)
    result = executor.execute(circuit, shots=shots, seed=seed, ideal=ideal)
    distance = hellinger_distance(ideal, result.distribution())
    return distance, result
