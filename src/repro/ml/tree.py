"""CART regression tree, implemented from scratch on numpy.

Splits minimize weighted child variance (equivalently maximize impurity
decrease).  Supports the hyper-parameters the paper's grid search tunes:
``max_depth``, ``min_samples_split``, ``min_samples_leaf``, and
``max_features`` (random feature subsampling, the ingredient that makes
random forests de-correlated).

The trainer is vectorized (PR 3) while staying bit-identical to the
original recursive implementation (pinned by the golden tests against the
frozen copy in ``tests/ml/reference_impl.py``):

* every feature column is argsorted **once** at the root; child nodes
  inherit sorted order through a stable boolean partition of the per-node
  ``(num_features, node_size)`` index/value matrices, which restricted to a
  subset of rows is exactly the stable argsort of that subset;
* all candidate thresholds of all candidate features are scored in one
  cumulative-sum sweep over a 2-D array instead of a per-feature Python
  loop (the acceptance scan over per-feature maxima stays sequential in
  the feature-draw order, preserving the original tie-breaking);
* the recursion is replaced by an explicit depth-first frontier that
  consumes the feature-subsampling RNG in the original preorder;
* fitted trees are stored as flat parallel node arrays (value, feature,
  threshold, children), which makes :meth:`predict` a vectorized
  level-by-level descent and gives persistence a natural ``.npz`` encoding
  (:meth:`to_arrays` / :meth:`from_arrays`).
"""

from __future__ import annotations

import math
from typing import Dict, Optional

import numpy as np

#: Keys of the flat node encoding produced by :meth:`DecisionTreeRegressor.to_arrays`.
TREE_ARRAY_KEYS = ("value", "feature", "threshold", "left", "right", "node_depth")


class DecisionTreeRegressor:
    """Regression tree with variance-reduction splits.

    Args:
        max_depth: maximum tree depth (``None`` = unbounded).
        min_samples_split: minimum samples required to attempt a split.
        min_samples_leaf: minimum samples in each child.
        max_features: number of features examined per split: ``None`` (all),
            an int, a float fraction, or ``"sqrt"``/``"log2"``.
        random_state: seed for feature subsampling.
    """

    def __init__(
        self,
        max_depth: Optional[int] = None,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features=None,
        random_state: Optional[int] = None,
    ):
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.random_state = random_state
        self._num_features = 0
        # Flat node arrays (preorder); leaves have feature == -1.
        self._value: Optional[np.ndarray] = None
        self._feature: Optional[np.ndarray] = None
        self._threshold: Optional[np.ndarray] = None
        self._left: Optional[np.ndarray] = None
        self._right: Optional[np.ndarray] = None
        self._node_depth: Optional[np.ndarray] = None
        self.feature_importances_: Optional[np.ndarray] = None

    # ------------------------------------------------------------------

    def get_params(self) -> dict:
        """Hyper-parameters as a dict (grid-search support)."""
        return {
            "max_depth": self.max_depth,
            "min_samples_split": self.min_samples_split,
            "min_samples_leaf": self.min_samples_leaf,
            "max_features": self.max_features,
            "random_state": self.random_state,
        }

    def set_params(self, **params) -> "DecisionTreeRegressor":
        for key, value in params.items():
            if not hasattr(self, key):
                raise ValueError(f"unknown parameter '{key}'")
            setattr(self, key, value)
        return self

    def clone(self) -> "DecisionTreeRegressor":
        return DecisionTreeRegressor(**self.get_params())

    # ------------------------------------------------------------------

    def fit(self, X: np.ndarray, y: np.ndarray) -> "DecisionTreeRegressor":
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=float)
        if X.ndim != 2:
            raise ValueError("X must be 2-D")
        if len(X) != len(y):
            raise ValueError("X and y length mismatch")
        if len(X) == 0:
            raise ValueError("cannot fit on an empty dataset")
        num_features = X.shape[1]
        self._num_features = num_features
        self._importance = np.zeros(num_features)
        rng = np.random.default_rng(self.random_state)

        # Presort every feature once; child nodes inherit sorted order by a
        # stable partition of this row-index matrix, never re-sorting.
        # (Feature/label values for the candidate features of a node are
        # gathered on demand — partitioning one index matrix is 3x less
        # traffic than carrying value matrices alongside it.)
        sorted_rows = np.ascontiguousarray(np.argsort(X, axis=0, kind="stable").T)
        self._x_t = np.ascontiguousarray(X.T)
        self._y = y
        self._pos_cache = {}
        self._all_features = np.arange(num_features)

        values, features, thresholds, depths = [], [], [], []
        lefts, rights = [], []
        # Scratch buffer over root rows for broadcasting a split decision
        # onto the per-feature sorted matrix.
        left_lookup = np.zeros(len(y), dtype=bool)

        # Depth-first frontier in preorder (node, left subtree, right
        # subtree) so the feature-subsampling RNG stream matches the
        # original recursion.  Each entry: (parent slot, is-left-child,
        # depth, row indices in original order, node y, per-feature sorted
        # row matrix).
        root_idx = np.arange(len(y))
        stack = [(-1, False, 0, root_idx, y, sorted_rows)]
        while stack:
            parent, is_left, depth, idx, y_node, rows = stack.pop()
            node_id = len(values)
            if parent >= 0:
                (lefts if is_left else rights)[parent] = node_id
            n_node = len(y_node)
            # np.add.reduce is the pairwise-summation kernel behind
            # ndarray.mean, minus the wrapper overhead that dominates on
            # the many small nodes deep in the tree (bit-identical).
            values.append(float(np.add.reduce(y_node) / n_node))
            features.append(-1)
            thresholds.append(0.0)
            depths.append(depth)
            lefts.append(-1)
            rights.append(-1)

            if (
                n_node < self.min_samples_split
                or (self.max_depth is not None and depth >= self.max_depth)
                or bool((y_node == y_node[0]).all())
            ):
                continue
            feature, threshold, gain = self._best_split(y_node, rows, rng)
            if feature < 0:
                continue
            goes_left = self._x_t[feature, idx] <= threshold
            # Guard against degenerate thresholds: if two adjacent distinct
            # values are so close that their midpoint rounds onto one of
            # them, a child can end up empty — treat the node as a leaf.
            n_left = int(goes_left.sum())
            if n_left == 0 or n_left == n_node:
                continue
            self._importance[feature] += gain * n_node

            features[node_id] = feature
            thresholds[node_id] = threshold
            left_lookup[idx] = goes_left
            mask = left_lookup[rows]
            stack.append((
                node_id, False, depth + 1, idx[~goes_left], y_node[~goes_left],
                rows[~mask].reshape(num_features, n_node - n_left),
            ))
            stack.append((
                node_id, True, depth + 1, idx[goes_left], y_node[goes_left],
                rows[mask].reshape(num_features, n_left),
            ))
        del self._x_t, self._y, self._pos_cache, self._all_features

        self._value = np.array(values)
        self._feature = np.array(features, dtype=np.intp)
        self._threshold = np.array(thresholds)
        self._left = np.array(lefts, dtype=np.intp)
        self._right = np.array(rights, dtype=np.intp)
        self._node_depth = np.array(depths, dtype=np.intp)
        total = self._importance.sum()
        self.feature_importances_ = (
            self._importance / total if total > 0 else self._importance.copy()
        )
        return self

    def _best_split(
        self, y_node: np.ndarray, rows: np.ndarray, rng: np.random.Generator
    ):
        """Best (feature, threshold, gain) over one 2-D cumulative-sum sweep.

        ``rows`` is the node's per-feature sorted row-index matrix of shape
        ``(num_features, node_size)``.
        """
        n = len(y_node)
        # Inlined ndarray.var (same pairwise kernels, no wrapper cost).
        deviation = y_node - np.add.reduce(y_node) / n
        parent_var = np.add.reduce(deviation * deviation) / n
        if parent_var <= 0:
            return -1, 0.0, 0.0
        k = self._n_split_features()
        if k < self._num_features:
            candidates = rng.choice(self._num_features, size=k, replace=False)
            rows_k = rows[candidates]
            xs = self._x_t[candidates[:, None], rows_k]
        else:
            candidates = None
            rows_k = rows
            xs = self._x_t[self._all_features[:, None], rows_k]
        ys = self._y[rows_k]
        min_leaf = self.min_samples_leaf
        # Valid split positions: between i-1 and i for i in [lo, hi).
        lo, hi = min_leaf, n - min_leaf + 1
        if hi <= lo:
            return -1, 0.0, 0.0

        # Cumulative sums evaluate every split position of every candidate
        # feature at once; positions where the value does not change are
        # masked out (can't split there).
        csum = ys.cumsum(axis=1)
        csum_sq = (ys ** 2).cumsum(axis=1)
        left_n, right_n = self._split_positions(n, lo, hi)
        left_sum = csum[:, lo - 1:hi - 1]
        left_sq = csum_sq[:, lo - 1:hi - 1]
        right_sum = csum[:, -1:] - left_sum
        right_sq = csum_sq[:, -1:] - left_sq
        left_var = left_sq / left_n - (left_sum / left_n) ** 2
        right_var = right_sq / right_n - (right_sum / right_n) ** 2
        weighted = (left_n * left_var + right_n * right_var) / n
        gains = parent_var - weighted
        distinct = xs[:, lo - 1:hi - 1] < xs[:, lo:hi]
        gains = np.where(distinct, gains, -np.inf)
        best_pos = gains.argmax(axis=1)
        best_gains = gains[self._all_features[:len(best_pos)], best_pos]

        # Sequential acceptance in feature-draw order: strictly-better-only
        # updates reproduce the original per-feature loop's tie-breaking.
        best_feature, best_threshold, best_gain = -1, 0.0, 0.0
        for j in range(len(best_gains)):
            if best_gains[j] > best_gain + 1e-15:
                best_gain = float(best_gains[j])
                best_feature = int(candidates[j]) if candidates is not None else j
                pos = lo + int(best_pos[j])
                best_threshold = float((xs[j, pos - 1] + xs[j, pos]) / 2.0)
        return best_feature, best_threshold, best_gain

    def _split_positions(self, n: int, lo: int, hi: int):
        """Cached (left-count, right-count) vectors for a node size."""
        cached = self._pos_cache.get(n)
        if cached is None:
            left_n = np.arange(lo, hi).astype(float)
            cached = (left_n, n - left_n)
            self._pos_cache[n] = cached
        return cached

    # ------------------------------------------------------------------

    def predict(self, X: np.ndarray) -> np.ndarray:
        if self._value is None:
            raise RuntimeError("tree is not fitted")
        X = np.asarray(X, dtype=float)
        if X.ndim != 2:
            raise ValueError("X must be 2-D")
        n = len(X)
        node = np.zeros(n, dtype=np.intp)
        # Level-by-level descent: every sample still at an internal node
        # steps to a child; samples at leaves stay put.
        while True:
            rows = np.nonzero(self._feature[node] >= 0)[0]
            if len(rows) == 0:
                break
            at = node[rows]
            go_left = X[rows, self._feature[at]] <= self._threshold[at]
            node[rows] = np.where(go_left, self._left[at], self._right[at])
        return self._value[node]

    def depth(self) -> int:
        """Actual depth of the fitted tree."""
        if self._node_depth is None or len(self._node_depth) == 0:
            return 0
        return int(self._node_depth.max())

    def num_leaves(self) -> int:
        if self._feature is None:
            return 0
        return int(np.count_nonzero(self._feature < 0))

    def num_nodes(self) -> int:
        return 0 if self._value is None else len(self._value)

    # ------------------------------------------------------------------

    def to_arrays(self) -> Dict[str, np.ndarray]:
        """Flat node encoding of a fitted tree (persistence support).

        Returns the preorder parallel arrays listed in
        :data:`TREE_ARRAY_KEYS` plus ``importances``; feed the result to
        :meth:`from_arrays` to reconstruct an identical predictor.
        """
        if self._value is None:
            raise RuntimeError("tree is not fitted")
        return {
            "value": self._value.copy(),
            "feature": self._feature.copy(),
            "threshold": self._threshold.copy(),
            "left": self._left.copy(),
            "right": self._right.copy(),
            "node_depth": self._node_depth.copy(),
            "importances": self.feature_importances_.copy(),
        }

    @classmethod
    def from_arrays(
        cls, params: dict, num_features: int, arrays: Dict[str, np.ndarray]
    ) -> "DecisionTreeRegressor":
        """Rebuild a fitted tree from :meth:`to_arrays` output."""
        missing = [key for key in TREE_ARRAY_KEYS if key not in arrays]
        if missing or "importances" not in arrays:
            raise ValueError(f"incomplete tree encoding: missing {missing}")
        tree = cls(**params)
        tree._num_features = int(num_features)
        tree._value = np.asarray(arrays["value"], dtype=float)
        tree._feature = np.asarray(arrays["feature"], dtype=np.intp)
        tree._threshold = np.asarray(arrays["threshold"], dtype=float)
        tree._left = np.asarray(arrays["left"], dtype=np.intp)
        tree._right = np.asarray(arrays["right"], dtype=np.intp)
        tree._node_depth = np.asarray(arrays["node_depth"], dtype=np.intp)
        tree.feature_importances_ = np.asarray(
            arrays["importances"], dtype=float
        )
        n = len(tree._value)
        for name in ("feature", "threshold", "left", "right", "node_depth"):
            if len(arrays[name]) != n:
                raise ValueError("inconsistent tree encoding: ragged arrays")
        if n == 0:
            raise ValueError("inconsistent tree encoding: empty tree")
        internal = tree._feature >= 0
        if (tree._feature >= num_features).any() or (tree._feature < -1).any():
            raise ValueError("inconsistent tree encoding: bad feature indices")
        # Nodes are stored in preorder, so children always point forward;
        # enforcing that rules out cycles (predict would never terminate)
        # as well as out-of-range links.  Leaves carry the -1 sentinel.
        node_ids = np.arange(n)
        for child in (tree._left, tree._right):
            if (internal & ((child <= node_ids) | (child >= n))).any():
                raise ValueError("inconsistent tree encoding: bad child indices")
            if (~internal & (child != -1)).any():
                raise ValueError("inconsistent tree encoding: bad child indices")
        return tree

    # ------------------------------------------------------------------

    def _n_split_features(self) -> int:
        m = self._num_features
        mf = self.max_features
        if mf is None:
            return m
        if mf == "sqrt":
            return max(1, int(math.sqrt(m)))
        if mf == "log2":
            return max(1, int(math.log2(m)))
        if isinstance(mf, float):
            return max(1, int(mf * m))
        return max(1, min(int(mf), m))
