"""CART regression tree, implemented from scratch on numpy.

Splits minimize weighted child variance (equivalently maximize impurity
decrease).  Supports the hyper-parameters the paper's grid search tunes:
``max_depth``, ``min_samples_split``, ``min_samples_leaf``, and
``max_features`` (random feature subsampling, the ingredient that makes
random forests de-correlated).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np


@dataclass
class _Node:
    """A tree node; leaves carry ``value``, internal nodes a split."""

    value: float
    feature: int = -1
    threshold: float = 0.0
    left: Optional["_Node"] = None
    right: Optional["_Node"] = None

    @property
    def is_leaf(self) -> bool:
        return self.left is None


class DecisionTreeRegressor:
    """Regression tree with variance-reduction splits.

    Args:
        max_depth: maximum tree depth (``None`` = unbounded).
        min_samples_split: minimum samples required to attempt a split.
        min_samples_leaf: minimum samples in each child.
        max_features: number of features examined per split: ``None`` (all),
            an int, a float fraction, or ``"sqrt"``/``"log2"``.
        random_state: seed for feature subsampling.
    """

    def __init__(
        self,
        max_depth: Optional[int] = None,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features=None,
        random_state: Optional[int] = None,
    ):
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.random_state = random_state
        self._root: Optional[_Node] = None
        self._num_features = 0
        self.feature_importances_: Optional[np.ndarray] = None

    # ------------------------------------------------------------------

    def get_params(self) -> dict:
        """Hyper-parameters as a dict (grid-search support)."""
        return {
            "max_depth": self.max_depth,
            "min_samples_split": self.min_samples_split,
            "min_samples_leaf": self.min_samples_leaf,
            "max_features": self.max_features,
            "random_state": self.random_state,
        }

    def set_params(self, **params) -> "DecisionTreeRegressor":
        for key, value in params.items():
            if not hasattr(self, key):
                raise ValueError(f"unknown parameter '{key}'")
            setattr(self, key, value)
        return self

    def clone(self) -> "DecisionTreeRegressor":
        return DecisionTreeRegressor(**self.get_params())

    # ------------------------------------------------------------------

    def fit(self, X: np.ndarray, y: np.ndarray) -> "DecisionTreeRegressor":
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=float)
        if X.ndim != 2:
            raise ValueError("X must be 2-D")
        if len(X) != len(y):
            raise ValueError("X and y length mismatch")
        if len(X) == 0:
            raise ValueError("cannot fit on an empty dataset")
        self._num_features = X.shape[1]
        self._importance = np.zeros(self._num_features)
        rng = np.random.default_rng(self.random_state)
        self._root = self._build(X, y, depth=0, rng=rng)
        total = self._importance.sum()
        self.feature_importances_ = (
            self._importance / total if total > 0 else self._importance.copy()
        )
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        if self._root is None:
            raise RuntimeError("tree is not fitted")
        X = np.asarray(X, dtype=float)
        return np.array([self._predict_one(row) for row in X])

    def _predict_one(self, row: np.ndarray) -> float:
        node = self._root
        while not node.is_leaf:
            node = node.left if row[node.feature] <= node.threshold else node.right
        return node.value

    def depth(self) -> int:
        """Actual depth of the fitted tree."""

        def walk(node: Optional[_Node]) -> int:
            if node is None or node.is_leaf:
                return 0
            return 1 + max(walk(node.left), walk(node.right))

        return walk(self._root)

    def num_leaves(self) -> int:
        def walk(node: Optional[_Node]) -> int:
            if node is None:
                return 0
            if node.is_leaf:
                return 1
            return walk(node.left) + walk(node.right)

        return walk(self._root)

    # ------------------------------------------------------------------

    def _n_split_features(self) -> int:
        m = self._num_features
        mf = self.max_features
        if mf is None:
            return m
        if mf == "sqrt":
            return max(1, int(math.sqrt(m)))
        if mf == "log2":
            return max(1, int(math.log2(m)))
        if isinstance(mf, float):
            return max(1, int(mf * m))
        return max(1, min(int(mf), m))

    def _build(
        self, X: np.ndarray, y: np.ndarray, depth: int, rng: np.random.Generator
    ) -> _Node:
        node_value = float(y.mean())
        if (
            len(y) < self.min_samples_split
            or (self.max_depth is not None and depth >= self.max_depth)
            or np.all(y == y[0])
        ):
            return _Node(value=node_value)

        feature, threshold, gain = self._best_split(X, y, rng)
        if feature < 0:
            return _Node(value=node_value)

        mask = X[:, feature] <= threshold
        # Guard against degenerate thresholds: if two adjacent distinct
        # values are so close that their midpoint rounds onto one of them,
        # a child can end up empty — treat the node as a leaf instead.
        if not mask.any() or mask.all():
            return _Node(value=node_value)
        self._importance[feature] += gain * len(y)
        left = self._build(X[mask], y[mask], depth + 1, rng)
        right = self._build(X[~mask], y[~mask], depth + 1, rng)
        return _Node(
            value=node_value, feature=feature, threshold=threshold,
            left=left, right=right,
        )

    def _best_split(self, X: np.ndarray, y: np.ndarray, rng: np.random.Generator):
        n = len(y)
        parent_var = y.var()
        if parent_var <= 0:
            return -1, 0.0, 0.0
        k = self._n_split_features()
        if k < self._num_features:
            features = rng.choice(self._num_features, size=k, replace=False)
        else:
            features = np.arange(self._num_features)

        best_feature, best_threshold, best_gain = -1, 0.0, 0.0
        min_leaf = self.min_samples_leaf
        for feature in features:
            order = np.argsort(X[:, feature], kind="stable")
            xs = X[order, feature]
            ys = y[order]
            # Cumulative sums allow O(n) evaluation of all split points.
            csum = np.cumsum(ys)
            csum_sq = np.cumsum(ys ** 2)
            total, total_sq = csum[-1], csum_sq[-1]
            # Valid split positions: between i and i+1 where value changes.
            idx = np.arange(min_leaf, n - min_leaf + 1)
            if len(idx) == 0:
                continue
            # Exclude positions where xs[i-1] == xs[i] (can't split there).
            distinct = xs[idx - 1] < xs[idx]
            idx = idx[distinct]
            if len(idx) == 0:
                continue
            left_n = idx.astype(float)
            right_n = n - left_n
            left_sum = csum[idx - 1]
            left_sq = csum_sq[idx - 1]
            right_sum = total - left_sum
            right_sq = total_sq - left_sq
            left_var = left_sq / left_n - (left_sum / left_n) ** 2
            right_var = right_sq / right_n - (right_sum / right_n) ** 2
            weighted = (left_n * left_var + right_n * right_var) / n
            gains = parent_var - weighted
            best_local = int(np.argmax(gains))
            if gains[best_local] > best_gain + 1e-15:
                best_gain = float(gains[best_local])
                best_feature = int(feature)
                pos = idx[best_local]
                best_threshold = float((xs[pos - 1] + xs[pos]) / 2.0)
        return best_feature, best_threshold, best_gain
