"""Linear baselines: ordinary least squares and ridge regression.

Used by the model-choice ablation (why a random forest?) and as cheap
comparators in tests.
"""

from __future__ import annotations

from typing import Optional

import numpy as np


class LinearRegression:
    """Ordinary least squares with an intercept (closed form via lstsq)."""

    def __init__(self):
        self.coef_: Optional[np.ndarray] = None
        self.intercept_: float = 0.0

    def get_params(self) -> dict:
        return {}

    def set_params(self, **params) -> "LinearRegression":
        if params:
            raise ValueError(f"unknown parameters {sorted(params)}")
        return self

    def clone(self) -> "LinearRegression":
        return LinearRegression()

    def fit(self, X: np.ndarray, y: np.ndarray) -> "LinearRegression":
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=float)
        design = np.hstack([X, np.ones((len(X), 1))])
        solution, *_ = np.linalg.lstsq(design, y, rcond=None)
        self.coef_ = solution[:-1]
        self.intercept_ = float(solution[-1])
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        if self.coef_ is None:
            raise RuntimeError("model is not fitted")
        X = np.asarray(X, dtype=float)
        return X @ self.coef_ + self.intercept_


class RidgeRegression:
    """L2-regularized least squares (features standardized internally)."""

    def __init__(self, alpha: float = 1.0):
        if alpha < 0:
            raise ValueError("alpha must be non-negative")
        self.alpha = alpha
        self.coef_: Optional[np.ndarray] = None
        self.intercept_: float = 0.0
        self._mean: Optional[np.ndarray] = None
        self._scale: Optional[np.ndarray] = None

    def get_params(self) -> dict:
        return {"alpha": self.alpha}

    def set_params(self, **params) -> "RidgeRegression":
        for key, value in params.items():
            if key != "alpha":
                raise ValueError(f"unknown parameter '{key}'")
            self.alpha = value
        return self

    def clone(self) -> "RidgeRegression":
        return RidgeRegression(alpha=self.alpha)

    def fit(self, X: np.ndarray, y: np.ndarray) -> "RidgeRegression":
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=float)
        self._mean = X.mean(axis=0)
        scale = X.std(axis=0)
        scale[scale == 0] = 1.0
        self._scale = scale
        Xs = (X - self._mean) / self._scale
        y_mean = y.mean()
        gram = Xs.T @ Xs + self.alpha * np.eye(X.shape[1])
        self.coef_ = np.linalg.solve(gram, Xs.T @ (y - y_mean))
        self.intercept_ = float(y_mean)
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        if self.coef_ is None:
            raise RuntimeError("model is not fitted")
        X = np.asarray(X, dtype=float)
        Xs = (X - self._mean) / self._scale
        return Xs @ self.coef_ + self.intercept_
