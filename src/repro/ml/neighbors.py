"""k-nearest-neighbour regression baseline (standardized Euclidean metric)."""

from __future__ import annotations

from typing import Optional

import numpy as np


class KNeighborsRegressor:
    """Mean of the ``k`` nearest training targets.

    Features are standardized with training statistics so that large-scale
    features (raw gate counts) do not drown out ratio features.

    Args:
        n_neighbors: neighbourhood size.
        weights: ``"uniform"`` or ``"distance"`` (inverse-distance weighting).
    """

    def __init__(self, n_neighbors: int = 5, weights: str = "uniform"):
        if n_neighbors < 1:
            raise ValueError("n_neighbors must be >= 1")
        if weights not in ("uniform", "distance"):
            raise ValueError("weights must be 'uniform' or 'distance'")
        self.n_neighbors = n_neighbors
        self.weights = weights
        self._X: Optional[np.ndarray] = None
        self._y: Optional[np.ndarray] = None
        self._mean: Optional[np.ndarray] = None
        self._scale: Optional[np.ndarray] = None

    def get_params(self) -> dict:
        return {"n_neighbors": self.n_neighbors, "weights": self.weights}

    def set_params(self, **params) -> "KNeighborsRegressor":
        for key, value in params.items():
            if not hasattr(self, key):
                raise ValueError(f"unknown parameter '{key}'")
            setattr(self, key, value)
        return self

    def clone(self) -> "KNeighborsRegressor":
        return KNeighborsRegressor(**self.get_params())

    def fit(self, X: np.ndarray, y: np.ndarray) -> "KNeighborsRegressor":
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=float)
        if len(X) < self.n_neighbors:
            raise ValueError("fewer training samples than n_neighbors")
        self._mean = X.mean(axis=0)
        scale = X.std(axis=0)
        scale[scale == 0] = 1.0
        self._scale = scale
        self._X = (X - self._mean) / self._scale
        self._y = y
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        if self._X is None:
            raise RuntimeError("model is not fitted")
        X = (np.asarray(X, dtype=float) - self._mean) / self._scale
        out = np.empty(len(X))
        for i, row in enumerate(X):
            dist = np.sqrt(((self._X - row) ** 2).sum(axis=1))
            idx = np.argpartition(dist, self.n_neighbors - 1)[: self.n_neighbors]
            if self.weights == "uniform":
                out[i] = self._y[idx].mean()
            else:
                w = 1.0 / np.maximum(dist[idx], 1e-12)
                out[i] = float((w * self._y[idx]).sum() / w.sum())
        return out
