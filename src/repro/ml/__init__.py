"""Machine learning from scratch: trees, forests, baselines, model selection."""

from .forest import RandomForestRegressor
from .linear import LinearRegression, RidgeRegression
from .metrics import (
    mean_absolute_error,
    pearson_r,
    r2_score,
    root_mean_squared_error,
    spearman_r,
)
from .model_selection import (
    GridSearchResult,
    KFold,
    cross_val_score,
    grid_search,
    train_test_split,
)
from .neighbors import KNeighborsRegressor
from .tree import DecisionTreeRegressor

__all__ = [
    "DecisionTreeRegressor",
    "GridSearchResult",
    "KFold",
    "KNeighborsRegressor",
    "LinearRegression",
    "RandomForestRegressor",
    "RidgeRegression",
    "cross_val_score",
    "grid_search",
    "mean_absolute_error",
    "pearson_r",
    "r2_score",
    "root_mean_squared_error",
    "spearman_r",
    "train_test_split",
]
