"""Random forest regressor (bagged CART trees) with feature importances.

Matches the semantics of scikit-learn's ``RandomForestRegressor`` that the
paper uses: bootstrap sampling per tree, random feature subsets per split,
mean aggregation, and mean-impurity-decrease feature importances (the
quantity plotted in the paper's Fig. 3).
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from .tree import DecisionTreeRegressor


class RandomForestRegressor:
    """Ensemble of variance-reduction CART trees.

    Args:
        n_estimators: number of trees.
        max_depth / min_samples_split / min_samples_leaf / max_features:
            per-tree hyper-parameters (see :class:`DecisionTreeRegressor`).
            ``max_features`` defaults to ``1.0`` (all features), matching
            scikit-learn's regressor default.
        bootstrap: sample training rows with replacement per tree.
        random_state: master seed; per-tree seeds derive from it.
    """

    def __init__(
        self,
        n_estimators: int = 100,
        max_depth: Optional[int] = None,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features="sqrt",
        bootstrap: bool = True,
        random_state: Optional[int] = None,
    ):
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.bootstrap = bootstrap
        self.random_state = random_state
        self.estimators_: List[DecisionTreeRegressor] = []
        self.feature_importances_: Optional[np.ndarray] = None

    def get_params(self) -> dict:
        return {
            "n_estimators": self.n_estimators,
            "max_depth": self.max_depth,
            "min_samples_split": self.min_samples_split,
            "min_samples_leaf": self.min_samples_leaf,
            "max_features": self.max_features,
            "bootstrap": self.bootstrap,
            "random_state": self.random_state,
        }

    def set_params(self, **params) -> "RandomForestRegressor":
        for key, value in params.items():
            if not hasattr(self, key):
                raise ValueError(f"unknown parameter '{key}'")
            setattr(self, key, value)
        return self

    def clone(self) -> "RandomForestRegressor":
        return RandomForestRegressor(**self.get_params())

    def fit(self, X: np.ndarray, y: np.ndarray) -> "RandomForestRegressor":
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=float)
        if len(X) != len(y):
            raise ValueError("X and y length mismatch")
        if self.n_estimators < 1:
            raise ValueError("n_estimators must be >= 1")
        rng = np.random.default_rng(self.random_state)
        n = len(X)
        self.estimators_ = []
        importances = np.zeros(X.shape[1])
        for _ in range(self.n_estimators):
            tree = DecisionTreeRegressor(
                max_depth=self.max_depth,
                min_samples_split=self.min_samples_split,
                min_samples_leaf=self.min_samples_leaf,
                max_features=self.max_features,
                random_state=int(rng.integers(0, 2 ** 31)),
            )
            if self.bootstrap:
                rows = rng.integers(0, n, size=n)
            else:
                rows = np.arange(n)
            tree.fit(X[rows], y[rows])
            self.estimators_.append(tree)
            importances += tree.feature_importances_
        total = importances.sum()
        self.feature_importances_ = (
            importances / total if total > 0 else importances
        )
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        if not self.estimators_:
            raise RuntimeError("forest is not fitted")
        X = np.asarray(X, dtype=float)
        predictions = np.stack([tree.predict(X) for tree in self.estimators_])
        return predictions.mean(axis=0)

    def predict_std(self, X: np.ndarray) -> np.ndarray:
        """Ensemble standard deviation (a crude predictive uncertainty)."""
        if not self.estimators_:
            raise RuntimeError("forest is not fitted")
        X = np.asarray(X, dtype=float)
        predictions = np.stack([tree.predict(X) for tree in self.estimators_])
        return predictions.std(axis=0)
