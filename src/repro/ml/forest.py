"""Random forest regressor (bagged CART trees) with feature importances.

Matches the semantics of scikit-learn's ``RandomForestRegressor`` that the
paper uses: bootstrap sampling per tree, random feature subsets per split,
mean aggregation, and mean-impurity-decrease feature importances (the
quantity plotted in the paper's Fig. 3).

Training is parallel (PR 3): the per-tree seeds and bootstrap rows are
drawn up front from the master RNG in the original interleaved order, so
every tree is an independent deterministic task and the fitted model is
bit-identical for every ``max_workers`` value *and* execution mode — and
to the sequential pre-vectorization implementation (pinned by the golden
tests).  Tree fitting is pure Python (GIL-bound), so pooled fits default
to a process pool (PR 6): each worker receives ``(X, y)`` once through
the pool initializer and fitted trees return as flat numpy arrays.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from ..parallel import (
    PROCESS_MIN_ITEMS,
    parallel_map,
    resolve_mode,
    resolve_workers,
)
from .tree import DecisionTreeRegressor


#: Per-batch invariants installed in each pool worker by
#: :func:`_init_fit_worker` (``None`` outside a worker).
_FIT_STATE: Optional[tuple] = None


def _init_fit_worker(X: np.ndarray, y: np.ndarray, tree_params: dict) -> None:
    """Pool initializer: ship the training matrix once per worker."""
    global _FIT_STATE
    _FIT_STATE = (X, y, tree_params)


def _fit_tree_in_worker(draw: Tuple[int, np.ndarray]) -> DecisionTreeRegressor:
    """Fit one bootstrap draw against the worker's training matrix."""
    seed, rows = draw
    X, y, tree_params = _FIT_STATE
    return DecisionTreeRegressor(random_state=seed, **tree_params).fit(
        X[rows], y[rows]
    )


def bootstrap_draws(
    random_state: Optional[int],
    n_trees: int,
    n_rows: int,
    bootstrap: bool = True,
) -> List[Tuple[int, np.ndarray]]:
    """Per-tree ``(seed, rows)`` pairs of a forest's master RNG stream.

    Draws happen in the original per-tree interleaved order (seed, then
    rows), so the first ``k`` draws of an ``n``-tree forest equal the draws
    of a ``k``-tree forest with the same ``random_state`` — the prefix
    property the grid search exploits to share fitted trees between
    ``n_estimators`` variants.
    """
    rng = np.random.default_rng(random_state)
    draws = []
    for _ in range(n_trees):
        seed = int(rng.integers(0, 2 ** 31))
        if bootstrap:
            rows = rng.integers(0, n_rows, size=n_rows)
        else:
            rows = np.arange(n_rows)
        draws.append((seed, rows))
    return draws


class RandomForestRegressor:
    """Ensemble of variance-reduction CART trees.

    Args:
        n_estimators: number of trees.
        max_depth / min_samples_split / min_samples_leaf / max_features:
            per-tree hyper-parameters (see :class:`DecisionTreeRegressor`).
            ``max_features`` defaults to ``1.0`` (all features), matching
            scikit-learn's regressor default.
        bootstrap: sample training rows with replacement per tree.
        random_state: master seed; per-tree seeds derive from it.
        max_workers: pool size for tree fitting (``1`` = sequential,
            ``None`` = one per CPU).  Fitted models are identical for
            every value; the default stays sequential so nested uses
            (e.g. inside a parallel grid search) do not oversubscribe.
        workers_mode: ``"process"``/``"thread"`` for pooled fits
            (``None``: the ``REPRO_WORKERS_MODE`` environment override if
            set, else ``"process"`` — tree fitting is GIL-bound).
    """

    def __init__(
        self,
        n_estimators: int = 100,
        max_depth: Optional[int] = None,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features="sqrt",
        bootstrap: bool = True,
        random_state: Optional[int] = None,
        max_workers: Optional[int] = 1,
        workers_mode: Optional[str] = None,
    ):
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.bootstrap = bootstrap
        self.random_state = random_state
        self.max_workers = max_workers
        self.workers_mode = workers_mode
        self.estimators_: List[DecisionTreeRegressor] = []
        self.feature_importances_: Optional[np.ndarray] = None

    def get_params(self) -> dict:
        return {
            "n_estimators": self.n_estimators,
            "max_depth": self.max_depth,
            "min_samples_split": self.min_samples_split,
            "min_samples_leaf": self.min_samples_leaf,
            "max_features": self.max_features,
            "bootstrap": self.bootstrap,
            "random_state": self.random_state,
            "max_workers": self.max_workers,
            "workers_mode": self.workers_mode,
        }

    def set_params(self, **params) -> "RandomForestRegressor":
        for key, value in params.items():
            if not hasattr(self, key):
                raise ValueError(f"unknown parameter '{key}'")
            setattr(self, key, value)
        return self

    def clone(self) -> "RandomForestRegressor":
        return RandomForestRegressor(**self.get_params())

    def tree_template(self, seed: int) -> DecisionTreeRegressor:
        """An unfitted member tree carrying this forest's hyper-parameters."""
        return DecisionTreeRegressor(
            max_depth=self.max_depth,
            min_samples_split=self.min_samples_split,
            min_samples_leaf=self.min_samples_leaf,
            max_features=self.max_features,
            random_state=seed,
        )

    def fit(self, X: np.ndarray, y: np.ndarray) -> "RandomForestRegressor":
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=float)
        if len(X) != len(y):
            raise ValueError("X and y length mismatch")
        if self.n_estimators < 1:
            raise ValueError("n_estimators must be >= 1")
        draws = bootstrap_draws(
            self.random_state, self.n_estimators, len(X), self.bootstrap
        )

        workers = resolve_workers(self.max_workers, len(draws))
        mode = resolve_mode(self.workers_mode, default="process")
        if mode == "process" and workers > 1 and len(draws) >= PROCESS_MIN_ITEMS:
            tree_params = {
                "max_depth": self.max_depth,
                "min_samples_split": self.min_samples_split,
                "min_samples_leaf": self.min_samples_leaf,
                "max_features": self.max_features,
            }
            self.estimators_ = parallel_map(
                _fit_tree_in_worker,
                draws,
                max_workers=workers,
                mode="process",
                initializer=_init_fit_worker,
                initargs=(X, y, tree_params),
            )
        else:

            def fit_one(draw: Tuple[int, np.ndarray]) -> DecisionTreeRegressor:
                seed, rows = draw
                return self.tree_template(seed).fit(X[rows], y[rows])

            self.estimators_ = parallel_map(
                fit_one, draws, max_workers=workers, mode="thread"
            )
        self._finalize_importances(X.shape[1])
        return self

    def fit_new_trees(
        self,
        X: np.ndarray,
        y: np.ndarray,
        n_trees: int,
        random_state: Optional[int],
        max_workers: Optional[int] = None,
        workers_mode: Optional[str] = None,
    ) -> List[DecisionTreeRegressor]:
        """Fit ``n_trees`` fresh member trees on ``(X, y)`` without touching
        ``self``.

        The trees carry this forest's per-tree hyper-parameters and draw
        their seeds/rows from ``bootstrap_draws(random_state, ...)``, so
        the prefix property holds: the first ``k`` trees of an ``n``-tree
        call equal the ``k``-tree call — a refresh sweep over tree counts
        fits ``max(n)`` trees once and slices prefixes.  Results are
        bit-identical for every worker count and pool mode (same
        construction as :meth:`fit`).
        """
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=float)
        if len(X) != len(y):
            raise ValueError("X and y length mismatch")
        if n_trees < 1:
            raise ValueError("n_trees must be >= 1")
        draws = bootstrap_draws(random_state, n_trees, len(X), self.bootstrap)

        if max_workers is None:
            max_workers = self.max_workers
        if workers_mode is None:
            workers_mode = self.workers_mode
        workers = resolve_workers(max_workers, len(draws))
        mode = resolve_mode(workers_mode, default="process")
        if mode == "process" and workers > 1 and len(draws) >= PROCESS_MIN_ITEMS:
            tree_params = {
                "max_depth": self.max_depth,
                "min_samples_split": self.min_samples_split,
                "min_samples_leaf": self.min_samples_leaf,
                "max_features": self.max_features,
            }
            return parallel_map(
                _fit_tree_in_worker,
                draws,
                max_workers=workers,
                mode="process",
                initializer=_init_fit_worker,
                initargs=(X, y, tree_params),
            )

        def fit_one(draw: Tuple[int, np.ndarray]) -> DecisionTreeRegressor:
            seed, rows = draw
            return self.tree_template(seed).fit(X[rows], y[rows])

        return parallel_map(fit_one, draws, max_workers=workers, mode="thread")

    def refreshed(
        self,
        trees: List[DecisionTreeRegressor],
        replace: bool = False,
    ) -> "RandomForestRegressor":
        """A new fitted forest: this forest's trees plus ``trees``.

        ``replace=False`` appends (the ensemble grows); ``replace=True``
        drops the oldest ``len(trees)`` members first, a sliding window of
        constant size.  ``self`` is untouched; importances are re-finalized
        sequentially in tree order (worker-count independent).
        """
        if not self.estimators_:
            raise RuntimeError("forest is not fitted")
        if not trees:
            raise ValueError("trees must be non-empty")
        kept = self.estimators_[len(trees) :] if replace else self.estimators_
        members = list(kept) + list(trees)
        if not members:
            raise ValueError("replace would drop every tree")
        forest = self.clone()
        forest.n_estimators = len(members)
        forest.estimators_ = members
        forest._finalize_importances(len(trees[0].feature_importances_))
        return forest

    def _finalize_importances(self, num_features: int) -> None:
        # Sequential accumulation in tree order: identical float rounding
        # to the original sequential fit, independent of worker count.
        importances = np.zeros(num_features)
        for tree in self.estimators_:
            importances += tree.feature_importances_
        total = importances.sum()
        self.feature_importances_ = (
            importances / total if total > 0 else importances
        )

    def predict(self, X: np.ndarray) -> np.ndarray:
        if not self.estimators_:
            raise RuntimeError("forest is not fitted")
        X = np.asarray(X, dtype=float)
        predictions = np.stack([tree.predict(X) for tree in self.estimators_])
        return predictions.mean(axis=0)

    def predict_std(self, X: np.ndarray) -> np.ndarray:
        """Ensemble standard deviation (a crude predictive uncertainty)."""
        if not self.estimators_:
            raise RuntimeError("forest is not fitted")
        X = np.asarray(X, dtype=float)
        predictions = np.stack([tree.predict(X) for tree in self.estimators_])
        return predictions.std(axis=0)
