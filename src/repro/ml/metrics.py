"""Regression and correlation metrics.

The Pearson correlation coefficient (Eq. 2 of the paper) is both the study's
headline quantity and the model-selection score during cross-validation.
"""

from __future__ import annotations

import numpy as np


def pearson_r(x: np.ndarray, y: np.ndarray) -> float:
    """Pearson correlation coefficient (Eq. 2), in ``[-1, 1]``.

    Returns 0.0 when either input is constant (no linear relationship can
    be measured).
    """
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float)
    if x.shape != y.shape:
        raise ValueError("shape mismatch")
    if len(x) < 2:
        raise ValueError("need at least two samples")
    dx = x - x.mean()
    dy = y - y.mean()
    denom = np.sqrt((dx ** 2).sum() * (dy ** 2).sum())
    if denom == 0:
        return 0.0
    return float((dx * dy).sum() / denom)


def spearman_r(x: np.ndarray, y: np.ndarray) -> float:
    """Spearman rank correlation (Pearson on ranks, average-tie ranking)."""
    return pearson_r(_rankdata(x), _rankdata(y))


def _rankdata(values: np.ndarray) -> np.ndarray:
    values = np.asarray(values, dtype=float)
    order = np.argsort(values, kind="stable")
    ranks = np.empty(len(values), dtype=float)
    ranks[order] = np.arange(1, len(values) + 1)
    # Average ranks over ties.
    unique, inverse, counts = np.unique(
        values, return_inverse=True, return_counts=True
    )
    sums = np.zeros(len(unique))
    np.add.at(sums, inverse, ranks)
    return sums[inverse] / counts[inverse]


def r2_score(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Coefficient of determination."""
    y_true = np.asarray(y_true, dtype=float)
    y_pred = np.asarray(y_pred, dtype=float)
    ss_res = ((y_true - y_pred) ** 2).sum()
    ss_tot = ((y_true - y_true.mean()) ** 2).sum()
    if ss_tot == 0:
        return 0.0 if ss_res > 0 else 1.0
    return float(1.0 - ss_res / ss_tot)


def mean_absolute_error(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    y_true = np.asarray(y_true, dtype=float)
    y_pred = np.asarray(y_pred, dtype=float)
    return float(np.abs(y_true - y_pred).mean())


def root_mean_squared_error(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    y_true = np.asarray(y_true, dtype=float)
    y_pred = np.asarray(y_pred, dtype=float)
    return float(np.sqrt(((y_true - y_pred) ** 2).mean()))
