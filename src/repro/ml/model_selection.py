"""Model selection: splits, k-fold cross-validation, and grid search.

Reimplements the scikit-learn workflow the paper describes: an 80/20
train/test split, 3-fold cross-validation scored by the Pearson correlation
coefficient, and a hyper-parameter grid search over tree count, depth, and
leaf/split minima.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Sequence, Tuple

import numpy as np

from .metrics import pearson_r

Scorer = Callable[[np.ndarray, np.ndarray], float]


def train_test_split(
    X: np.ndarray,
    y: np.ndarray,
    test_size: float = 0.2,
    seed: int = 0,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Shuffle and split into train/test (``test_size`` fraction held out)."""
    X = np.asarray(X)
    y = np.asarray(y)
    if not 0.0 < test_size < 1.0:
        raise ValueError("test_size must be in (0, 1)")
    n = len(X)
    if n != len(y):
        raise ValueError("X and y length mismatch")
    rng = np.random.default_rng(seed)
    order = rng.permutation(n)
    n_test = max(1, int(round(n * test_size)))
    test_idx = order[:n_test]
    train_idx = order[n_test:]
    return X[train_idx], X[test_idx], y[train_idx], y[test_idx]


class KFold:
    """Deterministic shuffled k-fold splitter."""

    def __init__(self, n_splits: int = 3, seed: int = 0):
        if n_splits < 2:
            raise ValueError("n_splits must be >= 2")
        self.n_splits = n_splits
        self.seed = seed

    def split(self, n_samples: int) -> Iterable[Tuple[np.ndarray, np.ndarray]]:
        if n_samples < self.n_splits:
            raise ValueError("more folds than samples")
        rng = np.random.default_rng(self.seed)
        order = rng.permutation(n_samples)
        folds = np.array_split(order, self.n_splits)
        for i in range(self.n_splits):
            test_idx = folds[i]
            train_idx = np.concatenate(
                [folds[j] for j in range(self.n_splits) if j != i]
            )
            yield train_idx, test_idx


def cross_val_score(
    model,
    X: np.ndarray,
    y: np.ndarray,
    n_splits: int = 3,
    seed: int = 0,
    scorer: Scorer = pearson_r,
) -> np.ndarray:
    """Per-fold validation scores of a cloneable model."""
    X = np.asarray(X, dtype=float)
    y = np.asarray(y, dtype=float)
    scores = []
    for train_idx, test_idx in KFold(n_splits, seed).split(len(X)):
        fold_model = model.clone()
        fold_model.fit(X[train_idx], y[train_idx])
        predictions = fold_model.predict(X[test_idx])
        scores.append(scorer(y[test_idx], predictions))
    return np.array(scores)


@dataclass
class GridSearchResult:
    """Outcome of a grid search."""

    best_params: Dict[str, object]
    best_score: float
    results: List[Tuple[Dict[str, object], float]] = field(default_factory=list)


def grid_search(
    model,
    param_grid: Dict[str, Sequence],
    X: np.ndarray,
    y: np.ndarray,
    n_splits: int = 3,
    seed: int = 0,
    scorer: Scorer = pearson_r,
) -> GridSearchResult:
    """Exhaustive grid search scored by mean cross-validation score.

    Args:
        model: a cloneable estimator with ``set_params``.
        param_grid: mapping parameter name -> candidate values.
        X, y: training data.
        n_splits: cross-validation folds (the paper uses three).
        seed: split seed.
        scorer: score function, larger is better (default: Pearson r).
    """
    names = sorted(param_grid)
    combos = list(itertools.product(*(param_grid[name] for name in names)))
    if not combos:
        raise ValueError("empty parameter grid")
    results: List[Tuple[Dict[str, object], float]] = []
    best_params: Dict[str, object] = {}
    best_score = -np.inf
    for combo in combos:
        params = dict(zip(names, combo))
        candidate = model.clone().set_params(**params)
        scores = cross_val_score(
            candidate, X, y, n_splits=n_splits, seed=seed, scorer=scorer
        )
        mean_score = float(scores.mean())
        results.append((params, mean_score))
        if mean_score > best_score:
            best_score = mean_score
            best_params = params
    return GridSearchResult(
        best_params=best_params, best_score=best_score, results=results
    )
