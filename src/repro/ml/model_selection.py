"""Model selection: splits, k-fold cross-validation, and grid search.

Reimplements the scikit-learn workflow the paper describes: an 80/20
train/test split, 3-fold cross-validation scored by the Pearson correlation
coefficient, and a hyper-parameter grid search over tree count, depth, and
leaf/split minima.

The grid search is parallel and, for random forests, shares work between
candidates without changing a single score bit (verified by the golden
tests against the pre-PR sequential implementation):

* every candidate draws the same master RNG stream, so an
  ``n_estimators=50`` forest is a prefix of the ``n_estimators=100``
  forest with the same remaining hyper-parameters — trees and their
  per-fold test predictions are fitted once and sliced;
* a tree fitted without a depth cap is bit-identical to fitting the same
  draw with ``max_depth=L`` whenever its natural depth stays below ``L``
  (no RNG is consumed at pruned depths), so capped variants only refit
  the trees that actually hit the cap.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..parallel import (
    PROCESS_MIN_ITEMS,
    parallel_map,
    resolve_mode,
    resolve_workers,
)
from .forest import RandomForestRegressor, bootstrap_draws
from .metrics import pearson_r

Scorer = Callable[[np.ndarray, np.ndarray], float]

#: Per-batch invariants installed in pool workers by the initializers
#: below (``None`` outside a worker).  Fitting is GIL-bound pure Python,
#: so pooled cross-validation and grid search default to process mode;
#: each worker receives the training data and candidate models once, and
#: tasks are plain index tuples.  Process mode therefore requires the
#: estimator and scorer to be picklable (every estimator and scorer in
#: this repo is).
_CV_STATE: Optional[tuple] = None
_GRID_STATE: Optional[tuple] = None
_FOREST_GRID_STATE: Optional[tuple] = None


def _init_cv_worker(model, X, y, splits, scorer) -> None:
    global _CV_STATE
    _CV_STATE = (model, X, y, splits, scorer)


def _run_fold_in_worker(fold_index: int) -> float:
    model, X, y, splits, scorer = _CV_STATE
    train_idx, test_idx = splits[fold_index]
    fold_model = model.clone()
    fold_model.fit(X[train_idx], y[train_idx])
    return scorer(y[test_idx], fold_model.predict(X[test_idx]))


def _init_grid_worker(models, X, y, splits, scorer) -> None:
    global _GRID_STATE
    _GRID_STATE = (models, X, y, splits, scorer)


def _run_grid_task_in_worker(task: Tuple[int, int]) -> float:
    index, fold_index = task
    models, X, y, splits, scorer = _GRID_STATE
    train_idx, test_idx = splits[fold_index]
    fold_model = models[index].clone()
    fold_model.fit(X[train_idx], y[train_idx])
    return scorer(y[test_idx], fold_model.predict(X[test_idx]))


def _init_forest_grid_worker(groups, splits, X, y, n_by_index, scorer) -> None:
    global _FOREST_GRID_STATE
    _FOREST_GRID_STATE = (groups, splits, X, y, n_by_index, scorer)


def _run_forest_grid_task_in_worker(
    task: Tuple[int, int],
) -> List[Tuple[int, float]]:
    fold_index, group_pos = task
    groups, splits, X, y, n_by_index, scorer = _FOREST_GRID_STATE
    return _score_forest_group(
        groups[group_pos], splits[fold_index], X, y, n_by_index, scorer
    )


def train_test_split(
    X: np.ndarray,
    y: np.ndarray,
    test_size: float = 0.2,
    seed: int = 0,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Shuffle and split into train/test (``test_size`` fraction held out)."""
    X = np.asarray(X)
    y = np.asarray(y)
    if not 0.0 < test_size < 1.0:
        raise ValueError("test_size must be in (0, 1)")
    n = len(X)
    if n != len(y):
        raise ValueError("X and y length mismatch")
    rng = np.random.default_rng(seed)
    order = rng.permutation(n)
    n_test = max(1, int(round(n * test_size)))
    test_idx = order[:n_test]
    train_idx = order[n_test:]
    return X[train_idx], X[test_idx], y[train_idx], y[test_idx]


class KFold:
    """Deterministic shuffled k-fold splitter."""

    def __init__(self, n_splits: int = 3, seed: int = 0):
        if n_splits < 2:
            raise ValueError("n_splits must be >= 2")
        self.n_splits = n_splits
        self.seed = seed

    def split(self, n_samples: int) -> Iterable[Tuple[np.ndarray, np.ndarray]]:
        if n_samples < self.n_splits:
            raise ValueError("more folds than samples")
        rng = np.random.default_rng(self.seed)
        order = rng.permutation(n_samples)
        folds = np.array_split(order, self.n_splits)
        for i in range(self.n_splits):
            test_idx = folds[i]
            train_idx = np.concatenate(
                [folds[j] for j in range(self.n_splits) if j != i]
            )
            yield train_idx, test_idx


def cross_val_score(
    model,
    X: np.ndarray,
    y: np.ndarray,
    n_splits: int = 3,
    seed: int = 0,
    scorer: Scorer = pearson_r,
    max_workers: Optional[int] = 1,
    workers_mode: Optional[str] = None,
) -> np.ndarray:
    """Per-fold validation scores of a cloneable model.

    Folds are independent deterministic tasks; ``max_workers`` fans them
    out without changing any score (``1`` = sequential, ``None`` = one
    worker per CPU).  Pooled runs default to ``workers_mode="process"``
    (fitting is GIL-bound); each worker receives the data once through
    the pool initializer.
    """
    X = np.asarray(X, dtype=float)
    y = np.asarray(y, dtype=float)
    splits = list(KFold(n_splits, seed).split(len(X)))
    workers = resolve_workers(max_workers, len(splits))
    mode = resolve_mode(workers_mode, default="process")

    if mode == "process" and workers > 1 and len(splits) >= PROCESS_MIN_ITEMS:
        scores = parallel_map(
            _run_fold_in_worker,
            range(len(splits)),
            max_workers=workers,
            mode="process",
            initializer=_init_cv_worker,
            initargs=(model, X, y, splits, scorer),
        )
        return np.array(scores)

    def run_fold(split: Tuple[np.ndarray, np.ndarray]) -> float:
        train_idx, test_idx = split
        fold_model = model.clone()
        fold_model.fit(X[train_idx], y[train_idx])
        predictions = fold_model.predict(X[test_idx])
        return scorer(y[test_idx], predictions)

    return np.array(
        parallel_map(run_fold, splits, max_workers=workers, mode="thread")
    )


@dataclass
class GridSearchResult:
    """Outcome of a grid search."""

    best_params: Dict[str, object]
    best_score: float
    results: List[Tuple[Dict[str, object], float]] = field(default_factory=list)


def grid_search(
    model,
    param_grid: Dict[str, Sequence],
    X: np.ndarray,
    y: np.ndarray,
    n_splits: int = 3,
    seed: int = 0,
    scorer: Scorer = pearson_r,
    max_workers: Optional[int] = 1,
    workers_mode: Optional[str] = None,
) -> GridSearchResult:
    """Exhaustive grid search scored by mean cross-validation score.

    Args:
        model: a cloneable estimator with ``set_params``.
        param_grid: mapping parameter name -> candidate values.
        X, y: training data.
        n_splits: cross-validation folds (the paper uses three).
        seed: split seed.
        scorer: score function, larger is better (default: Pearson r).
        max_workers: pool size over independent (candidate, fold) tasks
            (``1`` = sequential, ``None`` = one per CPU); scores are
            identical for every value and mode.
        workers_mode: ``"process"``/``"thread"`` for pooled runs
            (``None``: the ``REPRO_WORKERS_MODE`` environment override if
            set, else ``"process"`` — fitting is GIL-bound).  Process
            mode requires picklable estimators and scorers.
    """
    names = sorted(param_grid)
    combos = list(itertools.product(*(param_grid[name] for name in names)))
    if not combos:
        raise ValueError("empty parameter grid")
    X = np.asarray(X, dtype=float)
    y = np.asarray(y, dtype=float)
    candidates = [
        (dict(zip(names, combo)), model.clone().set_params(**dict(zip(names, combo))))
        for combo in combos
    ]
    splits = list(KFold(n_splits, seed).split(len(X)))

    if all(isinstance(c, RandomForestRegressor) for _, c in candidates):
        fold_scores = _forest_grid_fold_scores(
            candidates, X, y, splits, scorer, max_workers, workers_mode
        )
    else:
        tasks = [
            (index, fold_index)
            for index in range(len(candidates))
            for fold_index in range(len(splits))
        ]
        workers = resolve_workers(max_workers, len(tasks))
        mode = resolve_mode(workers_mode, default="process")

        if mode == "process" and workers > 1 and len(tasks) >= PROCESS_MIN_ITEMS:
            flat = parallel_map(
                _run_grid_task_in_worker,
                tasks,
                max_workers=workers,
                mode="process",
                initializer=_init_grid_worker,
                initargs=(
                    [candidate for _, candidate in candidates],
                    X, y, splits, scorer,
                ),
            )
        else:

            def run_task(task) -> float:
                index, fold_index = task
                train_idx, test_idx = splits[fold_index]
                fold_model = candidates[index][1].clone()
                fold_model.fit(X[train_idx], y[train_idx])
                return scorer(y[test_idx], fold_model.predict(X[test_idx]))

            flat = parallel_map(
                run_task, tasks, max_workers=workers, mode="thread"
            )
        fold_scores = [
            flat[i * len(splits):(i + 1) * len(splits)]
            for i in range(len(candidates))
        ]

    results: List[Tuple[Dict[str, object], float]] = []
    best_params: Dict[str, object] = {}
    best_score = -np.inf
    for (params, _), scores in zip(candidates, fold_scores):
        mean_score = float(np.array(scores).mean())
        results.append((params, mean_score))
        if mean_score > best_score:
            best_score = mean_score
            best_params = params
    return GridSearchResult(
        best_params=best_params, best_score=best_score, results=results
    )


# ----------------------------------------------------------------------
# Forest-specific grid evaluation (work sharing across candidates).


def _score_forest_group(
    group: dict,
    split: Tuple[np.ndarray, np.ndarray],
    X: np.ndarray,
    y: np.ndarray,
    n_by_index: Dict[int, int],
    scorer: Scorer,
) -> List[Tuple[int, float]]:
    """Score one (fold, candidate-group) task; pure function of its args."""
    train_idx, test_idx = split
    X_train, y_train = X[train_idx], y[train_idx]
    X_test, y_test = X[test_idx], y[test_idx]
    template: RandomForestRegressor = group["forest"]
    draws = bootstrap_draws(
        template.random_state, group["max_n"], len(X_train),
        template.bootstrap,
    )

    # Fit the depth-uncapped sequence first so capped variants can
    # reuse every tree whose natural depth stays below the cap.
    depth_values = sorted(
        group["depths"], key=lambda d: (d is not None, d)
    )
    uncapped: List = []
    scored: List[Tuple[int, float]] = []
    for depth in depth_values:
        trees = []
        for tree_pos, (tree_seed, rows) in enumerate(draws):
            reuse = (
                depth is not None
                and tree_pos < len(uncapped)
                and uncapped[tree_pos].depth() < depth
            )
            if reuse:
                tree = uncapped[tree_pos]
            else:
                tree = template.tree_template(tree_seed)
                tree.max_depth = depth
                tree.fit(X_train[rows], y_train[rows])
            trees.append(tree)
        if depth is None:
            uncapped = trees
        # One prediction per tree, shared by every n_estimators
        # variant: mean over a prefix of the stacked matrix is
        # bit-identical to the prefix forest's predict().
        tree_preds = np.stack(
            [tree.predict(X_test) for tree in trees]
        )
        for index in group["depths"][depth]:
            prediction = tree_preds[:n_by_index[index]].mean(axis=0)
            scored.append((index, scorer(y_test, prediction)))
    return scored


def _forest_grid_fold_scores(
    candidates: List[Tuple[Dict[str, object], RandomForestRegressor]],
    X: np.ndarray,
    y: np.ndarray,
    splits: List[Tuple[np.ndarray, np.ndarray]],
    scorer: Scorer,
    max_workers: Optional[int],
    workers_mode: Optional[str] = None,
) -> List[List[float]]:
    """Per-candidate per-fold CV scores with cross-candidate sharing.

    Candidates are grouped by everything except ``n_estimators`` and
    ``max_depth`` (and the ``max_workers``/``workers_mode`` execution
    knobs, which never change scores); each (fold, group) is an
    independent task that fits the depth-uncapped tree sequence once and
    derives capped/shorter variants from it (see module docstring for why
    this is bit-exact).
    """
    # group key -> {depth values} and the largest tree count needed.
    groups: Dict[tuple, dict] = {}
    for index, (_, forest) in enumerate(candidates):
        params = forest.get_params()
        key = tuple(sorted(
            (name, value) for name, value in params.items()
            if name not in (
                "n_estimators", "max_depth", "max_workers", "workers_mode"
            )
        ))
        group = groups.setdefault(
            key, {"forest": forest, "depths": {}, "max_n": 0}
        )
        group["depths"].setdefault(params["max_depth"], []).append(index)
        group["max_n"] = max(group["max_n"], params["n_estimators"])

    group_list = list(groups.values())
    n_by_index = {
        index: forest.n_estimators
        for index, (_, forest) in enumerate(candidates)
    }
    tasks = [
        (fold_index, group_pos)
        for fold_index in range(len(splits))
        for group_pos in range(len(group_list))
    ]
    workers = resolve_workers(max_workers, len(tasks))
    mode = resolve_mode(workers_mode, default="process")

    if mode == "process" and workers > 1 and len(tasks) >= PROCESS_MIN_ITEMS:
        task_results = parallel_map(
            _run_forest_grid_task_in_worker,
            tasks,
            max_workers=workers,
            mode="process",
            initializer=_init_forest_grid_worker,
            initargs=(group_list, splits, X, y, n_by_index, scorer),
        )
    else:

        def run_task(task) -> List[Tuple[int, float]]:
            fold_index, group_pos = task
            return _score_forest_group(
                group_list[group_pos], splits[fold_index],
                X, y, n_by_index, scorer,
            )

        task_results = parallel_map(
            run_task, tasks, max_workers=workers, mode="thread"
        )

    fold_scores: List[List[Optional[float]]] = [
        [None] * len(splits) for _ in candidates
    ]
    for (fold_index, _), scored in zip(tasks, task_results):
        for index, score in scored:
            fold_scores[index][fold_index] = score
    return fold_scores
