"""repro: reproduction of "Improving Figures of Merit for Quantum Circuit
Compilation" (Hopf, Quetschlich, Schulz, Wille — DATE 2025).

Public API highlights:

* :mod:`repro.circuits` — circuit IR, gates, DAG, QASM, drawing.
* :mod:`repro.hardware` — coupling maps, calibration, the Q20-A/Q20-B devices.
* :mod:`repro.compiler` — qubit mapping, routing, native synthesis, opt 0-3.
* :mod:`repro.simulation` — statevector simulation and the noisy executor.
* :mod:`repro.fom` — established figures of merit and the 30-dim features.
* :mod:`repro.ml` — decision trees, random forests, model selection.
* :mod:`repro.predictor` — the trained Hellinger-distance figure of merit.
* :mod:`repro.bench` — the benchmark circuit collection.
* :mod:`repro.evaluation` — the correlation study (Table I, Fig. 3).
"""

from .circuits import QuantumCircuit
from .compiler import compile_circuit
from .evaluation import StudyConfig, run_study
from .fom import esp, expected_fidelity, feature_vector
from .hardware import Device, make_q20a, make_q20b
from .ml import RandomForestRegressor, pearson_r
from .predictor import HellingerEstimator, build_dataset
from .simulation import QPUExecutor, hellinger_distance, ideal_distribution

__version__ = "1.0.0"

__all__ = [
    "Device",
    "HellingerEstimator",
    "QPUExecutor",
    "QuantumCircuit",
    "RandomForestRegressor",
    "StudyConfig",
    "__version__",
    "build_dataset",
    "compile_circuit",
    "esp",
    "expected_fidelity",
    "feature_vector",
    "hellinger_distance",
    "ideal_distribution",
    "make_q20a",
    "make_q20b",
    "pearson_r",
    "run_study",
]
