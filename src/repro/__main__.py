"""Module entry point: ``python -m repro``.

The ``__name__`` guard matters: sharded serving spawns worker processes,
and ``multiprocessing``'s spawn start method re-imports the parent's
main module (as ``__mp_main__``) in each child — an unguarded
``main()`` here would re-run the CLI once per worker.
"""

from .cli import main

if __name__ == "__main__":
    raise SystemExit(main())
