"""The 30-dimensional, depth-independent circuit feature vector (Section IV-B).

The proposed figure of merit trains on a fixed-size vectorized circuit
representation that requires *no calibration data*.  Following the paper
(which builds on the MQT Predictor encoding [40] and the SupermarQ feature
suite [41]), the vector contains:

* the hardware-agnostic established metrics (gate counts, circuit depth),
* **liveness** — how actively qubits are utilized,
* **parallelism** — operational concurrency per layer,
* **directed program communication** — the ratio between actual and maximal
  average node degree of the circuit's *directed* interaction graph,
* **gate ratios** — the circuit's operational density,
* interaction-graph statistics and other structural features.

Every feature is a plain float, its size independent of circuit depth.
:data:`FEATURE_NAMES` fixes the ordering; :data:`FEATURE_GROUPS` maps each
feature to one of the seven categories of the paper's Fig. 3.

This module is the serving hot path: :class:`~repro.predictor.service.FomService`
featurizes every circuit it scores.  :func:`feature_dict` therefore makes
**one traversal** of the instruction list — a single loop simultaneously
tallies gate counts, advances the depth frontier, assigns ASAP layer levels
(reproducing :meth:`repro.circuits.dag.CircuitDag.layers` without building
DAG nodes), collects interaction-graph edges, and tracks the critical path
— and every per-layer / per-qubit statistic is then reduced with numpy on
the arrays that traversal filled.  Interaction-graph degree and clustering
statistics come from a dense adjacency matrix rather than a per-circuit
``networkx`` graph, which keeps the extractor dependency-free (``networkx``
is now a test-only extra used to cross-check these stats).  Numerical
equivalence with the original multi-pass implementation is pinned to
<= 1e-12 by golden tests against the frozen copy in
``tests/fom/reference_features.py``.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

import numpy as np

from ..circuits.circuit import QuantumCircuit
from ..parallel import parallel_map

#: Feature ordering of the vector (length 30).
FEATURE_NAMES: List[str] = [
    # Gate counts (5)
    "total_gates",
    "one_qubit_gates",
    "two_qubit_gates",
    "measurement_count",
    "gates_per_qubit",
    # Circuit depth (3)
    "depth",
    "depth_per_qubit",
    "weighted_depth",
    # Gate ratios (4)
    "two_qubit_ratio",
    "one_qubit_ratio",
    "gate_density",
    "two_qubit_density",
    # Liveness (5)
    "liveness",
    "liveness_std",
    "liveness_min",
    "idle_streak_max",
    "idle_streak_mean",
    # Parallelism (5)
    "parallelism",
    "mean_layer_occupancy",
    "max_layer_occupancy",
    "parallel_two_qubit_fraction",
    "max_simultaneous_two_qubit",
    # Directed program communication (5)
    "directed_communication",
    "undirected_communication",
    "interaction_degree_max",
    "interaction_degree_mean",
    "interaction_clustering",
    # Other (3)
    "active_qubits",
    "entanglement_ratio",
    "critical_two_qubit_fraction",
]

#: Fig. 3 category of every feature.
FEATURE_GROUPS: Dict[str, str] = {
    "total_gates": "Gate counts",
    "one_qubit_gates": "Gate counts",
    "two_qubit_gates": "Gate counts",
    "measurement_count": "Gate counts",
    "gates_per_qubit": "Gate counts",
    "depth": "Circuit depth",
    "depth_per_qubit": "Circuit depth",
    "weighted_depth": "Circuit depth",
    "two_qubit_ratio": "Gate ratios",
    "one_qubit_ratio": "Gate ratios",
    "gate_density": "Gate ratios",
    "two_qubit_density": "Gate ratios",
    "liveness": "Liveness",
    "liveness_std": "Liveness",
    "liveness_min": "Liveness",
    "idle_streak_max": "Liveness",
    "idle_streak_mean": "Liveness",
    "parallelism": "Parallelism",
    "mean_layer_occupancy": "Parallelism",
    "max_layer_occupancy": "Parallelism",
    "parallel_two_qubit_fraction": "Parallelism",
    "max_simultaneous_two_qubit": "Parallelism",
    "directed_communication": "Dir. prog. comm.",
    "undirected_communication": "Dir. prog. comm.",
    "interaction_degree_max": "Dir. prog. comm.",
    "interaction_degree_mean": "Dir. prog. comm.",
    "interaction_clustering": "Dir. prog. comm.",
    "active_qubits": "Other features",
    "entanglement_ratio": "Other features",
    "critical_two_qubit_fraction": "Other features",
}

#: Category display order of Fig. 3.
GROUP_ORDER = [
    "Liveness",
    "Gate ratios",
    "Dir. prog. comm.",
    "Parallelism",
    "Gate counts",
    "Circuit depth",
    "Other features",
]

NUM_FEATURES = len(FEATURE_NAMES)


def feature_vector(circuit: QuantumCircuit) -> np.ndarray:
    """Compute the 30-dim feature vector of a (compiled) circuit."""
    values = feature_dict(circuit)
    return np.array([values[name] for name in FEATURE_NAMES], dtype=float)


def feature_dict(circuit: QuantumCircuit) -> Dict[str, float]:
    """Compute all features as a name -> value dict, in one traversal.

    The loop below is the only place the instruction list is iterated;
    everything downstream reduces the arrays it filled.  Four concerns are
    interleaved per instruction:

    * **tallies** — gate counts, interaction edges, entangled qubits;
    * **depth frontier** — per-qubit/clbit levels reproducing
      :meth:`QuantumCircuit.depth` (measurements occupy a level);
    * **layer levels** — ASAP levels reproducing
      ``CircuitDag.layers(include_directives=False)``: barriers and
      measurements constrain ordering but occupy no layer;
    * **critical path** — per-node chain lengths reproducing
      ``CircuitDag.critical_path`` (including its exact tie-breaking, so
      the two-qubit fraction matches the reference bit for bit).
    """
    num_qubits = circuit.num_qubits
    num_instructions = len(circuit.instructions)

    total = one_q = two_q = measures = 0

    # Depth frontier (QuantumCircuit.depth semantics, measurements counted).
    depth_frontier = [0] * max(num_qubits, 1)
    cl_frontier = [0] * max(circuit.num_clbits, 1)
    depth = 0

    # ASAP layer levels (CircuitDag.layers(include_directives=False)).
    qubit_level = [-1] * num_qubits
    clbit_level = [-1] * max(circuit.num_clbits, 1)
    max_level = -1
    gate_levels: List[int] = []      # one entry per layered gate
    gate_widths: List[int] = []      # its qubit count
    busy_qubits: List[int] = []      # gate qubits, level = repeat(gate_levels)

    entangled: set = set()
    directed_edges: set = set()
    undirected_edges: set = set()

    # Critical path (CircuitDag.critical_path semantics: chains do not
    # cross barriers, ties resolve in predecessor-set iteration order).
    last_on_qubit = [-1] * max(num_qubits, 1)
    last_on_clbit = [-1] * max(circuit.num_clbits, 1)
    chain_len = [0] * num_instructions    # barriers keep 0, as in the DAG
    chain_parent = [-1] * num_instructions
    best_len, best_end = -1, -1

    for index, instruction in enumerate(circuit.instructions):
        qubits = instruction.qubits
        name = instruction.name

        if name == "barrier":
            # Ordering constraint only: propagate the predecessors' layer
            # level, take no part in depth, tallies, or the critical path.
            pred_level = -1
            for q in qubits:
                if qubit_level[q] > pred_level:
                    pred_level = qubit_level[q]
            for q in qubits:
                qubit_level[q] = pred_level
                last_on_qubit[q] = index
            continue

        is_measure = name == "measure"
        clbits = instruction.clbits

        # Critical path: candidate predecessors in the same insertion
        # order as CircuitDag's per-node sets, so the set iteration (and
        # with it the tie-break between equal-length chains) is identical.
        # The one-predecessor case (most gates) skips the set entirely.
        cands: List[int] = []
        for q in qubits:
            p = last_on_qubit[q]
            if p >= 0:
                cands.append(p)
        for c in clbits:
            p = last_on_clbit[c]
            if p >= 0:
                cands.append(p)
        node_len, node_parent = 1, -1
        if len(cands) == 1:
            cand = chain_len[cands[0]]
            if cand:
                node_len, node_parent = cand + 1, cands[0]
        else:
            for p in set(cands):
                cand = chain_len[p]
                if cand + 1 > node_len:
                    node_len, node_parent = cand + 1, p
        chain_len[index] = node_len
        chain_parent[index] = node_parent
        if node_len > best_len:
            best_len, best_end = node_len, index

        # Depth frontier and layer level, in one sweep over the operands.
        level = 0
        pred_level = -1
        for q in qubits:
            if depth_frontier[q] > level:
                level = depth_frontier[q]
            if qubit_level[q] > pred_level:
                pred_level = qubit_level[q]
        for c in clbits:
            if cl_frontier[c] > level:
                level = cl_frontier[c]
            if clbit_level[c] > pred_level:
                pred_level = clbit_level[c]
        level += 1
        if level > depth:
            depth = level

        # Layer level: measures inherit their predecessors' level
        # (ordering constraint only); gates open or join a layer.
        my_level = pred_level if is_measure else pred_level + 1

        if is_measure:
            measures += 1
        else:
            total += 1
            width = len(qubits)
            gate_levels.append(my_level)
            gate_widths.append(width)
            if my_level > max_level:
                max_level = my_level
            if width == 1:
                one_q += 1
            else:
                two_q += 1
                entangled.update(qubits)
                if width == 2:
                    a, b = qubits
                    directed_edges.add((a, b))
                    undirected_edges.add((a, b) if a <= b else (b, a))
            busy_qubits.extend(qubits)

        for q in qubits:
            depth_frontier[q] = level
            qubit_level[q] = my_level
            last_on_qubit[q] = index
        for c in clbits:
            cl_frontier[c] = level
            clbit_level[c] = my_level
            last_on_clbit[c] = index

    # Active = touched by any non-barrier operation = has a depth level.
    active = [q for q in range(num_qubits) if depth_frontier[q] > 0]
    n_active = max(len(active), 1)
    real_layers = max_level + 1
    n_layers = max(real_layers, 1)

    features: Dict[str, float] = {
        "total_gates": float(total),
        "one_qubit_gates": float(one_q),
        "two_qubit_gates": float(two_q),
        "measurement_count": float(measures),
        "gates_per_qubit": total / n_active,
        "depth": float(depth),
        "depth_per_qubit": depth / n_active,
        "two_qubit_ratio": two_q / max(total, 1),
        "one_qubit_ratio": one_q / max(total, 1),
        "gate_density": total / (n_layers * n_active),
        "two_qubit_density": two_q / (n_layers * n_active),
        "active_qubits": float(len(active)),
        # Entangled qubits all carry gates, so they are a subset of active.
        "entanglement_ratio": len(entangled) / len(active) if active else 0.0,
        "critical_two_qubit_fraction": _critical_two_qubit_fraction(
            circuit, chain_parent, best_end
        ),
    }
    features.update(
        _liveness_stats(
            busy_qubits, gate_levels, gate_widths, active, real_layers
        )
    )
    parallel_stats = _parallelism_stats(
        gate_levels, gate_widths, real_layers, n_active, total
    )
    features["weighted_depth"] = parallel_stats.pop("_weighted_depth")
    features.update(parallel_stats)
    features.update(
        _communication_stats(directed_edges, undirected_edges, n_active)
    )
    return features


def _critical_two_qubit_fraction(
    circuit: QuantumCircuit, chain_parent: List[int], best_end: int
) -> float:
    """Fraction of operations on the critical path that are two-qubit gates."""
    if best_end < 0:
        return 0.0
    path: List[int] = []
    cursor = best_end
    while cursor != -1:
        path.append(cursor)
        cursor = chain_parent[cursor]
    instructions = circuit.instructions
    two_q = sum(
        1 for index in path
        if instructions[index].num_qubits >= 2 and instructions[index].is_unitary
    )
    return two_q / len(path)


def _liveness_stats(
    busy_qubits: List[int],
    gate_levels: List[int],
    gate_widths: List[int],
    active: List[int],
    n_layers: int,
) -> Dict[str, float]:
    """SupermarQ liveness: per-qubit fraction of layers in which it is busy."""
    if n_layers == 0 or not active:
        return {
            "liveness": 0.0,
            "liveness_std": 0.0,
            "liveness_min": 0.0,
            "idle_streak_max": 0.0,
            "idle_streak_mean": 0.0,
        }
    row_of = np.zeros(max(active) + 1, dtype=np.intp)
    row_of[active] = np.arange(len(active))
    busy = np.zeros((len(active), n_layers), dtype=bool)
    busy_levels = np.repeat(gate_levels, gate_widths)
    busy[row_of[busy_qubits], busy_levels] = True
    fractions = busy.mean(axis=1)
    streaks = np.empty(len(active))
    for row in range(len(active)):
        ticks = np.flatnonzero(busy[row])
        runs = np.diff(np.concatenate(([-1], ticks, [n_layers]))) - 1
        streaks[row] = runs.max() / n_layers
    return {
        "liveness": float(fractions.mean()),
        "liveness_std": float(fractions.std()),
        "liveness_min": float(fractions.min()),
        "idle_streak_max": float(streaks.max()),
        "idle_streak_mean": float(streaks.mean()),
    }


def _parallelism_stats(
    gate_levels: List[int],
    gate_widths: List[int],
    n_layers: int,
    n_active: int,
    total: int,
) -> Dict[str, float]:
    """SupermarQ parallelism plus layer-occupancy statistics.

    ``_weighted_depth`` rides along (the layer -> contains-a-2q-gate map is
    already in hand): depth where a layer containing a two-qubit gate costs
    3 time units — a calibration-free proxy for circuit duration.
    """
    if n_layers == 0:
        return {
            "parallelism": 0.0,
            "mean_layer_occupancy": 0.0,
            "max_layer_occupancy": 0.0,
            "parallel_two_qubit_fraction": 0.0,
            "max_simultaneous_two_qubit": 0.0,
            "_weighted_depth": 0.0,
        }
    if n_active > 1:
        parallelism = (total / n_layers - 1.0) / (n_active - 1.0)
        parallelism = float(np.clip(parallelism, 0.0, 1.0))
    else:
        parallelism = 0.0
    levels = np.asarray(gate_levels)
    widths = np.asarray(gate_widths)
    occupancy = np.bincount(levels, weights=widths, minlength=n_layers) / n_active
    layer_two_q = np.bincount(levels[widths >= 2], minlength=n_layers)
    total_two_q = int(layer_two_q.sum())
    parallel_two_q = int(layer_two_q[layer_two_q >= 2].sum())
    two_q_layers = int(np.count_nonzero(layer_two_q))
    max_pairs = max(n_active // 2, 1)
    return {
        "parallelism": parallelism,
        "mean_layer_occupancy": float(occupancy.mean()),
        "max_layer_occupancy": float(occupancy.max()),
        "parallel_two_qubit_fraction": (
            parallel_two_q / total_two_q if total_two_q else 0.0
        ),
        "max_simultaneous_two_qubit": float(layer_two_q.max()) / max_pairs,
        "_weighted_depth": 3.0 * two_q_layers + 1.0 * (n_layers - two_q_layers),
    }


def _communication_stats(
    directed_edges: set, undirected_edges: set, n_active: int
) -> Dict[str, float]:
    """Directed/undirected program communication and interaction-graph stats.

    Degree and clustering statistics are computed on a dense adjacency
    matrix over the interaction graph's nodes (qubits incident to at least
    one two-qubit gate, matching the node set of the ``networkx`` graph the
    original implementation built): ``diag(A^3)`` counts twice the
    triangles through each node, so the local clustering coefficient is
    ``diag(A^3) / (k * (k - 1))`` — the same integer ratio ``nx.clustering``
    evaluates.
    """
    if n_active <= 1:
        return {
            "directed_communication": 0.0,
            "undirected_communication": 0.0,
            "interaction_degree_max": 0.0,
            "interaction_degree_mean": 0.0,
            "interaction_clustering": 0.0,
        }
    max_directed = n_active * (n_active - 1)
    max_undirected = max_directed / 2
    stats = {
        "directed_communication": len(directed_edges) / max_directed,
        "undirected_communication": len(undirected_edges) / max_undirected,
        "interaction_degree_max": 0.0,
        "interaction_degree_mean": 0.0,
        "interaction_clustering": 0.0,
    }
    if not undirected_edges:
        return stats
    nodes = sorted({q for edge in undirected_edges for q in edge})
    index_of = {q: i for i, q in enumerate(nodes)}
    adjacency = np.zeros((len(nodes), len(nodes)), dtype=np.int64)
    for a, b in undirected_edges:
        adjacency[index_of[a], index_of[b]] = 1
        adjacency[index_of[b], index_of[a]] = 1
    degrees = adjacency.sum(axis=1)
    paths3 = np.diagonal(adjacency @ adjacency @ adjacency)
    pairs = degrees * (degrees - 1)
    clustering = np.where(pairs > 0, paths3 / np.maximum(pairs, 1), 0.0)
    stats["interaction_degree_max"] = int(degrees.max()) / (n_active - 1)
    stats["interaction_degree_mean"] = float(degrees.mean()) / (n_active - 1)
    stats["interaction_clustering"] = float(clustering.mean())
    return stats


def feature_matrix(
    circuits: Iterable[QuantumCircuit],
    max_workers: Optional[int] = 1,
    workers_mode: Optional[str] = None,
) -> np.ndarray:
    """Stack feature vectors of many circuits into an ``(M, 30)`` matrix.

    ``max_workers`` fans the per-circuit extraction over
    :func:`repro.parallel.parallel_map` (``None``: one worker per CPU; the
    signature default stays sequential because extraction is cheap per
    circuit).  Extraction is pure Python and GIL-bound, so a pooled run
    defaults to ``workers_mode="process"``, which scales with cores where
    threads cannot (:func:`feature_vector` is a module-level function, so
    it ships to workers directly).  The result is row-identical for every
    worker count and mode.  An empty input yields an empty ``(0, 30)``
    matrix.
    """
    from ..parallel import resolve_mode

    circuits = list(circuits)
    if not circuits:
        return np.empty((0, NUM_FEATURES))
    return np.vstack(
        parallel_map(
            feature_vector,
            circuits,
            max_workers=max_workers,
            mode=resolve_mode(workers_mode, default="process"),
        )
    )
