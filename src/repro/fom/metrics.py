"""Established figures of merit (Section II-B).

Four metrics, in the paper's order:

* number of gates (optionally only two-qubit gates),
* circuit depth,
* expected fidelity — the product of all gate and measurement fidelities,
* Estimated Success Probability (ESP) — expected fidelity times the
  idle-time decay factor ``exp(-t_idle / min(T1, T2))`` per qubit.

The hardware-aware metrics read a :class:`~repro.hardware.calibration.Calibration`.
By default they use the device's *reported* snapshot — exactly what a
compiler would see in practice, and the source of the staleness effects the
paper discusses.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

import numpy as np

from ..circuits.circuit import QuantumCircuit
from ..compiler.passes.scheduling import schedule_asap
from ..hardware.calibration import Calibration
from ..hardware.device import Device


def gate_count(circuit: QuantumCircuit, two_qubit_only: bool = False) -> int:
    """Number of gates; with ``two_qubit_only`` count only multi-qubit gates."""
    if two_qubit_only:
        return circuit.num_nonlocal_gates()
    return circuit.size()


def two_qubit_gate_count(circuit: QuantumCircuit) -> int:
    """Number of gates acting on two or more qubits."""
    return circuit.num_nonlocal_gates()


def circuit_depth(circuit: QuantumCircuit) -> int:
    """Longest path length through the circuit graph."""
    return circuit.depth()


def expected_fidelity(
    circuit: QuantumCircuit,
    device: Device,
    calibration: Optional[Calibration] = None,
) -> float:
    """Product of all gate and measurement fidelities in ``[0, 1]``.

    Single-qubit gates use the per-qubit fidelity, two-qubit gates the
    per-edge fidelity, and measurements the per-qubit readout fidelity.
    """
    cal = calibration if calibration is not None else device.reported_calibration
    fidelity = 1.0
    for instruction in circuit.instructions:
        if instruction.name == "barrier":
            continue
        if instruction.name == "measure":
            fidelity *= cal.readout_fidelity[instruction.qubits[0]]
        elif instruction.num_qubits == 1:
            fidelity *= cal.one_qubit_fidelity[instruction.qubits[0]]
        elif instruction.num_qubits == 2:
            fidelity *= cal.edge_fidelity(*instruction.qubits)
        else:
            raise ValueError(
                f"expected a compiled circuit; found {instruction.num_qubits}-qubit "
                f"gate '{instruction.name}'"
            )
    return fidelity


def _calibration_fidelity_tables(
    device: Device, cal: Calibration
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Dense per-qubit / per-edge fidelity arrays for vectorized scoring.

    Missing calibration entries become NaN, which
    :func:`expected_fidelity_batch` rejects loudly — mirroring the
    ``KeyError`` the scalar :func:`expected_fidelity` would raise.
    """
    n = device.num_qubits
    one_q = np.full(n, np.nan)
    readout = np.full(n, np.nan)
    for qubit, value in cal.one_qubit_fidelity.items():
        one_q[qubit] = value
    for qubit, value in cal.readout_fidelity.items():
        readout[qubit] = value
    edge = np.full((n, n), np.nan)
    for (a, b), value in cal.two_qubit_fidelity.items():
        edge[a, b] = edge[b, a] = value
    return one_q, readout, edge


def expected_fidelity_batch(
    circuits: Sequence[QuantumCircuit],
    device: Device,
    calibration: Optional[Calibration] = None,
) -> np.ndarray:
    """:func:`expected_fidelity` of many compiled circuits in one pass.

    Level-3 trial selection scores every candidate; this gathers all
    per-gate fidelities from dense calibration arrays and reduces every
    circuit's product in a single ``multiply.reduceat`` sweep.  The
    products fold left-to-right over the same factors as the scalar
    version, so results are bit-identical to calling
    :func:`expected_fidelity` per circuit.
    """
    cal = calibration if calibration is not None else device.reported_calibration
    if not circuits:
        return np.empty(0)
    one_q, readout, edge = _calibration_fidelity_tables(device, cal)

    per_circuit: list = []
    for circuit in circuits:
        one_q_pos, one_q_idx = [], []
        two_q_pos, two_q_a, two_q_b = [], [], []
        meas_pos, meas_idx = [], []
        pos = 0
        for instruction in circuit.instructions:
            if instruction.name == "barrier":
                continue
            if instruction.name == "measure":
                meas_pos.append(pos)
                meas_idx.append(instruction.qubits[0])
            elif instruction.num_qubits == 1:
                one_q_pos.append(pos)
                one_q_idx.append(instruction.qubits[0])
            elif instruction.num_qubits == 2:
                two_q_pos.append(pos)
                two_q_a.append(instruction.qubits[0])
                two_q_b.append(instruction.qubits[1])
            else:
                raise ValueError(
                    f"expected a compiled circuit; found "
                    f"{instruction.num_qubits}-qubit gate '{instruction.name}'"
                )
            pos += 1
        values = np.empty(pos)
        values[one_q_pos] = one_q[one_q_idx]
        values[two_q_pos] = edge[two_q_a, two_q_b]
        values[meas_pos] = readout[meas_idx]
        per_circuit.append(values)

    lengths = np.array([len(v) for v in per_circuit])
    results = np.ones(len(circuits))
    nonempty = lengths > 0
    if nonempty.any():
        all_values = np.concatenate([v for v in per_circuit if len(v)])
        if np.isnan(all_values).any():
            raise KeyError(
                "circuit touches a qubit or edge with no calibration entry"
            )
        starts = np.concatenate(([0], np.cumsum(lengths[nonempty])[:-1]))
        results[nonempty] = np.multiply.reduceat(all_values, starts)
    return results


def esp(
    circuit: QuantumCircuit,
    device: Device,
    calibration: Optional[Calibration] = None,
) -> float:
    """Estimated Success Probability [Murali et al. 2020].

    ``ESP = expected_fidelity * prod_q exp(-t_idle(q) / min(T1(q), T2(q)))``
    where ``t_idle(q)`` is qubit ``q``'s idle time under an ASAP schedule
    with the calibration's durations.
    """
    cal = calibration if calibration is not None else device.reported_calibration
    fidelity = expected_fidelity(circuit, device, calibration=cal)
    schedule = schedule_asap(circuit, cal.durations)
    decay = 1.0
    for qubit, idle in schedule.idle_times().items():
        decay *= math.exp(-idle / cal.min_relaxation(qubit))
    return fidelity * decay


def esp_decay_factor(
    circuit: QuantumCircuit,
    device: Device,
    calibration: Optional[Calibration] = None,
) -> float:
    """Only the relaxation term of ESP (for the staleness ablation)."""
    cal = calibration if calibration is not None else device.reported_calibration
    schedule = schedule_asap(circuit, cal.durations)
    decay = 1.0
    for qubit, idle in schedule.idle_times().items():
        decay *= math.exp(-idle / cal.min_relaxation(qubit))
    return decay


#: The established figures of merit evaluated in Table I, in paper order.
#: Each entry maps a display name to ``(function, higher_is_better)``.
ESTABLISHED_FOMS = {
    "Number of gates": (lambda circuit, device: float(gate_count(circuit)), False),
    "Circuit depth": (lambda circuit, device: float(circuit_depth(circuit)), False),
    "Expected fidelity": (expected_fidelity, True),
    "ESP": (esp, True),
}

#: Table I row labels, in paper order — the one source every surface
#: (study tables, FomService panels, the predict CLI) draws from.
FOM_ORDER = list(ESTABLISHED_FOMS)
PROPOSED_LABEL = "Proposed approach"
