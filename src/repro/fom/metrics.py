"""Established figures of merit (Section II-B).

Four metrics, in the paper's order:

* number of gates (optionally only two-qubit gates),
* circuit depth,
* expected fidelity — the product of all gate and measurement fidelities,
* Estimated Success Probability (ESP) — expected fidelity times the
  idle-time decay factor ``exp(-t_idle / min(T1, T2))`` per qubit.

The hardware-aware metrics read a :class:`~repro.hardware.calibration.Calibration`.
By default they use the device's *reported* snapshot — exactly what a
compiler would see in practice, and the source of the staleness effects the
paper discusses.
"""

from __future__ import annotations

import math
from typing import Optional

from ..circuits.circuit import QuantumCircuit
from ..compiler.passes.scheduling import schedule_asap
from ..hardware.calibration import Calibration
from ..hardware.device import Device


def gate_count(circuit: QuantumCircuit, two_qubit_only: bool = False) -> int:
    """Number of gates; with ``two_qubit_only`` count only multi-qubit gates."""
    if two_qubit_only:
        return circuit.num_nonlocal_gates()
    return circuit.size()


def two_qubit_gate_count(circuit: QuantumCircuit) -> int:
    """Number of gates acting on two or more qubits."""
    return circuit.num_nonlocal_gates()


def circuit_depth(circuit: QuantumCircuit) -> int:
    """Longest path length through the circuit graph."""
    return circuit.depth()


def expected_fidelity(
    circuit: QuantumCircuit,
    device: Device,
    calibration: Optional[Calibration] = None,
) -> float:
    """Product of all gate and measurement fidelities in ``[0, 1]``.

    Single-qubit gates use the per-qubit fidelity, two-qubit gates the
    per-edge fidelity, and measurements the per-qubit readout fidelity.
    """
    cal = calibration if calibration is not None else device.reported_calibration
    fidelity = 1.0
    for instruction in circuit.instructions:
        if instruction.name == "barrier":
            continue
        if instruction.name == "measure":
            fidelity *= cal.readout_fidelity[instruction.qubits[0]]
        elif instruction.num_qubits == 1:
            fidelity *= cal.one_qubit_fidelity[instruction.qubits[0]]
        elif instruction.num_qubits == 2:
            fidelity *= cal.edge_fidelity(*instruction.qubits)
        else:
            raise ValueError(
                f"expected a compiled circuit; found {instruction.num_qubits}-qubit "
                f"gate '{instruction.name}'"
            )
    return fidelity


def esp(
    circuit: QuantumCircuit,
    device: Device,
    calibration: Optional[Calibration] = None,
) -> float:
    """Estimated Success Probability [Murali et al. 2020].

    ``ESP = expected_fidelity * prod_q exp(-t_idle(q) / min(T1(q), T2(q)))``
    where ``t_idle(q)`` is qubit ``q``'s idle time under an ASAP schedule
    with the calibration's durations.
    """
    cal = calibration if calibration is not None else device.reported_calibration
    fidelity = expected_fidelity(circuit, device, calibration=cal)
    schedule = schedule_asap(circuit, cal.durations)
    decay = 1.0
    for qubit, idle in schedule.idle_times().items():
        decay *= math.exp(-idle / cal.min_relaxation(qubit))
    return fidelity * decay


def esp_decay_factor(
    circuit: QuantumCircuit,
    device: Device,
    calibration: Optional[Calibration] = None,
) -> float:
    """Only the relaxation term of ESP (for the staleness ablation)."""
    cal = calibration if calibration is not None else device.reported_calibration
    schedule = schedule_asap(circuit, cal.durations)
    decay = 1.0
    for qubit, idle in schedule.idle_times().items():
        decay *= math.exp(-idle / cal.min_relaxation(qubit))
    return decay


#: The established figures of merit evaluated in Table I, in paper order.
#: Each entry maps a display name to ``(function, higher_is_better)``.
ESTABLISHED_FOMS = {
    "Number of gates": (lambda circuit, device: float(gate_count(circuit)), False),
    "Circuit depth": (lambda circuit, device: float(circuit_depth(circuit)), False),
    "Expected fidelity": (expected_fidelity, True),
    "ESP": (esp, True),
}
