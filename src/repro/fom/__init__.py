"""Figures of merit: established metrics and the 30-dim feature vector."""

from .features import (
    FEATURE_GROUPS,
    FEATURE_NAMES,
    GROUP_ORDER,
    NUM_FEATURES,
    feature_dict,
    feature_matrix,
    feature_vector,
)
from .metrics import (
    ESTABLISHED_FOMS,
    circuit_depth,
    esp,
    esp_decay_factor,
    expected_fidelity,
    gate_count,
    two_qubit_gate_count,
)

__all__ = [
    "ESTABLISHED_FOMS",
    "FEATURE_GROUPS",
    "FEATURE_NAMES",
    "GROUP_ORDER",
    "NUM_FEATURES",
    "circuit_depth",
    "esp",
    "esp_decay_factor",
    "expected_fidelity",
    "feature_dict",
    "feature_matrix",
    "feature_vector",
    "gate_count",
    "two_qubit_gate_count",
]
