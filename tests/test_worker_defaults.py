"""Regression tests for the repo-wide ``max_workers=None`` rule (PR 6).

Every batched entry point must resolve ``max_workers=None`` to one
worker per CPU via :func:`repro.parallel.resolve_workers` — no call site
may silently remap ``None`` to ``1`` (the historical ``compile_batch``
divergence).  The tests pretend the box has four CPUs and spy on the
``parallel_map`` call each entry point makes, asserting the worker count
it resolved (or forwarded) matches the shared rule.
"""

import numpy as np
import pytest

import repro.compiler.compile as compile_mod
import repro.fom.features as features_mod
import repro.ml.forest as forest_mod
import repro.ml.model_selection as selection_mod
import repro.predictor.service as service_mod
import repro.simulation.executor as executor_mod
from repro.circuits.circuit import QuantumCircuit
from repro.hardware import make_q20a
from repro.ml.forest import RandomForestRegressor
from repro.ml.model_selection import cross_val_score, grid_search
from repro.parallel import WORKERS_MODE_ENV, resolve_workers

FAKE_CPUS = 4


@pytest.fixture()
def four_cpus(monkeypatch):
    """Pretend the box has four CPUs and pin pools to cheap thread mode.

    Without this, a single-CPU CI box resolves ``None`` and the buggy
    ``1`` to the same count and the regression is invisible.
    """
    import repro.parallel as parallel_mod

    monkeypatch.setattr(parallel_mod.os, "cpu_count", lambda: FAKE_CPUS)
    monkeypatch.setenv(WORKERS_MODE_ENV, "thread")


def _spy(monkeypatch, module):
    """Record the ``max_workers`` of every ``parallel_map`` call in
    ``module`` while still executing the real thing."""
    calls = []
    import repro.parallel as parallel_mod

    real = parallel_mod.parallel_map

    def wrapper(fn, items, max_workers=None, **kwargs):
        calls.append((max_workers, len(list(items))))
        return real(fn, items, max_workers=max_workers, **kwargs)

    monkeypatch.setattr(module, "parallel_map", wrapper)
    return calls


def _assert_rule(calls):
    assert calls, "entry point never reached parallel_map"
    for max_workers, num_items in calls:
        assert resolve_workers(max_workers, num_items) == resolve_workers(
            None, num_items
        ), (max_workers, num_items)


def _bell(n=3):
    qc = QuantumCircuit(n)
    qc.h(0)
    for i in range(n - 1):
        qc.cx(i, i + 1)
    qc.measure_all()
    return qc


@pytest.fixture(scope="module")
def device():
    return make_q20a()


def test_compile_batch_resolves_none_to_cpu_count(four_cpus, monkeypatch, device):
    # compile_batch imports parallel_map at call time, so spy at the source.
    import repro.parallel as parallel_mod

    calls = _spy(monkeypatch, parallel_mod)
    compile_mod.compile_batch(
        [_bell(n) for n in (3, 4, 5, 6, 7)], device,
        optimization_level=1, seed=0, max_workers=None,
    )
    _assert_rule(calls)
    assert calls[0][0] == FAKE_CPUS  # the historical bug resolved to 1


def test_feature_matrix_follows_worker_rule(four_cpus, monkeypatch, device):
    calls = _spy(monkeypatch, features_mod)
    circuits = [_bell(n) for n in (3, 4, 5, 6)]
    features_mod.feature_matrix(circuits, max_workers=None)
    _assert_rule(calls)


def test_run_batch_follows_worker_rule(four_cpus, monkeypatch, device):
    compiled = [
        compile_mod.compile_circuit(
            _bell(n), device, optimization_level=1, seed=n
        ).circuit
        for n in (3, 4, 5, 6)
    ]
    calls = _spy(monkeypatch, executor_mod)
    executor_mod.QPUExecutor(device).run_batch(
        compiled, shots=50, seed=1, max_workers=None
    )
    _assert_rule(calls)


def test_forest_fit_follows_worker_rule(four_cpus, monkeypatch):
    calls = _spy(monkeypatch, forest_mod)
    rng = np.random.default_rng(0)
    RandomForestRegressor(
        n_estimators=6, random_state=0, max_workers=None
    ).fit(rng.random((30, 5)), rng.random(30))
    _assert_rule(calls)


def test_model_selection_follows_worker_rule(four_cpus, monkeypatch):
    calls = _spy(monkeypatch, selection_mod)
    rng = np.random.default_rng(1)
    X, y = rng.random((30, 5)), rng.random(30)
    forest = RandomForestRegressor(n_estimators=4, random_state=0)
    cross_val_score(forest, X, y, n_splits=3, seed=0, max_workers=None)
    _assert_rule(calls)
    calls.clear()
    grid_search(
        forest,
        {"n_estimators": [4], "max_depth": [2, 3],
         "min_samples_leaf": [1], "min_samples_split": [2]},
        X, y, n_splits=3, seed=0, max_workers=None,
    )
    _assert_rule(calls)


def test_service_forwards_none_to_both_stages(four_cpus, monkeypatch, device):
    """The service must not remap ``None`` before delegating (the second
    historical divergence: ``feature_workers = 1 if max_workers is None``)."""
    forwarded = {}
    real_compile = service_mod.compile_batch
    real_features = service_mod.feature_matrix

    def spy_compile(circuits, *args, **kwargs):
        forwarded["compile"] = kwargs.get("max_workers", "missing")
        return real_compile(circuits, *args, **kwargs)

    def spy_features(circuits, *args, **kwargs):
        forwarded["features"] = kwargs.get("max_workers", "missing")
        return real_features(circuits, *args, **kwargs)

    monkeypatch.setattr(service_mod, "compile_batch", spy_compile)
    monkeypatch.setattr(service_mod, "feature_matrix", spy_features)

    from repro.predictor.estimator import HellingerEstimator

    rng = np.random.default_rng(2)
    estimator = HellingerEstimator(
        param_grid={"n_estimators": [4], "max_depth": [3],
                    "min_samples_leaf": [1], "min_samples_split": [2]},
        n_splits=3, seed=0, max_workers=1,
    )
    estimator.fit(rng.random((40, 30)), rng.random(40))
    service = service_mod.FomService(estimator, device)
    service.predict([_bell(3), _bell(4), _bell(5)], max_workers=None)
    assert forwarded["compile"] is None
    assert forwarded["features"] is None
