"""Sharded serving: routing units, stats merging, and the byte-identity matrix.

The tentpole contract: a daemon with ``--shards N`` answers with bytes
**identical** to the single-process daemon (and therefore to a solo
:class:`FomService`) for any N, under concurrent clients, for both
content-length and streamed responses.  The matrix tests here compare
raw response bytes — head and body — across shard counts {1, 2, 4},
then exercise the operational paths: drain during a live stream,
reload broadcast under traffic, and worker crash → 503 → respawn.

Process tests spawn real workers (one registry + batcher each), so the
shared matrix daemons are module-scoped; the destructive tests (drain,
crash, reload-with-swap) each build their own short-lived pool.
"""

import json
import os
import signal
import socket
import threading
import time

import numpy as np
import pytest

from repro.circuits.qasm import to_qasm
from repro.circuits.random import random_circuit
from repro.evaluation.persistence import save_model
from repro.predictor.estimator import HellingerEstimator
from repro.predictor.service import FomService
from repro.serving import (
    ModelRegistry,
    RegistrySpec,
    ServerConfig,
    ServingClient,
    ServingDaemon,
    ServingError,
    resolve_shards,
    shard_for,
)
from repro.serving.server import DaemonThread, nearest_rank
from repro.serving.shards import (
    ShardDown,
    choose_shard,
    merge_latency_reservoirs,
    merge_shard_stats,
)

TINY_GRID = {
    "n_estimators": [4],
    "max_depth": [3],
    "min_samples_leaf": [1],
    "min_samples_split": [2],
}
DEVICE = "q20a"
LEVEL = 2
SHARD_COUNTS = (1, 2, 4)


# ----------------------------------------------------------------------
# Routing units (no processes)
# ----------------------------------------------------------------------


def test_resolve_shards_edges():
    assert resolve_shards(1) == 1
    assert resolve_shards(5) == 5
    assert resolve_shards(0) == (os.cpu_count() or 1)
    with pytest.raises(ValueError):
        resolve_shards(-1)


def test_shard_for_is_stable_and_in_range():
    key = ("model-a", "abc123", 2, False)
    first = shard_for(key, 4)
    assert first == shard_for(key, 4)  # deterministic
    for count in (1, 2, 4, 7):
        assert 0 <= shard_for(key, count) < count
    # None is distinguished from the string "None", and values carry
    # their type — (1, ...) and ("1", ...) are different lanes.
    keys = [
        ("m", None, None, False),
        ("m", "None", None, False),
        (1, None, None, False),
        ("1", None, None, False),
    ]
    digests = {shard_for(key, 2 ** 32) for key in keys}
    assert len(digests) == len(keys)


def test_shard_for_spreads_lanes():
    lanes = {
        shard_for((f"model-{i}", None, None, False), 4) for i in range(64)
    }
    assert lanes == {0, 1, 2, 3}


def test_choose_shard_prefers_live_primary_under_limit():
    assert choose_shard(1, [0, 0, 0], [True] * 3, 4, 10) == 1


def test_choose_shard_spills_round_robin_past_saturation():
    # Primary 0 saturated: next live under-limit shard (round-robin) wins.
    assert choose_shard(0, [10, 0, 0], [True] * 3, 4, 10) == 1
    # ...skipping a dead intermediate.
    assert choose_shard(0, [10, 0, 0], [True, False, True], 4, 10) == 2
    # ...and a saturated intermediate.
    assert choose_shard(0, [10, 9, 0], [True] * 3, 4, 10) == 2


def test_choose_shard_saturated_everywhere_keeps_primary():
    # The primary's own bounded queue answers 503 — the parent must not
    # invent a second backpressure policy.
    assert choose_shard(2, [10, 10, 10], [True] * 3, 4, 10) == 2


def test_choose_shard_dead_primary_is_shard_down():
    with pytest.raises(ShardDown) as caught:
        choose_shard(1, [0, 0, 0], [True, False, True], 1, 10)
    assert caught.value.index == 1
    assert "retry shortly" in str(caught.value)


# ----------------------------------------------------------------------
# Stats merging units (satellite: percentile merge)
# ----------------------------------------------------------------------


def test_merged_percentiles_equal_flat_sample_nearest_rank():
    """The pinned merge rule: percentiles over the *union* of per-shard
    reservoirs equal nearest-rank over the same samples collected flat
    in one process — and differ from averaging per-shard percentiles."""
    rng = np.random.default_rng(7)
    # Deliberately skewed: shard 0 fast and busy, shard 1 slow and idle.
    reservoirs = [
        sorted(rng.uniform(0.001, 0.010, size=97).tolist()),
        sorted(rng.uniform(0.5, 2.0, size=5).tolist()),
        [],  # a freshly-respawned shard contributes nothing
    ]
    flat = sorted(sample for reservoir in reservoirs for sample in reservoir)
    merged = merge_latency_reservoirs(reservoirs)
    assert merged["samples"] == len(flat)
    assert merged["reservoir"] == flat
    assert merged["request_p50_s"] == nearest_rank(flat, 0.50)
    assert merged["request_p99_s"] == nearest_rank(flat, 0.99)
    assert merged["request_max_s"] == flat[-1]
    # The naive merge — averaging the per-shard p99s — is badly wrong
    # under skew: here it lands around 1s while the true p99 is ~6ms.
    naive_p99 = float(np.mean([
        nearest_rank(reservoir, 0.99)
        for reservoir in reservoirs
        if reservoir
    ]))
    assert abs(naive_p99 - merged["request_p99_s"]) > 0.1


def test_merge_latency_reservoirs_empty():
    merged = merge_latency_reservoirs([[], []])
    assert merged["samples"] == 0
    assert merged["request_p50_s"] is None
    assert merged["request_max_s"] is None


def test_merge_shard_stats_sums_counters_and_histograms():
    reports = [
        {
            "queue": {
                "depth": 2, "requests_waiting": 1, "in_flight": 3,
                "rejected_total": 4,
            },
            "batches": {
                "total": 10, "requests_total": 20,
                "size_histogram": {"1": 5, "4": 5},
            },
            "latency": {
                "reservoir": [0.001, 0.002],
                "queue_wait_s_total": 0.5,
                "queue_wait_s_max": 0.2,
                "stages_s": {"compile": 1.0, "features": 0.25},
            },
        },
        {
            "queue": {
                "depth": 1, "requests_waiting": 0, "in_flight": 1,
                "rejected_total": 0,
            },
            "batches": {
                "total": 3, "requests_total": 6,
                "size_histogram": {"4": 2, "16": 1},
            },
            "latency": {
                "reservoir": [0.003],
                "queue_wait_s_total": 0.25,
                "queue_wait_s_max": 0.3,
                "stages_s": {"compile": 0.5},
            },
        },
    ]
    merged = merge_shard_stats(reports)
    assert merged["queue"] == {
        "depth": 3, "requests_waiting": 1, "in_flight": 4,
        "rejected_total": 4,
    }
    assert merged["batches"]["total"] == 13
    assert merged["batches"]["requests_total"] == 26
    # Histogram keys sum and sort numerically, not lexically.
    assert merged["batches"]["size_histogram"] == {"1": 5, "4": 7, "16": 1}
    assert list(merged["batches"]["size_histogram"]) == ["1", "4", "16"]
    latency = merged["latency"]
    assert latency["samples"] == 3
    assert latency["queue_wait_s_total"] == 0.75
    assert latency["queue_wait_s_max"] == 0.3
    assert latency["stages_s"] == {"compile": 1.5, "features": 0.25}


# ----------------------------------------------------------------------
# Spec validation
# ----------------------------------------------------------------------


def test_sharded_daemon_requires_registry_spec():
    registry = ModelRegistry()
    with pytest.raises(ValueError, match="RegistrySpec"):
        ServingDaemon(registry, ServerConfig(port=0, shards=2))


def test_registry_spec_validates_sources(tmp_path):
    with pytest.raises(ValueError, match="no model sources"):
        RegistrySpec().validate()
    spec = RegistrySpec().add_model_file(tmp_path / "missing.npz", DEVICE)
    with pytest.raises(ValueError, match="missing.npz"):
        spec.validate()
    # A sharded daemon fails fast in the parent, before any spawn.
    with pytest.raises(ValueError, match="missing.npz"):
        ServingDaemon(spec, ServerConfig(port=0, shards=2))


# ----------------------------------------------------------------------
# Process matrix fixtures
# ----------------------------------------------------------------------


@pytest.fixture(scope="module")
def model_path(tmp_path_factory):
    rng = np.random.default_rng(0)
    estimator = HellingerEstimator(param_grid=TINY_GRID, seed=0).fit(
        rng.uniform(size=(60, 30)), rng.uniform(size=60)
    )
    path = tmp_path_factory.mktemp("shards") / "model.npz"
    save_model(estimator, path)
    return path


@pytest.fixture(scope="module")
def direct(model_path):
    """The reference answer: a solo FomService on the same model."""
    return FomService(
        FomService.load(model_path, DEVICE).estimator,
        DEVICE, optimization_level=LEVEL, seed=0,
    )


@pytest.fixture(scope="module")
def circuits():
    return [
        random_circuit(3 + (seed % 2), 5, seed=seed, measure=True)
        for seed in range(6)
    ]


def make_spec(model_path) -> RegistrySpec:
    return RegistrySpec().add_model_file(
        model_path, DEVICE, optimization_level=LEVEL, seed=0
    )


def make_sharded(model_path, shards, **config_kwargs):
    config_kwargs.setdefault("port", 0)
    return ServingDaemon(
        make_spec(model_path), ServerConfig(shards=shards, **config_kwargs)
    )


@pytest.fixture(scope="module")
def matrix(model_path):
    """One live daemon per shard count — shards=1 is the in-process
    reference the sharded ones must match byte-for-byte."""
    threads = {}
    try:
        for count in SHARD_COUNTS:
            thread = DaemonThread(make_sharded(model_path, count))
            thread.start()
            threads[count] = thread
        yield {count: thread.daemon for count, thread in threads.items()}
    finally:
        for thread in threads.values():
            thread.stop()


def raw_exchange(daemon, payload, path="/predict", timeout=300.0) -> bytes:
    """One request over a fresh socket; returns the raw response bytes.

    ``Connection: close`` so the daemon half-closes after the response
    (content-length or chunked terminator alike) and a read-to-EOF
    captures every byte it wrote — head, framing, and body.
    """
    body = json.dumps(payload).encode()
    request = (
        f"POST {path} HTTP/1.1\r\n"
        f"Host: test\r\n"
        f"Content-Type: application/json\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"Connection: close\r\n"
        f"\r\n"
    ).encode() + body
    with socket.create_connection(
        (daemon.host, daemon.port), timeout=timeout
    ) as sock:
        sock.sendall(request)
        received = []
        while True:
            data = sock.recv(65536)
            if not data:
                break
            received.append(data)
    return b"".join(received)


def response_body(raw: bytes) -> dict:
    head, _, body = raw.partition(b"\r\n\r\n")
    assert b"Content-Length" in head
    return json.loads(body.decode())


def stream_lines(raw: bytes) -> list:
    """Decode the NDJSON lines of a chunked response's raw bytes."""
    head, _, body = raw.partition(b"\r\n\r\n")
    assert b"Transfer-Encoding: chunked" in head
    lines = []
    offset = 0
    while True:
        crlf = body.index(b"\r\n", offset)
        size = int(body[offset:crlf], 16)
        if size == 0:
            break
        chunk = body[crlf + 2:crlf + 2 + size]
        lines.extend(
            json.loads(line) for line in chunk.splitlines() if line.strip()
        )
        offset = crlf + 2 + size + 2
    return lines


# ----------------------------------------------------------------------
# The byte-identity matrix
# ----------------------------------------------------------------------


def test_shard_matrix_concurrent_clients_byte_identical(
    matrix, direct, circuits
):
    """Concurrent mixed requests: every daemon in the matrix answers
    with byte-identical responses, which equal the solo service."""
    qasm = [to_qasm(circuit) for circuit in circuits]
    payloads = [
        ("/predict", {"circuits": qasm[0:3]}),
        ("/predict", {"circuits": qasm[3:6], "optimization_level": 1}),
        ("/predict", {"circuits": qasm[1:2]}),
        ("/foms", {"circuits": qasm[4:6]}),
    ]
    raw = {
        count: [None] * len(payloads) for count in matrix
    }
    errors = []

    def drive(count, index):
        path, payload = payloads[index]
        try:
            raw[count][index] = raw_exchange(matrix[count], payload, path)
        except Exception as exc:  # noqa: BLE001 - asserted below
            errors.append((count, index, exc))

    threads = [
        threading.Thread(target=drive, args=(count, index))
        for count in matrix
        for index in range(len(payloads))
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=600)
    assert not errors
    for index in range(len(payloads)):
        reference = raw[1][index]
        for count in SHARD_COUNTS[1:]:
            assert raw[count][index] == reference, (
                f"shards={count} bytes differ for payload {index}"
            )
    # ...and the reference equals the solo FomService answer.
    assert response_body(raw[1][0])["predictions"] == (
        direct.predict(circuits[0:3]).tolist()
    )
    assert response_body(raw[1][1])["predictions"] == (
        direct.predict(circuits[3:6], optimization_level=1).tolist()
    )


def test_shard_matrix_streaming_byte_identical(matrix, direct, circuits):
    """Streamed responses relay chunk-for-chunk: the raw bytes — head,
    chunk framing, NDJSON lines, terminator — match across shard
    counts, and the values match the solo service."""
    qasm = [to_qasm(circuit) for circuit in circuits[:5]]
    payload = {"circuits": qasm, "stream": True, "chunk_size": 2}
    raw = {
        count: raw_exchange(matrix[count], payload) for count in matrix
    }
    for count in SHARD_COUNTS[1:]:
        assert raw[count] == raw[1], f"shards={count} stream bytes differ"
    lines = stream_lines(raw[1])
    assert lines[0]["stream"] is True and lines[0]["count"] == 5
    assert lines[-1] == {"done": True, "count": 5}
    chunks = [line["predictions"] for line in lines[1:-1]]
    assert [len(chunk) for chunk in chunks] == [2, 2, 1]
    flat = [value for chunk in chunks for value in chunk]
    assert flat == direct.predict(circuits[:5]).tolist()


def test_shard_matrix_errors_byte_identical(matrix):
    """400s come from the shared parser — identical in every mode."""
    for path, payload in [
        ("/predict", {"circuits": []}),
        ("/predict", {"circuits": ["x"], "optimization_level": 9}),
        ("/foms", {"circuits": ["x"], "stream": True}),
        ("/predict", {"circuits": ["x"], "chunk_size": 2}),
    ]:
        raws = {
            count: raw_exchange(matrix[count], payload, path)
            for count in matrix
        }
        assert raws[2] == raws[1] and raws[4] == raws[1]
        assert raws[1].startswith(b"HTTP/1.1 400 ")


def test_sharded_healthz_reports_workers(matrix):
    daemon = matrix[4]
    with ServingClient(daemon.host, daemon.port) as client:
        status, payload = client.healthz()
    assert status == 200
    assert payload["status"] == "serving"
    shards = payload["shards"]
    assert shards["count"] == 4 and shards["live"] == 4
    assert not shards["degraded"]
    pids = [worker["pid"] for worker in shards["workers"]]
    assert len(set(pids)) == 4
    assert all(worker["status"] == "serving" for worker in shards["workers"])
    (model,) = payload["models"]
    assert model["device"] == "Q20-A"


def test_sharded_stats_aggregate(matrix, circuits):
    """Merged /stats: counters sum over workers, per-shard depths are
    reported, and the latency sample count equals the per-shard sum."""
    daemon = matrix[2]
    with ServingClient(daemon.host, daemon.port) as client:
        for start in range(3):
            client.predict(circuits[start:start + 2])
        stats = client.stats()
    assert stats["shards"]["count"] == 2
    assert stats["shards"]["live"] == 2
    per_shard = stats["shards"]["per_shard"]
    assert [entry["shard"] for entry in per_shard] == [0, 1]
    assert stats["latency"]["samples"] == sum(
        entry["latency_samples"] for entry in per_shard
    )
    assert stats["latency"]["samples"] >= 3
    assert stats["queue"]["limit"] == daemon.config.queue_limit
    assert stats["batches"]["requests_total"] >= 3
    assert stats["responses"].get("200", 0) >= 3
    assert stats["requests"].get("/predict", 0) >= 3


# ----------------------------------------------------------------------
# Operational paths (dedicated short-lived pools)
# ----------------------------------------------------------------------


def test_drain_during_streaming_completes_then_reaps(
    model_path, direct, circuits
):
    """SIGTERM (stop()) while a stream is mid-flight: the stream runs to
    its terminator with correct values, the listener then refuses new
    connections, and every worker process is reaped — no orphans."""
    thread = DaemonThread(make_sharded(model_path, 2))
    host, port = thread.start()
    client = ServingClient(host, port)
    try:
        _, health = client.healthz()
        worker_pids = [
            worker["pid"] for worker in health["shards"]["workers"]
        ]
        stream = client.predict_stream(circuits[:4], chunk_size=1)
        first = next(stream)

        stopper = threading.Thread(target=thread.stop)
        stopper.start()
        received = list(first)
        for chunk in stream:
            received.extend(chunk)
        stopper.join(timeout=120)
        assert not stopper.is_alive()
        assert received == direct.predict(circuits[:4]).tolist()
        assert stream.header["count"] == 4
    finally:
        client.close()
        thread.stop()
    with pytest.raises(OSError):
        socket.create_connection((host, port), timeout=5).close()
    deadline = time.monotonic() + 30
    while time.monotonic() < deadline:
        if not any(
            os.path.isdir(f"/proc/{pid}") for pid in worker_pids
        ):
            break
        time.sleep(0.1)
    else:
        raise AssertionError(f"orphaned shard workers: {worker_pids}")


def test_reload_broadcast_swaps_every_shard_under_traffic(
    tmp_path, model_path, circuits
):
    """Overwrite the model file mid-traffic, POST /reload: every worker
    reports the swap, and subsequent responses serve the new model."""
    serving_path = tmp_path / "model.npz"
    serving_path.write_bytes(model_path.read_bytes())
    thread = DaemonThread(make_sharded(serving_path, 2))
    host, port = thread.start()
    stop_traffic = threading.Event()
    errors = []

    def traffic():
        with ServingClient(host, port) as worker:
            while not stop_traffic.is_set():
                try:
                    worker.predict(circuits[:2])
                except ServingError as exc:
                    errors.append(exc)

    driver = threading.Thread(target=traffic)
    driver.start()
    try:
        with ServingClient(host, port) as client:
            old = client.predict(circuits[:3])
            rng = np.random.default_rng(99)
            successor = HellingerEstimator(
                param_grid=TINY_GRID, seed=99
            ).fit(rng.uniform(size=(60, 30)), rng.uniform(size=60))
            save_model(successor, serving_path)
            report = client.reload()
            new = client.predict(circuits[:3])
    finally:
        stop_traffic.set()
        driver.join(timeout=120)
        thread.stop()
    assert not errors
    assert [shard["ok"] for shard in report["shards"]] == [True, True]
    # Both workers swapped to the same successor fingerprint...
    assert len(report["swapped"]) == 2
    assert {swap["shard"] for swap in report["swapped"]} == {0, 1}
    fingerprints = {swap["fingerprint"] for swap in report["swapped"]}
    assert len(fingerprints) == 1
    assert fingerprints != {old["fingerprint"]}
    # ...and post-swap responses serve it, with changed values.
    assert new["fingerprint"] in fingerprints
    fresh = FomService(
        FomService.load(serving_path, DEVICE).estimator,
        DEVICE, optimization_level=LEVEL, seed=0,
    )
    assert new["predictions"] == fresh.predict(circuits[:3]).tolist()
    assert new["predictions"] != old["predictions"]


def test_worker_crash_503_respawn_recovers(model_path, direct, circuits):
    """SIGKILL a lane's worker: requests to that lane answer 503 (never
    silently move), healthz turns degraded, the manager respawns, and
    the recovered lane serves identical values."""
    thread = DaemonThread(make_sharded(model_path, 2))
    host, port = thread.start()
    client = ServingClient(host, port)
    try:
        baseline = client.predict(circuits[:3])["predictions"]
        lane = shard_for((None, None, None, False), 2)
        _, health = client.healthz()
        victim = next(
            worker["pid"]
            for worker in health["shards"]["workers"]
            if worker["shard"] == lane
        )
        os.kill(victim, signal.SIGKILL)
        saw_503 = degraded_seen = False
        deadline = time.monotonic() + 120
        while time.monotonic() < deadline:
            _, health = client.healthz()
            if health["status"] == "degraded":
                degraded_seen = True
            try:
                recovered = client.predict(circuits[:3])["predictions"]
            except ServingError as exc:
                assert exc.status == 503
                saw_503 = True
                time.sleep(0.05)
                continue
            if health["shards"]["respawns"] >= 1 and (
                health["shards"]["live"] == 2
            ):
                break
            time.sleep(0.05)
        else:
            raise AssertionError("shard never respawned")
        assert recovered == baseline
        assert saw_503 and degraded_seen
        assert health["shards"]["crashes"] >= 1
        new_pid = next(
            worker["pid"]
            for worker in health["shards"]["workers"]
            if worker["shard"] == lane
        )
        assert new_pid != victim
    finally:
        client.close()
        thread.stop()
