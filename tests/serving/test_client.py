"""ServingClient transport semantics against a scripted raw-socket server.

The rules under test are the client's reconnect contract:

* plain requests re-establish a dead keep-alive connection once;
* a streamed request reconnects only **before any response bytes**
  (the window closes at ``getresponse()``);
* once a stream has started, a dead connection raises
  :class:`StreamInterrupted` — never a silent replay that would
  recompute the corpus and duplicate chunks;
* chunked NDJSON decodes incrementally, including a JSON line split
  across two HTTP chunks, and a finished stream leaves the keep-alive
  connection reusable.

A scripted server — real sockets, hand-written bytes — pins these
without a daemon in the loop, so each test controls exactly where the
connection dies.
"""

import json
import socket
import threading

import pytest

from repro.serving import (
    PredictionStream,
    ServingClient,
    ServingError,
    StreamInterrupted,
)

QASM = (
    "OPENQASM 2.0;\n"
    'include "qelib1.inc";\n'
    "qreg q[1];\ncreg c[1];\nh q[0];\nmeasure q[0] -> c[0];\n"
)


def read_request(sock) -> bytes:
    """One full HTTP request (head + content-length body) off a socket."""
    data = b""
    while b"\r\n\r\n" not in data:
        more = sock.recv(65536)
        if not more:
            return data
        data += more
    head, _, rest = data.partition(b"\r\n\r\n")
    length = 0
    for line in head.split(b"\r\n"):
        if line.lower().startswith(b"content-length:"):
            length = int(line.split(b":", 1)[1])
    while len(rest) < length:
        more = sock.recv(65536)
        if not more:
            break
        rest += more
    return head + b"\r\n\r\n" + rest


def chunk(data: bytes) -> bytes:
    return f"{len(data):x}\r\n".encode() + data + b"\r\n"


def line(payload: dict) -> bytes:
    return (json.dumps(payload) + "\n").encode()


HEADER = {"model": "m", "fingerprint": "f", "count": 2, "stream": True}


def stream_head(close: bool = False) -> bytes:
    connection = "close" if close else "keep-alive"
    return (
        "HTTP/1.1 200 OK\r\n"
        "Content-Type: application/x-ndjson\r\n"
        "Transfer-Encoding: chunked\r\n"
        f"Connection: {connection}\r\n\r\n"
    ).encode()


class ScriptedServer:
    """Accepts connections and runs one scripted handler per connection.

    Each handler gets the accepted socket; the server records how many
    connections arrived (the reconnect assertions) and re-raises any
    handler failure at ``close()``.
    """

    def __init__(self, handlers):
        self.handlers = list(handlers)
        self.connections = 0
        self.errors = []
        self._listener = socket.create_server(("127.0.0.1", 0))
        self._listener.settimeout(10.0)
        self.host, self.port = self._listener.getsockname()
        self._thread = threading.Thread(target=self._serve, daemon=True)
        self._thread.start()

    def _serve(self):
        for handler in self.handlers:
            try:
                sock, _ = self._listener.accept()
            except OSError:
                return
            self.connections += 1
            try:
                with sock:
                    handler(sock)
            except Exception as exc:  # noqa: BLE001 - surfaced at close()
                self.errors.append(exc)

    def close(self):
        self._listener.close()
        self._thread.join(timeout=10)
        if self.errors:
            raise self.errors[0]


@pytest.fixture()
def scripted():
    servers = []

    def launch(*handlers) -> ScriptedServer:
        server = ScriptedServer(handlers)
        servers.append(server)
        return server

    yield launch
    for server in servers:
        server.close()


def test_stream_decodes_line_split_across_http_chunks(scripted):
    """One NDJSON line may span two transfer chunks; readline() must
    reassemble it (http.client de-chunks incrementally)."""
    prediction_line = line({"predictions": [0.125, 0.25]})

    def handler(sock):
        read_request(sock)
        sock.sendall(stream_head() + chunk(line(HEADER)))
        # The predictions line arrives in two chunks, split mid-JSON.
        sock.sendall(chunk(prediction_line[:9]))
        sock.sendall(chunk(prediction_line[9:]))
        sock.sendall(chunk(line({"done": True, "count": 2})) + b"0\r\n\r\n")

    server = scripted(handler)
    with ServingClient(server.host, server.port) as client:
        stream = client.predict_stream([QASM, QASM])
        assert isinstance(stream, PredictionStream)
        assert stream.header["model"] == "m"
        assert stream.header["count"] == 2
        chunks = list(stream)
    assert chunks == [[0.125, 0.25]]
    assert stream.received == 2
    assert server.connections == 1


def test_stream_reconnects_once_before_first_response_byte(scripted):
    """A stale keep-alive connection (server closed it between requests)
    is retried on a fresh one — no response bytes were consumed, so the
    replay is safe."""

    def stale(sock):
        # Serve one normal request, then close: the client's pooled
        # keep-alive connection is now dead without it knowing.
        read_request(sock)
        body = b'{"status": "serving"}'
        sock.sendall(
            b"HTTP/1.1 200 OK\r\nContent-Type: application/json\r\n"
            + f"Content-Length: {len(body)}\r\n".encode()
            + b"Connection: keep-alive\r\n\r\n" + body
        )

    def fresh(sock):
        read_request(sock)
        sock.sendall(
            stream_head()
            + chunk(line(HEADER))
            + chunk(line({"predictions": [0.5, 0.75]}))
            + chunk(line({"done": True, "count": 2}))
            + b"0\r\n\r\n"
        )

    server = scripted(stale, fresh)
    with ServingClient(server.host, server.port) as client:
        client.healthz()          # pools the connection the server drops
        stream = client.predict_stream([QASM, QASM])
        assert list(stream) == [[0.5, 0.75]]
    assert server.connections == 2


def test_stream_never_retries_after_first_chunk(scripted):
    """A stream that dies after delivering bytes raises
    StreamInterrupted on exactly one connection — a transparent replay
    would double-consume the overlap."""

    def dies_mid_stream(sock):
        read_request(sock)
        sock.sendall(
            stream_head()
            + chunk(line(HEADER))
            + chunk(line({"predictions": [0.5]}))
        )
        # Abrupt close: no error line, no terminator.

    server = scripted(dies_mid_stream)
    with ServingClient(server.host, server.port) as client:
        stream = client.predict_stream([QASM, QASM])
        assert next(stream) == [0.5]
        with pytest.raises(StreamInterrupted):
            next(stream)
    assert server.connections == 1


def test_stream_non_200_raises_serving_error(scripted):
    def overloaded(sock):
        read_request(sock)
        body = b'{"error": "queue full"}'
        sock.sendall(
            b"HTTP/1.1 503 Service Unavailable\r\n"
            b"Content-Type: application/json\r\n"
            + f"Content-Length: {len(body)}\r\n".encode()
            + b"Connection: keep-alive\r\n\r\n" + body
        )

    server = scripted(overloaded)
    with ServingClient(server.host, server.port) as client:
        with pytest.raises(ServingError) as caught:
            client.predict_stream([QASM])
    assert caught.value.status == 503
    assert caught.value.payload == {"error": "queue full"}


def test_stream_server_error_line_raises_serving_error(scripted):
    """A well-formed mid-stream error chunk (shard died, pipeline
    failure) surfaces as ServingError, not StreamInterrupted."""

    def errors_mid_stream(sock):
        read_request(sock)
        sock.sendall(
            stream_head()
            + chunk(line(HEADER))
            + chunk(line({"predictions": [0.5]}))
            + chunk(line({"error": "shard 1 died mid-stream"}))
            + b"0\r\n\r\n"
        )

    server = scripted(errors_mid_stream)
    with ServingClient(server.host, server.port) as client:
        stream = client.predict_stream([QASM, QASM])
        assert next(stream) == [0.5]
        with pytest.raises(ServingError) as caught:
            next(stream)
    assert caught.value.status == 500
    assert "died mid-stream" in str(caught.value)


def test_stream_bad_announcement_raises_stream_interrupted(scripted):
    def not_a_stream(sock):
        read_request(sock)
        sock.sendall(stream_head() + chunk(line({"predictions": [0.5]})))

    server = scripted(not_a_stream)
    with ServingClient(server.host, server.port) as client:
        with pytest.raises(StreamInterrupted, match="announcement"):
            client.predict_stream([QASM])


def test_connection_reused_after_completed_stream(scripted):
    """Draining the terminator leaves the keep-alive connection usable:
    a stream then a plain request ride one connection."""

    def stream_then_plain(sock):
        read_request(sock)
        sock.sendall(
            stream_head()
            + chunk(line(HEADER))
            + chunk(line({"predictions": [0.5, 0.75]}))
            + chunk(line({"done": True, "count": 2}))
            + b"0\r\n\r\n"
        )
        read_request(sock)   # the follow-up request, same connection
        body = b'{"status": "serving"}'
        sock.sendall(
            b"HTTP/1.1 200 OK\r\nContent-Type: application/json\r\n"
            + f"Content-Length: {len(body)}\r\n".encode()
            + b"Connection: keep-alive\r\n\r\n" + body
        )

    server = scripted(stream_then_plain)
    with ServingClient(server.host, server.port) as client:
        assert list(client.predict_stream([QASM, QASM])) == [[0.5, 0.75]]
        status, payload = client.healthz()
    assert status == 200 and payload == {"status": "serving"}
    assert server.connections == 1


def test_stream_payload_carries_stream_flag_and_chunk_size(scripted):
    captured = {}

    def capture(sock):
        raw = read_request(sock)
        _, _, body = raw.partition(b"\r\n\r\n")
        captured.update(json.loads(body.decode()))
        sock.sendall(
            stream_head()
            + chunk(line(HEADER))
            + chunk(line({"done": True, "count": 0}))
            + b"0\r\n\r\n"
        )

    server = scripted(capture)
    with ServingClient(server.host, server.port) as client:
        list(client.predict_stream(
            [QASM], model="m", optimization_level=1, chunk_size=16
        ))
    assert captured["stream"] is True
    assert captured["chunk_size"] == 16
    assert captured["model"] == "m"
    assert captured["optimization_level"] == 1
    assert captured["circuits"] == [QASM]


def test_plain_request_still_reconnects_once(scripted):
    """The pre-existing contract, pinned next to the narrower stream
    rule: a plain request on a dead pooled connection retries once."""

    def stale(sock):
        read_request(sock)
        body = b'{"status": "serving"}'
        sock.sendall(
            b"HTTP/1.1 200 OK\r\nContent-Type: application/json\r\n"
            + f"Content-Length: {len(body)}\r\n".encode()
            + b"Connection: keep-alive\r\n\r\n" + body
        )

    server = scripted(stale, stale)
    with ServingClient(server.host, server.port) as client:
        assert client.healthz()[0] == 200
        assert client.healthz()[0] == 200   # retried on a fresh socket
    assert server.connections == 2
