"""ServingDaemon end-to-end over real sockets (DaemonThread + ServingClient).

The contract under test is the ISSUE's acceptance bar: daemon responses
are **bit-identical** to direct :class:`FomService` calls, concurrency
and batch-trigger choice never change values, backpressure sheds load
with 503, and shutdown drains queued work without dropping or
duplicating a response.
"""

import threading

import numpy as np
import pytest

from repro.circuits.qasm import to_qasm
from repro.circuits.random import random_circuit
from repro.evaluation.persistence import save_model
from repro.predictor.estimator import HellingerEstimator
from repro.predictor.service import PROPOSED_LABEL, FomService
from repro.serving import (
    ModelRegistry,
    ServerConfig,
    ServingClient,
    ServingError,
    ServingDaemon,
)
from repro.serving.server import DaemonThread

TINY_GRID = {
    "n_estimators": [4],
    "max_depth": [3],
    "min_samples_leaf": [1],
    "min_samples_split": [2],
}
DEVICE = "q20a"
LEVEL = 2


@pytest.fixture(scope="module")
def model_path(tmp_path_factory):
    rng = np.random.default_rng(0)
    estimator = HellingerEstimator(param_grid=TINY_GRID, seed=0).fit(
        rng.uniform(size=(60, 30)), rng.uniform(size=60)
    )
    path = tmp_path_factory.mktemp("serving") / "model.npz"
    save_model(estimator, path)
    return path


@pytest.fixture(scope="module")
def direct(model_path):
    """The reference answer: a FomService on the same model + device."""
    return FomService(
        FomService.load(model_path, DEVICE).estimator,
        DEVICE, optimization_level=LEVEL, seed=0,
    )


@pytest.fixture(scope="module")
def circuits():
    return [
        random_circuit(3 + (seed % 3), 6, seed=seed, measure=True)
        for seed in range(9)
    ]


def make_daemon(model_path, **config_kwargs):
    registry = ModelRegistry()
    registry.add_model_file(
        model_path, DEVICE, optimization_level=LEVEL, seed=0
    )
    config_kwargs.setdefault("port", 0)
    return ServingDaemon(registry, ServerConfig(**config_kwargs))


@pytest.fixture(scope="module")
def daemon(model_path):
    """A long-lived daemon with a deadline long enough to coalesce."""
    thread = DaemonThread(make_daemon(model_path, batch_deadline=0.10))
    host, port = thread.start()
    yield thread.daemon
    thread.stop()


@pytest.fixture()
def client(daemon):
    with ServingClient(daemon.host, daemon.port) as connected:
        yield connected


def test_healthz_reports_models_and_knobs(daemon, client):
    status, payload = client.healthz()
    assert status == 200
    assert payload["status"] == "serving"
    (model,) = payload["models"]
    assert model["device"] == "Q20-A"
    assert payload["batch"]["max_batch"] == daemon.config.max_batch


def test_concurrent_clients_bit_identical_to_solo_calls(
    daemon, direct, circuits
):
    """N concurrent clients, unequal request sizes, one coalesced batch —
    every response equals the 1-client (direct FomService) answer."""
    requests = [circuits[0:3], circuits[3:5], circuits[5:9], circuits[1:2]]
    responses = [None] * len(requests)
    errors = []

    def drive(index):
        with ServingClient(daemon.host, daemon.port) as worker:
            try:
                responses[index] = worker.predict(requests[index])
            except Exception as exc:  # noqa: BLE001 - asserted below
                errors.append((index, exc))

    threads = [
        threading.Thread(target=drive, args=(index,))
        for index in range(len(requests))
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=600)
    assert not errors
    for index, request in enumerate(requests):
        assert responses[index]["predictions"] == (
            direct.predict(request).tolist()
        )
        assert responses[index]["count"] == len(request)


def test_size_and_deadline_triggers_answer_identically(
    model_path, direct, circuits
):
    """max_batch=1 (pure size trigger) and a long deadline (pure deadline
    trigger) give byte-equal responses for the same request."""
    request = circuits[:4]
    expected = direct.predict(request).tolist()
    for config in (
        {"max_batch": 1, "batch_deadline": 30.0},
        {"max_batch": 1024, "batch_deadline": 0.005},
    ):
        with DaemonThread(make_daemon(model_path, **config)) as (host, port):
            with ServingClient(host, port) as client:
                assert client.predict(request)["predictions"] == expected


def test_foms_panel_matches_direct_service(client, direct, circuits):
    panel = client.foms(circuits[:3])["foms"]
    reference = direct.score_established_foms(circuits[:3])
    assert set(panel) == set(reference)
    for label, values in reference.items():
        assert panel[label] == values.tolist()
    assert panel[PROPOSED_LABEL] == direct.predict(circuits[:3]).tolist()


def test_optimization_level_override_per_request(client, direct, circuits):
    served = client.predict(circuits[:3], optimization_level=0)
    assert served["optimization_level"] == 0
    assert served["predictions"] == (
        direct.predict(circuits[:3], optimization_level=0).tolist()
    )


def test_backpressure_returns_503(model_path, circuits):
    """A request heavier than the queue bound is shed with 503, and the
    daemon keeps serving afterwards."""
    with DaemonThread(
        make_daemon(model_path, queue_limit=2, batch_deadline=0.005)
    ) as (host, port):
        with ServingClient(host, port) as client:
            with pytest.raises(ServingError) as excinfo:
                client.predict(circuits[:5])
            assert excinfo.value.status == 503
            # Within bounds still works.
            assert len(client.predict(circuits[:2])["predictions"]) == 2
            assert client.stats()["queue"]["rejected_total"] == 1


def test_request_timeout_returns_504(model_path, circuits):
    """A request that can never dispatch before its timeout gets 504."""
    with DaemonThread(
        make_daemon(
            model_path,
            max_batch=1024,
            batch_deadline=30.0,     # deadline far beyond the timeout
            request_timeout=0.05,
        )
    ) as (host, port):
        with ServingClient(host, port) as client:
            with pytest.raises(ServingError) as excinfo:
                client.predict(circuits[:1])
            assert excinfo.value.status == 504


def test_shutdown_drains_queued_request(model_path, direct, circuits):
    """stop() while a request waits out the batch deadline: the response
    still arrives (bit-identical), then the port stops answering."""
    thread = DaemonThread(make_daemon(model_path, batch_deadline=0.25))
    host, port = thread.start()
    result = {}

    def drive():
        with ServingClient(host, port) as client:
            try:
                result["response"] = client.predict(circuits[:2])
            except Exception as exc:  # noqa: BLE001 - asserted below
                result["error"] = exc

    driver = threading.Thread(target=drive)
    driver.start()
    import time
    time.sleep(0.05)  # inside the 250ms deadline window
    thread.stop()
    driver.join(timeout=600)
    assert "error" not in result, result.get("error")
    assert result["response"]["predictions"] == (
        direct.predict(circuits[:2]).tolist()
    )
    # Fully down: a fresh request cannot connect.
    with pytest.raises((ConnectionError, OSError)):
        with ServingClient(host, port, timeout=2) as client:
            client.predict(circuits[:1])


def test_draining_daemon_rejects_new_work(model_path, circuits):
    thread = DaemonThread(make_daemon(model_path))
    host, port = thread.start()
    try:
        thread.daemon.begin_drain()
        with ServingClient(host, port) as client:
            status, payload = client.healthz()
            assert status == 503
            assert payload["status"] == "draining"
            with pytest.raises(ServingError) as excinfo:
                client.predict(circuits[:1])
            assert excinfo.value.status == 503
    finally:
        thread.stop()


def test_bad_requests_are_400s(client, circuits):
    qasm = to_qasm(circuits[0])
    cases = [
        ("POST", "/predict", None),                        # no body
        ("POST", "/predict", {"circuits": []}),            # empty list
        ("POST", "/predict", {"circuits": "not-a-list"}),
        ("POST", "/predict", {"circuits": [qasm], "optimization_level": 9}),
        ("POST", "/predict", {"circuits": [qasm], "model": "nope"}),
        ("POST", "/predict", {"circuits": ["qreg q[2]; bogus q[0];"]}),
    ]
    for method, path, payload in cases:
        status, body = client.request(method, path, payload)
        assert status == 400, (payload, body)
        assert "error" in body


def test_routing_errors(client):
    status, body = client.request("GET", "/nowhere")
    assert status == 404
    assert "/predict" in body["error"]
    status, _ = client.request("POST", "/healthz")
    assert status == 405
    status, _ = client.request("GET", "/predict")
    assert status == 405


def test_stats_shape_and_counters(client, circuits):
    client.predict(circuits[:2])
    stats = client.stats()
    assert stats["uptime_s"] > 0
    assert stats["draining"] is False
    assert stats["requests"]["/predict"] >= 1
    assert stats["responses"]["200"] >= 1
    assert stats["queue"]["depth"] == 0
    assert stats["batches"]["total"] >= 1
    assert stats["batches"]["requests_total"] >= 1
    assert stats["latency"]["samples"] >= 1
    assert stats["latency"]["request_p50_s"] > 0
    assert stats["latency"]["request_p99_s"] >= stats["latency"]["request_p50_s"]
    assert set(stats["latency"]["stages_s"]) == {
        "compile_s", "featurize_s", "predict_s",
    }


def test_empty_registry_is_rejected():
    with pytest.raises(ValueError, match="empty model registry"):
        ServingDaemon(ModelRegistry())


# ----------------------------------------------------------------------
# Chunked streaming (in-process mode)
# ----------------------------------------------------------------------


def test_stream_bit_identical_across_chunk_boundaries(
    client, direct, circuits
):
    """`"stream": true` delivers the same values as a plain /predict —
    chunk boundaries change delivery, never math (global positions in
    predict_stream keep the compile seeds identical)."""
    expected = direct.predict(circuits[:5]).tolist()
    stream = client.predict_stream(circuits[:5], chunk_size=2)
    assert stream.header["count"] == 5
    assert stream.header["optimization_level"] == LEVEL
    chunks = list(stream)
    assert [len(chunk) for chunk in chunks] == [2, 2, 1]
    assert [value for chunk in chunks for value in chunk] == expected
    assert stream.received == 5
    # A different chunking yields the same flat values.
    whole = list(client.predict_stream(circuits[:5]))
    assert [value for chunk in whole for value in chunk] == expected


def test_stream_then_plain_request_reuse_connection(
    client, direct, circuits
):
    """A drained stream leaves the keep-alive connection usable."""
    flat = [
        value
        for chunk in client.predict_stream(circuits[:3], chunk_size=1)
        for value in chunk
    ]
    assert flat == direct.predict(circuits[:3]).tolist()
    assert client.predict(circuits[:2])["predictions"] == (
        direct.predict(circuits[:2]).tolist()
    )


def test_stream_validation_rejections(client, circuits):
    qasm = to_qasm(circuits[0])
    cases = [
        ("/foms", {"circuits": [qasm], "stream": True}),      # predict-only
        ("/predict", {"circuits": [qasm], "stream": "yes"}),  # not a bool
        ("/predict", {"circuits": [qasm], "chunk_size": 2}),  # needs stream
        ("/predict", {"circuits": [qasm], "stream": True, "chunk_size": 0}),
        ("/predict", {"circuits": [qasm], "stream": True, "chunk_size": True}),
    ]
    for path, payload in cases:
        status, body = client.request("POST", path, payload)
        assert status == 400, (payload, body)
        assert "error" in body


def test_stream_rejected_while_draining(model_path, circuits):
    thread = DaemonThread(make_daemon(model_path))
    host, port = thread.start()
    try:
        thread.daemon.begin_drain()
        with ServingClient(host, port) as client:
            with pytest.raises(ServingError) as excinfo:
                client.predict_stream(circuits[:1])
            assert excinfo.value.status == 503
    finally:
        thread.stop()


def test_stats_expose_raw_latency_reservoir(client, circuits):
    """The reservoir a sharded parent merges: raw samples whose
    nearest-rank percentiles are exactly the reported ones."""
    from repro.serving.server import nearest_rank

    client.predict(circuits[:2])
    latency = client.stats()["latency"]
    reservoir = latency["reservoir"]
    assert len(reservoir) == latency["samples"] >= 1
    ordered = sorted(reservoir)
    assert latency["request_p50_s"] == nearest_rank(ordered, 0.50)
    assert latency["request_p99_s"] == nearest_rank(ordered, 0.99)
    assert latency["request_max_s"] == ordered[-1]


# ----------------------------------------------------------------------
# Latency percentiles (nearest-rank) on tiny samples
# ----------------------------------------------------------------------


def test_percentile_nearest_rank_small_samples(model_path):
    """Regression: int(f * n) indexed one rank high at exact multiples —
    with two samples, p50 returned the *larger* one."""
    import asyncio

    daemon = make_daemon(model_path)

    def latency_with(samples):
        async def run():
            daemon._latencies.clear()
            daemon._latencies.extend(samples)
            return daemon._stats()["latency"]
        return asyncio.run(run())

    empty = latency_with([])
    assert empty["request_p50_s"] is None
    assert empty["request_p99_s"] is None
    assert empty["request_max_s"] is None

    one = latency_with([0.5])
    assert one["request_p50_s"] == 0.5
    assert one["request_p99_s"] == 0.5

    two = latency_with([0.9, 0.1])
    assert two["request_p50_s"] == 0.1     # nearest-rank p50 of n=2
    assert two["request_p99_s"] == 0.9

    three = latency_with([0.3, 0.1, 0.2])
    assert three["request_p50_s"] == 0.2
    assert three["request_p99_s"] == 0.3
    assert three["request_max_s"] == 0.3


def test_render_stats_handles_null_percentiles(model_path):
    """`repro client stats` must render a fresh daemon's null percentiles
    as n/a, not crash formatting None."""
    import asyncio

    from repro.cli import _render_stats

    daemon = make_daemon(model_path)

    async def run():
        return daemon._stats()

    rendered = _render_stats(asyncio.run(run()))
    assert "p50=n/a p99=n/a max=n/a" in rendered
    assert "samples=0" in rendered
    rendered = _render_stats(
        {"latency": {"request_p50_s": 0.25, "samples": 1}}
    )
    assert "p50=250.0ms" in rendered


# ----------------------------------------------------------------------
# Hot estimator reload
# ----------------------------------------------------------------------


def _fresh_model(seed):
    rng = np.random.default_rng(seed)
    return HellingerEstimator(param_grid=TINY_GRID, seed=seed).fit(
        rng.uniform(size=(60, 30)), rng.uniform(size=60)
    )


@pytest.fixture()
def swap_path(tmp_path):
    path = tmp_path / "model.npz"
    save_model(_fresh_model(0), path)
    return path


def test_reload_hot_swaps_overwritten_model(swap_path, circuits):
    request = circuits[:3]
    with DaemonThread(make_daemon(swap_path)) as (host, port):
        with ServingClient(host, port) as client:
            # No change yet: reload is a no-op.
            report = client.reload()
            assert report["swapped"] == []
            before = client.predict(request)

            save_model(_fresh_model(9), swap_path)
            report = client.reload()
            (swap,) = report["swapped"]
            assert swap["model"] == "model"
            assert swap["version"] == 2
            assert swap["previous_fingerprint"] == before["fingerprint"]
            (serving,) = report["serving"]
            assert serving["version"] == "2"
            assert serving["fingerprint"] == swap["fingerprint"]

            after = client.predict(request)
            assert after["fingerprint"] == swap["fingerprint"]
            assert after["predictions"] != before["predictions"]
            # The superseded model stays pinnable by fingerprint and
            # still answers exactly as before the swap.
            pinned = client.predict(request, fingerprint=before["fingerprint"])
            assert pinned["predictions"] == before["predictions"]

            # healthz + stats surface the swap.
            _, health = client.healthz()
            assert health["reload"]["swaps"] == 1
            assert health["reload"]["checks"] >= 2
            stats = client.stats()
            assert stats["models"]["swaps"] == 1
            assert stats["models"]["registered"] == 2
            assert stats["models"]["serving"] == [
                f"model@{swap['fingerprint']}"
            ]

    # Bit-identity: the hot-swapped daemon answers exactly like a daemon
    # freshly booted from the overwritten file.
    with DaemonThread(make_daemon(swap_path)) as (host, port):
        with ServingClient(host, port) as client:
            restarted = client.predict(request)
    assert restarted["predictions"] == after["predictions"]
    assert restarted["fingerprint"] == after["fingerprint"]
    # ...and exactly like a direct FomService on the new file.
    direct_new = FomService(
        FomService.load(swap_path, DEVICE).estimator,
        DEVICE, optimization_level=LEVEL, seed=0,
    )
    assert after["predictions"] == direct_new.predict(request).tolist()


def test_reload_under_concurrent_traffic(swap_path, circuits):
    """Requests racing a hot swap never error; every response matches
    either the old or the new model bit-exactly."""
    request = circuits[:2]
    with DaemonThread(
        make_daemon(swap_path, batch_deadline=0.02)
    ) as (host, port):
        with ServingClient(host, port) as client:
            old = client.predict(request)
        save_model(_fresh_model(9), swap_path)

        stop = threading.Event()
        responses, errors = [], []

        def drive():
            with ServingClient(host, port) as worker:
                while not stop.is_set():
                    try:
                        responses.append(worker.predict(request))
                    except Exception as exc:  # noqa: BLE001 - asserted below
                        errors.append(exc)
                        return

        drivers = [threading.Thread(target=drive) for _ in range(3)]
        for thread in drivers:
            thread.start()
        with ServingClient(host, port) as client:
            report = client.reload()
            new = client.predict(request)
        stop.set()
        for thread in drivers:
            thread.join(timeout=600)

        assert not errors
        assert len(report["swapped"]) == 1
        assert new["predictions"] != old["predictions"]
        allowed = {
            old["fingerprint"]: old["predictions"],
            new["fingerprint"]: new["predictions"],
        }
        assert responses
        for response in responses:
            assert response["predictions"] == allowed[response["fingerprint"]]


def test_auto_reload_polls_for_staleness(swap_path, circuits):
    """reload_interval > 0: the daemon notices an overwritten file by
    itself — no /reload call — and swaps mid-serve."""
    import time

    with DaemonThread(
        make_daemon(swap_path, reload_interval=0.05)
    ) as (host, port):
        with ServingClient(host, port) as client:
            before = client.predict(circuits[:2])
            save_model(_fresh_model(9), swap_path)
            deadline = time.monotonic() + 30
            while time.monotonic() < deadline:
                _, health = client.healthz()
                if health["reload"]["swaps"] >= 1:
                    break
                time.sleep(0.02)
            assert health["reload"]["swaps"] == 1
            assert health["reload"]["interval_s"] == 0.05
            assert health["reload"]["checks"] >= 1
            after = client.predict(circuits[:2])
            assert after["fingerprint"] != before["fingerprint"]
            assert after["predictions"] != before["predictions"]


def test_reload_routing_and_draining(swap_path):
    with DaemonThread(make_daemon(swap_path)) as (host, port):
        with ServingClient(host, port) as client:
            status, _ = client.request("GET", "/reload")
            assert status == 405
    # Draining daemons refuse reloads.
    thread = DaemonThread(make_daemon(swap_path))
    host, port = thread.start()
    try:
        thread.daemon.begin_drain()
        with ServingClient(host, port) as client:
            with pytest.raises(ServingError) as excinfo:
                client.reload()
            assert excinfo.value.status == 503
    finally:
        thread.stop()
