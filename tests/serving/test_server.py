"""ServingDaemon end-to-end over real sockets (DaemonThread + ServingClient).

The contract under test is the ISSUE's acceptance bar: daemon responses
are **bit-identical** to direct :class:`FomService` calls, concurrency
and batch-trigger choice never change values, backpressure sheds load
with 503, and shutdown drains queued work without dropping or
duplicating a response.
"""

import threading

import numpy as np
import pytest

from repro.circuits.qasm import to_qasm
from repro.circuits.random import random_circuit
from repro.evaluation.persistence import save_model
from repro.predictor.estimator import HellingerEstimator
from repro.predictor.service import PROPOSED_LABEL, FomService
from repro.serving import (
    ModelRegistry,
    ServerConfig,
    ServingClient,
    ServingError,
    ServingDaemon,
)
from repro.serving.server import DaemonThread

TINY_GRID = {
    "n_estimators": [4],
    "max_depth": [3],
    "min_samples_leaf": [1],
    "min_samples_split": [2],
}
DEVICE = "q20a"
LEVEL = 2


@pytest.fixture(scope="module")
def model_path(tmp_path_factory):
    rng = np.random.default_rng(0)
    estimator = HellingerEstimator(param_grid=TINY_GRID, seed=0).fit(
        rng.uniform(size=(60, 30)), rng.uniform(size=60)
    )
    path = tmp_path_factory.mktemp("serving") / "model.npz"
    save_model(estimator, path)
    return path


@pytest.fixture(scope="module")
def direct(model_path):
    """The reference answer: a FomService on the same model + device."""
    return FomService(
        FomService.load(model_path, DEVICE).estimator,
        DEVICE, optimization_level=LEVEL, seed=0,
    )


@pytest.fixture(scope="module")
def circuits():
    return [
        random_circuit(3 + (seed % 3), 6, seed=seed, measure=True)
        for seed in range(9)
    ]


def make_daemon(model_path, **config_kwargs):
    registry = ModelRegistry()
    registry.add_model_file(
        model_path, DEVICE, optimization_level=LEVEL, seed=0
    )
    config_kwargs.setdefault("port", 0)
    return ServingDaemon(registry, ServerConfig(**config_kwargs))


@pytest.fixture(scope="module")
def daemon(model_path):
    """A long-lived daemon with a deadline long enough to coalesce."""
    thread = DaemonThread(make_daemon(model_path, batch_deadline=0.10))
    host, port = thread.start()
    yield thread.daemon
    thread.stop()


@pytest.fixture()
def client(daemon):
    with ServingClient(daemon.host, daemon.port) as connected:
        yield connected


def test_healthz_reports_models_and_knobs(daemon, client):
    status, payload = client.healthz()
    assert status == 200
    assert payload["status"] == "serving"
    (model,) = payload["models"]
    assert model["device"] == "Q20-A"
    assert payload["batch"]["max_batch"] == daemon.config.max_batch


def test_concurrent_clients_bit_identical_to_solo_calls(
    daemon, direct, circuits
):
    """N concurrent clients, unequal request sizes, one coalesced batch —
    every response equals the 1-client (direct FomService) answer."""
    requests = [circuits[0:3], circuits[3:5], circuits[5:9], circuits[1:2]]
    responses = [None] * len(requests)
    errors = []

    def drive(index):
        with ServingClient(daemon.host, daemon.port) as worker:
            try:
                responses[index] = worker.predict(requests[index])
            except Exception as exc:  # noqa: BLE001 - asserted below
                errors.append((index, exc))

    threads = [
        threading.Thread(target=drive, args=(index,))
        for index in range(len(requests))
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=600)
    assert not errors
    for index, request in enumerate(requests):
        assert responses[index]["predictions"] == (
            direct.predict(request).tolist()
        )
        assert responses[index]["count"] == len(request)


def test_size_and_deadline_triggers_answer_identically(
    model_path, direct, circuits
):
    """max_batch=1 (pure size trigger) and a long deadline (pure deadline
    trigger) give byte-equal responses for the same request."""
    request = circuits[:4]
    expected = direct.predict(request).tolist()
    for config in (
        {"max_batch": 1, "batch_deadline": 30.0},
        {"max_batch": 1024, "batch_deadline": 0.005},
    ):
        with DaemonThread(make_daemon(model_path, **config)) as (host, port):
            with ServingClient(host, port) as client:
                assert client.predict(request)["predictions"] == expected


def test_foms_panel_matches_direct_service(client, direct, circuits):
    panel = client.foms(circuits[:3])["foms"]
    reference = direct.score_established_foms(circuits[:3])
    assert set(panel) == set(reference)
    for label, values in reference.items():
        assert panel[label] == values.tolist()
    assert panel[PROPOSED_LABEL] == direct.predict(circuits[:3]).tolist()


def test_optimization_level_override_per_request(client, direct, circuits):
    served = client.predict(circuits[:3], optimization_level=0)
    assert served["optimization_level"] == 0
    assert served["predictions"] == (
        direct.predict(circuits[:3], optimization_level=0).tolist()
    )


def test_backpressure_returns_503(model_path, circuits):
    """A request heavier than the queue bound is shed with 503, and the
    daemon keeps serving afterwards."""
    with DaemonThread(
        make_daemon(model_path, queue_limit=2, batch_deadline=0.005)
    ) as (host, port):
        with ServingClient(host, port) as client:
            with pytest.raises(ServingError) as excinfo:
                client.predict(circuits[:5])
            assert excinfo.value.status == 503
            # Within bounds still works.
            assert len(client.predict(circuits[:2])["predictions"]) == 2
            assert client.stats()["queue"]["rejected_total"] == 1


def test_request_timeout_returns_504(model_path, circuits):
    """A request that can never dispatch before its timeout gets 504."""
    with DaemonThread(
        make_daemon(
            model_path,
            max_batch=1024,
            batch_deadline=30.0,     # deadline far beyond the timeout
            request_timeout=0.05,
        )
    ) as (host, port):
        with ServingClient(host, port) as client:
            with pytest.raises(ServingError) as excinfo:
                client.predict(circuits[:1])
            assert excinfo.value.status == 504


def test_shutdown_drains_queued_request(model_path, direct, circuits):
    """stop() while a request waits out the batch deadline: the response
    still arrives (bit-identical), then the port stops answering."""
    thread = DaemonThread(make_daemon(model_path, batch_deadline=0.25))
    host, port = thread.start()
    result = {}

    def drive():
        with ServingClient(host, port) as client:
            try:
                result["response"] = client.predict(circuits[:2])
            except Exception as exc:  # noqa: BLE001 - asserted below
                result["error"] = exc

    driver = threading.Thread(target=drive)
    driver.start()
    import time
    time.sleep(0.05)  # inside the 250ms deadline window
    thread.stop()
    driver.join(timeout=600)
    assert "error" not in result, result.get("error")
    assert result["response"]["predictions"] == (
        direct.predict(circuits[:2]).tolist()
    )
    # Fully down: a fresh request cannot connect.
    with pytest.raises((ConnectionError, OSError)):
        with ServingClient(host, port, timeout=2) as client:
            client.predict(circuits[:1])


def test_draining_daemon_rejects_new_work(model_path, circuits):
    thread = DaemonThread(make_daemon(model_path))
    host, port = thread.start()
    try:
        thread.daemon.begin_drain()
        with ServingClient(host, port) as client:
            status, payload = client.healthz()
            assert status == 503
            assert payload["status"] == "draining"
            with pytest.raises(ServingError) as excinfo:
                client.predict(circuits[:1])
            assert excinfo.value.status == 503
    finally:
        thread.stop()


def test_bad_requests_are_400s(client, circuits):
    qasm = to_qasm(circuits[0])
    cases = [
        ("POST", "/predict", None),                        # no body
        ("POST", "/predict", {"circuits": []}),            # empty list
        ("POST", "/predict", {"circuits": "not-a-list"}),
        ("POST", "/predict", {"circuits": [qasm], "optimization_level": 9}),
        ("POST", "/predict", {"circuits": [qasm], "model": "nope"}),
        ("POST", "/predict", {"circuits": ["qreg q[2]; bogus q[0];"]}),
    ]
    for method, path, payload in cases:
        status, body = client.request(method, path, payload)
        assert status == 400, (payload, body)
        assert "error" in body


def test_routing_errors(client):
    status, body = client.request("GET", "/nowhere")
    assert status == 404
    assert "/predict" in body["error"]
    status, _ = client.request("POST", "/healthz")
    assert status == 405
    status, _ = client.request("GET", "/predict")
    assert status == 405


def test_stats_shape_and_counters(client, circuits):
    client.predict(circuits[:2])
    stats = client.stats()
    assert stats["uptime_s"] > 0
    assert stats["draining"] is False
    assert stats["requests"]["/predict"] >= 1
    assert stats["responses"]["200"] >= 1
    assert stats["queue"]["depth"] == 0
    assert stats["batches"]["total"] >= 1
    assert stats["batches"]["requests_total"] >= 1
    assert stats["latency"]["samples"] >= 1
    assert stats["latency"]["request_p50_s"] > 0
    assert stats["latency"]["request_p99_s"] >= stats["latency"]["request_p50_s"]
    assert set(stats["latency"]["stages_s"]) == {
        "compile_s", "featurize_s", "predict_s",
    }


def test_empty_registry_is_rejected():
    with pytest.raises(ValueError, match="empty model registry"):
        ServingDaemon(ModelRegistry())
