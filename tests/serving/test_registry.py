"""ModelRegistry: loading, fingerprinting, and lookup semantics."""

import hashlib

import numpy as np
import pytest

from repro.evaluation.artifacts import ArtifactStore
from repro.evaluation.persistence import save_model
from repro.predictor.estimator import HellingerEstimator
from repro.serving.registry import ModelRegistry

TINY_GRID = {
    "n_estimators": [4],
    "max_depth": [3],
    "min_samples_leaf": [1],
    "min_samples_split": [2],
}


@pytest.fixture(scope="module")
def estimator():
    rng = np.random.default_rng(0)
    return HellingerEstimator(param_grid=TINY_GRID, seed=0).fit(
        rng.uniform(size=(60, 30)), rng.uniform(size=60)
    )


@pytest.fixture(scope="module")
def model_path(estimator, tmp_path_factory):
    path = tmp_path_factory.mktemp("registry") / "model.npz"
    save_model(estimator, path)
    return path


def test_add_model_file_fingerprint_is_content_hash(model_path):
    registry = ModelRegistry()
    entry = registry.add_model_file(model_path, "q20a", seed=0)
    expected = hashlib.sha256(model_path.read_bytes()).hexdigest()[:12]
    assert entry.name == "model"
    assert entry.fingerprint == expected
    assert entry.key == ("model", expected)
    assert len(registry) == 1
    # Two registries booted from the same file agree on the address.
    other = ModelRegistry().add_model_file(model_path, "q20a", name="m2")
    assert other.fingerprint == expected


def test_add_model_file_rejects_missing_and_duplicate(model_path, tmp_path):
    registry = ModelRegistry()
    with pytest.raises(ValueError, match="no model file"):
        registry.add_model_file(tmp_path / "nope.npz", "q20a")
    registry.add_model_file(model_path, "q20a")
    with pytest.raises(ValueError, match="already registered"):
        registry.add_model_file(model_path, "q20a")
    # A different name is a different address for the same bytes.
    registry.add_model_file(model_path, "q20a", name="alias")
    assert len(registry) == 2


def test_add_store_loads_matching_artifacts(estimator, tmp_path):
    store = ArtifactStore(tmp_path)
    store.put("estimator", estimator, "Q20-A", "fp1")
    store.put("estimator", estimator, "Q20-B", "fp2")
    registry = ModelRegistry()
    loaded = registry.add_store(store, "q20a", optimization_level=2, seed=0)
    assert sorted(entry.key for entry in loaded) == [
        ("Q20-A", "fp1"), ("Q20-B", "fp2"),
    ]
    # Filters narrow the load; a path works as the store argument.
    only_b = ModelRegistry().add_store(str(tmp_path), "q20a", name="Q20-B")
    assert [entry.key for entry in only_b] == [("Q20-B", "fp2")]
    only_fp1 = ModelRegistry().add_store(store, "q20a", fingerprint="fp1")
    assert [entry.key for entry in only_fp1] == [("Q20-A", "fp1")]


def test_add_store_zero_matches_is_an_error(estimator, tmp_path):
    store = ArtifactStore(tmp_path)
    with pytest.raises(ValueError, match="no estimator artifact"):
        ModelRegistry().add_store(store, "q20a")
    store.put("estimator", estimator, "Q20-A", "fp1")
    with pytest.raises(ValueError, match="no estimator artifact"):
        ModelRegistry().add_store(store, "q20a", name="Q99")


def test_resolve_filters_and_ambiguity(model_path):
    registry = ModelRegistry()
    first = registry.add_model_file(model_path, "q20a", name="alpha")
    second = registry.add_model_file(model_path, "q20a", name="beta")
    assert registry.resolve("alpha") is first
    assert registry.resolve("beta", second.fingerprint) is second
    with pytest.raises(ValueError, match="ambiguous"):
        registry.resolve()  # both share the fingerprint
    with pytest.raises(ValueError, match="no registered model"):
        registry.resolve("gamma")
    # A single-model registry resolves with no filters at all.
    solo = ModelRegistry()
    entry = solo.add_model_file(model_path, "q20a")
    assert solo.resolve() is entry


def test_describe_is_json_ready(model_path):
    registry = ModelRegistry()
    entry = registry.add_model_file(
        model_path, "q20a", optimization_level=3, seed=0
    )
    description = entry.describe()
    assert description["name"] == "model"
    assert description["fingerprint"] == entry.fingerprint
    assert description["device"] == "Q20-A"
    assert description["optimization_level"] == "3"
    assert all(isinstance(value, str) for value in description.values())
