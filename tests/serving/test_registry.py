"""ModelRegistry: loading, fingerprinting, and lookup semantics."""

import hashlib

import numpy as np
import pytest

from repro.evaluation.artifacts import ArtifactStore
from repro.evaluation.persistence import save_model
from repro.predictor.estimator import HellingerEstimator
from repro.serving.registry import ModelRegistry

TINY_GRID = {
    "n_estimators": [4],
    "max_depth": [3],
    "min_samples_leaf": [1],
    "min_samples_split": [2],
}


@pytest.fixture(scope="module")
def estimator():
    rng = np.random.default_rng(0)
    return HellingerEstimator(param_grid=TINY_GRID, seed=0).fit(
        rng.uniform(size=(60, 30)), rng.uniform(size=60)
    )


@pytest.fixture(scope="module")
def model_path(estimator, tmp_path_factory):
    path = tmp_path_factory.mktemp("registry") / "model.npz"
    save_model(estimator, path)
    return path


def test_add_model_file_fingerprint_is_content_hash(model_path):
    registry = ModelRegistry()
    entry = registry.add_model_file(model_path, "q20a", seed=0)
    expected = hashlib.sha256(model_path.read_bytes()).hexdigest()[:12]
    assert entry.name == "model"
    assert entry.fingerprint == expected
    assert entry.key == ("model", expected)
    assert len(registry) == 1
    # Two registries booted from the same file agree on the address.
    other = ModelRegistry().add_model_file(model_path, "q20a", name="m2")
    assert other.fingerprint == expected


def test_add_model_file_rejects_missing_and_duplicate(model_path, tmp_path):
    registry = ModelRegistry()
    with pytest.raises(ValueError, match="no model file"):
        registry.add_model_file(tmp_path / "nope.npz", "q20a")
    registry.add_model_file(model_path, "q20a")
    with pytest.raises(ValueError, match="already registered"):
        registry.add_model_file(model_path, "q20a")
    # A different name is a different address for the same bytes.
    registry.add_model_file(model_path, "q20a", name="alias")
    assert len(registry) == 2


def test_add_store_loads_matching_artifacts(estimator, tmp_path):
    store = ArtifactStore(tmp_path)
    store.put("estimator", estimator, "Q20-A", "fp1")
    store.put("estimator", estimator, "Q20-B", "fp2")
    registry = ModelRegistry()
    loaded = registry.add_store(store, "q20a", optimization_level=2, seed=0)
    assert sorted(entry.key for entry in loaded) == [
        ("Q20-A", "fp1"), ("Q20-B", "fp2"),
    ]
    # Filters narrow the load; a path works as the store argument.
    only_b = ModelRegistry().add_store(str(tmp_path), "q20a", name="Q20-B")
    assert [entry.key for entry in only_b] == [("Q20-B", "fp2")]
    only_fp1 = ModelRegistry().add_store(store, "q20a", fingerprint="fp1")
    assert [entry.key for entry in only_fp1] == [("Q20-A", "fp1")]


def test_add_store_zero_matches_is_an_error(estimator, tmp_path):
    store = ArtifactStore(tmp_path)
    with pytest.raises(ValueError, match="no estimator artifact"):
        ModelRegistry().add_store(store, "q20a")
    store.put("estimator", estimator, "Q20-A", "fp1")
    with pytest.raises(ValueError, match="no estimator artifact"):
        ModelRegistry().add_store(store, "q20a", name="Q99")


def test_resolve_filters_and_ambiguity(model_path):
    registry = ModelRegistry()
    first = registry.add_model_file(model_path, "q20a", name="alpha")
    second = registry.add_model_file(model_path, "q20a", name="beta")
    assert registry.resolve("alpha") is first
    assert registry.resolve("beta", second.fingerprint) is second
    with pytest.raises(ValueError, match="ambiguous"):
        registry.resolve()  # both share the fingerprint
    with pytest.raises(ValueError, match="no registered model"):
        registry.resolve("gamma")
    # A single-model registry resolves with no filters at all.
    solo = ModelRegistry()
    entry = solo.add_model_file(model_path, "q20a")
    assert solo.resolve() is entry


def test_describe_is_json_ready(model_path):
    registry = ModelRegistry()
    entry = registry.add_model_file(
        model_path, "q20a", optimization_level=3, seed=0
    )
    description = entry.describe()
    assert description["name"] == "model"
    assert description["fingerprint"] == entry.fingerprint
    assert description["device"] == "Q20-A"
    assert description["optimization_level"] == "3"
    assert all(isinstance(value, str) for value in description.values())


# ----------------------------------------------------------------------
# Versioned refresh / hot reload
# ----------------------------------------------------------------------


def _fit_estimator(seed):
    rng = np.random.default_rng(seed)
    return HellingerEstimator(param_grid=TINY_GRID, seed=seed).fit(
        rng.uniform(size=(60, 30)), rng.uniform(size=60)
    )


def test_refresh_detects_overwritten_file(estimator, tmp_path):
    """Regression: the fingerprint used to be computed once at
    registration, so an overwritten .npz kept serving the old model
    under the old address forever."""
    path = tmp_path / "model.npz"
    save_model(estimator, path)
    registry = ModelRegistry()
    first = registry.add_model_file(path, "q20a", seed=0)
    assert not registry.maybe_stale()
    assert registry.refresh() == []

    save_model(_fit_estimator(9), path)
    assert registry.maybe_stale()
    swapped = registry.refresh()
    assert len(swapped) == 1
    superseded, successor = swapped[0]
    assert superseded.key == first.key
    assert successor.name == "model"
    assert successor.version == 2
    expected = hashlib.sha256(path.read_bytes()).hexdigest()[:12]
    assert successor.fingerprint == expected
    assert registry.swaps == 1 and registry.refreshes == 2
    # Unpinned lookups land on the new version...
    assert registry.resolve("model").fingerprint == expected
    # ...while the superseded fingerprint stays pinnable (in-flight
    # batches queued under the old key must still resolve).
    pinned = registry.resolve("model", first.fingerprint)
    assert pinned.version == 1
    assert pinned.service is first.service
    assert not registry.maybe_stale()


def test_refresh_touch_without_content_change(estimator, tmp_path):
    import os

    path = tmp_path / "model.npz"
    save_model(estimator, path)
    registry = ModelRegistry()
    entry = registry.add_model_file(path, "q20a", seed=0)
    os.utime(path, ns=(1, 1))
    assert registry.maybe_stale()          # stat guard fires...
    assert registry.refresh() == []        # ...but the rehash says no-op
    assert registry.swaps == 0
    assert not registry.maybe_stale()      # the new stat was remembered
    assert registry.resolve("model").service is entry.service


def test_refresh_force_without_change_is_quiet(estimator, tmp_path):
    path = tmp_path / "model.npz"
    save_model(estimator, path)
    registry = ModelRegistry()
    registry.add_model_file(path, "q20a", seed=0)
    assert registry.refresh(force=True) == []
    assert registry.swaps == 0


def test_refresh_reverted_file_promotes_old_entry(estimator, tmp_path):
    path = tmp_path / "model.npz"
    save_model(estimator, path)
    original_bytes = path.read_bytes()
    registry = ModelRegistry()
    first = registry.add_model_file(path, "q20a", seed=0)

    save_model(_fit_estimator(9), path)
    registry.refresh()
    path.write_bytes(original_bytes)
    swapped = registry.refresh()
    assert len(swapped) == 1
    _, successor = swapped[0]
    # Same content as v1: the already-booted service is promoted, not
    # re-deserialized.
    assert successor.fingerprint == first.fingerprint
    assert successor.version == 3
    assert successor.service is first.service
    assert registry.resolve("model").version == 3


def test_refresh_survives_deleted_file(estimator, tmp_path):
    path = tmp_path / "model.npz"
    save_model(estimator, path)
    registry = ModelRegistry()
    entry = registry.add_model_file(path, "q20a", seed=0)
    path.unlink()
    assert not registry.maybe_stale()
    assert registry.refresh() == []
    assert registry.resolve("model").service is entry.service


def test_store_refresh_picks_up_new_checkpoints(estimator, tmp_path):
    store = ArtifactStore(tmp_path)
    store.put("estimator", estimator, "Q20-A", "fp1")
    registry = ModelRegistry()
    registry.add_store(store, "q20a", seed=0)
    assert not registry.maybe_stale()

    store.put("estimator", _fit_estimator(9), "Q20-A", "fp2")
    assert registry.maybe_stale()
    swapped = registry.refresh()
    assert [(s.key if s else None, n.key) for s, n in swapped] == [
        (("Q20-A", "fp1"), ("Q20-A", "fp2")),
    ]
    assert registry.resolve("Q20-A").fingerprint == "fp2"
    assert registry.resolve("Q20-A").version == 2
    # The superseded checkpoint stays pinnable.
    assert registry.resolve("Q20-A", "fp1").version == 1

    # A checkpoint under a brand-new name arrives with no predecessor.
    store.put("estimator", _fit_estimator(10), "Q20-C", "fp3")
    swapped = registry.refresh()
    assert [(s, n.key) for s, n in swapped] == [(None, ("Q20-C", "fp3"))]


def test_store_refresh_respects_add_time_filters(estimator, tmp_path):
    store = ArtifactStore(tmp_path)
    store.put("estimator", estimator, "Q20-A", "fp1")
    registry = ModelRegistry()
    registry.add_store(store, "q20a", name="Q20-A", seed=0)
    store.put("estimator", _fit_estimator(9), "Other", "fp9")
    assert not registry.maybe_stale()
    assert registry.refresh() == []


def test_same_version_ties_stay_ambiguous(estimator, tmp_path):
    """Versioning must not paper over genuinely ambiguous references."""
    path_a = tmp_path / "model.npz"
    save_model(estimator, path_a)
    path_b = tmp_path / "other.npz"
    save_model(_fit_estimator(9), path_b)
    registry = ModelRegistry()
    registry.add_model_file(path_a, "q20a", seed=0)
    registry.add_model_file(path_b, "q20a", name="model", seed=0)
    with pytest.raises(ValueError, match="ambiguous model reference"):
        registry.resolve("model")


def test_serving_entries_tracks_versions(estimator, tmp_path):
    path = tmp_path / "model.npz"
    save_model(estimator, path)
    registry = ModelRegistry()
    registry.add_model_file(path, "q20a", seed=0)
    save_model(_fit_estimator(9), path)
    registry.refresh()
    assert len(registry) == 2              # both versions registered
    serving = registry.serving_entries()
    assert [entry.version for entry in serving] == [2]
    assert serving[0].describe()["version"] == "2"
