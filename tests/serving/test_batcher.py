"""DynamicBatcher semantics: triggers, lanes, backpressure, drain.

These tests drive the batcher with synthetic runners (no FomService), so
they pin the *concurrency* contract in isolation: which requests share a
batch, when batches fire, and that every future resolves exactly once.
"""

import asyncio

import pytest

from repro.serving.batcher import BacklogFull, BatcherClosed, DynamicBatcher


def run(coroutine):
    return asyncio.run(coroutine)


def echo_runner(batches=None):
    """A runner returning (key, payload) per request, logging batches."""

    def runner(key, payloads, timings):
        if batches is not None:
            batches.append((key, list(payloads)))
        return [(key, payload) for payload in payloads]

    return runner


def test_size_trigger_coalesces_exactly_max_batch():
    batches = []

    async def main():
        batcher = DynamicBatcher(
            echo_runner(batches), max_batch=4, max_delay=30.0
        )
        await batcher.start()
        results = await asyncio.gather(
            *(batcher.submit("lane", index) for index in range(4))
        )
        await batcher.close()
        return results

    results = run(main())
    # One batch of four — the 30s deadline never fired, size did.
    assert [payloads for _, payloads in batches] == [[0, 1, 2, 3]]
    assert results == [("lane", index) for index in range(4)]


def test_deadline_trigger_flushes_partial_batch():
    batches = []

    async def main():
        batcher = DynamicBatcher(
            echo_runner(batches), max_batch=100, max_delay=0.02
        )
        await batcher.start()
        results = await asyncio.gather(
            *(batcher.submit("lane", index) for index in range(3))
        )
        await batcher.close()
        return results

    results = run(main())
    # Far below max_batch, so only the deadline could have dispatched.
    assert [payloads for _, payloads in batches] == [[0, 1, 2]]
    assert results == [("lane", index) for index in range(3)]


def test_trigger_choice_does_not_change_results():
    """Size- and deadline-triggered runs answer identically (only batch
    composition differs) — the daemon's latency/throughput knob must
    never be a correctness knob."""

    async def main(max_batch, max_delay):
        batcher = DynamicBatcher(
            echo_runner(), max_batch=max_batch, max_delay=max_delay
        )
        await batcher.start()
        results = await asyncio.gather(
            *(batcher.submit("lane", index) for index in range(6))
        )
        await batcher.close()
        return results

    by_size = run(main(max_batch=2, max_delay=30.0))
    by_deadline = run(main(max_batch=100, max_delay=0.01))
    assert by_size == by_deadline


def test_lanes_never_share_a_batch():
    batches = []

    async def main():
        batcher = DynamicBatcher(
            echo_runner(batches), max_batch=100, max_delay=0.01
        )
        await batcher.start()
        await asyncio.gather(
            batcher.submit("a", 1),
            batcher.submit("b", 2),
            batcher.submit("a", 3),
        )
        await batcher.close()

    run(main())
    assert sorted(batches) == [("a", [1, 3]), ("b", [2])]


def test_weight_counts_circuits_not_requests():
    batches = []

    async def main():
        batcher = DynamicBatcher(
            echo_runner(batches), max_batch=4, max_delay=30.0
        )
        await batcher.start()
        await asyncio.gather(
            batcher.submit("lane", "two", weight=2),
            batcher.submit("lane", "one", weight=1),
            batcher.submit("lane", "uno", weight=1),
        )
        await batcher.close()

    run(main())
    assert [payloads for _, payloads in batches] == [["two", "one", "uno"]]


def test_oversized_request_dispatches_alone():
    batches = []

    async def main():
        batcher = DynamicBatcher(
            echo_runner(batches), max_batch=2, max_delay=30.0
        )
        await batcher.start()
        result = await batcher.submit("lane", "big", weight=5)
        await batcher.close()
        return result

    assert run(main()) == ("lane", "big")
    assert [payloads for _, payloads in batches] == [["big"]]


def test_backlog_full_rejects_without_touching_queued_work():
    async def main():
        batcher = DynamicBatcher(
            echo_runner(), max_batch=100, max_delay=30.0, max_queue=2
        )
        await batcher.start()
        queued = [
            asyncio.create_task(batcher.submit("lane", index))
            for index in range(2)
        ]
        await asyncio.sleep(0)  # let both enqueue
        with pytest.raises(BacklogFull):
            await batcher.submit("lane", 99)
        await batcher.close()  # drains the two queued requests
        return await asyncio.gather(*queued), batcher.snapshot()

    results, stats = run(main())
    assert results == [("lane", 0), ("lane", 1)]
    assert stats.rejected_total == 1
    assert stats.requests_total == 2


def test_submit_after_close_raises_closed():
    async def main():
        batcher = DynamicBatcher(echo_runner())
        await batcher.start()
        await batcher.close()
        with pytest.raises(BatcherClosed):
            await batcher.submit("lane", 1)
        return batcher.snapshot()

    assert run(main()).rejected_total == 1


def test_drain_answers_every_queued_request_exactly_once():
    """close() waives the deadline: everything queued runs, nothing is
    dropped or duplicated, across multiple lanes."""
    batches = []

    async def main():
        batcher = DynamicBatcher(
            echo_runner(batches), max_batch=100, max_delay=30.0
        )
        await batcher.start()
        tasks = [
            asyncio.create_task(batcher.submit(index % 3, index))
            for index in range(9)
        ]
        await asyncio.sleep(0)  # everything enqueues, deadline far away
        await batcher.close()
        return await asyncio.gather(*tasks)

    results = run(main())
    assert results == [(index % 3, index) for index in range(9)]
    served = [payload for _, payloads in batches for payload in payloads]
    assert sorted(served) == list(range(9))  # exactly once each


def test_runner_exception_propagates_to_every_request():
    def broken(key, payloads, timings):
        raise RuntimeError("pipeline exploded")

    async def main():
        batcher = DynamicBatcher(broken, max_batch=2, max_delay=30.0)
        await batcher.start()
        results = await asyncio.gather(
            batcher.submit("lane", 1),
            batcher.submit("lane", 2),
            return_exceptions=True,
        )
        await batcher.close()
        return results

    results = run(main())
    assert all(isinstance(result, RuntimeError) for result in results)


def test_wrong_result_count_is_an_error_not_a_misdelivery():
    def short(key, payloads, timings):
        return payloads[:-1]

    async def main():
        batcher = DynamicBatcher(short, max_batch=2, max_delay=30.0)
        await batcher.start()
        results = await asyncio.gather(
            batcher.submit("lane", 1),
            batcher.submit("lane", 2),
            return_exceptions=True,
        )
        await batcher.close()
        return results

    results = run(main())
    assert all(isinstance(result, RuntimeError) for result in results)
    assert all("2 requests" in str(result) for result in results)


def test_cancelled_awaiter_does_not_break_the_batch():
    """A per-request timeout cancels one awaiter; everyone else in the
    batch still gets their answer."""

    async def main():
        batcher = DynamicBatcher(echo_runner(), max_batch=100, max_delay=0.05)
        await batcher.start()
        doomed = asyncio.create_task(
            asyncio.wait_for(batcher.submit("lane", "slow"), timeout=0.001)
        )
        survivor = asyncio.create_task(batcher.submit("lane", "ok"))
        results = await asyncio.gather(doomed, survivor, return_exceptions=True)
        await batcher.close()
        return results

    doomed_result, survivor_result = run(main())
    assert isinstance(doomed_result, asyncio.TimeoutError)
    assert survivor_result == ("lane", "ok")


def test_snapshot_counters_and_stage_timings():
    def timed(key, payloads, timings):
        timings["stage_s"] = timings.get("stage_s", 0.0) + 0.5
        return list(payloads)

    async def main():
        batcher = DynamicBatcher(timed, max_batch=2, max_delay=30.0)
        await batcher.start()
        await asyncio.gather(*(batcher.submit("lane", i) for i in range(4)))
        await batcher.close()
        return batcher.snapshot()

    stats = run(main())
    assert stats.batches_total == 2
    assert stats.requests_total == 4
    assert stats.batch_size_histogram == {2: 2}
    assert stats.queue_depth == 0
    assert stats.in_flight == 0
    assert stats.queue_wait_s_total >= 0.0
    assert stats.stage_s == {"stage_s": 1.0}


def test_constructor_and_submit_validation():
    with pytest.raises(ValueError, match="max_batch"):
        DynamicBatcher(echo_runner(), max_batch=0)
    with pytest.raises(ValueError, match="max_delay"):
        DynamicBatcher(echo_runner(), max_delay=-1.0)
    with pytest.raises(ValueError, match="max_queue"):
        DynamicBatcher(echo_runner(), max_queue=0)

    async def main():
        batcher = DynamicBatcher(echo_runner())
        with pytest.raises(ValueError, match="weight"):
            await batcher.submit("lane", 1, weight=0)
        await batcher.close()

    run(main())
