"""Unit tests for the ASCII circuit drawer."""

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.text_drawer import draw_circuit


def test_draws_one_row_per_qubit():
    qc = QuantumCircuit(3)
    qc.h(0)
    text = draw_circuit(qc)
    lines = text.splitlines()
    assert len(lines) == 3
    assert lines[0].startswith("q0:")
    assert lines[2].startswith("q2:")


def test_gate_labels_present():
    qc = QuantumCircuit(2)
    qc.h(0).cx(0, 1).rz(0.5, 1)
    text = draw_circuit(qc)
    assert "h" in text
    assert "cx" in text
    assert "rz(0.5)" in text


def test_multi_qubit_gate_role_markers():
    qc = QuantumCircuit(2)
    qc.cx(0, 1)
    text = draw_circuit(qc)
    assert "cx[0]" in text  # control
    assert "cx[1]" in text  # target


def test_measure_shows_clbit():
    qc = QuantumCircuit(1, 1)
    qc.measure(0, 0)
    text = draw_circuit(qc)
    assert "M->c0" in text


def test_parallel_gates_share_column():
    qc = QuantumCircuit(2)
    qc.h(0).h(1)
    lines = draw_circuit(qc).splitlines()
    assert len(lines[0]) == len(lines[1])


def test_truncates_very_deep_circuits():
    qc = QuantumCircuit(1)
    for _ in range(500):
        qc.h(0)
    text = draw_circuit(qc)
    assert "truncated" in text


def test_empty_circuit():
    qc = QuantumCircuit(2)
    text = draw_circuit(qc)
    assert text.splitlines()[0].startswith("q0:")


def test_circuit_draw_method_delegates():
    qc = QuantumCircuit(1)
    qc.x(0)
    assert qc.draw() == draw_circuit(qc)
