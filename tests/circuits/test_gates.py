"""Unit tests for the gate registry and gate matrices."""

import math

import numpy as np
import pytest

from repro.circuits.gates import (
    GATES,
    NON_UNITARY,
    gate_matrix,
    get_spec,
    is_unitary_gate,
)

UNITARY_GATES = sorted(set(GATES) - NON_UNITARY)


def _random_params(spec, rng):
    return tuple(rng.uniform(0.1, 2 * math.pi - 0.1) for _ in range(spec.num_params))


@pytest.mark.parametrize("name", UNITARY_GATES)
def test_matrix_is_unitary(name):
    rng = np.random.default_rng(hash(name) % (2**32))
    spec = GATES[name]
    params = _random_params(spec, rng)
    matrix = gate_matrix(name, params)
    dim = 1 << spec.num_qubits
    assert matrix.shape == (dim, dim)
    assert np.allclose(matrix @ matrix.conj().T, np.eye(dim), atol=1e-10)


@pytest.mark.parametrize("name", UNITARY_GATES)
def test_inverse_composes_to_identity(name):
    rng = np.random.default_rng(hash(name) % (2**31))
    spec = GATES[name]
    params = _random_params(spec, rng)
    inv_name, inv_params = spec.inverse(params)
    matrix = gate_matrix(name, params)
    inv_matrix = gate_matrix(inv_name, inv_params)
    dim = matrix.shape[0]
    assert np.allclose(inv_matrix @ matrix, np.eye(dim), atol=1e-10)


@pytest.mark.parametrize("name", [n for n in UNITARY_GATES if GATES[n].self_inverse])
def test_self_inverse_flag_is_truthful(name):
    matrix = gate_matrix(name)
    dim = matrix.shape[0]
    assert np.allclose(matrix @ matrix, np.eye(dim), atol=1e-10)


def test_known_matrices():
    assert np.allclose(gate_matrix("x"), [[0, 1], [1, 0]])
    assert np.allclose(gate_matrix("z"), [[1, 0], [0, -1]])
    h = gate_matrix("h")
    assert np.allclose(h, np.array([[1, 1], [1, -1]]) / math.sqrt(2))
    cx = gate_matrix("cx")
    expected = np.array(
        [[1, 0, 0, 0], [0, 0, 0, 1], [0, 0, 1, 0], [0, 1, 0, 0]]
    )
    assert np.allclose(cx, expected)


def test_s_is_sqrt_z_and_t_is_sqrt_s():
    s = gate_matrix("s")
    t = gate_matrix("t")
    assert np.allclose(s @ s, gate_matrix("z"))
    assert np.allclose(t @ t, s)


def test_sx_is_sqrt_x():
    sx = gate_matrix("sx")
    assert np.allclose(sx @ sx, gate_matrix("x"), atol=1e-12)


def test_rotation_composition():
    a, b = 0.7, 1.1
    assert np.allclose(
        gate_matrix("rx", (a,)) @ gate_matrix("rx", (b,)),
        gate_matrix("rx", (a + b,)),
        atol=1e-12,
    )
    assert np.allclose(
        gate_matrix("rz", (a,)) @ gate_matrix("rz", (b,)),
        gate_matrix("rz", (a + b,)),
        atol=1e-12,
    )


def test_prx_reduces_to_rx_and_ry():
    theta = 0.9
    assert np.allclose(
        gate_matrix("prx", (theta, 0.0)), gate_matrix("rx", (theta,)), atol=1e-12
    )
    assert np.allclose(
        gate_matrix("prx", (theta, math.pi / 2)),
        gate_matrix("ry", (theta,)),
        atol=1e-12,
    )


def test_prx_phase_conjugation_rule():
    """PRX(theta, phi) == RZ(phi) RX(theta) RZ(-phi)."""
    theta, phi = 1.3, 0.4
    rz = gate_matrix("rz", (phi,))
    rx = gate_matrix("rx", (theta,))
    rz_inv = gate_matrix("rz", (-phi,))
    assert np.allclose(
        gate_matrix("prx", (theta, phi)), rz @ rx @ rz_inv, atol=1e-12
    )


def test_u_gate_euler_form():
    theta, phi, lam = 0.5, 1.2, -0.8
    u = gate_matrix("u", (theta, phi, lam))
    expected = (
        np.exp(1j * (phi + lam) / 2)
        * gate_matrix("rz", (phi,))
        @ gate_matrix("ry", (theta,))
        @ gate_matrix("rz", (lam,))
    )
    assert np.allclose(u, expected, atol=1e-12)


def test_cp_matches_controlled_phase():
    lam = 0.9
    cp = gate_matrix("cp", (lam,))
    expected = np.eye(4, dtype=complex)
    expected[3, 3] = np.exp(1j * lam)
    assert np.allclose(cp, expected)


def test_rzz_is_diagonal():
    theta = 0.6
    rzz = gate_matrix("rzz", (theta,))
    assert np.allclose(rzz, np.diag(np.diag(rzz)))
    assert np.isclose(rzz[0, 0], np.exp(-1j * theta / 2))
    assert np.isclose(rzz[3, 3], np.exp(-1j * theta / 2))
    assert np.isclose(rzz[1, 1], np.exp(1j * theta / 2))


def test_ccx_truth_table():
    ccx = gate_matrix("ccx")
    for i in range(8):
        controls_set = (i & 1) and (i & 2)
        expected = i ^ 4 if controls_set else i
        column = ccx[:, i]
        assert np.isclose(abs(column[expected]), 1.0)


def test_cswap_truth_table():
    cswap = gate_matrix("cswap")
    # control = bit 0; targets = bits 1, 2.
    for i in range(8):
        if i & 1:
            b1, b2 = (i >> 1) & 1, (i >> 2) & 1
            expected = (i & 1) | (b2 << 1) | (b1 << 2)
        else:
            expected = i
        assert np.isclose(abs(cswap[expected, i]), 1.0)


def test_get_spec_error_message():
    with pytest.raises(KeyError, match="unknown gate"):
        get_spec("nonexistent")


def test_matrix_wrong_param_count():
    with pytest.raises(ValueError, match="parameters"):
        GATES["rx"].matrix(())


def test_non_unitary_has_no_matrix():
    with pytest.raises(ValueError, match="no matrix"):
        GATES["measure"].matrix(())
    assert not is_unitary_gate("measure")
    assert not is_unitary_gate("barrier")
    assert is_unitary_gate("cx")
    assert not is_unitary_gate("not_a_gate")


def test_gate_qubit_counts():
    assert GATES["h"].num_qubits == 1
    assert GATES["cx"].num_qubits == 2
    assert GATES["ccx"].num_qubits == 3
    assert GATES["u"].num_params == 3
    assert GATES["prx"].num_params == 2
