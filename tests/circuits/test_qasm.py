"""Unit tests for OpenQASM 2.0 import/export."""

import math

import numpy as np
import pytest

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.qasm import from_qasm, qasm_roundtrip_equal, to_qasm
from repro.circuits.random import random_circuit
from repro.simulation.statevector import circuit_unitary


def test_export_basic():
    qc = QuantumCircuit(2, 2)
    qc.h(0).cx(0, 1).measure(0, 0).measure(1, 1)
    text = to_qasm(qc)
    assert "OPENQASM 2.0;" in text
    assert "qreg q[2];" in text
    assert "creg c[2];" in text
    assert "h q[0];" in text
    assert "cx q[0],q[1];" in text
    assert "measure q[0] -> c[0];" in text


def test_export_pi_fractions():
    qc = QuantumCircuit(1)
    qc.rx(math.pi / 2, 0)
    text = to_qasm(qc)
    assert "pi/2" in text


def test_import_basic():
    text = """
    OPENQASM 2.0;
    include "qelib1.inc";
    qreg q[3];
    creg c[3];
    h q[0];
    cx q[0],q[1];
    rz(pi/4) q[2];
    barrier q[0],q[1],q[2];
    measure q[0] -> c[0];
    """
    qc = from_qasm(text)
    assert qc.num_qubits == 3
    assert qc.num_clbits == 3
    names = [ins.name for ins in qc]
    assert names == ["h", "cx", "rz", "barrier", "measure"]
    assert math.isclose(qc.instructions[2].params[0], math.pi / 4)


def test_import_comments_ignored():
    text = "OPENQASM 2.0;\nqreg q[1];\nh q[0]; // a comment\n// full line\n"
    qc = from_qasm(text)
    assert qc.size() == 1


def test_import_u1_u2_u3_aliases():
    text = (
        "OPENQASM 2.0;\nqreg q[1];\n"
        "u1(0.5) q[0];\nu2(0.1,0.2) q[0];\nu3(0.1,0.2,0.3) q[0];\n"
    )
    qc = from_qasm(text)
    assert [ins.name for ins in qc] == ["p", "u", "u"]
    assert math.isclose(qc.instructions[1].params[0], math.pi / 2)


def test_import_rejects_unknown_gate():
    with pytest.raises(ValueError, match="unsupported QASM gate"):
        from_qasm("OPENQASM 2.0;\nqreg q[1];\nfrobnicate q[0];\n")


def test_import_rejects_bad_angle():
    with pytest.raises(ValueError, match="angle"):
        from_qasm("OPENQASM 2.0;\nqreg q[1];\nrx(__import__) q[0];\n")


@pytest.mark.parametrize("seed", range(4))
def test_roundtrip_random_circuits(seed):
    qc = random_circuit(4, 8, seed=seed, measure=True)
    assert qasm_roundtrip_equal(qc)


@pytest.mark.parametrize("seed", range(3))
def test_roundtrip_preserves_unitary(seed):
    qc = random_circuit(3, 6, seed=seed)
    parsed = from_qasm(to_qasm(qc))
    assert np.allclose(
        circuit_unitary(parsed), circuit_unitary(qc), atol=1e-8
    )


def test_angle_format_roundtrip_precision():
    qc = QuantumCircuit(1)
    qc.rz(0.12345678901234, 0)
    parsed = from_qasm(to_qasm(qc))
    assert math.isclose(
        parsed.instructions[0].params[0], 0.12345678901234, rel_tol=1e-12
    )
