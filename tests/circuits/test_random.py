"""Unit tests for random circuit generation."""

import pytest

from repro.circuits.random import random_circuit, random_clifford_circuit


def test_deterministic_given_seed():
    a = random_circuit(4, 10, seed=42)
    b = random_circuit(4, 10, seed=42)
    assert a.instructions == b.instructions


def test_different_seeds_differ():
    a = random_circuit(4, 10, seed=1)
    b = random_circuit(4, 10, seed=2)
    assert a.instructions != b.instructions


def test_depth_bound():
    qc = random_circuit(5, 12, seed=0)
    assert qc.depth() <= 12
    assert qc.depth() >= 1


def test_measure_flag():
    qc = random_circuit(3, 4, seed=0, measure=True)
    assert len(qc.measured_qubits()) == 3
    qc2 = random_circuit(3, 4, seed=0, measure=False)
    assert len(qc2.measured_qubits()) == 0


def test_two_qubit_prob_zero_yields_no_2q_gates():
    qc = random_circuit(4, 10, seed=3, two_qubit_prob=0.0)
    assert qc.num_nonlocal_gates() == 0


def test_two_qubit_prob_one_maximizes_2q_gates():
    qc = random_circuit(4, 10, seed=3, two_qubit_prob=1.0)
    # 4 qubits -> 2 two-qubit gates per layer possible.
    assert qc.num_nonlocal_gates() == 20


def test_clifford_restriction():
    qc = random_clifford_circuit(4, 20, seed=1)
    clifford = {"h", "s", "sdg", "x", "y", "z", "sx", "cx", "cz", "swap"}
    assert all(ins.name in clifford for ins in qc)
    assert all(not ins.params for ins in qc)


def test_invalid_width_rejected():
    with pytest.raises(ValueError):
        random_circuit(0, 5)


def test_single_qubit_circuit():
    qc = random_circuit(1, 6, seed=0)
    assert qc.num_qubits == 1
    assert qc.size() == 6
