"""Unit tests for the circuit dependency DAG."""


from repro.circuits.circuit import QuantumCircuit
from repro.circuits.dag import (
    CircuitDag,
    circuit_layers,
    interaction_pairs,
    parallel_groups,
)


def _sample_circuit():
    qc = QuantumCircuit(3, 3)
    qc.h(0)          # 0
    qc.cx(0, 1)      # 1
    qc.h(2)          # 2
    qc.cx(1, 2)      # 3
    qc.measure(0, 0)  # 4
    return qc


def test_dependencies():
    dag = CircuitDag(_sample_circuit())
    assert dag.nodes[0].predecessors == set()
    assert dag.nodes[1].predecessors == {0}
    assert dag.nodes[2].predecessors == set()
    assert dag.nodes[3].predecessors == {1, 2}
    assert dag.nodes[4].predecessors == {1}
    assert dag.nodes[0].successors == {1}
    assert dag.nodes[1].successors == {3, 4}


def test_front_layer_progression():
    dag = CircuitDag(_sample_circuit())
    front = dag.front_layer(set())
    assert {n.index for n in front} == {0, 2}
    front = dag.front_layer({0, 2})
    assert {n.index for n in front} == {1}
    front = dag.front_layer({0, 1, 2})
    assert {n.index for n in front} == {3, 4}


def test_layers_match_depth():
    qc = _sample_circuit()
    layers = circuit_layers(qc)
    assert len(layers) == qc.depth(include_measure=False)
    # First layer holds the two independent Hadamards.
    assert {ins.name for ins in layers[0]} == {"h"}
    assert len(layers[0]) == 2


def test_layers_barrier_orders_but_occupies_no_layer():
    qc = QuantumCircuit(2)
    qc.h(0)
    qc.barrier()
    qc.h(1)
    layers = circuit_layers(qc)
    # Barrier forces h(1) after h(0), producing two layers.
    assert len(layers) == 2
    assert layers[0][0].qubits == (0,)
    assert layers[1][0].qubits == (1,)


def test_asap_levels():
    dag = CircuitDag(_sample_circuit())
    levels = dag.asap_levels()
    assert levels[0] == 0
    assert levels[1] == 1
    assert levels[2] == 0
    assert levels[3] == 2
    assert levels[4] == 2


def test_critical_path():
    dag = CircuitDag(_sample_circuit())
    path = dag.critical_path()
    # Longest chain: h(0) -> cx(0,1) -> cx(1,2) (or the measure branch).
    assert len(path) == 3
    assert path[0] == 0
    assert path[1] == 1
    assert path[2] in (3, 4)


def test_critical_path_empty_circuit():
    assert CircuitDag(QuantumCircuit(2)).critical_path() == []


def test_qubit_dependencies():
    dag = CircuitDag(_sample_circuit())
    per_qubit = dag.qubit_dependencies()
    assert per_qubit[0] == [0, 1, 4]
    assert per_qubit[1] == [1, 3]
    assert per_qubit[2] == [2, 3]


def test_parallel_groups_includes_measures():
    qc = QuantumCircuit(2, 2)
    qc.h(0).h(1)
    qc.measure(0, 0).measure(1, 1)
    groups = parallel_groups(qc)
    assert len(groups) == 2
    assert all(ins.name == "measure" for ins in groups[1])


def test_interaction_pairs():
    qc = QuantumCircuit(4)
    qc.cx(0, 1).cz(2, 3).cx(1, 0)
    assert interaction_pairs(qc) == {(0, 1), (2, 3)}


def test_measure_clbit_ordering_dependency():
    qc = QuantumCircuit(2, 1)
    qc.measure(0, 0)
    qc.measure(1, 0)  # same clbit -> must be ordered
    dag = CircuitDag(qc)
    assert dag.nodes[1].predecessors == {0}
