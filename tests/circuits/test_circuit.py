"""Unit tests for the QuantumCircuit builder and structural operations."""

import math

import numpy as np
import pytest

from repro.circuits.circuit import Instruction, QuantumCircuit, circuit_from_instructions
from repro.simulation.statevector import circuit_unitary, simulate_statevector
from repro.compiler.unitary_math import matrices_equal_up_to_phase


def test_builder_chains():
    qc = QuantumCircuit(2)
    returned = qc.h(0).cx(0, 1).rz(0.5, 1)
    assert returned is qc
    assert [ins.name for ins in qc] == ["h", "cx", "rz"]


def test_append_validates_qubit_range():
    qc = QuantumCircuit(2)
    with pytest.raises(ValueError, match="out of range"):
        qc.h(2)
    with pytest.raises(ValueError, match="out of range"):
        qc.cx(0, 5)


def test_append_validates_arity():
    qc = QuantumCircuit(3)
    with pytest.raises(ValueError, match="expects 2 qubits"):
        qc.append("cx", (0,))
    with pytest.raises(ValueError, match="expects 1 params"):
        qc.append("rx", (0,), ())


def test_append_rejects_duplicate_qubits():
    qc = QuantumCircuit(3)
    with pytest.raises(ValueError, match="duplicate"):
        qc.append("cx", (1, 1))


def test_measure_validates_clbits():
    qc = QuantumCircuit(2, 1)
    qc.measure(0, 0)
    with pytest.raises(ValueError, match="clbit"):
        qc.measure(1, 1)


def test_measure_all_grows_clbits():
    qc = QuantumCircuit(3)
    qc.measure_all()
    assert qc.num_clbits == 3
    assert len(qc.measured_qubits()) == 3


def test_depth_parallel_gates():
    qc = QuantumCircuit(4)
    qc.h(0).h(1).h(2).h(3)
    assert qc.depth() == 1
    qc.cx(0, 1).cx(2, 3)
    assert qc.depth() == 2
    qc.cx(1, 2)
    assert qc.depth() == 3


def test_depth_ignores_barriers():
    qc = QuantumCircuit(2)
    qc.h(0)
    qc.barrier()
    qc.h(1)
    assert qc.depth() == 1


def test_depth_excluding_measure():
    qc = QuantumCircuit(1, 1)
    qc.h(0).measure(0, 0)
    assert qc.depth() == 2
    assert qc.depth(include_measure=False) == 1


def test_size_and_count_ops():
    qc = QuantumCircuit(2, 2)
    qc.h(0).cx(0, 1).barrier().measure(0, 0).measure(1, 1)
    assert qc.size() == 2
    assert qc.size(include_directives=True) == 5
    counts = qc.count_ops()
    assert counts == {"h": 1, "cx": 1, "barrier": 1, "measure": 2}


def test_num_nonlocal_gates():
    qc = QuantumCircuit(3)
    qc.h(0).cx(0, 1).ccx(0, 1, 2).rz(0.3, 2)
    assert qc.num_nonlocal_gates() == 2


def test_active_qubits():
    qc = QuantumCircuit(5)
    qc.h(1).cx(1, 3)
    assert qc.active_qubits() == (1, 3)


def test_two_qubit_interactions_histogram():
    qc = QuantumCircuit(3)
    qc.cx(0, 1).cx(1, 0).cz(1, 2)
    pairs = qc.two_qubit_interactions()
    assert pairs == {(0, 1): 2, (1, 2): 1}


def test_copy_is_independent():
    qc = QuantumCircuit(2)
    qc.h(0)
    clone = qc.copy()
    clone.x(1)
    assert qc.size() == 1
    assert clone.size() == 2


def test_inverse_reverses_and_inverts():
    qc = QuantumCircuit(2)
    qc.h(0).s(0).cx(0, 1)
    inv = qc.inverse()
    assert [ins.name for ins in inv] == ["cx", "sdg", "h"]
    product = circuit_unitary(inv) @ circuit_unitary(qc)
    assert np.allclose(product, np.eye(4), atol=1e-10)


def test_inverse_rejects_measure():
    qc = QuantumCircuit(1, 1)
    qc.measure(0, 0)
    with pytest.raises(ValueError, match="invert"):
        qc.inverse()


def test_compose_with_mapping():
    inner = QuantumCircuit(2)
    inner.cx(0, 1)
    outer = QuantumCircuit(4)
    outer.compose(inner, qubits=[2, 3])
    assert outer.instructions[0].qubits == (2, 3)


def test_compose_accumulates_global_phase():
    a = QuantumCircuit(1, global_phase=0.3)
    b = QuantumCircuit(1, global_phase=0.4)
    a.compose(b)
    assert math.isclose(a.global_phase, 0.7)


def test_power():
    qc = QuantumCircuit(1)
    qc.rx(0.3, 0)
    cubed = qc.power(3)
    expected = QuantumCircuit(1)
    expected.rx(0.9, 0)
    assert matrices_equal_up_to_phase(
        circuit_unitary(cubed), circuit_unitary(expected)
    )
    inv = qc.power(-1)
    assert np.allclose(
        circuit_unitary(inv) @ circuit_unitary(qc), np.eye(2), atol=1e-10
    )


def test_remap_qubits():
    qc = QuantumCircuit(2)
    qc.cx(0, 1)
    remapped = qc.remap_qubits({0: 3, 1: 1}, num_qubits=4)
    assert remapped.instructions[0].qubits == (3, 1)
    assert remapped.num_qubits == 4


def test_without_directives():
    qc = QuantumCircuit(2, 2)
    qc.h(0).barrier().measure(0, 0)
    stripped = qc.without_directives()
    assert [ins.name for ins in stripped] == ["h"]


def test_mcx_small_cases_match_primitives():
    qc1 = QuantumCircuit(2)
    qc1.mcx([0], 1)
    assert qc1.instructions[0].name == "cx"
    qc2 = QuantumCircuit(3)
    qc2.mcx([0, 1], 2)
    assert qc2.instructions[0].name == "ccx"


@pytest.mark.parametrize("num_controls", [3, 4])
def test_mcx_matches_exact_matrix(num_controls):
    n = num_controls + 1
    qc = QuantumCircuit(n)
    qc.mcx(list(range(num_controls)), num_controls)
    unitary = circuit_unitary(qc)
    expected = np.eye(1 << n, dtype=complex)
    a = (1 << num_controls) - 1
    b = a | (1 << num_controls)
    expected[a, a] = expected[b, b] = 0
    expected[a, b] = expected[b, a] = 1
    assert np.allclose(unitary, expected, atol=1e-9)


def test_mcx_rejects_target_in_controls():
    qc = QuantumCircuit(3)
    with pytest.raises(ValueError, match="target"):
        qc.mcx([0, 1], 1)


@pytest.mark.parametrize("num_controls", [2, 3])
def test_mcp_matches_exact_matrix(num_controls):
    lam = 0.77
    n = num_controls + 1
    qc = QuantumCircuit(n)
    qc.mcp(lam, list(range(num_controls)), num_controls)
    unitary = circuit_unitary(qc)
    expected = np.eye(1 << n, dtype=complex)
    expected[-1, -1] = np.exp(1j * lam)
    assert np.allclose(unitary, expected, atol=1e-9)


def test_mcz_flips_all_ones_phase():
    qc = QuantumCircuit(4)
    qc.mcz([0, 1, 2], 3)
    unitary = circuit_unitary(qc)
    expected = np.eye(16, dtype=complex)
    expected[15, 15] = -1
    assert np.allclose(unitary, expected, atol=1e-9)


def test_barrier_default_spans_all_qubits():
    qc = QuantumCircuit(3)
    qc.barrier()
    assert qc.instructions[0].qubits == (0, 1, 2)


def test_instruction_remap():
    ins = Instruction("cx", (0, 1))
    remapped = ins.remap({0: 5, 1: 2})
    assert remapped.qubits == (5, 2)


def test_circuit_from_instructions_validates():
    instructions = [Instruction("h", (0,)), Instruction("cx", (0, 1))]
    qc = circuit_from_instructions(2, instructions)
    assert qc.size() == 2
    with pytest.raises(ValueError):
        circuit_from_instructions(1, [Instruction("cx", (0, 1))])


def test_negative_sizes_rejected():
    with pytest.raises(ValueError):
        QuantumCircuit(-1)
    with pytest.raises(ValueError):
        QuantumCircuit(1, -2)


def test_global_phase_affects_statevector():
    qc = QuantumCircuit(1, global_phase=math.pi)
    state = simulate_statevector(qc)
    assert np.allclose(state.data, [-1.0, 0.0])


def test_to_arrays_round_trip():
    """The flat-array encoding (the process-pool wire format) must carry
    every structural detail of a circuit."""
    qc = QuantumCircuit(3, 3, name="wire", global_phase=0.25)
    qc.metadata["origin"] = "test"
    qc.h(0).cx(0, 1).rz(0.5, 2)
    qc.measure(0, 0)
    qc.measure(2, 2)
    rebuilt = QuantumCircuit.from_arrays(qc.to_arrays())
    assert rebuilt.num_qubits == qc.num_qubits
    assert rebuilt.num_clbits == qc.num_clbits
    assert rebuilt.name == qc.name
    assert rebuilt.global_phase == qc.global_phase
    assert rebuilt.metadata == qc.metadata
    assert rebuilt.instructions == qc.instructions


def test_pickle_round_trip_preserves_instruction_hashing():
    """Unpickled instructions must be usable as dict/set keys alongside
    the originals (the precomputed hash cannot ship across processes
    because string hashing is salted per interpreter)."""
    import pickle

    from repro.circuits.random import random_circuit

    qc = random_circuit(5, 20, seed=3, measure=True)
    clone = pickle.loads(pickle.dumps(qc))
    assert clone.instructions == qc.instructions
    assert clone.global_phase == qc.global_phase
    assert clone.name == qc.name
    for original, copy in zip(qc.instructions, clone.instructions):
        assert hash(original) == hash(copy)
    # Duplicates collapse to the same key: lookup must hit for every
    # unpickled instruction and point at an equal original.
    lookup = {ins: i for i, ins in enumerate(qc.instructions)}
    for ins in clone.instructions:
        assert qc.instructions[lookup[ins]] == ins
