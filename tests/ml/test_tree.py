"""Unit tests for the CART regression tree."""

import numpy as np
import pytest

from repro.ml.tree import DecisionTreeRegressor


def _step_data(n=200, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.uniform(-1, 1, size=(n, 3))
    y = np.where(X[:, 0] > 0.0, 1.0, -1.0)
    return X, y


def test_learns_step_function():
    X, y = _step_data()
    tree = DecisionTreeRegressor(max_depth=2).fit(X, y)
    predictions = tree.predict(X)
    assert np.mean((predictions - y) ** 2) < 0.01


def test_perfect_fit_unbounded_depth():
    rng = np.random.default_rng(1)
    X = rng.uniform(0, 1, size=(50, 2))
    y = rng.uniform(0, 1, size=50)
    tree = DecisionTreeRegressor().fit(X, y)
    assert np.allclose(tree.predict(X), y, atol=1e-12)


def test_max_depth_limits_tree():
    X, y = _step_data()
    tree = DecisionTreeRegressor(max_depth=1).fit(X, y)
    assert tree.depth() <= 1
    assert tree.num_leaves() <= 2


def test_min_samples_leaf_respected():
    X, y = _step_data(100)
    tree = DecisionTreeRegressor(min_samples_leaf=30).fit(X, y)
    # With 100 samples and 30-minimum leaves, at most 3 leaves exist.
    assert tree.num_leaves() <= 3


def test_min_samples_split():
    X, y = _step_data(10)
    tree = DecisionTreeRegressor(min_samples_split=100).fit(X, y)
    assert tree.num_leaves() == 1
    assert tree.predict(X[:2])[0] == pytest.approx(y.mean())


def test_constant_target_single_leaf():
    X = np.arange(20, dtype=float).reshape(-1, 1)
    y = np.full(20, 3.5)
    tree = DecisionTreeRegressor().fit(X, y)
    assert tree.num_leaves() == 1
    assert tree.predict([[100.0]])[0] == pytest.approx(3.5)


def test_feature_importances_identify_signal():
    rng = np.random.default_rng(2)
    X = rng.uniform(-1, 1, size=(300, 4))
    y = 2.0 * X[:, 2] + 0.01 * rng.standard_normal(300)
    tree = DecisionTreeRegressor(max_depth=4).fit(X, y)
    assert tree.feature_importances_ is not None
    assert np.argmax(tree.feature_importances_) == 2
    assert tree.feature_importances_.sum() == pytest.approx(1.0)


def test_max_features_subsampling_changes_splits():
    X, y = _step_data(300, seed=3)
    full = DecisionTreeRegressor(random_state=0).fit(X, y)
    sub = DecisionTreeRegressor(max_features=1, random_state=0).fit(X, y)
    assert full.depth() <= sub.depth()


def test_max_features_string_options():
    X, y = _step_data(50)
    for option in ("sqrt", "log2", 0.5, 2):
        tree = DecisionTreeRegressor(max_features=option, random_state=1)
        tree.fit(X, y)
        assert tree.predict(X).shape == (50,)


def test_predict_before_fit_raises():
    with pytest.raises(RuntimeError, match="not fitted"):
        DecisionTreeRegressor().predict([[1.0]])


def test_fit_validates_shapes():
    tree = DecisionTreeRegressor()
    with pytest.raises(ValueError):
        tree.fit(np.zeros((3, 2)), np.zeros(5))
    with pytest.raises(ValueError):
        tree.fit(np.zeros(3), np.zeros(3))
    with pytest.raises(ValueError):
        tree.fit(np.zeros((0, 2)), np.zeros(0))


def test_clone_and_params_roundtrip():
    tree = DecisionTreeRegressor(max_depth=5, min_samples_leaf=3)
    clone = tree.clone()
    assert clone.get_params() == tree.get_params()
    clone.set_params(max_depth=2)
    assert tree.max_depth == 5
    with pytest.raises(ValueError, match="unknown parameter"):
        clone.set_params(bogus=1)


def test_duplicate_feature_values_handled():
    X = np.array([[1.0], [1.0], [1.0], [2.0], [2.0]])
    y = np.array([0.0, 0.0, 0.0, 1.0, 1.0])
    tree = DecisionTreeRegressor().fit(X, y)
    assert tree.predict([[1.0]])[0] == pytest.approx(0.0)
    assert tree.predict([[2.0]])[0] == pytest.approx(1.0)


def test_deterministic_given_random_state():
    rng = np.random.default_rng(5)
    X = rng.uniform(size=(100, 5))
    y = rng.uniform(size=100)
    a = DecisionTreeRegressor(max_features="sqrt", random_state=7).fit(X, y)
    b = DecisionTreeRegressor(max_features="sqrt", random_state=7).fit(X, y)
    assert np.array_equal(a.predict(X), b.predict(X))
