"""Unit tests for train/test splitting, k-fold CV, and grid search."""

import numpy as np
import pytest

from repro.ml.linear import LinearRegression
from repro.ml.model_selection import (
    KFold,
    cross_val_score,
    grid_search,
    train_test_split,
)
from repro.ml.tree import DecisionTreeRegressor


def _data(n=100, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.uniform(-1, 1, size=(n, 3))
    y = X[:, 0] + 0.1 * rng.standard_normal(n)
    return X, y


def test_split_sizes():
    X, y = _data(100)
    Xtr, Xte, ytr, yte = train_test_split(X, y, test_size=0.2, seed=1)
    assert len(Xte) == 20
    assert len(Xtr) == 80
    assert len(ytr) == 80


def test_split_partitions_data():
    X, y = _data(50)
    Xtr, Xte, _, _ = train_test_split(X, y, test_size=0.3, seed=2)
    combined = np.vstack([Xtr, Xte])
    assert combined.shape == X.shape
    # Every original row appears exactly once.
    original = {tuple(row) for row in X}
    recombined = {tuple(row) for row in combined}
    assert original == recombined


def test_split_deterministic():
    X, y = _data(40)
    a = train_test_split(X, y, seed=3)
    b = train_test_split(X, y, seed=3)
    assert np.array_equal(a[1], b[1])


def test_split_validates():
    X, y = _data(10)
    with pytest.raises(ValueError):
        train_test_split(X, y, test_size=0.0)
    with pytest.raises(ValueError):
        train_test_split(X, y[:5])


def test_kfold_covers_all_indices():
    kf = KFold(n_splits=4, seed=0)
    seen = []
    for train_idx, test_idx in kf.split(21):
        assert len(np.intersect1d(train_idx, test_idx)) == 0
        seen.extend(test_idx.tolist())
    assert sorted(seen) == list(range(21))


def test_kfold_validates():
    with pytest.raises(ValueError):
        KFold(n_splits=1)
    with pytest.raises(ValueError):
        list(KFold(n_splits=5).split(3))


def test_cross_val_score_shape_and_quality():
    X, y = _data(120)
    scores = cross_val_score(LinearRegression(), X, y, n_splits=3, seed=1)
    assert scores.shape == (3,)
    assert np.all(scores > 0.9)


def test_grid_search_finds_better_depth():
    rng = np.random.default_rng(4)
    X = rng.uniform(-1, 1, size=(200, 2))
    y = np.sign(X[:, 0]) * np.sign(X[:, 1])  # needs depth >= 2
    result = grid_search(
        DecisionTreeRegressor(),
        {"max_depth": [1, 4]},
        X, y, n_splits=3, seed=0,
    )
    assert result.best_params == {"max_depth": 4}
    assert result.best_score > 0.8
    assert len(result.results) == 2


def test_grid_search_empty_grid_rejected():
    X, y = _data(30)
    with pytest.raises(ValueError):
        grid_search(DecisionTreeRegressor(), {"max_depth": []}, X, y)


def test_grid_search_multiple_parameters():
    X, y = _data(90)
    result = grid_search(
        DecisionTreeRegressor(),
        {"max_depth": [2, 3], "min_samples_leaf": [1, 5]},
        X, y, n_splits=3, seed=2,
    )
    assert len(result.results) == 4
    assert set(result.best_params) == {"max_depth", "min_samples_leaf"}


def test_cross_val_score_worker_invariant():
    X, y = _data(90)
    seq = cross_val_score(LinearRegression(), X, y, n_splits=3, max_workers=1)
    par = cross_val_score(LinearRegression(), X, y, n_splits=3, max_workers=3)
    assert np.array_equal(seq, par)


def test_grid_search_worker_invariant_forest_path():
    from repro.ml.forest import RandomForestRegressor

    rng = np.random.default_rng(8)
    X = rng.uniform(size=(80, 6))
    y = X[:, 0] - X[:, 3] + 0.1 * rng.standard_normal(80)
    grid = {"n_estimators": [4, 8], "max_depth": [None, 3]}
    base = RandomForestRegressor(random_state=0)
    seq = grid_search(base, grid, X, y, n_splits=3, seed=1, max_workers=1)
    par = grid_search(base, grid, X, y, n_splits=3, seed=1, max_workers=4)
    assert seq.best_params == par.best_params
    assert seq.best_score == par.best_score
    assert seq.results == par.results


def test_grid_search_worker_invariant_generic_path():
    X, y = _data(90)
    grid = {"max_depth": [2, 4], "min_samples_leaf": [1, 3]}
    seq = grid_search(DecisionTreeRegressor(random_state=0), X=X, y=y,
                      param_grid=grid, n_splits=3, seed=3, max_workers=1)
    par = grid_search(DecisionTreeRegressor(random_state=0), X=X, y=y,
                      param_grid=grid, n_splits=3, seed=3, max_workers=4)
    assert seq.results == par.results
