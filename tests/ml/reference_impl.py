"""Frozen copy of the pre-vectorization CART tree / random forest.

This module preserves, verbatim, the recursive pure-Python implementation
that shipped before the vectorized training layer (PR 3), so the golden
tests in ``test_golden_reference.py`` can assert bit-identical predictions
and feature importances between the two.  Do not "fix" or modernise this
file: its value is that it never changes.
"""
from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np


@dataclass
class _Node:
    """A tree node; leaves carry ``value``, internal nodes a split."""

    value: float
    feature: int = -1
    threshold: float = 0.0
    left: Optional["_Node"] = None
    right: Optional["_Node"] = None

    @property
    def is_leaf(self) -> bool:
        return self.left is None


class DecisionTreeRegressor:
    """Regression tree with variance-reduction splits.

    Args:
        max_depth: maximum tree depth (``None`` = unbounded).
        min_samples_split: minimum samples required to attempt a split.
        min_samples_leaf: minimum samples in each child.
        max_features: number of features examined per split: ``None`` (all),
            an int, a float fraction, or ``"sqrt"``/``"log2"``.
        random_state: seed for feature subsampling.
    """

    def __init__(
        self,
        max_depth: Optional[int] = None,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features=None,
        random_state: Optional[int] = None,
    ):
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.random_state = random_state
        self._root: Optional[_Node] = None
        self._num_features = 0
        self.feature_importances_: Optional[np.ndarray] = None

    # ------------------------------------------------------------------

    def get_params(self) -> dict:
        """Hyper-parameters as a dict (grid-search support)."""
        return {
            "max_depth": self.max_depth,
            "min_samples_split": self.min_samples_split,
            "min_samples_leaf": self.min_samples_leaf,
            "max_features": self.max_features,
            "random_state": self.random_state,
        }

    def set_params(self, **params) -> "DecisionTreeRegressor":
        for key, value in params.items():
            if not hasattr(self, key):
                raise ValueError(f"unknown parameter '{key}'")
            setattr(self, key, value)
        return self

    def clone(self) -> "DecisionTreeRegressor":
        return DecisionTreeRegressor(**self.get_params())

    # ------------------------------------------------------------------

    def fit(self, X: np.ndarray, y: np.ndarray) -> "DecisionTreeRegressor":
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=float)
        if X.ndim != 2:
            raise ValueError("X must be 2-D")
        if len(X) != len(y):
            raise ValueError("X and y length mismatch")
        if len(X) == 0:
            raise ValueError("cannot fit on an empty dataset")
        self._num_features = X.shape[1]
        self._importance = np.zeros(self._num_features)
        rng = np.random.default_rng(self.random_state)
        self._root = self._build(X, y, depth=0, rng=rng)
        total = self._importance.sum()
        self.feature_importances_ = (
            self._importance / total if total > 0 else self._importance.copy()
        )
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        if self._root is None:
            raise RuntimeError("tree is not fitted")
        X = np.asarray(X, dtype=float)
        return np.array([self._predict_one(row) for row in X])

    def _predict_one(self, row: np.ndarray) -> float:
        node = self._root
        while not node.is_leaf:
            node = node.left if row[node.feature] <= node.threshold else node.right
        return node.value

    def depth(self) -> int:
        """Actual depth of the fitted tree."""

        def walk(node: Optional[_Node]) -> int:
            if node is None or node.is_leaf:
                return 0
            return 1 + max(walk(node.left), walk(node.right))

        return walk(self._root)

    def num_leaves(self) -> int:
        def walk(node: Optional[_Node]) -> int:
            if node is None:
                return 0
            if node.is_leaf:
                return 1
            return walk(node.left) + walk(node.right)

        return walk(self._root)

    # ------------------------------------------------------------------

    def _n_split_features(self) -> int:
        m = self._num_features
        mf = self.max_features
        if mf is None:
            return m
        if mf == "sqrt":
            return max(1, int(math.sqrt(m)))
        if mf == "log2":
            return max(1, int(math.log2(m)))
        if isinstance(mf, float):
            return max(1, int(mf * m))
        return max(1, min(int(mf), m))

    def _build(
        self, X: np.ndarray, y: np.ndarray, depth: int, rng: np.random.Generator
    ) -> _Node:
        node_value = float(y.mean())
        if (
            len(y) < self.min_samples_split
            or (self.max_depth is not None and depth >= self.max_depth)
            or np.all(y == y[0])
        ):
            return _Node(value=node_value)

        feature, threshold, gain = self._best_split(X, y, rng)
        if feature < 0:
            return _Node(value=node_value)

        mask = X[:, feature] <= threshold
        # Guard against degenerate thresholds: if two adjacent distinct
        # values are so close that their midpoint rounds onto one of them,
        # a child can end up empty — treat the node as a leaf instead.
        if not mask.any() or mask.all():
            return _Node(value=node_value)
        self._importance[feature] += gain * len(y)
        left = self._build(X[mask], y[mask], depth + 1, rng)
        right = self._build(X[~mask], y[~mask], depth + 1, rng)
        return _Node(
            value=node_value, feature=feature, threshold=threshold,
            left=left, right=right,
        )

    def _best_split(self, X: np.ndarray, y: np.ndarray, rng: np.random.Generator):
        n = len(y)
        parent_var = y.var()
        if parent_var <= 0:
            return -1, 0.0, 0.0
        k = self._n_split_features()
        if k < self._num_features:
            features = rng.choice(self._num_features, size=k, replace=False)
        else:
            features = np.arange(self._num_features)

        best_feature, best_threshold, best_gain = -1, 0.0, 0.0
        min_leaf = self.min_samples_leaf
        for feature in features:
            order = np.argsort(X[:, feature], kind="stable")
            xs = X[order, feature]
            ys = y[order]
            # Cumulative sums allow O(n) evaluation of all split points.
            csum = np.cumsum(ys)
            csum_sq = np.cumsum(ys ** 2)
            total, total_sq = csum[-1], csum_sq[-1]
            # Valid split positions: between i and i+1 where value changes.
            idx = np.arange(min_leaf, n - min_leaf + 1)
            if len(idx) == 0:
                continue
            # Exclude positions where xs[i-1] == xs[i] (can't split there).
            distinct = xs[idx - 1] < xs[idx]
            idx = idx[distinct]
            if len(idx) == 0:
                continue
            left_n = idx.astype(float)
            right_n = n - left_n
            left_sum = csum[idx - 1]
            left_sq = csum_sq[idx - 1]
            right_sum = total - left_sum
            right_sq = total_sq - left_sq
            left_var = left_sq / left_n - (left_sum / left_n) ** 2
            right_var = right_sq / right_n - (right_sum / right_n) ** 2
            weighted = (left_n * left_var + right_n * right_var) / n
            gains = parent_var - weighted
            best_local = int(np.argmax(gains))
            if gains[best_local] > best_gain + 1e-15:
                best_gain = float(gains[best_local])
                best_feature = int(feature)
                pos = idx[best_local]
                best_threshold = float((xs[pos - 1] + xs[pos]) / 2.0)
        return best_feature, best_threshold, best_gain



from typing import List, Optional

import numpy as np



class RandomForestRegressor:
    """Ensemble of variance-reduction CART trees.

    Args:
        n_estimators: number of trees.
        max_depth / min_samples_split / min_samples_leaf / max_features:
            per-tree hyper-parameters (see :class:`DecisionTreeRegressor`).
            ``max_features`` defaults to ``1.0`` (all features), matching
            scikit-learn's regressor default.
        bootstrap: sample training rows with replacement per tree.
        random_state: master seed; per-tree seeds derive from it.
    """

    def __init__(
        self,
        n_estimators: int = 100,
        max_depth: Optional[int] = None,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features="sqrt",
        bootstrap: bool = True,
        random_state: Optional[int] = None,
    ):
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.bootstrap = bootstrap
        self.random_state = random_state
        self.estimators_: List[DecisionTreeRegressor] = []
        self.feature_importances_: Optional[np.ndarray] = None

    def get_params(self) -> dict:
        return {
            "n_estimators": self.n_estimators,
            "max_depth": self.max_depth,
            "min_samples_split": self.min_samples_split,
            "min_samples_leaf": self.min_samples_leaf,
            "max_features": self.max_features,
            "bootstrap": self.bootstrap,
            "random_state": self.random_state,
        }

    def set_params(self, **params) -> "RandomForestRegressor":
        for key, value in params.items():
            if not hasattr(self, key):
                raise ValueError(f"unknown parameter '{key}'")
            setattr(self, key, value)
        return self

    def clone(self) -> "RandomForestRegressor":
        return RandomForestRegressor(**self.get_params())

    def fit(self, X: np.ndarray, y: np.ndarray) -> "RandomForestRegressor":
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=float)
        if len(X) != len(y):
            raise ValueError("X and y length mismatch")
        if self.n_estimators < 1:
            raise ValueError("n_estimators must be >= 1")
        rng = np.random.default_rng(self.random_state)
        n = len(X)
        self.estimators_ = []
        importances = np.zeros(X.shape[1])
        for _ in range(self.n_estimators):
            tree = DecisionTreeRegressor(
                max_depth=self.max_depth,
                min_samples_split=self.min_samples_split,
                min_samples_leaf=self.min_samples_leaf,
                max_features=self.max_features,
                random_state=int(rng.integers(0, 2 ** 31)),
            )
            if self.bootstrap:
                rows = rng.integers(0, n, size=n)
            else:
                rows = np.arange(n)
            tree.fit(X[rows], y[rows])
            self.estimators_.append(tree)
            importances += tree.feature_importances_
        total = importances.sum()
        self.feature_importances_ = (
            importances / total if total > 0 else importances
        )
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        if not self.estimators_:
            raise RuntimeError("forest is not fitted")
        X = np.asarray(X, dtype=float)
        predictions = np.stack([tree.predict(X) for tree in self.estimators_])
        return predictions.mean(axis=0)

    def predict_std(self, X: np.ndarray) -> np.ndarray:
        """Ensemble standard deviation (a crude predictive uncertainty)."""
        if not self.estimators_:
            raise RuntimeError("forest is not fitted")
        X = np.asarray(X, dtype=float)
        predictions = np.stack([tree.predict(X) for tree in self.estimators_])
        return predictions.std(axis=0)


# ----------------------------------------------------------------------
# Frozen copy of the pre-PR-3 sequential cross-validation / grid search.

import itertools

from repro.ml.metrics import pearson_r


class KFoldRef:
    def __init__(self, n_splits=3, seed=0):
        if n_splits < 2:
            raise ValueError("n_splits must be >= 2")
        self.n_splits = n_splits
        self.seed = seed

    def split(self, n_samples):
        if n_samples < self.n_splits:
            raise ValueError("more folds than samples")
        rng = np.random.default_rng(self.seed)
        order = rng.permutation(n_samples)
        folds = np.array_split(order, self.n_splits)
        for i in range(self.n_splits):
            test_idx = folds[i]
            train_idx = np.concatenate(
                [folds[j] for j in range(self.n_splits) if j != i]
            )
            yield train_idx, test_idx


def cross_val_score(model, X, y, n_splits=3, seed=0, scorer=pearson_r):
    X = np.asarray(X, dtype=float)
    y = np.asarray(y, dtype=float)
    scores = []
    for train_idx, test_idx in KFoldRef(n_splits, seed).split(len(X)):
        fold_model = model.clone()
        fold_model.fit(X[train_idx], y[train_idx])
        predictions = fold_model.predict(X[test_idx])
        scores.append(scorer(y[test_idx], predictions))
    return np.array(scores)


def grid_search(model, param_grid, X, y, n_splits=3, seed=0, scorer=pearson_r):
    names = sorted(param_grid)
    combos = list(itertools.product(*(param_grid[name] for name in names)))
    if not combos:
        raise ValueError("empty parameter grid")
    results = []
    best_params = {}
    best_score = -np.inf
    for combo in combos:
        params = dict(zip(names, combo))
        candidate = model.clone().set_params(**params)
        scores = cross_val_score(
            candidate, X, y, n_splits=n_splits, seed=seed, scorer=scorer
        )
        mean_score = float(scores.mean())
        results.append((params, mean_score))
        if mean_score > best_score:
            best_score = mean_score
            best_params = params
    return best_params, best_score, results
