"""Unit tests for ML metrics (Pearson, Spearman, regression errors)."""

import numpy as np
import pytest
from scipy import stats

from repro.ml.metrics import (
    mean_absolute_error,
    pearson_r,
    r2_score,
    root_mean_squared_error,
    spearman_r,
)


def test_pearson_perfect_correlation():
    x = np.array([1.0, 2.0, 3.0, 4.0])
    assert pearson_r(x, 2 * x + 1) == pytest.approx(1.0)
    assert pearson_r(x, -x) == pytest.approx(-1.0)


def test_pearson_matches_scipy():
    rng = np.random.default_rng(0)
    for _ in range(10):
        x = rng.standard_normal(40)
        y = rng.standard_normal(40)
        assert pearson_r(x, y) == pytest.approx(
            stats.pearsonr(x, y)[0], abs=1e-12
        )


def test_pearson_constant_input_returns_zero():
    assert pearson_r(np.ones(5), np.arange(5.0)) == 0.0


def test_pearson_validates_input():
    with pytest.raises(ValueError):
        pearson_r(np.zeros(3), np.zeros(4))
    with pytest.raises(ValueError):
        pearson_r(np.zeros(1), np.zeros(1))


def test_spearman_matches_scipy():
    rng = np.random.default_rng(1)
    for _ in range(10):
        x = rng.standard_normal(30)
        y = x ** 3 + 0.1 * rng.standard_normal(30)
        assert spearman_r(x, y) == pytest.approx(
            stats.spearmanr(x, y)[0], abs=1e-10
        )


def test_spearman_with_ties_matches_scipy():
    x = np.array([1.0, 1.0, 2.0, 3.0, 3.0, 3.0])
    y = np.array([2.0, 1.0, 3.0, 5.0, 4.0, 4.0])
    assert spearman_r(x, y) == pytest.approx(
        stats.spearmanr(x, y)[0], abs=1e-10
    )


def test_spearman_invariant_to_monotone_transform():
    rng = np.random.default_rng(2)
    x = rng.uniform(0.1, 5.0, size=50)
    y = rng.uniform(0.1, 5.0, size=50)
    assert spearman_r(x, y) == pytest.approx(
        spearman_r(np.log(x), y ** 3), abs=1e-10
    )


def test_r2_perfect_and_mean_predictor():
    y = np.array([1.0, 2.0, 3.0])
    assert r2_score(y, y) == pytest.approx(1.0)
    assert r2_score(y, np.full(3, 2.0)) == pytest.approx(0.0)


def test_r2_constant_truth():
    y = np.ones(4)
    assert r2_score(y, y) == 1.0
    assert r2_score(y, y + 1) == 0.0


def test_mae_and_rmse():
    y_true = np.array([0.0, 0.0, 0.0, 0.0])
    y_pred = np.array([1.0, -1.0, 1.0, -1.0])
    assert mean_absolute_error(y_true, y_pred) == pytest.approx(1.0)
    assert root_mean_squared_error(y_true, y_pred) == pytest.approx(1.0)
    y_pred2 = np.array([2.0, 0.0, 0.0, 0.0])
    assert mean_absolute_error(y_true, y_pred2) == pytest.approx(0.5)
    assert root_mean_squared_error(y_true, y_pred2) == pytest.approx(1.0)
